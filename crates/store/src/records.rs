//! WAL record payloads.
//!
//! Facts travel as their display strings (`"edge(a, b)"`, zero-arity
//! `"tick()"`), which round-trip through the same parser qpl-serve's
//! wire `update` op uses — so replaying a delta record is *exactly*
//! re-applying the original request, and the store never needs to know
//! about symbol tables or interning order.

use crate::codec::{CodecError, Dec, Enc};

const TAG_DELTA: u8 = 1;
const TAG_STRATEGY: u8 = 2;

/// One journaled event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A KB delta as applied by the serving layer: ground fact texts to
    /// insert and retract, in request order.
    Delta { insert: Vec<String>, retract: Vec<String> },
    /// A strategy adoption: the fingerprint plus the arc order that
    /// produced it, enough to rebuild the compiled program without
    /// relearning.
    Strategy { fingerprint: u64, arcs: Vec<u32> },
}

fn put_strings(e: &mut Enc, items: &[String]) {
    e.put_u32(items.len() as u32);
    for s in items {
        e.put_str(s);
    }
}

fn take_strings(d: &mut Dec<'_>) -> Result<Vec<String>, CodecError> {
    let n = d.take_u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(d.take_str()?);
    }
    Ok(out)
}

impl Record {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Record::Delta { insert, retract } => {
                e.put_u8(TAG_DELTA);
                put_strings(&mut e, insert);
                put_strings(&mut e, retract);
            }
            Record::Strategy { fingerprint, arcs } => {
                e.put_u8(TAG_STRATEGY);
                e.put_u64(*fingerprint);
                e.put_u32(arcs.len() as u32);
                for a in arcs {
                    e.put_u32(*a);
                }
            }
        }
        e.into_bytes()
    }

    pub fn decode(bytes: &[u8]) -> Result<Record, CodecError> {
        let mut d = Dec::new(bytes);
        let rec = match d.take_u8()? {
            TAG_DELTA => {
                let insert = take_strings(&mut d)?;
                let retract = take_strings(&mut d)?;
                Record::Delta { insert, retract }
            }
            TAG_STRATEGY => {
                let fingerprint = d.take_u64()?;
                let n = d.take_u32()? as usize;
                let mut arcs = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    arcs.push(d.take_u32()?);
                }
                Record::Strategy { fingerprint, arcs }
            }
            tag => return Err(CodecError(format!("unknown record tag {tag}"))),
        };
        if !d.is_empty() {
            return Err(CodecError(format!("{} trailing bytes after record", d.remaining())));
        }
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip() {
        let samples = [
            Record::Delta {
                insert: vec!["edge(a, b)".into(), "tick()".into()],
                retract: vec!["edge(b, c)".into()],
            },
            Record::Delta { insert: vec![], retract: vec![] },
            Record::Strategy { fingerprint: u64::MAX - 17, arcs: vec![3, 0, 2, 1] },
            Record::Strategy { fingerprint: 0, arcs: vec![] },
        ];
        for rec in samples {
            assert_eq!(Record::decode(&rec.encode()).unwrap(), rec);
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = Record::Strategy { fingerprint: 9, arcs: vec![1] }.encode();
        bytes.push(0);
        assert!(Record::decode(&bytes).is_err());
    }

    #[test]
    fn every_truncation_errors_cleanly() {
        let bytes =
            Record::Delta { insert: vec!["edge(a, b)".into()], retract: vec!["p()".into()] }
                .encode();
        for cut in 0..bytes.len() {
            assert!(Record::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
