//! The [`Store`] facade: one directory holding a snapshot plus a
//! segmented WAL, with a recovery-on-open contract.
//!
//! Open order: load the snapshot (if any), then replay the WAL and
//! surface only records *after* the snapshot's `through_seq`. The
//! caller applies the snapshot, then the records in order, and lands
//! on the exact state of the never-crashed process.

use crate::error::StoreError;
use crate::records::Record;
use crate::snapshot::{self, Snapshot};
use crate::wal::{FsyncPolicy, Wal};
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

/// Store tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    pub fsync: FsyncPolicy,
    /// Segment rotation threshold in bytes.
    pub segment_bytes: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig { fsync: FsyncPolicy::EveryBatch, segment_bytes: 8 << 20 }
    }
}

/// What [`Store::open`] recovered from disk.
#[derive(Debug, Default)]
pub struct Recovered {
    pub snapshot: Option<Snapshot>,
    /// WAL records newer than the snapshot, in append order.
    pub records: Vec<Record>,
    /// True when a torn/corrupt WAL suffix was detected and repaired.
    pub torn_tail: bool,
}

impl Recovered {
    pub fn records_replayed(&self) -> u64 {
        self.records.len() as u64
    }
}

/// Result of a successful checkpoint.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointInfo {
    /// Highest WAL seq the snapshot covers.
    pub through_seq: u64,
    pub snapshot_bytes: u64,
    /// WAL segments deleted by the post-snapshot truncation.
    pub segments_removed: u64,
    pub at_unix_secs: u64,
}

/// Point-in-time store health, surfaced through the `stats` wire op.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreStatus {
    pub wal_bytes: u64,
    pub segments: u64,
    pub records_appended: u64,
    pub records_replayed: u64,
    /// Unix seconds of the newest snapshot (0 = never checkpointed).
    pub last_checkpoint_unix_secs: u64,
    pub snapshot_bytes: u64,
}

#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    wal: Wal,
    records_replayed: u64,
    records_appended: u64,
    snapshot_bytes: u64,
    last_checkpoint_unix_secs: u64,
}

fn unix_secs(t: SystemTime) -> u64 {
    t.duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}

impl Store {
    /// Opens (creating if needed) the store in `dir` and recovers its
    /// contents: snapshot load, WAL replay/repair, covered-record
    /// filtering.
    pub fn open(dir: &Path, config: StoreConfig) -> Result<(Store, Recovered), StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io("create data dir", dir, e))?;
        let loaded = snapshot::load(dir)?;
        let (snapshot, through_seq, snapshot_bytes) = match loaded {
            Some((s, t, b)) => (Some(s), t, b),
            None => (None, 0, 0),
        };
        let (wal, replay) = Wal::open(dir, config.fsync, config.segment_bytes, through_seq + 1)?;
        let mut records = Vec::new();
        for (seq, payload) in replay.frames {
            if seq <= through_seq {
                continue; // covered by the snapshot
            }
            let rec = Record::decode(&payload).map_err(|e| {
                // The frame passed its CRC, so an undecodable payload is
                // a format bug or tampering, not a torn write.
                StoreError::corrupt(dir, format!("record seq {seq}: {e}"))
            })?;
            records.push(rec);
        }
        let last_checkpoint_unix_secs = if snapshot.is_some() {
            std::fs::metadata(snapshot::snapshot_path(dir))
                .and_then(|m| m.modified())
                .map(unix_secs)
                .unwrap_or(0)
        } else {
            0
        };
        let store = Store {
            dir: dir.to_path_buf(),
            records_replayed: records.len() as u64,
            records_appended: 0,
            snapshot_bytes,
            last_checkpoint_unix_secs,
            wal,
        };
        let recovered = Recovered { snapshot, records, torn_tail: replay.torn_tail };
        Ok((store, recovered))
    }

    /// Journals one record; durability per the configured fsync policy
    /// (under `EveryBatch`, call [`commit`](Self::commit) before
    /// acking). Returns the record's WAL seq.
    pub fn append(&mut self, record: &Record) -> Result<u64, StoreError> {
        let seq = self.wal.append(&record.encode())?;
        self.records_appended += 1;
        Ok(seq)
    }

    /// Group-commit barrier for everything appended since the last one.
    pub fn commit(&mut self) -> Result<(), StoreError> {
        self.wal.commit()
    }

    /// Writes `snapshot` atomically, then truncates the WAL it covers.
    pub fn checkpoint(&mut self, snapshot: &Snapshot) -> Result<CheckpointInfo, StoreError> {
        // Make sure everything the snapshot claims to cover is on disk
        // before the covering segments become eligible for deletion.
        self.wal.commit()?;
        let through_seq = self.wal.next_seq() - 1;
        let snapshot_bytes = snapshot::write_atomic(&self.dir, snapshot, through_seq)?;
        let segments_removed = self.wal.truncate_all()?;
        let at_unix_secs = unix_secs(SystemTime::now());
        self.snapshot_bytes = snapshot_bytes;
        self.last_checkpoint_unix_secs = at_unix_secs;
        Ok(CheckpointInfo { through_seq, snapshot_bytes, segments_removed, at_unix_secs })
    }

    pub fn status(&self) -> StoreStatus {
        StoreStatus {
            wal_bytes: self.wal.wal_bytes(),
            segments: self.wal.segments(),
            records_appended: self.records_appended,
            records_replayed: self.records_replayed,
            last_checkpoint_unix_secs: self.last_checkpoint_unix_secs,
            snapshot_bytes: self.snapshot_bytes,
        }
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::StrategyState;
    use std::fs;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("qpl-store-{tag}-{}", std::process::id()))
            .join(format!("{:?}", std::thread::current().id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn delta(i: u32) -> Record {
        Record::Delta { insert: vec![format!("edge(n{i}, n{})", i + 1)], retract: vec![] }
    }

    #[test]
    fn journal_then_reopen_replays_everything() {
        let dir = tmpdir("journal");
        let (mut store, rec) = Store::open(&dir, StoreConfig::default()).unwrap();
        assert!(rec.snapshot.is_none());
        assert!(rec.records.is_empty());
        for i in 0..5 {
            store.append(&delta(i)).unwrap();
        }
        store.append(&Record::Strategy { fingerprint: 77, arcs: vec![1, 0] }).unwrap();
        store.commit().unwrap();
        drop(store);
        let (store, rec) = Store::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(rec.records_replayed(), 6);
        assert_eq!(rec.records[0], delta(0));
        assert_eq!(rec.records[5], Record::Strategy { fingerprint: 77, arcs: vec![1, 0] });
        assert_eq!(store.status().records_replayed, 6);
        let _ = fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn checkpoint_truncates_wal_and_covers_replay() {
        let dir = tmpdir("checkpoint");
        let (mut store, _) = Store::open(&dir, StoreConfig::default()).unwrap();
        for i in 0..4 {
            store.append(&delta(i)).unwrap();
        }
        let snap = Snapshot {
            facts: vec!["edge(n0, n1)".into()],
            generation: 4,
            pred_gens: vec![("edge".into(), 4)],
            strategy: Some(StrategyState { fingerprint: 9, arcs: vec![0] }),
            pib: None,
        };
        let info = store.checkpoint(&snap).unwrap();
        assert_eq!(info.through_seq, 4);
        assert!(info.snapshot_bytes > 0);
        // Post-checkpoint records are the only ones replayed.
        store.append(&delta(100)).unwrap();
        store.commit().unwrap();
        drop(store);
        let (store, rec) = Store::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(rec.snapshot.as_ref().unwrap().generation, 4);
        assert_eq!(rec.records, vec![delta(100)]);
        let status = store.status();
        assert!(status.last_checkpoint_unix_secs > 0);
        assert!(status.snapshot_bytes > 0);
        let _ = fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn checkpoint_then_clean_reopen_replays_nothing() {
        let dir = tmpdir("clean");
        let (mut store, _) = Store::open(&dir, StoreConfig::default()).unwrap();
        for i in 0..3 {
            store.append(&delta(i)).unwrap();
        }
        store.checkpoint(&Snapshot::default()).unwrap();
        drop(store);
        let (_, rec) = Store::open(&dir, StoreConfig::default()).unwrap();
        assert!(rec.snapshot.is_some());
        assert!(rec.records.is_empty(), "all records were covered: {:?}", rec.records);
        let _ = fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn disk_failure_surfaces_as_typed_io_error_not_panic() {
        let dir = tmpdir("diskfail");
        // A 1-byte segment threshold forces a rotation (and thus a file
        // creation) on every append; deleting the directory under the
        // store makes that creation fail like a dead disk would.
        let cfg = StoreConfig { fsync: FsyncPolicy::EveryBatch, segment_bytes: 1 };
        let (mut store, _) = Store::open(&dir, cfg).unwrap();
        store.append(&delta(0)).unwrap();
        fs::remove_dir_all(&dir).unwrap();
        let err = store.append(&delta(1)).unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }), "got {err}");
        assert!(!err.to_string().is_empty());
        let _ = fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn seqs_keep_increasing_across_checkpoint_and_reopen() {
        let dir = tmpdir("seqs");
        let (mut store, _) = Store::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(store.append(&delta(0)).unwrap(), 1);
        assert_eq!(store.append(&delta(1)).unwrap(), 2);
        store.checkpoint(&Snapshot::default()).unwrap();
        assert_eq!(store.append(&delta(2)).unwrap(), 3);
        store.commit().unwrap();
        drop(store);
        let (mut store, _) = Store::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(store.append(&delta(3)).unwrap(), 4);
        let _ = fs::remove_dir_all(dir.parent().unwrap());
    }
}
