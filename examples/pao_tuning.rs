//! PAO end to end: pick (ε, δ), let the adaptive query processor gather
//! exactly the required samples of every retrieval, and hand the
//! frequency estimates to Υ_AOT. Shows the sample-complexity / accuracy
//! trade and the Section-4.1 "free samples" effect.
//!
//! ```text
//! cargo run --release --example pao_tuning
//! ```

use qpl::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deeper random tree than the paper's examples.
    let mut gen_rng = StdRng::seed_from_u64(11);
    let g = qpl::workload::random_tree_with_retrievals(
        &mut gen_rng,
        &qpl::workload::TreeParams::default(),
        4,
        6,
    );
    println!("random inference graph:\n{}", g.outline());

    // Hidden truth the learner must discover.
    let truth = qpl::workload::random_retrieval_model(&mut gen_rng, &g, (0.05, 0.9));
    let (theta_opt, c_opt) = optimal_strategy(&g, &truth, 1_000_000)?;
    println!("hidden optimum: {} (cost {:.3})\n", theta_opt.display(&g), c_opt);

    for (eps, cap) in [(2.0, 500u64), (1.0, 2000), (0.5, 8000)] {
        let mut pao = Pao::new(&g, PaoConfig::theorem2(eps, 0.1).with_sample_cap(cap))?;
        let needed: Vec<String> = pao
            .required_samples()
            .iter()
            .map(|(a, m)| format!("{}:{}", g.arc(*a).label, m))
            .collect();
        let mut rng = StdRng::seed_from_u64(12);
        while !pao.done() {
            let ctx = truth.sample(&mut rng);
            pao.observe(&g, &ctx);
        }
        let (theta, model) = pao.finish(&g)?;
        let c = truth.expected_cost(&g, &theta);
        println!("ε = {eps} (counts capped at {cap}):");
        println!("  required samples: {}", needed.join("  "));
        println!("  contexts consumed: {}", pao.runs());
        let probs: Vec<String> =
            g.retrievals().map(|a| format!("{:.2}/{:.2}", model.prob(a), truth.prob(a))).collect();
        println!("  p̂/p per retrieval: {}", probs.join("  "));
        println!(
            "  Θ_pao = {} → cost {:.3} (regret {:.3}, budget ε = {eps})\n",
            theta.display(&g),
            c,
            c - c_opt
        );
    }
    Ok(())
}
