//! PALO — probably approximately locally optimal hill-climbing (\[CG91\],
//! discussed at the end of Section 3.2).
//!
//! "Like PIB, PALO uses a set of possible transformations to hill-climb
//! in a situation where the worth of each strategy can only be estimated
//! by sampling. While PIB will continue collecting samples and
//! potentially moving to new strategies indefinitely, PALO will stop
//! when it reaches an ε-local optimum — i.e., when it reaches a `Θ_m`
//! with the property that ∀Θ ∈ T(Θ_m): C\[Θ\] ≥ C\[Θ_m\] − ε."
//!
//! Unlike PIB, PALO here evaluates the *exact* paired difference
//! `Δ = c(Θ, I) − c(Θ', I)` per sampled context (it replays both
//! strategies on the full context), which gives it two-sided evidence:
//! a lower confidence bound to justify climbing, and an upper confidence
//! bound to certify `D[Θ, Θ'] ≤ ε` for every neighbour and *stop*. This
//! is more intrusive than PIB's trace-only Δ̃ statistics — the price of
//! a termination guarantee.

use crate::delta::{delta_exact_with, DeltaScratch};
use crate::transform::{SiblingSwap, TransformationSet};
use qpl_graph::batch::{execute_batch, lanes_from, BatchRun, ContextBatch};
use qpl_graph::context::Context;
use qpl_graph::graph::InferenceGraph;
use qpl_graph::program::StrategyProgram;
use qpl_graph::strategy::Strategy;
use qpl_obs::{MetricsSink, NoopSink};
use qpl_stats::{chernoff, SequentialSchedule};

/// Configuration for a PALO run.
#[derive(Debug, Clone, Copy)]
pub struct PaloConfig {
    /// Local-optimality slack `ε`.
    pub epsilon: f64,
    /// Total error budget `δ`.
    pub delta: f64,
}

impl PaloConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    /// Panics unless `ε > 0` and `δ ∈ (0, 1)`.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        Self { epsilon, delta }
    }
}

#[derive(Debug, Clone)]
struct Candidate {
    swap: SiblingSwap,
    strategy: Strategy,
    lambda: f64,
    sum: f64,
    count: u64,
}

impl Candidate {
    fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    fn radius(&self, delta: f64) -> f64 {
        if self.count == 0 {
            f64::INFINITY
        } else {
            chernoff::confidence_radius(self.count, delta, self.lambda)
        }
    }
}

/// The PALO learner: hill-climbs like PIB, stops at an ε-local optimum.
#[derive(Debug, Clone)]
pub struct Palo {
    config: PaloConfig,
    transforms: TransformationSet,
    current: Strategy,
    candidates: Vec<Candidate>,
    schedule: SequentialSchedule,
    climbs: Vec<SiblingSwap>,
    stopped: bool,
    /// Reusable Δ buffers: PALO replays two strategies per candidate per
    /// context, so the scratch keeps that loop allocation-free.
    scratch: DeltaScratch,
}

impl Palo {
    /// Creates a PALO learner over all sibling swaps of `g`.
    pub fn new(g: &InferenceGraph, initial: Strategy, config: PaloConfig) -> Self {
        let transforms = TransformationSet::all_sibling_swaps(g);
        let schedule = SequentialSchedule::new(config.delta);
        let mut palo = Self {
            config,
            transforms,
            current: initial,
            candidates: Vec::new(),
            schedule,
            climbs: Vec::new(),
            stopped: false,
            scratch: DeltaScratch::new(g),
        };
        palo.rebuild(g);
        palo
    }

    fn rebuild(&mut self, g: &InferenceGraph) {
        self.candidates = self
            .transforms
            .neighbors(g, &self.current)
            .into_iter()
            .map(|(swap, strategy)| Candidate {
                swap,
                lambda: swap.lambda(g),
                strategy,
                sum: 0.0,
                count: 0,
            })
            .collect();
        if self.candidates.is_empty() {
            self.stopped = true; // no neighbours: trivially locally optimal
        }
    }

    /// The current strategy.
    pub fn strategy(&self) -> &Strategy {
        &self.current
    }

    /// Whether PALO has certified an ε-local optimum and stopped.
    pub fn stopped(&self) -> bool {
        self.stopped
    }

    /// Transformations taken so far.
    pub fn climbs(&self) -> &[SiblingSwap] {
        &self.climbs
    }

    /// Observes one full context (PALO replays every neighbour on it).
    /// Returns `true` if the learner is still running.
    pub fn observe(&mut self, g: &InferenceGraph, ctx: &Context) -> bool {
        self.observe_with(g, ctx, &mut NoopSink)
    }

    /// [`observe`](Self::observe) with learning-loop telemetry: context
    /// and climb counters, a `core.palo.climb` event per step taken
    /// (sample count, mean Δ, the positive LCB that justified it), and
    /// per-neighbour `core.palo.certificate` events when the ε-local
    /// optimum is certified. With a [`NoopSink`] this is identical to
    /// `observe`.
    pub fn observe_with(
        &mut self,
        g: &InferenceGraph,
        ctx: &Context,
        sink: &mut dyn MetricsSink,
    ) -> bool {
        if self.stopped {
            return false;
        }
        sink.counter("core.palo.contexts", 1);
        for cand in &mut self.candidates {
            cand.sum += delta_exact_with(g, &self.current, &cand.strategy, ctx, &mut self.scratch);
            cand.count += 1;
        }
        self.decide(g, sink)
    }

    /// Observes a whole [`ContextBatch`]: the current strategy and every
    /// neighbour run as compiled programs over the raw context planes
    /// (PALO's Δ is *exact*, so candidates see the true contexts, not a
    /// pessimistic completion), then the lanes drain in order through
    /// the same per-context decision as [`observe`](Self::observe) —
    /// byte-identical statistics, climbs, and stopping. A mid-batch
    /// climb recompiles and re-runs the undrained lanes; a mid-batch
    /// stop returns `false` with the remaining lanes unconsumed, exactly
    /// as a scalar driver loop would stop feeding contexts. Returns
    /// `true` while the learner is still running.
    pub fn observe_batch(&mut self, g: &InferenceGraph, batch: &ContextBatch) -> bool {
        self.observe_batch_with(g, batch, &mut NoopSink)
    }

    /// [`observe_batch`](Self::observe_batch) with telemetry (see
    /// [`observe_with`](Self::observe_with)).
    pub fn observe_batch_with(
        &mut self,
        g: &InferenceGraph,
        batch: &ContextBatch,
        sink: &mut dyn MetricsSink,
    ) -> bool {
        let lanes = batch.lanes();
        let mut lane = 0usize;
        let mut run = BatchRun::new();
        let mut cand_run = BatchRun::new();
        let stride = batch.lane_capacity();
        let mut cand_costs: Vec<f64> = Vec::new();
        while lane < lanes {
            if self.stopped {
                return false;
            }
            let programs = StrategyProgram::compile(g, &self.current).ok().and_then(|cur| {
                self.candidates
                    .iter()
                    .map(|c| StrategyProgram::compile(g, &c.strategy).ok())
                    .collect::<Option<Vec<_>>>()
                    .map(|cands| (cur, cands))
            });
            let Some((cur_prog, cand_progs)) = programs else {
                // Interpreter fallback for strategies the compiler
                // rejects.
                let mut ctx = Context::all_open(g);
                while lane < lanes {
                    batch.extract_lane(lane, &mut ctx);
                    lane += 1;
                    if !self.observe_with(g, &ctx, sink) {
                        return false;
                    }
                }
                return !self.stopped;
            };
            let active = lanes_from(lane, lanes);
            execute_batch(&cur_prog, batch, active, &mut run);
            cand_costs.clear();
            for cp in &cand_progs {
                execute_batch(cp, batch, active, &mut cand_run);
                cand_costs.extend((0..stride).map(|l| cand_run.cost(l)));
            }
            let climbs_before = self.climbs.len();
            while lane < lanes {
                sink.counter("core.palo.contexts", 1);
                let cost = run.cost(lane);
                for (ci, cand) in self.candidates.iter_mut().enumerate() {
                    cand.sum += cost - cand_costs[ci * stride + lane];
                    cand.count += 1;
                }
                lane += 1;
                if !self.decide(g, sink) {
                    return false;
                }
                if self.climbs.len() > climbs_before {
                    // Neighbourhood changed: recompile and re-run the
                    // undrained suffix under the new strategy.
                    break;
                }
            }
        }
        !self.stopped
    }

    /// The per-context climb/stop decision, shared verbatim by the
    /// scalar and batched observation paths.
    fn decide(&mut self, g: &InferenceGraph, sink: &mut dyn MetricsSink) -> bool {
        // Charge one test per candidate (each gets a two-sided look).
        let delta_i = self.schedule.advance(self.candidates.len() as u64);
        let per_side = delta_i / 2.0;

        // Climb if some neighbour's LCB is positive.
        let climber = self
            .candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| c.mean() - c.radius(per_side) > 0.0)
            .max_by(|(_, a), (_, b)| {
                (a.mean() - a.radius(per_side))
                    .partial_cmp(&(b.mean() - b.radius(per_side)))
                    .expect("finite statistics")
            })
            .map(|(i, _)| i);
        if let Some(idx) = climber {
            // rebuild replaces the whole candidate vector, so the winner
            // can be moved out instead of cloning its strategy.
            let cand = self.candidates.swap_remove(idx);
            sink.counter("core.palo.climbs", 1);
            if sink.enabled() {
                sink.event(
                    "core.palo.climb",
                    &[
                        ("samples", cand.count as f64),
                        ("mean", cand.mean()),
                        ("lcb", cand.mean() - cand.radius(per_side)),
                    ],
                );
            }
            self.climbs.push(cand.swap);
            self.current = cand.strategy;
            self.rebuild(g);
            return !self.stopped;
        }

        // Stop if every neighbour's UCB is below ε.
        let all_within = self
            .candidates
            .iter()
            .all(|c| c.count > 0 && c.mean() + c.radius(per_side) < self.config.epsilon);
        if all_within {
            self.stopped = true;
            sink.counter("core.palo.stopped", 1);
            if sink.enabled() {
                for c in &self.candidates {
                    sink.event(
                        "core.palo.certificate",
                        &[
                            ("samples", c.count as f64),
                            ("mean", c.mean()),
                            ("ucb", c.mean() + c.radius(per_side)),
                            ("epsilon", self.config.epsilon),
                        ],
                    );
                }
            }
        }
        !self.stopped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpl_graph::expected::{ContextDistribution, IndependentModel};
    use qpl_graph::graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn g_a() -> InferenceGraph {
        let mut b = GraphBuilder::new("instructor(κ)");
        let root = b.root();
        let (_, prof) = b.reduction(root, "R_p", 1.0, "prof(κ)");
        b.retrieval(prof, "D_p", 1.0);
        let (_, grad) = b.reduction(root, "R_g", 1.0, "grad(κ)");
        b.retrieval(grad, "D_g", 1.0);
        b.finish().unwrap()
    }

    fn g_b() -> InferenceGraph {
        let mut b = GraphBuilder::new("G(κ)");
        let root = b.root();
        let (_, a) = b.reduction(root, "R_ga", 1.0, "A(κ)");
        b.retrieval(a, "D_a", 1.0);
        let (_, s) = b.reduction(root, "R_gs", 1.0, "S(κ)");
        let (_, bb) = b.reduction(s, "R_sb", 1.0, "B(κ)");
        b.retrieval(bb, "D_b", 1.0);
        let (_, t) = b.reduction(s, "R_st", 1.0, "T(κ)");
        let (_, c) = b.reduction(t, "R_tc", 1.0, "C(κ)");
        b.retrieval(c, "D_c", 1.0);
        let (_, d) = b.reduction(t, "R_td", 1.0, "D(κ)");
        b.retrieval(d, "D_d", 1.0);
        b.finish().unwrap()
    }

    #[test]
    fn stops_at_epsilon_local_optimum() {
        let g = g_a();
        let model = IndependentModel::from_retrieval_probs(&g, &[0.05, 0.8]).unwrap();
        let mut palo = Palo::new(&g, Strategy::left_to_right(&g), PaloConfig::new(0.5, 0.05));
        let mut rng = StdRng::seed_from_u64(31);
        let mut steps = 0u32;
        while palo.observe(&g, &model.sample(&mut rng)) {
            steps += 1;
            assert!(steps < 200_000, "PALO failed to terminate");
        }
        assert!(palo.stopped());
        assert_eq!(palo.climbs().len(), 1, "one climb then certify");
        // Final strategy is ε-locally optimal: every neighbour within ε.
        let set = TransformationSet::all_sibling_swaps(&g);
        let c_final = model.expected_cost(&g, palo.strategy());
        for (_, n) in set.neighbors(&g, palo.strategy()) {
            let c_n = model.expected_cost(&g, &n);
            assert!(c_n >= c_final - 0.5 - 1e-9, "neighbour {c_n} beats {c_final} by > ε");
        }
    }

    #[test]
    fn stops_quickly_when_start_is_optimal() {
        let g = g_a();
        let model = IndependentModel::from_retrieval_probs(&g, &[0.9, 0.05]).unwrap();
        let mut palo = Palo::new(&g, Strategy::left_to_right(&g), PaloConfig::new(1.0, 0.05));
        let mut rng = StdRng::seed_from_u64(32);
        let mut steps = 0u32;
        while palo.observe(&g, &model.sample(&mut rng)) {
            steps += 1;
            assert!(steps < 100_000);
        }
        assert!(palo.climbs().is_empty());
    }

    #[test]
    fn certificate_is_sound_on_g_b() {
        // Whatever PALO certifies must actually be ε-locally optimal.
        let g = g_b();
        let model = IndependentModel::from_retrieval_probs(&g, &[0.1, 0.3, 0.6, 0.2]).unwrap();
        let eps = 0.75;
        let mut palo = Palo::new(&g, Strategy::left_to_right(&g), PaloConfig::new(eps, 0.05));
        let mut rng = StdRng::seed_from_u64(33);
        let mut steps = 0u32;
        while palo.observe(&g, &model.sample(&mut rng)) {
            steps += 1;
            assert!(steps < 500_000, "PALO failed to terminate");
        }
        let set = TransformationSet::all_sibling_swaps(&g);
        let c_final = model.expected_cost(&g, palo.strategy());
        for (_, n) in set.neighbors(&g, palo.strategy()) {
            assert!(model.expected_cost(&g, &n) >= c_final - eps - 1e-9);
        }
    }

    #[test]
    fn tighter_epsilon_takes_more_samples() {
        let g = g_a();
        let model = IndependentModel::from_retrieval_probs(&g, &[0.5, 0.5]).unwrap();
        let mut samples = Vec::new();
        for eps in [1.0, 0.25] {
            let mut palo = Palo::new(&g, Strategy::left_to_right(&g), PaloConfig::new(eps, 0.05));
            let mut rng = StdRng::seed_from_u64(34);
            let mut n = 0u64;
            while palo.observe(&g, &model.sample(&mut rng)) {
                n += 1;
                assert!(n < 1_000_000);
            }
            samples.push(n);
        }
        assert!(samples[1] > samples[0], "ε=0.25 needs more than ε=1.0: {samples:?}");
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn bad_epsilon_rejected() {
        PaloConfig::new(0.0, 0.05);
    }

    #[test]
    fn batched_observation_matches_scalar_byte_for_byte() {
        // Same context stream through both paths until PALO stops:
        // identical climbs, identical certificates, identical in-flight
        // sums to the bit. The stream forces at least one climb, so the
        // mid-batch recompile/re-run path is exercised.
        let g = g_b();
        let model = IndependentModel::from_retrieval_probs(&g, &[0.1, 0.3, 0.6, 0.2]).unwrap();
        let cfg = PaloConfig::new(0.75, 0.05);
        for plane_lanes in [64usize, 256, 512] {
            batched_palo_matches_scalar(&g, &model, cfg, plane_lanes);
        }
    }

    fn batched_palo_matches_scalar(
        g: &InferenceGraph,
        model: &IndependentModel,
        cfg: PaloConfig,
        plane_lanes: usize,
    ) {
        let mut scalar = Palo::new(g, Strategy::left_to_right(g), cfg);
        let mut batched = Palo::new(g, Strategy::left_to_right(g), cfg);
        let mut rng = StdRng::seed_from_u64(33);
        let mut guard = 0u32;
        'outer: loop {
            let chunk: Vec<Context> = (0..plane_lanes).map(|_| model.sample(&mut rng)).collect();
            let mut b = ContextBatch::new(g.arc_count(), chunk.len());
            let mut scalar_running = true;
            for (lane, ctx) in chunk.iter().enumerate() {
                b.set_lane(lane, ctx);
                if scalar_running {
                    scalar_running = scalar.observe(g, ctx);
                }
            }
            let batched_running = batched.observe_batch(g, &b);
            assert_eq!(scalar_running, batched_running, "divergent stop");
            assert_eq!(scalar.stopped(), batched.stopped());
            assert_eq!(scalar.climbs(), batched.climbs());
            assert_eq!(scalar.strategy().arcs(), batched.strategy().arcs());
            assert_eq!(scalar.candidates.len(), batched.candidates.len());
            for (a, b) in scalar.candidates.iter().zip(&batched.candidates) {
                assert_eq!(a.swap, b.swap);
                assert_eq!(a.count, b.count);
                assert_eq!(a.sum.to_bits(), b.sum.to_bits());
            }
            if !batched_running {
                break 'outer;
            }
            guard += 1;
            assert!(guard < 10_000, "PALO failed to terminate");
        }
        assert!(!scalar.climbs().is_empty(), "the case must actually climb");
    }
}
