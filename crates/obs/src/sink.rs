//! The [`MetricsSink`] trait, the disabled [`NoopSink`], and the
//! clock-skipping [`SpanTimer`] guard.

use std::time::Instant;

/// A destination for structured run telemetry.
///
/// Implementations must be cheap to call; call sites are allowed to
/// invoke a sink inside per-sample loops. Anything expensive to
/// *compute* (as opposed to record) should be guarded by
/// [`MetricsSink::enabled`] at the call site — that is the whole
/// zero-overhead contract:
///
/// ```
/// use qpl_obs::{MetricsSink, NoopSink};
/// fn instrumented(sink: &mut dyn MetricsSink) {
///     if sink.enabled() {
///         // derived quantities are only computed when someone listens
///         sink.value("demo.ratio", 22.0 / 7.0);
///     }
///     sink.counter("demo.calls", 1);
/// }
/// instrumented(&mut NoopSink);
/// ```
pub trait MetricsSink {
    /// Whether this sink records anything. Call sites use this to skip
    /// clock reads and derived-value computation; [`NoopSink`] returns
    /// `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Add `delta` to the named monotonic counter.
    fn counter(&mut self, name: &'static str, delta: u64);

    /// Record one `f64` observation under `name` (aggregated as
    /// count/sum/min/max).
    fn value(&mut self, name: &'static str, v: f64);

    /// Record one wall-clock span of `ns` nanoseconds under `name`.
    fn span_ns(&mut self, name: &'static str, ns: u64);

    /// Record a structured per-decision event with numeric fields.
    ///
    /// Field order is preserved as given; field names should be
    /// `'static` identifiers so snapshots stay schema-stable.
    fn event(&mut self, name: &'static str, fields: &[(&'static str, f64)]);
}

/// The default sink: records nothing and reports `enabled() == false`,
/// so instrumented call sites degenerate to a handful of predictable
/// branches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl MetricsSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn counter(&mut self, _name: &'static str, _delta: u64) {}

    fn value(&mut self, _name: &'static str, _v: f64) {}

    fn span_ns(&mut self, _name: &'static str, _ns: u64) {}

    fn event(&mut self, _name: &'static str, _fields: &[(&'static str, f64)]) {}
}

/// A wall-clock span guard that reads the clock only when the sink is
/// enabled.
///
/// The timer borrows the sink twice (at start and at finish) instead of
/// holding it, so the span body is free to use the same sink:
///
/// ```
/// use qpl_obs::{MemorySink, MetricsSink, SpanTimer};
/// let mut sink = MemorySink::new();
/// let t = SpanTimer::start(&sink, "demo.phase");
/// sink.counter("demo.work", 3);
/// t.finish(&mut sink);
/// assert_eq!(sink.span_stats("demo.phase").unwrap().count, 1);
/// ```
#[derive(Debug)]
#[must_use = "a SpanTimer records nothing unless finish() is called"]
pub struct SpanTimer {
    name: &'static str,
    start: Option<Instant>,
}

impl SpanTimer {
    /// Begin a span named `name`. No clock read happens when
    /// `sink.enabled()` is false.
    pub fn start(sink: &dyn MetricsSink, name: &'static str) -> Self {
        SpanTimer { name, start: sink.enabled().then(Instant::now) }
    }

    /// End the span and record its duration (saturating at `u64::MAX`
    /// nanoseconds, ~584 years).
    pub fn finish(self, sink: &mut dyn MetricsSink) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            sink.span_ns(self.name, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemorySink;

    #[test]
    fn noop_is_disabled_and_records_nothing() {
        let mut sink = NoopSink;
        assert!(!sink.enabled());
        sink.counter("x", 1);
        sink.value("x", 1.0);
        sink.span_ns("x", 1);
        sink.event("x", &[("f", 1.0)]);
    }

    #[test]
    fn span_timer_skips_clock_when_disabled() {
        let t = SpanTimer::start(&NoopSink, "x");
        assert!(t.start.is_none());
        t.finish(&mut NoopSink);
    }

    #[test]
    fn span_timer_records_when_enabled() {
        let mut sink = MemorySink::new();
        let t = SpanTimer::start(&sink, "phase");
        t.finish(&mut sink);
        let stats = sink.span_stats("phase").expect("span recorded");
        assert_eq!(stats.count, 1);
        assert!(stats.total_ns >= stats.min_ns);
    }

    #[test]
    fn dyn_object_safety() {
        let mut mem = MemorySink::new();
        let sink: &mut dyn MetricsSink = &mut mem;
        sink.counter("obj", 2);
        assert_eq!(mem.counter_total("obj"), 2);
    }
}
