//! Offline vendored shim of the `rand 0.8` API surface this workspace uses.
//!
//! The build environment has no network access and no crates.io cache, so
//! the real `rand` crate cannot be fetched. This shim keeps the exact same
//! trait/type layout (`RngCore`, `Rng`, `SeedableRng`, `rngs::StdRng`,
//! `distributions::{Distribution, Standard}`) so workspace code compiles
//! unchanged against `rand = { path = "vendor/rand" }`.
//!
//! **Stream compatibility caveat:** `StdRng` here is xoshiro256++ seeded via
//! SplitMix64, not the ChaCha12 generator of the real crate. Sequences for a
//! given seed therefore differ from upstream `rand`. All in-repo consumers
//! treat the RNG as an opaque deterministic stream, so this only matters for
//! tests pinned to specific lucky seeds (triaged in the seed-test pass).

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// Low-level generator interface: object-safe, mirrors `rand_core::RngCore`.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::SampleUniform,
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must lie in [0, 1], got {p}");
        self.gen::<f64>() < p
    }

    /// Fills a byte slice (alias kept for API parity).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type (byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (the same convention the real rand 0.8 uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut state);
            for (b, out) in v.to_le_bytes().iter().zip(chunk.iter_mut()) {
                *out = *b;
            }
        }
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step: advances `state` and returns the mixed output.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_int_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(0..=2);
            assert!((0..=2).contains(&v));
            let w: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&w));
            let s: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn gen_range_int_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0..3usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_float_bounds() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(15);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits}/10000 at p=0.3");
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(21);
        let dynrng: &mut dyn RngCore = &mut rng;
        let u: f64 = dynrng.gen();
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
