//! Binding-aware bottom-up answering: magic rewriting + scoped caching.
//!
//! [`MagicRunner`] is the engine-side driver for
//! [`qpl_datalog::magic`]: it rewrites a rule base once per query form,
//! then answers concrete queries of that form by seeding the rewritten
//! program and running semi-naive evaluation — deriving only the facts
//! the query's bindings demand, instead of saturating the minimal
//! model.
//!
//! Answers are cached per bound-constant vector and scoped to the
//! query's *dependency footprint* (the body-reachability closure of the
//! queried predicate), the same selective-invalidation contract as
//! [`RunCache::revalidate_scoped`](crate::cache::RunCache): a KB delta
//! on a predicate outside the footprint leaves every cached answer
//! warm; a delta inside it invalidates lazily on next lookup.

use crate::cache::{CacheStats, DependencyFootprint};
use qpl_datalog::eval::EvalScratch;
use qpl_datalog::magic::{rewrite, MagicProgram};
use qpl_datalog::{Atom, Database, QueryForm, RuleBase, Symbol, SymbolTable};
use qpl_obs::{names, MetricsSink};
use std::collections::HashMap;

/// One answered magic query (possibly served from cache).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MagicAnswer {
    /// Ground instances of the query over the original predicate,
    /// sorted and deduplicated.
    pub answers: Vec<Atom>,
    /// Facts the rewritten fixpoint derived when this answer was
    /// computed (0 work when served warm from cache).
    pub derived: usize,
    /// Whether the answer came from the footprint-scoped cache.
    pub cache_hit: bool,
}

struct CachedAnswer {
    instance: u64,
    generation: u64,
    answers: Vec<Atom>,
}

/// A reusable binding-aware query runner for one query form.
pub struct MagicRunner {
    program: MagicProgram,
    footprint: DependencyFootprint,
    cache: HashMap<Vec<Symbol>, CachedAnswer>,
    scratch: EvalScratch,
    stats: CacheStats,
}

impl MagicRunner {
    /// Rewrites `rules` for `form` (interning adorned/magic predicate
    /// names into `table`) and scopes the answer cache to the form's
    /// dependency footprint.
    pub fn new(rules: &RuleBase, form: &QueryForm, table: &mut SymbolTable) -> Self {
        let program = rewrite(rules, form, table);
        let footprint =
            DependencyFootprint::from_predicates(rules.reachable_predicates(form.predicate));
        Self {
            program,
            footprint,
            cache: HashMap::new(),
            scratch: EvalScratch::new(),
            stats: CacheStats::default(),
        }
    }

    /// The rewritten program (inspect rules, seed predicate, no-op-ness).
    pub fn program(&self) -> &MagicProgram {
        &self.program
    }

    /// The predicates whose deltas can invalidate cached answers.
    pub fn footprint(&self) -> &DependencyFootprint {
        &self.footprint
    }

    /// Hit/miss/invalidation counters over the runner's lifetime.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Answers `query` through the magic-rewritten program, serving
    /// from cache when the footprint-scoped generation still matches.
    ///
    /// # Panics
    /// Panics if `query` does not match the runner's form.
    pub fn run_magic(&mut self, db: &Database, query: &Atom) -> MagicAnswer {
        let key = self.program.form.bound_constants(query);
        let instance = db.instance_id();
        let generation = self.footprint.generation(db);
        match self.cache.get(&key) {
            Some(c) if c.instance == instance && c.generation == generation => {
                self.stats.hits += 1;
                return MagicAnswer { answers: c.answers.clone(), derived: 0, cache_hit: true };
            }
            Some(_) => {
                self.stats.invalidations += 1;
                self.stats.misses += 1;
            }
            None => self.stats.misses += 1,
        }
        let eval = self.program.evaluate_into(db, query, &mut self.scratch);
        self.cache
            .insert(key, CachedAnswer { instance, generation, answers: eval.answers.clone() });
        MagicAnswer { answers: eval.answers, derived: eval.derived, cache_hit: false }
    }

    /// Emits the runner's counters: rewrite size under
    /// [`names::plan::MAGIC_RULES_GENERATED`] and cache traffic under
    /// the `engine.magic.*` namespace.
    pub fn emit_to(&self, sink: &mut dyn MetricsSink) {
        sink.counter(names::plan::MAGIC_RULES_GENERATED, self.program.rules_generated as u64);
        sink.counter("engine.magic.hits", self.stats.hits);
        sink.counter("engine.magic.misses", self.stats.misses);
        sink.counter("engine.magic.invalidations", self.stats.invalidations);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpl_datalog::parser::{parse_program, parse_query, parse_query_form};
    use qpl_datalog::{eval, Fact};

    const PATH_KB: &str = "path(X, Y) :- edge(X, Y).\n\
                           path(X, Z) :- edge(X, Y), path(Y, Z).\n\
                           edge(a, b). edge(b, c). annot(x).";

    fn setup() -> (SymbolTable, qpl_datalog::parser::Program, MagicRunner) {
        let mut t = SymbolTable::new();
        let p = parse_program(PATH_KB, &mut t).unwrap();
        let form = parse_query_form("path(b,f)", &mut t).unwrap();
        let runner = MagicRunner::new(&p.rules, &form, &mut t);
        (t, p, runner)
    }

    #[test]
    fn answers_and_caches_by_binding() {
        let (mut t, p, mut runner) = setup();
        let q = parse_query("path(a, W)", &mut t).unwrap();
        let cold = runner.run_magic(&p.facts, &q);
        assert_eq!(cold.answers.len(), 2, "a reaches b and c");
        assert!(!cold.cache_hit);
        let warm = runner.run_magic(&p.facts, &q);
        assert!(warm.cache_hit);
        assert_eq!(warm.answers, cold.answers);
        assert_eq!(runner.stats().hits, 1);
        assert_eq!(runner.stats().misses, 1);
    }

    #[test]
    fn delta_outside_footprint_keeps_answers_warm() {
        let (mut t, mut p, mut runner) = setup();
        let q = parse_query("path(a, W)", &mut t).unwrap();
        runner.run_magic(&p.facts, &q);
        // annot is outside path's reachability footprint.
        let annot = t.lookup("annot").unwrap();
        assert!(!runner.footprint().contains(annot));
        let c = t.intern("y");
        p.facts.insert(Fact::new(annot, vec![c])).unwrap();
        let after = runner.run_magic(&p.facts, &q);
        assert!(after.cache_hit, "annot churn must not invalidate path answers");
        assert_eq!(runner.stats().invalidations, 0);
    }

    #[test]
    fn delta_inside_footprint_invalidates_and_recomputes() {
        let (mut t, mut p, mut runner) = setup();
        let q = parse_query("path(a, W)", &mut t).unwrap();
        assert_eq!(runner.run_magic(&p.facts, &q).answers.len(), 2);
        let edge = t.lookup("edge").unwrap();
        let (c, d) = (t.lookup("c").unwrap(), t.intern("d"));
        p.facts.insert(Fact::new(edge, vec![c, d])).unwrap();
        let after = runner.run_magic(&p.facts, &q);
        assert!(!after.cache_hit);
        assert_eq!(after.answers.len(), 3, "a now also reaches d");
        assert_eq!(runner.stats().invalidations, 1);
    }

    #[test]
    fn matches_plain_seminaive_and_emits() {
        let (mut t, p, mut runner) = setup();
        let q = parse_query("path(b, W)", &mut t).unwrap();
        let magic = runner.run_magic(&p.facts, &q);
        assert_eq!(magic.answers, eval::answers(&p.rules, &p.facts, &q));
        let mut sink = qpl_obs::MemorySink::new();
        runner.emit_to(&mut sink);
        assert!(sink.counter_total(names::plan::MAGIC_RULES_GENERATED) > 0);
        assert_eq!(sink.counter_total("engine.magic.misses"), 1);
    }
}
