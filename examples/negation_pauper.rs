//! Section 5.2's negation-as-failure application: `pauper(x)` holds iff
//! no `owns(x, Y)` derivation exists. Deciding it is a satisficing
//! search over asset classes — a single possession settles the question
//! — so the learned strategy that checks the *likeliest* asset class
//! first cuts the cost of disproving pauperhood.
//!
//! ```text
//! cargo run --example negation_pauper
//! ```

use qpl::engine::naf::NafProcessor;
use qpl::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (mut table, compiled, db) = qpl::workload::pauper();
    let g = compiled.graph.clone();
    println!("ownership graph:\n{}", g.outline());

    let naf = NafProcessor::new(QueryProcessor::left_to_right(&compiled));
    for person in ["midas", "croesus", "onassis", "diogenes"] {
        let q = parser::parse_query(&format!("owns({person}, Y)"), &mut table)?;
        let run = naf.run(&q, &db)?;
        match &run.counterexample {
            Some(item) => println!(
                "pauper({person})? false — owns {} (search cost {})",
                item.display(&table),
                run.trace.cost
            ),
            None => println!("pauper({person})? true  — exhaustive search cost {}", run.trace.cost),
        }
    }

    // In this population, car ownership is by far the most common, so
    // checking owns_car first should win. Let PIB find that out.
    let car_owners = ["midas", "k1", "k2", "k3", "k4", "k5", "k6"];
    let mut db2 = db.clone();
    let owns_car = table.lookup("owns_car").expect("predicate exists");
    for (i, owner) in car_owners.iter().enumerate() {
        let who = table.intern(owner);
        let what = table.intern(&format!("car{i}"));
        db2.insert(Fact::new(owns_car, vec![who, what]))?;
    }
    let mut population: Vec<(Atom, f64)> = Vec::new();
    for p in car_owners {
        population.push((parser::parse_query(&format!("owns({p}, Y)"), &mut table)?, 1.0));
    }
    population.push((parser::parse_query("owns(diogenes, Y)", &mut table)?, 3.0));
    let mut oracle = QueryMixOracle::new(&compiled, db2, population)?;
    let truth = oracle.to_distribution();

    let mut pib = Pib::new(&g, Strategy::left_to_right(&g), PibConfig::new(0.05));
    let before = truth.expected_cost(&g, pib.strategy());
    let mut rng = StdRng::seed_from_u64(8);
    for _ in 0..30_000 {
        let ctx = oracle.draw(&mut rng);
        pib.observe(&g, &ctx);
    }
    let after = truth.expected_cost(&g, pib.strategy());
    println!(
        "\nlearning the asset-class order: cost {before:.3} → {after:.3} \
         ({} climbs; final {})",
        pib.history().len(),
        pib.strategy().display(&g)
    );
    Ok(())
}
