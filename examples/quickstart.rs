//! Quickstart: build a knowledge base, compile it to an inference graph,
//! and let PIB learn a better query-processing strategy from the query
//! stream.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use qpl::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A Datalog knowledge base: rules + ground facts.
    let mut table = SymbolTable::new();
    let program = parser::parse_program(
        "instructor(X) :- prof(X).\n\
         instructor(X) :- grad(X).\n\
         prof(russ). grad(manolis).",
        &mut table,
    )?;

    // 2. Compile the rule base for the query form `instructor(b)`.
    let form = parser::parse_query_form("instructor(b)", &mut table)?;
    let compiled = compile(&program.rules, &form, &table, &CompileOptions::default())?;
    let g = &compiled.graph;
    println!("inference graph:\n{}", g.outline());

    // 3. Run some queries with the default (left-to-right) strategy.
    let qp = QueryProcessor::left_to_right(&compiled);
    for name in ["russ", "manolis", "fred"] {
        let q = parser::parse_query(&format!("instructor({name})"), &mut table)?;
        let run = qp.run(&q, &program.facts)?;
        println!("instructor({name})? {:5}  cost = {}", run.answer.is_yes(), run.trace.cost);
    }

    // 4. The anticipated query mix: mostly grad students. Let PIB watch.
    let queries = vec![
        (parser::parse_query("instructor(manolis)", &mut table)?, 0.7),
        (parser::parse_query("instructor(fred)", &mut table)?, 0.3),
    ];
    let mut oracle = QueryMixOracle::new(&compiled, program.facts.clone(), queries)?;
    let truth = oracle.to_distribution();

    let mut pib = Pib::new(g, qp.strategy().clone(), PibConfig::new(0.05));
    let mut rng = StdRng::seed_from_u64(1);
    println!("\ninitial strategy: {}", pib.strategy().display(g));
    println!("initial expected cost: {:.3}", truth.expected_cost(g, pib.strategy()));
    for i in 0..10_000u32 {
        let ctx = oracle.draw(&mut rng);
        pib.observe(g, &ctx);
        if let Some(record) = pib.history().last() {
            if pib.history().len() == 1 {
                println!(
                    "climbed after {} queries (evidence {:.1}, test #{})",
                    i + 1,
                    record.evidence,
                    record.test_index
                );
                break;
            }
        }
    }
    println!("learned strategy: {}", pib.strategy().display(g));
    println!("learned expected cost: {:.3}", truth.expected_cost(g, pib.strategy()));
    Ok(())
}
