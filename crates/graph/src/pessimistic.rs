//! Pessimistic trace completion — the heart of PIB's Δ̃ under-estimates.
//!
//! After running `Θ` in context `I`, only the attempted arcs' statuses
//! are known. To bound the cost an *unbuilt* alternative `Θ'` would have
//! paid, Section 3.2 evaluates `Θ'` "under the assumption that all of the
//! arcs in the unexplored part of the inference graph will be blocked".
//!
//! [`pessimistic_completion`] materializes that assumption as a concrete
//! [`Context`]:
//!
//! * attempted arcs keep their observed status;
//! * unattempted **retrievals** are assumed blocked (no hidden successes,
//!   so `Θ'` never stops early in unexplored territory);
//! * unattempted **reductions** are assumed open (so `Θ'` pays the full
//!   cost of descending into unexplored subtrees).
//!
//! Evaluating any `Θ'` against this completed context *over-estimates*
//! `c(Θ', I)` — hence `Δ̃ = c(Θ, I) − c(Θ', I⁻) ≤ Δ` — while evaluating
//! the observed `Θ` against it reproduces `c(Θ, I)` exactly (satisficing
//! runs never look past what they observed). Property tests in
//! `qpl-core` verify both facts on random graphs.

use crate::context::{ArcOutcome, Context, Trace};
use crate::graph::{ArcId, ArcKind, InferenceGraph};

/// Builds the pessimistic completion `I⁻` of a trace: observed statuses
/// preserved, unobserved retrievals blocked, unobserved reductions open.
pub fn pessimistic_completion(g: &InferenceGraph, trace: &Trace) -> Context {
    let mut ctx = Context::all_open(g);
    pessimistic_completion_into(g, &trace.events, &mut ctx);
    ctx
}

/// [`pessimistic_completion`] into a caller-owned buffer (resized to fit
/// `g`), taking the run's events directly — e.g. from
/// [`RunScratch::events`](crate::context::RunScratch::events) — so tight
/// loops rebuild the completion without allocating a fresh [`Context`]
/// per probe.
pub fn pessimistic_completion_into(
    g: &InferenceGraph,
    events: &[(ArcId, ArcOutcome)],
    out: &mut Context,
) {
    out.reset_from_fn(g, |a| match g.arc(a).kind {
        ArcKind::Retrieval => true,  // assume blocked
        ArcKind::Reduction => false, // assume open
    });
    for &(a, outcome) in events {
        out.set_blocked(a, outcome == ArcOutcome::Blocked);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{execute, RunOutcome};
    use crate::graph::{GraphBuilder, InferenceGraph};
    use crate::strategy::Strategy;

    fn g_b() -> InferenceGraph {
        let mut b = GraphBuilder::new("G(κ)");
        let root = b.root();
        let (_, a) = b.reduction(root, "R_ga", 1.0, "A(κ)");
        b.retrieval(a, "D_a", 1.0);
        let (_, s) = b.reduction(root, "R_gs", 1.0, "S(κ)");
        let (_, bb) = b.reduction(s, "R_sb", 1.0, "B(κ)");
        b.retrieval(bb, "D_b", 1.0);
        let (_, t) = b.reduction(s, "R_st", 1.0, "T(κ)");
        let (_, c) = b.reduction(t, "R_tc", 1.0, "C(κ)");
        b.retrieval(c, "D_c", 1.0);
        let (_, d) = b.reduction(t, "R_td", 1.0, "D(κ)");
        b.retrieval(d, "D_d", 1.0);
        b.finish().unwrap()
    }

    #[test]
    fn observed_statuses_preserved() {
        let g = g_b();
        let theta = Strategy::left_to_right(&g);
        // I_c of Section 3.2: D_a, D_b blocked, D_c open (first success),
        // D_d unknown to the run.
        let ctx = Context::with_blocked(
            &g,
            &[g.arc_by_label("D_a").unwrap(), g.arc_by_label("D_b").unwrap()],
        );
        let trace = execute(&g, &theta, &ctx);
        assert!(matches!(trace.outcome, RunOutcome::Succeeded(_)));
        let completed = pessimistic_completion(&g, &trace);
        assert!(completed.is_blocked(g.arc_by_label("D_a").unwrap()));
        assert!(completed.is_blocked(g.arc_by_label("D_b").unwrap()));
        assert!(!completed.is_blocked(g.arc_by_label("D_c").unwrap()), "observed success kept");
    }

    #[test]
    fn unobserved_retrieval_assumed_blocked() {
        let g = g_b();
        let theta = Strategy::left_to_right(&g);
        let ctx = Context::with_blocked(
            &g,
            &[g.arc_by_label("D_a").unwrap(), g.arc_by_label("D_b").unwrap()],
        );
        let trace = execute(&g, &theta, &ctx);
        let completed = pessimistic_completion(&g, &trace);
        // D_d was never attempted (run stopped at D_c) — assumed blocked
        // even though the true context had it open.
        assert!(!trace.attempted(g.arc_by_label("D_d").unwrap()));
        assert!(completed.is_blocked(g.arc_by_label("D_d").unwrap()));
    }

    #[test]
    fn unobserved_reduction_assumed_open() {
        let g = g_b();
        let theta = Strategy::left_to_right(&g);
        // Success at D_a: nothing under R_gs observed.
        let ctx = Context::all_open(&g);
        let trace = execute(&g, &theta, &ctx);
        assert_eq!(trace.events.len(), 2);
        let completed = pessimistic_completion(&g, &trace);
        for label in ["R_gs", "R_sb", "R_st", "R_tc", "R_td"] {
            assert!(!completed.is_blocked(g.arc_by_label(label).unwrap()), "{label} open");
        }
        for label in ["D_b", "D_c", "D_d"] {
            assert!(completed.is_blocked(g.arc_by_label(label).unwrap()), "{label} blocked");
        }
    }

    #[test]
    fn replaying_observed_strategy_reproduces_cost() {
        let g = g_b();
        let theta = Strategy::left_to_right(&g);
        for blocked_set in [
            vec![],
            vec!["D_a"],
            vec!["D_a", "D_b"],
            vec!["D_a", "D_b", "D_c"],
            vec!["D_a", "D_b", "D_c", "D_d"],
            vec!["R_gs", "D_a"],
        ] {
            let arcs: Vec<_> = blocked_set.iter().map(|l| g.arc_by_label(l).unwrap()).collect();
            let ctx = Context::with_blocked(&g, &arcs);
            let trace = execute(&g, &theta, &ctx);
            let completed = pessimistic_completion(&g, &trace);
            let replay = execute(&g, &theta, &completed);
            assert_eq!(replay.cost, trace.cost, "blocked={blocked_set:?}");
            assert_eq!(replay.outcome.is_success(), trace.outcome.is_success());
        }
    }
}
