//! E12 — Section 5.2's database applications.
//!
//! Paper claims the PIB/PAO machinery applies verbatim to (a) negation
//! as failure (the `pauper` rule: one owned item settles the question),
//! (b) scan ordering over horizontally segmented distributed databases,
//! and (c) first-`k`-answers variants. We run all three end to end, with
//! learning in the loop for (b).

use crate::report::{fm, Report};
use qpl_core::{Pib, PibConfig};
use qpl_datalog::parser::parse_query;
use qpl_datalog::{Database, Fact};
use qpl_engine::firstk::execute_first_k;
use qpl_engine::naf::NafProcessor;
use qpl_engine::segmented::SegmentedDb;
use qpl_engine::QueryProcessor;
use qpl_graph::expected::{ContextDistribution, FiniteDistribution};
use qpl_graph::{Context, Strategy};
use qpl_workload::paper::pauper;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E12 and returns the report.
pub fn run(seed: u64) -> Report {
    let mut r = Report::new("E12: Section 5.2 — NAF, segmented scans, first-k answers");

    // (a) Negation as failure.
    let (mut table, cg, db) = pauper();
    let naf = NafProcessor::new(QueryProcessor::left_to_right(&cg));
    let midas = naf
        .run(&parse_query("owns(midas, Y)", &mut table).expect("parses"), &db)
        .expect("valid query");
    let diogenes = naf
        .run(&parse_query("owns(diogenes, Y)", &mut table).expect("parses"), &db)
        .expect("valid query");
    r.table(
        "pauper(x) ≡ ¬∃y owns(x,y): one possession settles it",
        &["individual", "pauper?", "search cost", "note"],
        vec![
            vec![
                "midas".into(),
                (midas.holds).to_string(),
                fm(midas.trace.cost, 0),
                "stopped at first possession (satisficing)".into(),
            ],
            vec![
                "diogenes".into(),
                (diogenes.holds).to_string(),
                fm(diogenes.trace.cost, 0),
                "had to exhaust all asset classes".into(),
            ],
        ],
    );
    let naf_ok = !midas.holds && diogenes.holds && midas.trace.cost < diogenes.trace.cost;

    // (b) Horizontally segmented scan ordering, with PIB learning the
    // order. Facts about people live mostly in the "west" file, but the
    // naive order scans "east" first.
    let mut table2 = qpl_datalog::SymbolTable::new();
    let age = table2.intern("age");
    let mut seg = SegmentedDb::new();
    let mut east = Database::new();
    east.insert(Fact::new(age, vec![table2.intern("erik"), table2.intern("a50")]))
        .expect("consistent");
    let mut west = Database::new();
    for (i, name) in ["russ", "manolis", "vinay", "igor", "alberto", "john"].iter().enumerate() {
        west.insert(Fact::new(age, vec![table2.intern(name), table2.intern(&format!("a{i}"))]))
            .expect("consistent");
    }
    seg.add_segment("east", east);
    seg.add_segment("west", west);
    seg.add_segment("north", Database::new());
    let g = seg.scan_graph("age(b,f)", |_| 1.0).expect("valid costs");
    // Query mix: 90% west people, 10% east.
    let mk_ctx = |name: &str, table2: &mut qpl_datalog::SymbolTable| {
        let q = parse_query(&format!("age({name}, X)"), table2).expect("parses");
        seg.classify(&g, &q)
    };
    let dist = FiniteDistribution::new(vec![
        (mk_ctx("russ", &mut table2), 0.5),
        (mk_ctx("manolis", &mut table2), 0.4),
        (mk_ctx("erik", &mut table2), 0.1),
    ])
    .expect("valid weights");
    let naive = Strategy::left_to_right(&g);
    let c_naive = dist.expected_cost(&g, &naive);
    let mut pib = Pib::new(&g, naive.clone(), PibConfig::new(0.05));
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..5_000 {
        // sample_index + context borrows the drawn class instead of
        // cloning it per observation (same rng consumption as sample).
        let idx = dist.sample_index(&mut rng);
        pib.observe(&g, dist.context(idx));
    }
    let c_learned = dist.expected_cost(&g, pib.strategy());
    r.table(
        "segmented-file scan order, learned by PIB (90% of queries hit `west`)",
        &["scan order", "expected probes"],
        vec![
            vec!["east → west → north (naive)".into(), fm(c_naive, 3)],
            vec![format!("learned: {}", pib.strategy().display(&g)), fm(c_learned, 3)],
        ],
    );
    let scan_ok = c_learned < c_naive;

    // (c) First-k answers: parent(x, Y) yields at most two bindings.
    let mut b = qpl_graph::GraphBuilder::new("parent(x,Y)");
    let root = b.root();
    for name in ["D_mother", "D_father", "D_guardian", "D_step"] {
        b.retrieval(root, name, 1.0);
    }
    let pg = b.finish().expect("flat graph");
    let s = Strategy::left_to_right(&pg);
    let ctx = Context::with_blocked(
        &pg,
        &[pg.arc_by_label("D_father").expect("label"), pg.arc_by_label("D_step").expect("label")],
    );
    let k1 = execute_first_k(&pg, &s, &ctx, 1);
    let k2 = execute_first_k(&pg, &s, &ctx, 2);
    r.table(
        "first-k answers on parent(x, Y) (mother & guardian known)",
        &["k", "answers found", "cost", "satisfied?"],
        vec![
            vec![
                "1".into(),
                k1.answers.len().to_string(),
                fm(k1.trace.cost, 0),
                k1.satisfied.to_string(),
            ],
            vec![
                "2".into(),
                k2.answers.len().to_string(),
                fm(k2.trace.cost, 0),
                k2.satisfied.to_string(),
            ],
        ],
    );
    let firstk_ok = k1.satisfied && k2.satisfied && k2.trace.cost > k1.trace.cost;

    r.set_verdict(if naf_ok && scan_ok && firstk_ok {
        "REPRODUCED (all three applications run on the same strategy machinery)"
    } else {
        "MISMATCH"
    });
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn e12_reproduces() {
        let r = super::run(1212);
        assert!(r.verdict.starts_with("REPRODUCED"), "{r}");
    }
}
