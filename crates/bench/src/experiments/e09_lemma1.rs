//! E9 — Lemma 1: sensitivity of `Υ_AOT` to probability perturbations.
//!
//! Paper claim:
//! `C_P[Θ_P̂] − C_P[Θ_P] ≤ 2·Σᵢ F¬[eᵢ]·ρ(eᵢ)·|pᵢ − p̂ᵢ|`.
//! We sample random trees, random truth vectors `P`, and random
//! perturbations `P̂`, and verify the measured regret never exceeds the
//! bound; we also report how tight the bound is in practice.

use crate::report::{fm, Report};
use qpl_core::upsilon_aot;
use qpl_graph::expected::ContextDistribution;
use qpl_graph::IndependentModel;
use qpl_workload::generator::{random_retrieval_model, random_tree_with_retrievals, TreeParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs E9 and returns the report.
pub fn run(seed: u64) -> Report {
    let mut r = Report::new("E9: Lemma 1 — sensitivity bound on Υ_AOT");
    r.note("500 cases: random trees (2–6 retrievals), random P, perturbations |p−p̂| ≤ spread");

    let mut rows = Vec::new();
    let mut violations = 0u32;
    for (si, spread) in [0.05f64, 0.15, 0.3].into_iter().enumerate() {
        let cases = 500;
        let mut max_regret: f64 = 0.0;
        let mut max_bound_used: f64 = 0.0; // regret / bound, worst case
        let mut mean_ratio = 0.0;
        let mut nontrivial = 0u32;
        for t in 0..cases {
            let mut rng = StdRng::seed_from_u64(seed + 100_000 * si as u64 + t);
            let g = random_tree_with_retrievals(&mut rng, &TreeParams::default(), 2, 6);
            let truth = random_retrieval_model(&mut rng, &g, (0.05, 0.95));
            // Perturb each retrieval by up to ±spread, clamped.
            let mut est = truth.clone();
            for a in g.retrievals() {
                let p = truth.prob(a);
                let q = (p + rng.gen_range(-spread..=spread)).clamp(0.0, 1.0);
                est.set_prob(a, q).expect("clamped to [0,1]");
            }
            let theta_p = upsilon_aot(&g, &truth).expect("tree");
            let theta_phat = upsilon_aot(&g, &est).expect("tree");
            let regret = truth.expected_cost(&g, &theta_phat) - truth.expected_cost(&g, &theta_p);
            let bound: f64 = g
                .retrievals()
                .map(|a| 2.0 * g.f_not(a) * truth.rho(&g, a) * (truth.prob(a) - est.prob(a)).abs())
                .sum();
            if regret > bound + 1e-9 {
                violations += 1;
            }
            max_regret = max_regret.max(regret);
            if bound > 1e-9 {
                let ratio = regret / bound;
                max_bound_used = max_bound_used.max(ratio);
                mean_ratio += ratio;
                nontrivial += 1;
            }
        }
        rows.push(vec![
            fm(spread, 2),
            cases.to_string(),
            fm(max_regret, 4),
            fm(max_bound_used, 4),
            fm(mean_ratio / nontrivial.max(1) as f64, 4),
        ]);
    }
    r.table(
        "regret vs the Lemma-1 bound",
        &["|p−p̂| spread", "cases", "max regret", "max regret/bound", "mean regret/bound"],
        rows,
    );
    r.note(format!("bound violations: {violations} (must be 0)"));

    // A concrete worked case on G_A for the record.
    let u = qpl_workload::university();
    let g = u.graph().clone();
    let truth = IndependentModel::from_retrieval_probs(&g, &[0.2, 0.6]).expect("valid");
    let est = IndependentModel::from_retrieval_probs(&g, &[0.6, 0.5]).expect("valid");
    let t_p = upsilon_aot(&g, &truth).expect("tree");
    let t_e = upsilon_aot(&g, &est).expect("tree");
    let regret = truth.expected_cost(&g, &t_e) - truth.expected_cost(&g, &t_p);
    let bound: f64 = g
        .retrievals()
        .map(|a| 2.0 * g.f_not(a) * truth.rho(&g, a) * (truth.prob(a) - est.prob(a)).abs())
        .sum();
    r.table(
        "the paper's own vectors: P = ⟨0.2, 0.6⟩, P̂ = ⟨0.6, 0.5⟩ on G_A",
        &["quantity", "value"],
        vec![
            vec!["C_P[Θ_P̂] − C_P[Θ_P]".into(), fm(regret, 4)],
            vec!["Lemma-1 bound".into(), fm(bound, 4)],
        ],
    );

    r.set_verdict(if violations == 0 && regret <= bound {
        "REPRODUCED (bound never violated; typically loose by design)"
    } else {
        "MISMATCH (bound violated)"
    });
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn e9_reproduces() {
        let r = super::run(909);
        assert!(r.verdict.starts_with("REPRODUCED"), "{r}");
    }
}
