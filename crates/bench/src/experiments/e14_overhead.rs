//! E14 — Section 5.1's "unobtrusive" claim.
//!
//! Paper claims: "the time and space requirements for the
//! data-collection part of these algorithms is extremely minor: only
//! maintaining one or two counters per retrieval", and PIB's overall
//! cost is "simply evaluating Equation 6 as often as requested".
//!
//! We measure wall-clock per-query cost of a bare query processor vs one
//! monitored by PIB (testing every query, and batched every 100), plus
//! the counter footprint. The Criterion bench `pib_update` gives the
//! statistically rigorous version; this experiment prints the summary
//! table.

use crate::report::{fm, Report};
use qpl_core::{Pib, PibConfig};
use qpl_graph::expected::ContextDistribution;
use qpl_graph::Strategy;
use qpl_workload::generator::{random_retrieval_model, random_tree_with_retrievals, TreeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Runs E14 and returns the report.
pub fn run(seed: u64) -> Report {
    let mut r = Report::new("E14: monitoring overhead (the 'unobtrusive' claim)");

    let mut gen_rng = StdRng::seed_from_u64(seed);
    let g = random_tree_with_retrievals(&mut gen_rng, &TreeParams::default(), 6, 12);
    let truth = random_retrieval_model(&mut gen_rng, &g, (0.05, 0.6));
    let n = 60_000u64;

    // Pre-draw contexts so the oracle cost is excluded.
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let contexts: Vec<_> = (0..n).map(|_| truth.sample(&mut rng)).collect();
    let theta = Strategy::left_to_right(&g);

    let bare_start = Instant::now();
    let mut sink = 0.0;
    for ctx in &contexts {
        sink += qpl_graph::context::execute(&g, &theta, ctx).cost;
    }
    let bare = bare_start.elapsed();

    let mut pib_every = Pib::new(&g, theta.clone(), PibConfig::new(0.05));
    let every_start = Instant::now();
    for ctx in &contexts {
        sink += pib_every.observe(&g, ctx).cost;
    }
    let every = every_start.elapsed();

    let mut pib_batch = Pib::new(&g, theta.clone(), PibConfig::new(0.05).with_test_every(100));
    let batch_start = Instant::now();
    for ctx in &contexts {
        sink += pib_batch.observe(&g, ctx).cost;
    }
    let batch = batch_start.elapsed();
    std::hint::black_box(sink);

    let per = |d: std::time::Duration| d.as_secs_f64() * 1e9 / n as f64;
    r.note(format!(
        "graph: {} arcs, {} retrievals, {} candidate transformations",
        g.arc_count(),
        g.retrievals().count(),
        qpl_core::TransformationSet::all_sibling_swaps(&g).len()
    ));
    r.table(
        format!("per-query wall clock over {n} contexts").as_str(),
        &["configuration", "ns/query", "overhead vs bare"],
        vec![
            vec!["bare execution".into(), fm(per(bare), 0), "—".into()],
            vec![
                "PIB, Equation-6 test every query".into(),
                fm(per(every), 0),
                format!("{}×", fm(per(every) / per(bare), 2)),
            ],
            vec![
                "PIB, test every 100 queries".into(),
                fm(per(batch), 0),
                format!("{}×", fm(per(batch) / per(bare), 2)),
            ],
        ],
    );
    r.note("space: one PairedDifference (sum, count, Λ) per candidate — 24 bytes each");

    // The claim is qualitative ("extremely minor"); we assert the
    // monitored run stays within two orders of magnitude and that the
    // statistics stayed tiny.
    let ok = per(every) < per(bare) * 200.0;
    r.set_verdict(if ok {
        "REPRODUCED (counter updates; cost dominated by Δ̃ replay, reducible by batching)"
    } else {
        "MISMATCH (overhead unexpectedly large)"
    });
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn e14_reproduces() {
        let r = super::run(1414);
        assert!(r.verdict.starts_with("REPRODUCED"), "{r}");
    }
}
