//! The paper's own examples, as executable workloads.
//!
//! * [`university`] — Figure 1: the `instructor/prof/grad` knowledge
//!   base `DB₁`, the inference graph `G_A`, the strategies `Θ₁`
//!   (prof-first) and `Θ₂` (grad-first), the Section-2 query mix
//!   (60% russ / 15% manolis / 25% fred), the adversarial "minors"
//!   distribution, and the `DB₂` statistics (2000 prof / 500 grad).
//! * [`figure2`] — the `G_B` graph of Figure 2 with `Θ_ABCD`.
//! * [`reachability`] — the Section-4.1 knowledge base whose
//!   `grad(fred) :- admitted(fred, X)` rule makes an arc unreachable for
//!   non-fred queries (Theorem 3's motivating case).
//! * [`pauper`] — the Section-5.2 negation-as-failure scenario.

use qpl_datalog::parser::{parse_program, parse_query, parse_query_form};
use qpl_datalog::{Atom, Database, Fact, SymbolTable};
use qpl_graph::compile::{compile, CompileOptions, CompiledGraph};
use qpl_graph::expected::FiniteDistribution;
use qpl_graph::graph::{ArcId, GraphBuilder, InferenceGraph};
use qpl_graph::strategy::Strategy;
use qpl_graph::Context;

/// The Figure-1 workload bundle.
#[derive(Debug, Clone)]
pub struct University {
    /// Symbol table shared by everything below.
    pub table: SymbolTable,
    /// Compiled inference graph (G_A) with engine bindings.
    pub compiled: CompiledGraph,
    /// `DB₁`: `prof(russ)`, `grad(manolis)`.
    pub db1: Database,
    /// `Θ₁ = ⟨R_p D_p R_g D_g⟩` (prof-first).
    pub prof_first: Strategy,
    /// `Θ₂ = ⟨R_g D_g R_p D_p⟩` (grad-first).
    pub grad_first: Strategy,
}

/// The Figure-1 rule base source.
pub const UNIVERSITY_KB: &str = "instructor(X) :- prof(X).\n\
                                 instructor(X) :- grad(X).\n\
                                 prof(russ). grad(manolis).";

/// Builds the Figure-1 workload.
pub fn university() -> University {
    let mut table = SymbolTable::new();
    let program = parse_program(UNIVERSITY_KB, &mut table).expect("paper KB parses");
    let form = parse_query_form("instructor(b)", &mut table).expect("paper form parses");
    let compiled = compile(&program.rules, &form, &table, &CompileOptions::default())
        .expect("paper KB compiles");
    let g = &compiled.graph;
    // The compiler adds rules in source order: child 0 of the root is
    // the prof reduction, child 1 the grad reduction.
    let prof_first = Strategy::left_to_right(g);
    let mut orders: Vec<Vec<ArcId>> = g.node_ids().map(|n| g.children(n).to_vec()).collect();
    orders[g.root().index()].reverse();
    let grad_first = Strategy::dfs_from_orders(g, &orders).expect("reversed order is valid");
    University { table, compiled, db1: program.facts, prof_first, grad_first }
}

impl University {
    /// The inference graph `G_A`.
    pub fn graph(&self) -> &InferenceGraph {
        &self.compiled.graph
    }

    /// The `D_p` (prof) retrieval arc.
    pub fn d_p(&self) -> ArcId {
        self.retrieval_containing("prof")
    }

    /// The `D_g` (grad) retrieval arc.
    pub fn d_g(&self) -> ArcId {
        self.retrieval_containing("grad")
    }

    fn retrieval_containing(&self, what: &str) -> ArcId {
        let g = self.graph();
        g.retrievals()
            .find(|&a| g.arc(a).label.contains(what))
            .expect("paper graph has both retrievals")
    }

    /// The Section-2 query atoms with their probabilities:
    /// 60% `instructor(russ)`, 15% `instructor(manolis)`,
    /// 25% `instructor(fred)`.
    pub fn section2_queries(&mut self) -> Vec<(Atom, f64)> {
        let t = &mut self.table;
        vec![
            (parse_query("instructor(russ)", t).expect("query parses"), 0.60),
            (parse_query("instructor(manolis)", t).expect("query parses"), 0.15),
            (parse_query("instructor(fred)", t).expect("query parses"), 0.25),
        ]
    }

    /// The Section-2 mix as an exact context distribution over `G_A`
    /// (russ → `D_p` open; manolis → `D_g` open; fred → neither).
    pub fn section2_distribution(&self) -> FiniteDistribution {
        let g = self.graph();
        let (dp, dg) = (self.d_p(), self.d_g());
        FiniteDistribution::new(vec![
            (Context::with_blocked(g, &[dg]), 0.60),
            (Context::with_blocked(g, &[dp]), 0.15),
            (Context::with_blocked(g, &[dp, dg]), 0.25),
        ])
        .expect("weights are valid")
    }

    /// The adversarial "minors" distribution of Section 2: the queried
    /// individuals are never professors; `grad` holds with the given
    /// probability (the paper just says Θ₂ is "clearly superior").
    pub fn minors_distribution(&self, grad_rate: f64) -> FiniteDistribution {
        let g = self.graph();
        let (dp, dg) = (self.d_p(), self.d_g());
        FiniteDistribution::new(vec![
            (Context::with_blocked(g, &[dp]), grad_rate),
            (Context::with_blocked(g, &[dp, dg]), 1.0 - grad_rate),
        ])
        .expect("weights are valid")
    }

    /// `DB₂`: 2000 `prof` facts and 500 `grad` facts (the fact-count
    /// statistics behind the Smith-heuristic critique).
    pub fn db2(&mut self) -> Database {
        let mut db = Database::new();
        let prof = self.table.lookup("prof").expect("prof interned");
        let grad = self.table.lookup("grad").expect("grad interned");
        for i in 0..2000 {
            let c = self.table.intern(&format!("prof_{i}"));
            db.insert(Fact::new(prof, vec![c])).expect("consistent arity");
        }
        for i in 0..500 {
            let c = self.table.intern(&format!("grad_{i}"));
            db.insert(Fact::new(grad, vec![c])).expect("consistent arity");
        }
        db
    }
}

/// Figure 2's `G_B` (hand-built, labels exactly as in the paper) and the
/// depth-first left-to-right `Θ_ABCD` of Equation 4.
pub fn figure2() -> (InferenceGraph, Strategy) {
    let mut b = GraphBuilder::new("G(κ)");
    let root = b.root();
    let (_, a) = b.reduction(root, "R_ga", 1.0, "A(κ)");
    b.retrieval(a, "D_a", 1.0);
    let (_, s) = b.reduction(root, "R_gs", 1.0, "S(κ)");
    let (_, bb) = b.reduction(s, "R_sb", 1.0, "B(κ)");
    b.retrieval(bb, "D_b", 1.0);
    let (_, t) = b.reduction(s, "R_st", 1.0, "T(κ)");
    let (_, c) = b.reduction(t, "R_tc", 1.0, "C(κ)");
    b.retrieval(c, "D_c", 1.0);
    let (_, d) = b.reduction(t, "R_td", 1.0, "D(κ)");
    b.retrieval(d, "D_d", 1.0);
    let g = b.finish().expect("paper graph is valid");
    let theta = Strategy::left_to_right(&g);
    (g, theta)
}

/// The Section-4.1 knowledge base with the guarded rule
/// `grad(fred) :- admitted(fred, X)` — its reduction arc is blocked for
/// every query but `instructor(fred)`, so the `admitted` retrieval is
/// hard to sample (Theorem 3's motivation).
pub const REACHABILITY_KB: &str = "instructor(X) :- prof(X).\n\
                                   instructor(X) :- grad(X).\n\
                                   grad(X) :- enrolled(X).\n\
                                   grad(fred) :- admitted(fred, Y).\n\
                                   prof(russ). enrolled(manolis). admitted(fred, toronto).";

/// Compiles the reachability workload: `(table, compiled, db)`.
pub fn reachability() -> (SymbolTable, CompiledGraph, Database) {
    let mut table = SymbolTable::new();
    let program = parse_program(REACHABILITY_KB, &mut table).expect("KB parses");
    let form = parse_query_form("instructor(b)", &mut table).expect("form parses");
    let compiled =
        compile(&program.rules, &form, &table, &CompileOptions::default()).expect("KB compiles");
    (table, compiled, program.facts)
}

/// The Section-5.2 pauper knowledge base (ownership split over asset
/// classes; `pauper(x) ≡ ¬∃y. owns(x, y)`).
pub const PAUPER_KB: &str = "owns(X, Y) :- owns_home(X, Y).\n\
                             owns(X, Y) :- owns_car(X, Y).\n\
                             owns(X, Y) :- owns_stock(X, Y).\n\
                             owns(X, Y) :- owns_boat(X, Y).\n\
                             owns_car(midas, chariot).\n\
                             owns_stock(midas, goldco).\n\
                             owns_home(croesus, palace).\n\
                             owns_boat(onassis, yacht).";

/// Compiles the pauper workload: `(table, compiled, db)`.
pub fn pauper() -> (SymbolTable, CompiledGraph, Database) {
    let mut table = SymbolTable::new();
    let program = parse_program(PAUPER_KB, &mut table).expect("KB parses");
    let form = parse_query_form("owns(b,f)", &mut table).expect("form parses");
    let compiled =
        compile(&program.rules, &form, &table, &CompileOptions::default()).expect("KB compiles");
    (table, compiled, program.facts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpl_graph::expected::ContextDistribution;

    #[test]
    fn university_reproduces_section2_costs() {
        let u = university();
        let dist = u.section2_distribution();
        let c1 = dist.expected_cost(u.graph(), &u.prof_first);
        let c2 = dist.expected_cost(u.graph(), &u.grad_first);
        assert!((c1 - 2.8).abs() < 1e-12, "C[Θ₁ prof-first] = 2.8 (paper erratum: see DESIGN.md)");
        assert!((c2 - 3.7).abs() < 1e-12, "C[Θ₂ grad-first] = 3.7");
    }

    #[test]
    fn query_mix_matches_context_distribution() {
        let mut u = university();
        let queries = u.section2_queries();
        let oracle =
            qpl_engine::oracle::QueryMixOracle::new(&u.compiled, u.db1.clone(), queries).unwrap();
        let from_queries = oracle.to_distribution();
        let direct = u.section2_distribution();
        let c_a = from_queries.expected_cost(u.graph(), &u.prof_first);
        let c_b = direct.expected_cost(u.graph(), &u.prof_first);
        assert!((c_a - c_b).abs() < 1e-12);
    }

    #[test]
    fn minors_prefers_grad_first() {
        let u = university();
        let minors = u.minors_distribution(0.5);
        let c1 = minors.expected_cost(u.graph(), &u.prof_first);
        let c2 = minors.expected_cost(u.graph(), &u.grad_first);
        assert!(c2 < c1, "grad-first {c2} beats prof-first {c1} on minors");
    }

    #[test]
    fn db2_counts() {
        let mut u = university();
        let db2 = u.db2();
        let prof = u.table.lookup("prof").unwrap();
        let grad = u.table.lookup("grad").unwrap();
        assert_eq!(db2.fact_count(prof), 2000);
        assert_eq!(db2.fact_count(grad), 500);
    }

    #[test]
    fn figure2_shape() {
        let (g, theta) = figure2();
        assert_eq!(g.arc_count(), 10);
        assert_eq!(theta.paths(&g).len(), 4);
    }

    #[test]
    fn reachability_has_guarded_arc() {
        let (_, cg, _) = reachability();
        let guarded = cg.bindings.iter().any(|b| {
            matches!(b, qpl_graph::compile::ArcBinding::Reduction { guards, .. } if !guards.is_empty())
        });
        assert!(guarded);
    }

    #[test]
    fn pauper_compiles_flatly() {
        let (_, cg, _) = pauper();
        assert_eq!(cg.graph.retrievals().count(), 4);
    }
}
