//! Context distributions and exact expected cost `C[Θ] = E[c(Θ, I)]`.
//!
//! Two distribution families cover everything the paper needs:
//!
//! * [`FiniteDistribution`] — an explicit weighted set of contexts (the
//!   paper's Section-2 example is "60% instructor(russ), 15%
//!   instructor(manolis), 25% instructor(fred)", i.e. three context
//!   classes with weights 0.6/0.15/0.25). Expected cost is an exact
//!   weighted sum.
//! * [`IndependentModel`] — each arc is blocked independently with its
//!   own probability (the assumption under which `Υ_AOT` is defined,
//!   footnote 8). Expected cost is computed *exactly* on trees by a
//!   per-arc reachability recursion (no Monte-Carlo error), with an
//!   exhaustive enumerator as a cross-check.
//!
//! Both implement [`ContextDistribution`], the oracle interface PIB and
//! PAO sample from.

use crate::batch::ContextBatch;
use crate::context::{cost, Context};
use crate::error::GraphError;
use crate::graph::{ArcId, ArcKind, InferenceGraph, NodeId};
use crate::strategy::Strategy;
use rand::Rng;

/// A source of i.i.d. contexts with a computable expected cost — the
/// paper's "stationary distribution" of query-processing contexts.
pub trait ContextDistribution {
    /// Draws one context.
    fn sample(&self, rng: &mut dyn rand::RngCore) -> Context;

    /// Draws one context into a caller-owned buffer, so per-sample loops
    /// allocate nothing. Must consume exactly the same randomness as
    /// [`sample`](Self::sample) and leave `out` equal to its result (the
    /// determinism of the parallel harness depends on the two paths
    /// being interchangeable sample-for-sample); the default delegates,
    /// and implementations override it with an in-place fill.
    fn sample_into(&self, rng: &mut dyn rand::RngCore, out: &mut Context) {
        *out = self.sample(rng);
    }

    /// Fills one lane of `out` per RNG in `rngs` — the batched form of
    /// [`sample_into`](Self::sample_into) feeding the bit-parallel
    /// executor ([`crate::batch`]). Lane `l` must consume exactly the
    /// randomness scalar sample `l` would from `rngs[l]`, so batched and
    /// scalar learners see identical sample streams (the engine hands
    /// each lane the per-sample-index RNG of its determinism harness).
    /// The caller pre-sizes `out`; its lane count must equal
    /// `rngs.len()`.
    ///
    /// The concrete [`rand::rngs::StdRng`] (rather than `dyn RngCore`)
    /// keeps the trait dyn-compatible while matching what the harness
    /// actually builds.
    ///
    /// # Panics
    /// Panics if `rngs.len() != out.lanes()`.
    fn sample_batch_into(&self, rngs: &mut [rand::rngs::StdRng], out: &mut ContextBatch) {
        assert_eq!(rngs.len(), out.lanes(), "one RNG per batch lane");
        let mut scratch = Context::from_raw(out.arc_count());
        for (lane, rng) in rngs.iter_mut().enumerate() {
            self.sample_into(rng, &mut scratch);
            out.set_lane(lane, &scratch);
        }
    }

    /// Exact expected cost `C[Θ]` of a strategy under this distribution.
    fn expected_cost(&self, g: &InferenceGraph, s: &Strategy) -> f64;

    /// `ρ(e)`: the probability, maximized over strategies, of reaching
    /// experiment `e` (Definition 2). Since any strategy reaches `e` only
    /// when every arc of `Π(e)` is open, and the strategy that aims
    /// straight at `e` reaches it exactly then, this equals
    /// `Pr[Π(e) all open]`.
    fn rho(&self, g: &InferenceGraph, e: ArcId) -> f64;
}

/// An explicit weighted set of context classes.
#[derive(Debug, Clone)]
pub struct FiniteDistribution {
    items: Vec<(Context, f64)>,
    cumulative: Vec<f64>,
}

impl FiniteDistribution {
    /// Builds a distribution from `(context, weight)` pairs; weights are
    /// normalized.
    ///
    /// # Errors
    /// [`GraphError::BadProbability`] if any weight is negative, NaN, or
    /// infinite, or if the total is zero (including the empty set) — a
    /// broken cumulative table would otherwise silently mis-sample.
    pub fn new(items: Vec<(Context, f64)>) -> Result<Self, GraphError> {
        // Per-item checks run *before* the total: a NaN or ±inf weight
        // must be reported as itself, not as whatever it poisons the sum
        // into, and two infinities can even sum to a NaN total.
        if let Some(&(_, w)) = items.iter().find(|(_, w)| *w < 0.0 || !w.is_finite()) {
            return Err(GraphError::BadProbability(w));
        }
        let total: f64 = items.iter().map(|(_, w)| *w).sum();
        // `!is_finite` first: it is what catches a NaN total.
        if !total.is_finite() || total <= 0.0 {
            return Err(GraphError::BadProbability(total));
        }
        let items: Vec<(Context, f64)> = items.into_iter().map(|(c, w)| (c, w / total)).collect();
        let mut cumulative = Vec::with_capacity(items.len());
        let mut acc = 0.0;
        for (_, w) in &items {
            acc += w;
            cumulative.push(acc);
        }
        Ok(Self { items, cumulative })
    }

    /// The normalized `(context, weight)` pairs.
    pub fn items(&self) -> &[(Context, f64)] {
        &self.items
    }

    /// Draws the *index* of a context class instead of cloning the class
    /// itself — the hot-loop form of [`ContextDistribution::sample`].
    /// Pair with [`FiniteDistribution::context`] to borrow the drawn class.
    pub fn sample_index(&self, rng: &mut dyn rand::RngCore) -> usize {
        let u: f64 = rng.gen();
        self.cumulative.partition_point(|&c| c < u).min(self.items.len() - 1)
    }

    /// Borrows the context class at `idx` (as returned by
    /// [`FiniteDistribution::sample_index`]).
    pub fn context(&self, idx: usize) -> &Context {
        &self.items[idx].0
    }

    /// Normalized weight of the context class at `idx`.
    pub fn weight(&self, idx: usize) -> f64 {
        self.items[idx].1
    }
}

impl ContextDistribution for FiniteDistribution {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> Context {
        // Intentional clone: `sample` promises an owned context; hot
        // loops use `sample_into`/`sample_batch_into` instead.
        self.items[self.sample_index(rng)].0.clone()
    }

    fn sample_into(&self, rng: &mut dyn rand::RngCore, out: &mut Context) {
        out.copy_from(&self.items[self.sample_index(rng)].0);
    }

    fn sample_batch_into(&self, rngs: &mut [rand::rngs::StdRng], out: &mut ContextBatch) {
        assert_eq!(rngs.len(), out.lanes(), "one RNG per batch lane");
        for (lane, rng) in rngs.iter_mut().enumerate() {
            // Borrow the drawn class directly into the lane — no scratch
            // context, no clone.
            out.set_lane(lane, &self.items[self.sample_index(rng)].0);
        }
    }

    fn expected_cost(&self, g: &InferenceGraph, s: &Strategy) -> f64 {
        self.items.iter().map(|(ctx, w)| w * cost(g, s, ctx)).sum()
    }

    fn rho(&self, g: &InferenceGraph, e: ArcId) -> f64 {
        let path = g.root_path(e);
        self.items
            .iter()
            .filter(|(ctx, _)| path.iter().all(|&a| !ctx.is_blocked(a)))
            .map(|(_, w)| *w)
            .sum()
    }
}

/// Independent per-arc blocking: arc `a` is open (traversable) with
/// probability `probs[a]`, independently of all other arcs.
#[derive(Debug, Clone, PartialEq)]
pub struct IndependentModel {
    probs: Vec<f64>,
}

impl IndependentModel {
    /// Every arc open with probability `p` (reductions included).
    ///
    /// # Errors
    /// [`GraphError::BadProbability`] unless `p ∈ [0, 1]`.
    pub fn uniform(g: &InferenceGraph, p: f64) -> Result<Self, GraphError> {
        check_prob(p)?;
        Ok(Self { probs: vec![p; g.arc_count()] })
    }

    /// Reductions always open; retrieval `i` (in [`InferenceGraph::retrievals`]
    /// order) succeeds with probability `retrieval_probs[i]` — the
    /// paper's success-probability vector `p = ⟨p₁, …, pₙ⟩`.
    ///
    /// # Errors
    /// [`GraphError::BadProbability`] on out-of-range probabilities, or
    /// [`GraphError::InvalidStrategy`] if the count does not match the
    /// number of retrievals.
    pub fn from_retrieval_probs(
        g: &InferenceGraph,
        retrieval_probs: &[f64],
    ) -> Result<Self, GraphError> {
        let retrievals: Vec<ArcId> = g.retrievals().collect();
        if retrievals.len() != retrieval_probs.len() {
            return Err(GraphError::InvalidStrategy(format!(
                "{} retrieval probabilities for {} retrievals",
                retrieval_probs.len(),
                retrievals.len()
            )));
        }
        let mut probs = vec![1.0; g.arc_count()];
        for (&a, &p) in retrievals.iter().zip(retrieval_probs) {
            check_prob(p)?;
            probs[a.index()] = p;
        }
        Ok(Self { probs })
    }

    /// Builds from a per-arc function.
    ///
    /// # Errors
    /// [`GraphError::BadProbability`] on out-of-range values.
    pub fn from_fn(
        g: &InferenceGraph,
        mut f: impl FnMut(ArcId) -> f64,
    ) -> Result<Self, GraphError> {
        let probs: Vec<f64> = g.arc_ids().map(&mut f).collect();
        for &p in &probs {
            check_prob(p)?;
        }
        Ok(Self { probs })
    }

    /// Open probability of `a`.
    pub fn prob(&self, a: ArcId) -> f64 {
        self.probs[a.index()]
    }

    /// Updates the open probability of `a`.
    ///
    /// # Errors
    /// [`GraphError::BadProbability`] unless `p ∈ [0, 1]`.
    pub fn set_prob(&mut self, a: ArcId, p: f64) -> Result<(), GraphError> {
        check_prob(p)?;
        self.probs[a.index()] = p;
        Ok(())
    }

    /// The success probabilities of the retrievals, in
    /// [`InferenceGraph::retrievals`] order (the vector handed to `Υ`).
    pub fn retrieval_probs(&self, g: &InferenceGraph) -> Vec<f64> {
        g.retrievals().map(|a| self.prob(a)).collect()
    }

    /// Arcs with genuinely probabilistic status (`0 < p < 1`) — the
    /// paper's "probabilistic experiments" of Theorem 3.
    pub fn experiments(&self, g: &InferenceGraph) -> Vec<ArcId> {
        g.arc_ids().filter(|&a| self.prob(a) > 0.0 && self.prob(a) < 1.0).collect()
    }

    /// Exact expected cost by exhaustive enumeration over the blocked
    /// status of every probabilistic arc. Exponential; used as the
    /// cross-check oracle and for non-tree graphs.
    ///
    /// # Panics
    /// Panics if more than 24 arcs are probabilistic.
    pub fn expected_cost_exhaustive(&self, g: &InferenceGraph, s: &Strategy) -> f64 {
        let vars = self.experiments(g);
        assert!(vars.len() <= 24, "too many probabilistic arcs for exhaustive enumeration");
        let mut total = 0.0;
        for mask in 0u32..(1 << vars.len()) {
            let mut ctx = Context::from_fn(g, |a| self.prob(a) == 0.0);
            let mut w = 1.0;
            for (bit, &a) in vars.iter().enumerate() {
                let open = mask & (1 << bit) != 0;
                ctx.set_blocked(a, !open);
                w *= if open { self.prob(a) } else { 1.0 - self.prob(a) };
            }
            if w > 0.0 {
                total += w * cost(g, s, &ctx);
            }
        }
        total
    }
}

fn check_prob(p: f64) -> Result<(), GraphError> {
    if (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(GraphError::BadProbability(p))
    }
}

impl ContextDistribution for IndependentModel {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> Context {
        let blocked: Vec<ArcId> = self
            .probs
            .iter()
            .enumerate()
            .filter(|(_, &p)| rng.gen::<f64>() >= p)
            .map(|(i, _)| ArcId(i as u32))
            .collect();
        // Build directly (cannot use Context::with_blocked without &graph).
        let mut ctx = Context::from_raw(self.probs.len());
        for a in blocked {
            ctx.set_blocked(a, true);
        }
        ctx
    }

    fn sample_into(&self, rng: &mut dyn rand::RngCore, out: &mut Context) {
        if out.arc_count() != self.probs.len() {
            *out = self.sample(rng);
            return;
        }
        // One uniform draw per arc, in arc order — exactly the stream
        // `sample` consumes, so the two are interchangeable per sample.
        for (i, &p) in self.probs.iter().enumerate() {
            out.set_blocked(ArcId(i as u32), rng.gen::<f64>() >= p);
        }
    }

    fn sample_batch_into(&self, rngs: &mut [rand::rngs::StdRng], out: &mut ContextBatch) {
        assert_eq!(rngs.len(), out.lanes(), "one RNG per batch lane");
        assert_eq!(out.arc_count(), self.probs.len(), "batch sized for a different graph");
        // Lanes outer, arcs inner: lane `l` draws one uniform per arc in
        // arc order from its own RNG — the exact stream `sample_into`
        // consumes — so batched sampling is a pure layout change.
        for (lane, rng) in rngs.iter_mut().enumerate() {
            for (i, &p) in self.probs.iter().enumerate() {
                out.set_blocked(lane, ArcId(i as u32), rng.gen::<f64>() >= p);
            }
        }
    }

    /// Exact expected cost on a tree:
    /// `C[Θ] = Σ_k f(a_k) · Pr[a_k is attempted]`, where
    /// `Pr[attempted] = Pr[Π(a_k) all open] · Pr[no earlier retrieval
    /// succeeds | Π(a_k) open]`.
    ///
    /// The conditional no-success probability is served by a memoized
    /// per-node recursion ([`ExactCostMemo`]): per-node subtree products
    /// are cached and patched along one root path when a retrieval joins
    /// the "earlier" set, so each strategy arc costs O(depth · branching)
    /// instead of a full O(|G|) tree recursion. The arithmetic (factor
    /// expressions, multiplication order, early zero exits) mirrors the
    /// naive recursion exactly, so results are bit-for-bit identical —
    /// see `memoized_cost_bitwise_matches_reference`.
    ///
    /// # Panics
    /// Panics if the graph is not a tree (use
    /// [`IndependentModel::expected_cost_exhaustive`] for DAGs).
    fn expected_cost(&self, g: &InferenceGraph, s: &Strategy) -> f64 {
        assert!(g.is_tree(), "exact expected cost requires a tree; use the exhaustive method");
        ExactCostMemo::new(g, &self.probs).cost(s)
    }

    fn rho(&self, g: &InferenceGraph, e: ArcId) -> f64 {
        g.root_path(e).iter().map(|&b| self.prob(b)).product()
    }
}

/// `Pr[no retrieval marked `earlier` in the subtree under `node`
/// succeeds]`, with arcs in `forced` conditioned open. Reference
/// recursion: [`ExactCostMemo`] reproduces its arithmetic with caching.
#[cfg(test)]
fn no_success_below(
    g: &InferenceGraph,
    node: NodeId,
    forced: &[bool],
    earlier: &[bool],
    probs: &[f64],
) -> f64 {
    let mut acc = 1.0;
    for &c in g.children(node) {
        let p = if forced[c.index()] { 1.0 } else { probs[c.index()] };
        match g.arc(c).kind {
            ArcKind::Retrieval => {
                if earlier[c.index()] {
                    acc *= 1.0 - p;
                }
            }
            ArcKind::Reduction => {
                let sub = no_success_below(g, g.arc(c).to, forced, earlier, probs);
                acc *= (1.0 - p) + p * sub;
            }
        }
        if acc == 0.0 {
            return 0.0;
        }
    }
    acc
}

/// The naive O(|Θ|·|G|) evaluation the memoized path replaces; kept as
/// the bit-equality oracle for `ExactCostMemo`.
#[cfg(test)]
fn expected_cost_reference(g: &InferenceGraph, probs: &[f64], s: &Strategy) -> f64 {
    let mut earlier = vec![false; g.arc_count()];
    let mut forced = vec![false; g.arc_count()];
    let mut total = 0.0;
    for &a in s.arcs() {
        let path = g.root_path(a);
        let p_path: f64 = path.iter().map(|&b| probs[b.index()]).product();
        if p_path > 0.0 {
            for &b in &path {
                forced[b.index()] = true;
            }
            let q = no_success_below(g, g.root(), &forced, &earlier, probs);
            for &b in &path {
                forced[b.index()] = false;
            }
            total += g.arc(a).cost * p_path * q;
        }
        if g.arc(a).kind == ArcKind::Retrieval {
            earlier[a.index()] = true;
        }
    }
    total
}

/// Memoized engine behind [`IndependentModel::expected_cost`].
///
/// Invariants, maintained per processed strategy prefix:
/// * `u[v]` = `Pr[no earlier retrieval in subtree(v) succeeds]` with **no**
///   arcs forced — exactly `no_success_below(g, v, ∅, earlier, probs)`;
/// * `m[c]` (reduction arcs) = `(1−p(c)) + p(c)·u[to(c)]`, the factor `c`
///   contributes to its parent's product.
///
/// Per strategy arc, the conditional no-success probability with `Π(a)`
/// forced open is rebuilt bottom-up along the root path only, substituting
/// the forced child's factor with the running value; when a retrieval is
/// appended to the "earlier" set, `u`/`m` are patched along its root path.
/// Every product multiplies children in graph order with the same early
/// zero exit as the reference recursion, keeping results bit-identical.
struct ExactCostMemo<'g> {
    g: &'g InferenceGraph,
    probs: &'g [f64],
    earlier: Vec<bool>,
    m: Vec<f64>,
    u: Vec<f64>,
    path: Vec<ArcId>,
}

impl<'g> ExactCostMemo<'g> {
    fn new(g: &'g InferenceGraph, probs: &'g [f64]) -> Self {
        let mut memo = Self {
            g,
            probs,
            earlier: vec![false; g.arc_count()],
            m: vec![1.0; g.arc_count()],
            u: vec![1.0; g.node_count()],
            path: Vec::new(),
        };
        // Builder order is topological, so reverse node order visits
        // children before parents.
        for idx in (0..g.node_count()).rev() {
            memo.refresh_node(NodeId(idx as u32));
        }
        memo
    }

    /// Recomputes `m` for every child arc of `v`, then `u[v]`.
    fn refresh_node(&mut self, v: NodeId) {
        for &c in self.g.children(v) {
            if self.g.arc(c).kind == ArcKind::Reduction {
                let p = self.probs[c.index()];
                self.m[c.index()] = (1.0 - p) + p * self.u[self.g.arc(c).to.index()];
            }
        }
        self.u[v.index()] = self.node_product(v, None, 0.0);
    }

    /// Ordered product of the children factors of `v`, substituting
    /// `replacement` for the factor of `substitute` when given. Mirrors
    /// `no_success_below` exactly: retrievals contribute `1−p` only once
    /// "earlier", and a zero prefix short-circuits.
    fn node_product(&self, v: NodeId, substitute: Option<ArcId>, replacement: f64) -> f64 {
        let mut acc = 1.0;
        for &c in self.g.children(v) {
            if substitute == Some(c) {
                acc *= replacement;
            } else {
                match self.g.arc(c).kind {
                    ArcKind::Retrieval => {
                        if self.earlier[c.index()] {
                            acc *= 1.0 - self.probs[c.index()];
                        }
                    }
                    ArcKind::Reduction => {
                        acc *= self.m[c.index()];
                    }
                }
            }
            if acc == 0.0 {
                return 0.0;
            }
        }
        acc
    }

    /// `C[Θ]` for `s`, consuming the accumulated "earlier" state.
    fn cost(&mut self, s: &Strategy) -> f64 {
        let mut total = 0.0;
        for &a in s.arcs() {
            // Root path of `a`, multiplied root-downward (the reference
            // iteration order).
            self.path.clear();
            let mut node = self.g.arc(a).from;
            while let Some(p) = self.g.parent_arc(node) {
                self.path.push(p);
                node = self.g.arc(p).from;
            }
            self.path.reverse();
            let mut p_path = 1.0;
            for &b in &self.path {
                p_path *= self.probs[b.index()];
            }
            if p_path > 0.0 {
                // No-success probability with Π(a) forced open: splice the
                // running subtree value into each ancestor's product,
                // bottom-up. A forced reduction contributes
                // (1−1) + 1·sub = sub, so substituting `q` is exact.
                let mut q = self.u[self.g.arc(a).from.index()];
                for &b in self.path.iter().rev() {
                    q = self.node_product(self.g.arc(b).from, Some(b), q);
                }
                total += self.g.arc(a).cost * p_path * q;
            }
            if self.g.arc(a).kind == ArcKind::Retrieval {
                self.mark_earlier(a);
            }
        }
        total
    }

    /// Adds retrieval `a` to the "earlier" set and patches `u`/`m` along
    /// its root path (the only cached values the change can touch).
    fn mark_earlier(&mut self, a: ArcId) {
        self.earlier[a.index()] = true;
        let mut node = self.g.arc(a).from;
        loop {
            self.u[node.index()] = self.node_product(node, None, 0.0);
            match self.g.parent_arc(node) {
                Some(b) => {
                    let p = self.probs[b.index()];
                    self.m[b.index()] = (1.0 - p) + p * self.u[self.g.arc(b).to.index()];
                    node = self.g.arc(b).from;
                }
                None => break,
            }
        }
    }
}

impl Context {
    /// Internal: an all-open context over `n` arcs (used by samplers that
    /// hold no graph reference).
    pub(crate) fn from_raw(n: usize) -> Self {
        Self::from_parts(vec![false; n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn g_a() -> InferenceGraph {
        let mut b = GraphBuilder::new("instructor(κ)");
        let root = b.root();
        let (_, prof) = b.reduction(root, "R_p", 1.0, "prof(κ)");
        b.retrieval(prof, "D_p", 1.0);
        let (_, grad) = b.reduction(root, "R_g", 1.0, "grad(κ)");
        b.retrieval(grad, "D_g", 1.0);
        b.finish().unwrap()
    }

    fn g_b() -> InferenceGraph {
        let mut b = GraphBuilder::new("G(κ)");
        let root = b.root();
        let (_, a) = b.reduction(root, "R_ga", 1.0, "A(κ)");
        b.retrieval(a, "D_a", 1.0);
        let (_, s) = b.reduction(root, "R_gs", 1.0, "S(κ)");
        let (_, bb) = b.reduction(s, "R_sb", 1.0, "B(κ)");
        b.retrieval(bb, "D_b", 1.0);
        let (_, t) = b.reduction(s, "R_st", 1.0, "T(κ)");
        let (_, c) = b.reduction(t, "R_tc", 1.0, "C(κ)");
        b.retrieval(c, "D_c", 1.0);
        let (_, d) = b.reduction(t, "R_td", 1.0, "D(κ)");
        b.retrieval(d, "D_d", 1.0);
        b.finish().unwrap()
    }

    fn strat(g: &InferenceGraph, labels: &[&str]) -> Strategy {
        Strategy::from_arcs(g, labels.iter().map(|l| g.arc_by_label(l).unwrap()).collect()).unwrap()
    }

    /// The Section-2 query mix as a finite distribution over blocked-arc
    /// classes: 60% russ (prof succeeds), 15% manolis (grad succeeds),
    /// 25% fred (neither).
    fn section2(g: &InferenceGraph) -> FiniteDistribution {
        let dp = g.arc_by_label("D_p").unwrap();
        let dg = g.arc_by_label("D_g").unwrap();
        FiniteDistribution::new(vec![
            (Context::with_blocked(g, &[dg]), 0.60),
            (Context::with_blocked(g, &[dp]), 0.15),
            (Context::with_blocked(g, &[dp, dg]), 0.25),
        ])
        .unwrap()
    }

    #[test]
    fn section2_expected_costs() {
        // Corrected Section-2 arithmetic (see DESIGN.md erratum):
        // prof-first = 2 + (1-0.6)·2 = 2.8, grad-first = 2 + (1-0.15)·2 = 3.7.
        let g = g_a();
        let dist = section2(&g);
        let prof_first = strat(&g, &["R_p", "D_p", "R_g", "D_g"]);
        let grad_first = strat(&g, &["R_g", "D_g", "R_p", "D_p"]);
        assert!((dist.expected_cost(&g, &prof_first) - 2.8).abs() < 1e-12);
        assert!((dist.expected_cost(&g, &grad_first) - 3.7).abs() < 1e-12);
    }

    #[test]
    fn independent_model_matches_finite_on_g_a() {
        // With independent retrieval successes p_p=0.6, p_g=0.15, the
        // expected cost of prof-first is 2 + (1-0.6)·2 = 2.8 (since grad
        // path cost is paid exactly when prof fails).
        let g = g_a();
        let m = IndependentModel::from_retrieval_probs(&g, &[0.6, 0.15]).unwrap();
        let prof_first = strat(&g, &["R_p", "D_p", "R_g", "D_g"]);
        let grad_first = strat(&g, &["R_g", "D_g", "R_p", "D_p"]);
        assert!((m.expected_cost(&g, &prof_first) - 2.8).abs() < 1e-12);
        assert!((m.expected_cost(&g, &grad_first) - 3.7).abs() < 1e-12);
    }

    #[test]
    fn pao_example_probabilities() {
        // Section 4: "p = ⟨p_p, p_g⟩ = ⟨0.2, 0.6⟩ … the optimal strategy
        // for that graph (here, Θ₂)" — grad-first must be cheaper.
        let g = g_a();
        let m = IndependentModel::from_retrieval_probs(&g, &[0.2, 0.6]).unwrap();
        let prof_first = strat(&g, &["R_p", "D_p", "R_g", "D_g"]);
        let grad_first = strat(&g, &["R_g", "D_g", "R_p", "D_p"]);
        assert!(m.expected_cost(&g, &grad_first) < m.expected_cost(&g, &prof_first));
    }

    #[test]
    fn exact_matches_exhaustive_on_g_b() {
        let g = g_b();
        let m = IndependentModel::from_retrieval_probs(&g, &[0.3, 0.5, 0.2, 0.7]).unwrap();
        for s in crate::strategy::enumerate_dfs(&g, 100).unwrap() {
            let exact = m.expected_cost(&g, &s);
            let brute = m.expected_cost_exhaustive(&g, &s);
            assert!(
                (exact - brute).abs() < 1e-9,
                "strategy {}: exact {exact} vs exhaustive {brute}",
                s.display(&g)
            );
        }
    }

    #[test]
    fn exact_handles_blockable_reductions() {
        let g = g_b();
        // Make two reductions probabilistic too (Theorem 3 setting).
        let mut m = IndependentModel::uniform(&g, 1.0).unwrap();
        for (label, p) in
            [("D_a", 0.3), ("D_b", 0.5), ("D_c", 0.2), ("D_d", 0.7), ("R_gs", 0.8), ("R_tc", 0.6)]
        {
            m.set_prob(g.arc_by_label(label).unwrap(), p).unwrap();
        }
        for s in crate::strategy::enumerate_dfs(&g, 100).unwrap() {
            let exact = m.expected_cost(&g, &s);
            let brute = m.expected_cost_exhaustive(&g, &s);
            assert!(
                (exact - brute).abs() < 1e-9,
                "strategy {}: exact {exact} vs exhaustive {brute}",
                s.display(&g)
            );
        }
    }

    #[test]
    fn exact_handles_interleaved_strategies() {
        let g = g_b();
        let m = IndependentModel::from_retrieval_probs(&g, &[0.3, 0.5, 0.2, 0.7]).unwrap();
        let s = strat(
            &g,
            &["R_gs", "R_st", "R_tc", "D_c", "R_ga", "D_a", "R_td", "D_d", "R_sb", "D_b"],
        );
        let exact = m.expected_cost(&g, &s);
        let brute = m.expected_cost_exhaustive(&g, &s);
        assert!((exact - brute).abs() < 1e-9);
    }

    #[test]
    fn sampling_agrees_with_exact_cost() {
        let g = g_a();
        let m = IndependentModel::from_retrieval_probs(&g, &[0.6, 0.15]).unwrap();
        let s = strat(&g, &["R_p", "D_p", "R_g", "D_g"]);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let mc: f64 = (0..n).map(|_| cost(&g, &s, &m.sample(&mut rng))).sum::<f64>() / n as f64;
        assert!((mc - 2.8).abs() < 0.02, "Monte Carlo {mc} vs exact 2.8");
    }

    #[test]
    fn finite_sampling_respects_weights() {
        let g = g_a();
        let dist = section2(&g);
        let dp = g.arc_by_label("D_p").unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut dp_open = 0u32;
        for _ in 0..n {
            if !dist.context(dist.sample_index(&mut rng)).is_blocked(dp) {
                dp_open += 1;
            }
        }
        let freq = f64::from(dp_open) / n as f64;
        assert!((freq - 0.6).abs() < 0.01, "D_p open frequency {freq} ≈ 0.6");
    }

    #[test]
    fn rho_is_ancestor_product() {
        let g = g_b();
        let mut m = IndependentModel::uniform(&g, 1.0).unwrap();
        m.set_prob(g.arc_by_label("R_gs").unwrap(), 0.8).unwrap();
        m.set_prob(g.arc_by_label("R_st").unwrap(), 0.5).unwrap();
        let dc = g.arc_by_label("D_c").unwrap();
        // Π(D_c) = {R_gs, R_st, R_tc}; ρ = 0.8 · 0.5 · 1.0
        assert!((m.rho(&g, dc) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn rho_finite_distribution() {
        let g = g_a();
        let dist = section2(&g);
        let dp = g.arc_by_label("D_p").unwrap();
        // R_p never blocked in any class → ρ(D_p) = 1.
        assert!((dist.rho(&g, dp) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_probability_paths_cost_nothing_beyond_block() {
        let g = g_a();
        let mut m = IndependentModel::from_retrieval_probs(&g, &[0.5, 0.5]).unwrap();
        m.set_prob(g.arc_by_label("R_p").unwrap(), 0.0).unwrap();
        let s = strat(&g, &["R_p", "D_p", "R_g", "D_g"]);
        // R_p always blocked: pay 1, skip D_p, then R_g + D_g (2) always.
        // = 1 + 2 = 3.
        let c = m.expected_cost(&g, &s);
        assert!((c - 3.0).abs() < 1e-12, "got {c}");
    }

    #[test]
    fn bad_probability_rejected() {
        let g = g_a();
        assert!(matches!(IndependentModel::uniform(&g, 1.5), Err(GraphError::BadProbability(_))));
        assert!(matches!(
            IndependentModel::from_retrieval_probs(&g, &[0.5, -0.1]),
            Err(GraphError::BadProbability(_))
        ));
        assert!(matches!(
            IndependentModel::from_retrieval_probs(&g, &[0.5]),
            Err(GraphError::InvalidStrategy(_))
        ));
    }

    #[test]
    fn finite_distribution_normalizes() {
        let g = g_a();
        let dist = FiniteDistribution::new(vec![
            (Context::all_open(&g), 3.0),
            (Context::all_blocked(&g), 1.0),
        ])
        .unwrap();
        assert!((dist.items()[0].1 - 0.75).abs() < 1e-12);
        assert!(FiniteDistribution::new(vec![]).is_err());
        assert!(FiniteDistribution::new(vec![(Context::all_open(&g), -1.0)]).is_err());
    }

    #[test]
    fn finite_distribution_rejects_nan_weight() {
        let g = g_a();
        let err = FiniteDistribution::new(vec![
            (Context::all_open(&g), 1.0),
            (Context::all_blocked(&g), f64::NAN),
        ])
        .unwrap_err();
        // The offending weight itself is reported, not the poisoned sum.
        assert!(matches!(err, GraphError::BadProbability(w) if w.is_nan()));
    }

    #[test]
    fn finite_distribution_rejects_negative_weight_even_with_positive_total() {
        let g = g_a();
        let err = FiniteDistribution::new(vec![
            (Context::all_open(&g), 5.0),
            (Context::all_blocked(&g), -1.0),
        ])
        .unwrap_err();
        assert!(matches!(err, GraphError::BadProbability(w) if w == -1.0));
    }

    #[test]
    fn finite_distribution_rejects_zero_total() {
        let g = g_a();
        let err = FiniteDistribution::new(vec![
            (Context::all_open(&g), 0.0),
            (Context::all_blocked(&g), 0.0),
        ])
        .unwrap_err();
        assert!(matches!(err, GraphError::BadProbability(w) if w == 0.0));
    }

    #[test]
    fn finite_distribution_rejects_infinite_weight() {
        let g = g_a();
        let err =
            FiniteDistribution::new(vec![(Context::all_open(&g), f64::INFINITY)]).unwrap_err();
        assert!(matches!(err, GraphError::BadProbability(w) if w.is_infinite()));
        // Two opposite infinities would previously slip a NaN total
        // through as the reported value; now the first item is blamed.
        let err = FiniteDistribution::new(vec![
            (Context::all_open(&g), f64::INFINITY),
            (Context::all_blocked(&g), f64::NEG_INFINITY),
        ])
        .unwrap_err();
        assert!(matches!(err, GraphError::BadProbability(w) if w.is_infinite()));
    }

    #[test]
    fn sample_index_stays_in_bounds_on_extreme_draws() {
        // Degenerate-but-legal weights (one class carrying everything)
        // must still index within bounds for any uniform draw.
        let g = g_a();
        let dist = FiniteDistribution::new(vec![
            (Context::all_open(&g), 1.0),
            (Context::all_blocked(&g), 0.0),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert!(dist.sample_index(&mut rng) < dist.items().len());
        }
    }

    #[test]
    fn batched_sampling_matches_scalar_lane_for_lane() {
        use crate::batch::{ContextBatch, LANES};
        let g = g_b();
        let finite = section2_like(&g);
        let independent = IndependentModel::uniform(&g, 0.4).unwrap();
        let dists: [&dyn ContextDistribution; 2] = [&finite, &independent];
        for (d_idx, dist) in dists.iter().enumerate() {
            let mut rngs: Vec<StdRng> =
                (0..LANES as u64).map(|l| StdRng::seed_from_u64(900 + l)).collect();
            let mut batch = ContextBatch::new(g.arc_count(), LANES);
            dist.sample_batch_into(&mut rngs, &mut batch);
            let mut lane_ctx = Context::all_open(&g);
            let mut scalar_ctx = Context::all_open(&g);
            for lane in 0..LANES {
                // Same per-lane seed ⇒ same randomness stream ⇒ the
                // batched lane must equal the scalar draw exactly.
                let mut rng = StdRng::seed_from_u64(900 + lane as u64);
                dist.sample_into(&mut rng, &mut scalar_ctx);
                batch.extract_lane(lane, &mut lane_ctx);
                assert_eq!(lane_ctx, scalar_ctx, "dist {d_idx} lane {lane}");
            }
        }
    }

    fn section2_like(g: &InferenceGraph) -> FiniteDistribution {
        let da = g.arc_by_label("D_a").unwrap();
        let db = g.arc_by_label("D_b").unwrap();
        FiniteDistribution::new(vec![
            (Context::with_blocked(g, &[da]), 0.5),
            (Context::with_blocked(g, &[db]), 0.3),
            (Context::all_blocked(g), 0.2),
        ])
        .unwrap()
    }

    proptest::proptest! {
        /// The exact tree recursion equals exhaustive enumeration for
        /// random probability assignments on G_B.
        #[test]
        fn exact_equals_exhaustive(probs in proptest::collection::vec(0.0f64..=1.0, 10)) {
            let g = g_b();
            let m = IndependentModel::from_fn(&g, |a| probs[a.index()]).unwrap();
            let s = Strategy::left_to_right(&g);
            let exact = m.expected_cost(&g, &s);
            let brute = m.expected_cost_exhaustive(&g, &s);
            proptest::prop_assert!((exact - brute).abs() < 1e-9, "{} vs {}", exact, brute);
        }

        /// The memoized evaluator reproduces the naive recursion
        /// **bit-for-bit** (same factors, same multiplication order, same
        /// zero exits) across random models and every DFS strategy of G_B
        /// plus an interleaved one — the invariant that keeps E1–E17
        /// outputs unchanged by this optimization.
        #[test]
        fn memoized_cost_bitwise_matches_reference(
            probs in proptest::collection::vec(0.0f64..=1.0, 10),
            zero_mask in 0u32..1024,
        ) {
            let g = g_b();
            // Exercise the zero-product short-circuits too.
            let m = IndependentModel::from_fn(&g, |a| {
                if zero_mask & (1 << a.index()) != 0 { 0.0 } else { probs[a.index()] }
            }).unwrap();
            let mut strategies = crate::strategy::enumerate_dfs(&g, 100).unwrap();
            strategies.push(strat(
                &g,
                &["R_gs", "R_st", "R_tc", "D_c", "R_ga", "D_a", "R_td", "D_d", "R_sb", "D_b"],
            ));
            for s in &strategies {
                let fast = m.expected_cost(&g, s);
                let reference = expected_cost_reference(&g, &m.probs, s);
                proptest::prop_assert_eq!(
                    fast.to_bits(), reference.to_bits(),
                    "strategy {}: {} vs {}", s.display(&g), fast, reference
                );
            }
        }

        /// Same bitwise agreement on random deeper trees (LCG-built, up
        /// to depth 5) with the left-to-right strategy.
        #[test]
        fn memoized_cost_bitwise_matches_reference_on_random_trees(seed in 0u64..5_000) {
            let (g, probs) = lcg_tree(seed);
            let m = IndependentModel::from_fn(&g, |a| probs[a.index()]).unwrap();
            let s = Strategy::left_to_right(&g);
            let fast = m.expected_cost(&g, &s);
            let reference = expected_cost_reference(&g, &m.probs, &s);
            proptest::prop_assert_eq!(fast.to_bits(), reference.to_bits());
        }
    }

    /// Deterministic LCG-grown random tree with per-arc probabilities
    /// (deeper than G_B; no `rand` dependency so the shape is stable).
    fn lcg_tree(seed: u64) -> (InferenceGraph, Vec<f64>) {
        fn next(state: &mut u64) -> u64 {
            *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *state >> 33
        }
        fn grow(
            b: &mut GraphBuilder,
            node: NodeId,
            state: &mut u64,
            depth: usize,
            label: &mut u32,
        ) {
            let kids = if depth >= 5 { 0 } else { next(state) % 3 };
            if kids == 0 {
                b.retrieval(node, &format!("D{}", *label), (1 + next(state) % 4) as f64);
                *label += 1;
                return;
            }
            for _ in 0..kids {
                let (_, child) = b.reduction(
                    node,
                    &format!("R{}", *label),
                    (1 + next(state) % 4) as f64,
                    "goal",
                );
                *label += 1;
                grow(b, child, state, depth + 1, label);
            }
        }
        let mut state = seed.wrapping_mul(2).wrapping_add(1);
        let mut b = GraphBuilder::new("root");
        let root = b.root();
        let mut label = 0;
        for _ in 0..1 + next(&mut state) % 3 {
            let (_, child) =
                b.reduction(root, &format!("R{label}"), (1 + next(&mut state) % 4) as f64, "goal");
            label += 1;
            grow(&mut b, child, &mut state, 1, &mut label);
        }
        let g = b.finish().expect("LCG tree is valid");
        let probs: Vec<f64> =
            g.arc_ids().map(|_| (next(&mut state) % 1000) as f64 / 999.0).collect();
        (g, probs)
    }
}
