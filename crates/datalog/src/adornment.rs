//! Query forms `q^α` with bound/free adornments (Section 2).
//!
//! A query form is "an expression of the form `q^α` where `q` denotes an
//! n-ary relation and `α` is an n-tuple from `{b, f}ⁿ`": the `i`-th
//! element is `b` if the query's `i`-th argument is bound and `f` if it
//! is free. The inference-graph compiler builds one graph per query form;
//! the learned strategy is specific to that form.

use crate::symbol::{Symbol, SymbolTable};
use crate::term::{Atom, Term};
use std::fmt;

/// One argument position's binding status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Binding {
    /// Bound: the incoming query supplies a constant here.
    Bound,
    /// Free: the query asks for bindings of this argument.
    Free,
}

impl Binding {
    /// One-letter form used in the paper (`b`/`f`).
    pub fn letter(self) -> char {
        match self {
            Binding::Bound => 'b',
            Binding::Free => 'f',
        }
    }
}

/// An adornment string, e.g. `⟨b, f⟩` for `path(b, f)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Adornment(pub Vec<Binding>);

impl Adornment {
    /// All-bound adornment of the given arity (ground queries).
    pub fn all_bound(arity: usize) -> Self {
        Self(vec![Binding::Bound; arity])
    }

    /// Adornment matching an atom: constants are bound, variables free.
    pub fn of_atom(atom: &Atom) -> Self {
        Self(
            atom.args
                .iter()
                .map(|t| if t.is_const() { Binding::Bound } else { Binding::Free })
                .collect(),
        )
    }

    /// Arity.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Whether every position is bound.
    pub fn is_all_bound(&self) -> bool {
        self.0.iter().all(|b| *b == Binding::Bound)
    }
}

impl FromIterator<Binding> for Adornment {
    /// Collects per-position bindings into an adornment — how tabled
    /// evaluation derives the `α` of a canonical call pattern.
    fn from_iter<I: IntoIterator<Item = Binding>>(iter: I) -> Self {
        Self(iter.into_iter().collect())
    }
}

impl fmt::Display for Adornment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{}", b.letter())?;
        }
        Ok(())
    }
}

/// A query form `q^α`: the unit over which strategies are learned.
///
/// # Examples
/// ```
/// use qpl_datalog::{Binding, QueryForm, SymbolTable};
/// let mut t = SymbolTable::new();
/// let instr = t.intern("instructor");
/// let qf = QueryForm::new(instr, vec![Binding::Bound]);
/// assert_eq!(qf.display(&t).to_string(), "instructor(b)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryForm {
    /// Queried predicate.
    pub predicate: Symbol,
    /// Bound/free pattern.
    pub adornment: Adornment,
}

impl QueryForm {
    /// Constructs a query form.
    pub fn new(predicate: Symbol, pattern: Vec<Binding>) -> Self {
        Self { predicate, adornment: Adornment(pattern) }
    }

    /// Whether a concrete query atom matches this form (same predicate,
    /// same arity, constants exactly at the bound positions).
    pub fn matches(&self, query: &Atom) -> bool {
        query.predicate == self.predicate
            && query.arity() == self.adornment.arity()
            && query.args.iter().zip(&self.adornment.0).all(|(t, b)| match b {
                Binding::Bound => t.is_const(),
                Binding::Free => t.is_var(),
            })
    }

    /// The constants at the bound positions of `query`, in order.
    ///
    /// # Panics
    /// Panics if `query` does not match this form.
    pub fn bound_constants(&self, query: &Atom) -> Vec<Symbol> {
        assert!(self.matches(query), "query does not match form");
        query
            .args
            .iter()
            .zip(&self.adornment.0)
            .filter_map(|(t, b)| match b {
                Binding::Bound => Some(t.as_const().expect("bound position is const")),
                Binding::Free => None,
            })
            .collect()
    }

    /// Renders the form, e.g. `instructor(b)` or `path(b,f)`.
    pub fn display<'a>(&'a self, table: &'a SymbolTable) -> impl fmt::Display + 'a {
        DisplayForm { form: self, table }
    }
}

struct DisplayForm<'a> {
    form: &'a QueryForm,
    table: &'a SymbolTable,
}

impl fmt::Display for DisplayForm<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.table.name(self.form.predicate))?;
        for (i, b) in self.form.adornment.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", b.letter())?;
        }
        write!(f, ")")
    }
}

/// Instantiates a query form into a concrete atom using `constants` for
/// the bound positions and fresh variables `V0, V1, …` for the free ones.
///
/// # Panics
/// Panics if the number of constants differs from the number of bound
/// positions.
pub fn instantiate(form: &QueryForm, constants: &[Symbol]) -> Atom {
    let bound = form.adornment.0.iter().filter(|b| **b == Binding::Bound).count();
    assert_eq!(constants.len(), bound, "need exactly one constant per bound position");
    let mut ci = 0usize;
    let mut vi = 0u32;
    let args = form
        .adornment
        .0
        .iter()
        .map(|b| match b {
            Binding::Bound => {
                let c = constants[ci];
                ci += 1;
                Term::Const(c)
            }
            Binding::Free => {
                let v = Term::Var(crate::term::Var(vi));
                vi += 1;
                v
            }
        })
        .collect();
    Atom::new(form.predicate, args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Var;

    #[test]
    fn matches_checks_positions() {
        let mut t = SymbolTable::new();
        let p = t.intern("path");
        let a = t.intern("a");
        let qf = QueryForm::new(p, vec![Binding::Bound, Binding::Free]);
        assert!(qf.matches(&Atom::new(p, vec![Term::Const(a), Term::Var(Var(0))])));
        assert!(!qf.matches(&Atom::new(p, vec![Term::Var(Var(0)), Term::Const(a)])));
        assert!(!qf.matches(&Atom::new(p, vec![Term::Const(a)])));
    }

    #[test]
    fn bound_constants_extracts_in_order() {
        let mut t = SymbolTable::new();
        let p = t.intern("r");
        let (a, b) = (t.intern("a"), t.intern("b"));
        let qf = QueryForm::new(p, vec![Binding::Bound, Binding::Free, Binding::Bound]);
        let q = Atom::new(p, vec![Term::Const(a), Term::Var(Var(0)), Term::Const(b)]);
        assert_eq!(qf.bound_constants(&q), vec![a, b]);
    }

    #[test]
    fn instantiate_round_trips() {
        let mut t = SymbolTable::new();
        let p = t.intern("r");
        let (a, b) = (t.intern("a"), t.intern("b"));
        let qf = QueryForm::new(p, vec![Binding::Bound, Binding::Free, Binding::Bound]);
        let q = instantiate(&qf, &[a, b]);
        assert!(qf.matches(&q));
        assert_eq!(qf.bound_constants(&q), vec![a, b]);
    }

    #[test]
    fn display_matches_paper_notation() {
        let mut t = SymbolTable::new();
        let p = t.intern("path");
        let qf = QueryForm::new(p, vec![Binding::Bound, Binding::Free]);
        assert_eq!(qf.display(&t).to_string(), "path(b,f)");
        assert_eq!(qf.adornment.to_string(), "bf");
    }

    #[test]
    fn adornment_of_atom() {
        let mut t = SymbolTable::new();
        let p = t.intern("p");
        let a = t.intern("a");
        let atom = Atom::new(p, vec![Term::Const(a), Term::Var(Var(0))]);
        let ad = Adornment::of_atom(&atom);
        assert_eq!(ad.0, vec![Binding::Bound, Binding::Free]);
        assert!(!ad.is_all_bound());
        assert!(Adornment::all_bound(2).is_all_bound());
    }

    #[test]
    #[should_panic(expected = "constant per bound position")]
    fn instantiate_arity_checked() {
        let mut t = SymbolTable::new();
        let p = t.intern("p");
        let qf = QueryForm::new(p, vec![Binding::Bound]);
        instantiate(&qf, &[]);
    }
}
