//! End-to-end tests: real TCP server on an ephemeral port, real client
//! sockets, responses checked bit-for-bit against direct
//! `QueryProcessor` runs.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use qpl_engine::QueryProcessor;
use qpl_graph::context::RunScratch;
use qpl_serve::wire::JsonValue;
use qpl_serve::{ServeEngine, Server, ServerConfig};
use qpl_workload::generator::KbParams;

const SEED: u64 = 7;

fn layered_params() -> KbParams {
    KbParams::default()
}

/// The query texts the tests serve: every constant of the layered KB,
/// cycled. Some are provable, some are not.
fn query_texts(n: usize) -> Vec<String> {
    let params = layered_params();
    (0..n).map(|i| format!("q0(c{})", i % params.constants)).collect()
}

/// Ground truth straight from the engine, no server involved:
/// `(rendered_answer, cost_bits)` per query.
fn direct_expectations(texts: &[String]) -> Vec<(String, Option<String>, u64)> {
    let mut engine = ServeEngine::layered(SEED, &layered_params());
    let qp = QueryProcessor::left_to_right(&engine.compiled);
    let mut scratch = RunScratch::new(&engine.compiled.graph);
    texts
        .iter()
        .map(|t| {
            let atom =
                qpl_datalog::parser::parse_query(t, &mut engine.table).expect("query parses");
            let answer = qp.run_into(&atom, &engine.db, &mut scratch).expect("query runs");
            let (kind, witness) = match answer {
                qpl_engine::QueryAnswer::Yes(w) => {
                    ("yes".to_string(), Some(w.display(&engine.table).to_string()))
                }
                qpl_engine::QueryAnswer::No => ("no".to_string(), None),
            };
            (kind, witness, scratch.cost().to_bits())
        })
        .collect()
}

fn start(cfg: ServerConfig) -> Server {
    Server::start(ServeEngine::layered(SEED, &layered_params()), cfg).expect("server starts")
}

fn connect(server: &Server) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let reader = BufReader::new(stream.try_clone().expect("clone stream"));
    (stream, reader)
}

fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> JsonValue {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read response");
    JsonValue::parse(&resp).expect("response is valid JSON")
}

fn result_fields(result: &JsonValue) -> (String, Option<String>, Option<u64>) {
    let kind = result
        .get("answer")
        .and_then(JsonValue::as_str)
        .or_else(|| result.get("error").and_then(JsonValue::as_str))
        .expect("result has answer or error")
        .to_string();
    let witness = result.get("witness").and_then(JsonValue::as_str).map(str::to_string);
    let cost = result.get("cost").and_then(JsonValue::as_f64).map(f64::to_bits);
    (kind, witness, cost)
}

#[test]
fn ping_stats_and_bad_request_roundtrip() {
    let server = start(ServerConfig::default());
    let (mut s, mut r) = connect(&server);

    let pong = roundtrip(&mut s, &mut r, r#"{"kind":"ping"}"#);
    assert_eq!(pong.get("kind").and_then(JsonValue::as_str), Some("pong"));
    assert_eq!(pong.get("v").and_then(JsonValue::as_f64), Some(1.0));

    let bad = roundtrip(&mut s, &mut r, r#"{"kind":"query"}"#);
    assert_eq!(bad.get("kind").and_then(JsonValue::as_str), Some("error"));
    assert_eq!(bad.get("error").and_then(JsonValue::as_str), Some("bad_request"));

    let not_json = roundtrip(&mut s, &mut r, "hello");
    assert_eq!(not_json.get("error").and_then(JsonValue::as_str), Some("bad_request"));

    // A malformed *query* is a per-lane error, not a request error.
    let bad_q = roundtrip(&mut s, &mut r, r#"{"kind":"query","q":"q0(("}"#);
    assert_eq!(bad_q.get("kind").and_then(JsonValue::as_str), Some("answer"));
    let (kind, _, _) = result_fields(bad_q.get("result").unwrap());
    assert_eq!(kind, "bad_query");

    let stats = roundtrip(&mut s, &mut r, r#"{"kind":"stats"}"#);
    assert_eq!(stats.get("kind").and_then(JsonValue::as_str), Some("stats"));
    assert!(stats.get("metrics").is_some(), "stats embeds the metrics snapshot");

    server.shutdown();
    server.join();
}

/// The tentpole acceptance test: 200 queries from concurrent client
/// threads, every response bit-identical (answer, witness, cost bits)
/// to a direct scalar `QueryProcessor` run of the same query — at any
/// shard count.
fn concurrent_bit_identity(shards: usize) {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 25;
    let texts = query_texts(THREADS * PER_THREAD);
    let expected = direct_expectations(&texts);

    let server = start(ServerConfig { shards, ..ServerConfig::default() });
    let addr = server.local_addr();

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let texts = texts.clone();
            thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut got = Vec::with_capacity(PER_THREAD);
                for i in 0..PER_THREAD {
                    let qi = t * PER_THREAD + i;
                    let req = format!(r#"{{"kind":"query","q":"{}","id":{qi}}}"#, texts[qi]);
                    let resp = roundtrip(&mut stream, &mut reader, &req);
                    assert_eq!(
                        resp.get("id").and_then(JsonValue::as_f64),
                        Some(qi as f64),
                        "response id echoes the request id"
                    );
                    got.push((qi, result_fields(resp.get("result").expect("answer has result"))));
                }
                got
            })
        })
        .collect();

    let mut answered = 0usize;
    for h in handles {
        for (qi, (kind, witness, cost)) in h.join().expect("client thread") {
            let (exp_kind, exp_witness, exp_cost) = &expected[qi];
            assert_eq!(&kind, exp_kind, "query {}: answer matches scalar run", texts[qi]);
            assert_eq!(&witness, exp_witness, "query {}: witness matches", texts[qi]);
            assert_eq!(
                cost,
                Some(*exp_cost),
                "query {}: cost is bit-identical to the scalar run",
                texts[qi]
            );
            answered += 1;
        }
    }
    assert_eq!(answered, THREADS * PER_THREAD);

    server.shutdown();
    server.join();
}

#[test]
fn concurrent_responses_bit_identical_to_direct_runs() {
    concurrent_bit_identity(1);
}

/// Sharded serving must answer bit-identically to the single-executor
/// path: every shard owns a full replica of the same engine, so the
/// shard a job lands on can never show through in the response.
#[test]
fn sharded_responses_bit_identical_to_direct_runs() {
    concurrent_bit_identity(4);
}

/// Under a queue bound and heavy concurrent batches, every request gets
/// exactly one response: an `answers` payload (correct) or an
/// `overloaded` error. Nothing is silently dropped — at any shard
/// count, with per-shard shedding and least-loaded fallback in play.
fn overload_accounting(shards: usize) {
    const THREADS: usize = 16;
    const BATCHES_PER_THREAD: usize = 8;
    const BATCH: usize = 32;
    let texts = query_texts(BATCH);
    let expected = direct_expectations(&texts);

    let server = start(ServerConfig {
        shards,
        queue_cap: 64, // one plane per shard: concurrent batches contend hard
        max_wait: Duration::from_micros(100),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let qs = texts.iter().map(|t| format!("\"{t}\"")).collect::<Vec<_>>().join(",");
    let req = format!(r#"{{"kind":"batch","qs":[{qs}]}}"#);

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let req = req.clone();
            let expected = expected.clone();
            thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut served = 0usize;
                let mut shed = 0usize;
                for _ in 0..BATCHES_PER_THREAD {
                    let resp = roundtrip(&mut stream, &mut reader, &req);
                    match resp.get("kind").and_then(JsonValue::as_str) {
                        Some("answers") => {
                            let results = resp
                                .get("results")
                                .and_then(JsonValue::as_array)
                                .expect("answers has results");
                            assert_eq!(results.len(), BATCH, "one result per lane");
                            for (r, (exp_kind, exp_witness, _)) in
                                results.iter().zip(expected.iter())
                            {
                                let (kind, witness, _) = result_fields(r);
                                assert_eq!(&kind, exp_kind);
                                assert_eq!(&witness, exp_witness);
                            }
                            served += 1;
                        }
                        Some("error") => {
                            assert_eq!(
                                resp.get("error").and_then(JsonValue::as_str),
                                Some("overloaded"),
                                "the only in-band refusal under load is `overloaded`"
                            );
                            shed += 1;
                        }
                        other => panic!("unexpected response kind {other:?}"),
                    }
                }
                (served, shed)
            })
        })
        .collect();

    let mut served = 0usize;
    let mut shed = 0usize;
    for h in handles {
        let (s, d) = h.join().expect("client thread");
        served += s;
        shed += d;
    }
    assert_eq!(
        served + shed,
        THREADS * BATCHES_PER_THREAD,
        "every request answered or refused — none dropped"
    );
    assert!(served > 0, "some batches are served even under contention");

    // The server's own books must agree: answered + overloaded == sent.
    let (mut s, mut r) = connect(&server);
    let stats = roundtrip(&mut s, &mut r, r#"{"kind":"stats"}"#);
    let stat = |k: &str| stats.get(k).and_then(JsonValue::as_f64).unwrap_or(0.0) as usize;
    assert_eq!(stat("shed"), shed, "wire-level shed matches refused requests");
    assert_eq!(
        stat("served"),
        served * BATCH,
        "served lanes match answered requests times batch width"
    );

    server.shutdown();
    server.join();
}

#[test]
fn overload_sheds_with_a_response_and_serves_the_rest() {
    overload_accounting(1);
}

#[test]
fn sharded_overload_accounting_holds_under_per_shard_shedding() {
    overload_accounting(3);
}

/// With online adaptation on, answers stay correct while the strategy
/// climbs (costs may legitimately change as the strategy improves, so
/// only the decision is pinned).
#[test]
fn adaptation_keeps_answers_correct() {
    const ROUNDS: usize = 20;
    let texts = query_texts(layered_params().constants);
    let expected = direct_expectations(&texts);

    let server = start(ServerConfig { adapt_delta: Some(0.2), ..ServerConfig::default() });
    let (mut s, mut r) = connect(&server);

    let qs = texts.iter().map(|t| format!("\"{t}\"")).collect::<Vec<_>>().join(",");
    let req = format!(r#"{{"kind":"batch","qs":[{qs}]}}"#);
    for _ in 0..ROUNDS {
        let resp = roundtrip(&mut s, &mut r, &req);
        let results =
            resp.get("results").and_then(JsonValue::as_array).expect("answers has results");
        for (res, (exp_kind, _, _)) in results.iter().zip(expected.iter()) {
            let (kind, _, _) = result_fields(res);
            assert_eq!(&kind, exp_kind, "adaptation never changes the decision");
        }
    }

    let stats = roundtrip(&mut s, &mut r, r#"{"kind":"stats"}"#);
    let served = stats.get("served").and_then(JsonValue::as_f64).unwrap();
    assert_eq!(served as usize, ROUNDS * texts.len());

    server.shutdown();
    server.join();
}

/// Drain must flush every shard: jobs are parked in shard queues (huge
/// flush deadline, planes far from full), then shutdown fires — every
/// admitted job must still get its real, bit-identical answer, at any
/// shard count. The acceptor stays up until the last shard drains, so
/// no client loses its socket mid-drain.
#[test]
fn drain_flushes_every_shard_without_dropping_admitted_jobs() {
    const CLIENTS: usize = 24;
    let texts = query_texts(CLIENTS);
    let expected = direct_expectations(&texts);

    for shards in [1usize, 2, 4] {
        let server = start(ServerConfig {
            shards,
            // Nothing cuts a plane on its own: 1-lane jobs never fill a
            // plane and the deadline is far beyond the test's lifetime.
            max_wait: Duration::from_secs(600),
            ..ServerConfig::default()
        });

        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let addr = server.local_addr();
                let text = texts[i].clone();
                thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    roundtrip(
                        &mut stream,
                        &mut reader,
                        &format!(r#"{{"kind":"query","q":"{text}","id":{i}}}"#),
                    )
                })
            })
            .collect();

        // Wait until all jobs are admitted and parked across the shard
        // queues (the stats control path bypasses admission).
        let (mut s, mut r) = connect(&server);
        let t0 = std::time::Instant::now();
        loop {
            let stats = roundtrip(&mut s, &mut r, r#"{"kind":"stats"}"#);
            let queued = stats.get("queue_lanes").and_then(JsonValue::as_f64).unwrap_or(0.0);
            if queued as usize == CLIENTS {
                break;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "shards={shards}: only {queued} of {CLIENTS} jobs admitted in time"
            );
            thread::sleep(Duration::from_millis(5));
        }

        server.shutdown();
        for (i, h) in handles.into_iter().enumerate() {
            let resp = h.join().expect("drained client thread");
            assert_eq!(
                resp.get("kind").and_then(JsonValue::as_str),
                Some("answer"),
                "shards={shards}: job {i} admitted before drain must be served, not dropped"
            );
            let (kind, witness, cost) = result_fields(resp.get("result").unwrap());
            let (exp_kind, exp_witness, exp_cost) = &expected[i];
            assert_eq!(&kind, exp_kind, "shards={shards}: drained answer is real");
            assert_eq!(&witness, exp_witness);
            assert_eq!(cost, Some(*exp_cost), "drained answers stay bit-identical");
        }
        server.join();
    }
}

/// The `stats` wire op carries the per-shard breakdown: one entry per
/// shard, every schema field present, per-shard totals summing to the
/// fleet totals.
#[test]
fn stats_schema_covers_per_shard_breakdown() {
    const SHARDS: usize = 3;
    const ROUNDS: usize = 6;
    let texts = query_texts(layered_params().constants);

    let server =
        start(ServerConfig { shards: SHARDS, adapt_delta: Some(0.2), ..ServerConfig::default() });
    let (mut s, mut r) = connect(&server);

    let qs = texts.iter().map(|t| format!("\"{t}\"")).collect::<Vec<_>>().join(",");
    let req = format!(r#"{{"kind":"batch","qs":[{qs}]}}"#);
    for _ in 0..ROUNDS {
        roundtrip(&mut s, &mut r, &req);
    }

    let stats = roundtrip(&mut s, &mut r, r#"{"kind":"stats"}"#);
    assert_eq!(stats.get("kind").and_then(JsonValue::as_str), Some("stats"));
    for key in [
        "queue_lanes",
        "served",
        "batches",
        "shed",
        "errors",
        "climbs",
        "adoptions",
        "steer_fallbacks",
        "fill_ratio",
        "p50_us",
        "p99_us",
    ] {
        assert!(stats.get(key).and_then(JsonValue::as_f64).is_some(), "missing total {key}");
    }
    let shards = stats.get("shards").and_then(JsonValue::as_array).expect("shards array");
    assert_eq!(shards.len(), SHARDS, "one breakdown entry per shard");
    let mut shard_served = 0.0;
    for (i, sh) in shards.iter().enumerate() {
        assert_eq!(sh.get("shard").and_then(JsonValue::as_f64), Some(i as f64));
        for key in [
            "queue_lanes",
            "served",
            "batches",
            "declined",
            "errors",
            "climbs",
            "adoptions",
            "fill_ratio",
            "p50_us",
            "p99_us",
        ] {
            assert!(sh.get(key).and_then(JsonValue::as_f64).is_some(), "shard {i} missing {key}");
        }
        shard_served += sh.get("served").and_then(JsonValue::as_f64).unwrap();
    }
    assert_eq!(
        stats.get("served").and_then(JsonValue::as_f64),
        Some(shard_served),
        "per-shard served sums to the fleet total"
    );
    assert_eq!(shard_served as usize, ROUNDS * texts.len(), "all lanes accounted for");
    let metrics = stats.get("metrics").expect("merged metrics snapshot");
    assert!(
        metrics.get("schema_version").and_then(JsonValue::as_f64).is_some(),
        "metrics is an embedded snapshot object"
    );

    server.shutdown();
    server.join();
}

/// `shutdown` answers `bye`, refuses subsequent work, drains, and
/// `join` returns.
#[test]
fn graceful_shutdown_drains_and_joins() {
    let server = start(ServerConfig::default());
    let (mut s, mut r) = connect(&server);

    let answer = roundtrip(&mut s, &mut r, r#"{"kind":"query","q":"q0(c0)"}"#);
    assert_eq!(answer.get("kind").and_then(JsonValue::as_str), Some("answer"));

    let bye = roundtrip(&mut s, &mut r, r#"{"kind":"shutdown"}"#);
    assert_eq!(bye.get("kind").and_then(JsonValue::as_str), Some("bye"));

    // After the drain flag flips, new submissions are refused in-band.
    // The acceptor may already be gone; a refusal line, a refused
    // connect, and a closed socket are all acceptable once draining.
    if let Ok(mut s2) = TcpStream::connect(server.local_addr()) {
        s2.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut r2 = BufReader::new(s2.try_clone().unwrap());
        let mut line = String::new();
        if s2.write_all(b"{\"kind\":\"query\",\"q\":\"q0(c0)\"}\n").is_ok() {
            if let Ok(n) = r2.read_line(&mut line) {
                if n > 0 {
                    let resp = JsonValue::parse(&line).expect("valid JSON");
                    assert_eq!(
                        resp.get("error").and_then(JsonValue::as_str),
                        Some("shutting_down")
                    );
                }
            }
        }
    }

    server.join();
}
