//! Load-tests the `qpl-serve` front door end to end and emits
//! `BENCH_serve.json`.
//!
//! ```text
//! bench_serve [--out BENCH_serve.json] [--threads N] [--rounds N]
//!             [--batch N] [--adapt DELTA] [--assert-qps N]
//! ```
//!
//! A real [`Server`] is started on an ephemeral port (layered-KB shape,
//! online PIB adaptation on by default); `--threads` client threads
//! each send `--rounds` batch requests of `--batch` queries over real
//! TCP sockets and check every served answer against ground truth
//! precomputed with a direct scalar [`QueryProcessor`] run. Accounting
//! is strict: every request must come back as either a served `answers`
//! payload or an explicit `overloaded` refusal — a dropped request is a
//! benchmark failure, not a footnote. Throughput counts *served*
//! queries only, over the whole client wall time (connection setup and
//! response verification included), so the reported number is what a
//! client actually observes, not a server-side flattering cut.
//! `--assert-qps` turns the report into a pass/fail gate for CI.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::num::NonZeroUsize;
use std::thread;
use std::time::{Duration, Instant};

use qpl_engine::QueryProcessor;
use qpl_graph::context::RunScratch;
use qpl_serve::wire::JsonValue;
use qpl_serve::{ServeEngine, Server, ServerConfig};
use qpl_workload::generator::KbParams;

const SEED: u64 = 7;

struct Args {
    out: String,
    threads: usize,
    rounds: usize,
    batch: usize,
    adapt: Option<f64>,
    assert_qps: Option<f64>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let get =
        |flag: &str| argv.iter().position(|a| a == flag).and_then(|p| argv.get(p + 1)).cloned();
    Args {
        out: get("--out").unwrap_or_else(|| "BENCH_serve.json".to_string()),
        threads: get("--threads").map_or(8, |v| v.parse().expect("--threads takes a count")),
        rounds: get("--rounds").map_or(200, |v| v.parse().expect("--rounds takes a count")),
        batch: get("--batch").map_or(32, |v| v.parse().expect("--batch takes a lane count")),
        adapt: match get("--adapt") {
            Some(v) if v == "off" => None,
            Some(v) => Some(v.parse().expect("--adapt takes a delta or `off`")),
            None => Some(0.1),
        },
        assert_qps: get("--assert-qps").map(|v| v.parse().expect("--assert-qps takes a rate")),
    }
}

/// Ground truth per query text, from a direct scalar run: "yes" / "no".
/// Decisions are strategy-invariant, so they stay valid while the
/// server adapts its strategy online.
fn expected_kinds(texts: &[String]) -> Vec<&'static str> {
    let mut engine = ServeEngine::layered(SEED, &KbParams::default());
    let qp = QueryProcessor::left_to_right(&engine.compiled);
    let mut scratch = RunScratch::new(&engine.compiled.graph);
    texts
        .iter()
        .map(|t| {
            let atom =
                qpl_datalog::parser::parse_query(t, &mut engine.table).expect("query parses");
            match qp.run_into(&atom, &engine.db, &mut scratch).expect("query runs") {
                qpl_engine::QueryAnswer::Yes(_) => "yes",
                qpl_engine::QueryAnswer::No => "no",
            }
        })
        .collect()
}

fn main() {
    let args = parse_args();
    let params = KbParams::default();
    let texts: Vec<String> =
        (0..args.batch).map(|i| format!("q0(c{})", i % params.constants)).collect();
    let expected = expected_kinds(&texts);

    let server = Server::start(
        ServeEngine::layered(SEED, &params),
        ServerConfig { queue_cap: 4096, adapt_delta: args.adapt, ..ServerConfig::default() },
    )
    .expect("server starts");
    let addr = server.local_addr();

    let req = format!(
        r#"{{"kind":"batch","qs":[{}]}}"#,
        texts.iter().map(|t| format!("\"{t}\"")).collect::<Vec<_>>().join(",")
    );

    let t0 = Instant::now();
    let handles: Vec<_> = (0..args.threads)
        .map(|_| {
            let req = req.clone();
            let expected = expected.clone();
            let rounds = args.rounds;
            thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).expect("nodelay");
                stream.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut line = String::new();
                let (mut served, mut shed) = (0u64, 0u64);
                for _ in 0..rounds {
                    stream.write_all(req.as_bytes()).expect("send");
                    stream.write_all(b"\n").expect("send");
                    line.clear();
                    reader.read_line(&mut line).expect("response");
                    let resp = JsonValue::parse(&line).expect("response is valid JSON");
                    match resp.get("kind").and_then(JsonValue::as_str) {
                        Some("answers") => {
                            let results = resp
                                .get("results")
                                .and_then(JsonValue::as_array)
                                .expect("answers carries results");
                            assert_eq!(results.len(), expected.len(), "one result per lane");
                            for (r, exp) in results.iter().zip(&expected) {
                                let got = r
                                    .get("answer")
                                    .and_then(JsonValue::as_str)
                                    .expect("served lanes carry an answer");
                                assert_eq!(got, *exp, "served answer matches the scalar run");
                            }
                            served += 1;
                        }
                        Some("error") => {
                            assert_eq!(
                                resp.get("error").and_then(JsonValue::as_str),
                                Some("overloaded"),
                                "the only refusal under load is `overloaded`"
                            );
                            shed += 1;
                        }
                        other => panic!("unexpected response kind {other:?}"),
                    }
                }
                (served, shed)
            })
        })
        .collect();

    let (mut served_reqs, mut shed_reqs) = (0u64, 0u64);
    for h in handles {
        let (s, d) = h.join().expect("client thread panicked");
        served_reqs += s;
        shed_reqs += d;
    }
    let wall = t0.elapsed().as_secs_f64();

    let sent = (args.threads * args.rounds) as u64;
    assert_eq!(served_reqs + shed_reqs, sent, "every request answered or refused — none dropped");
    let served_queries = served_reqs * args.batch as u64;
    let qps = served_queries as f64 / wall;

    // Pull the server's own accounting before shutting down.
    let mut ctl = TcpStream::connect(addr).expect("stats connect");
    ctl.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let mut ctl_reader = BufReader::new(ctl.try_clone().expect("clone"));
    ctl.write_all(b"{\"kind\":\"stats\"}\n").expect("stats send");
    let mut stats_line = String::new();
    ctl_reader.read_line(&mut stats_line).expect("stats response");
    let stats = JsonValue::parse(&stats_line).expect("stats is valid JSON");
    let stat = |k: &str| stats.get(k).and_then(JsonValue::as_f64).unwrap_or(0.0);
    let (fill, p50, p99, climbs) =
        (stat("fill_ratio"), stat("p50_us"), stat("p99_us"), stat("climbs"));
    ctl.write_all(b"{\"kind\":\"shutdown\"}\n").expect("shutdown send");
    server.join();

    let cores = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
    println!(
        "served {served_queries} queries in {wall:.2}s = {qps:.0} qps \
         (requests: {served_reqs} served, {shed_reqs} overloaded; fill {fill:.3}, \
         p50 {p50:.0}us, p99 {p99:.0}us, climbs {climbs:.0})"
    );

    let json = format!(
        "{{\n  \"bench\": \"qpl-serve end-to-end (TCP, line-delimited JSON)\",\n  \
         \"cores\": {cores},\n  \
         \"shape\": {{\"kb\": \"layered\", \"seed\": {SEED}, \"layers\": {}, \
         \"rules_per_layer\": {}, \"constants\": {}, \"facts_per_predicate\": {}}},\n  \
         \"load\": {{\"client_threads\": {}, \"rounds_per_thread\": {}, \
         \"batch_lanes\": {}, \"adapt_delta\": {}}},\n  \
         \"note\": \"qps counts served queries over total client wall time (connect + \
         verify included); every served lane checked against a direct scalar \
         QueryProcessor run; answered + overloaded asserted == sent\",\n  \
         \"results\": {{\"sent_requests\": {sent}, \"served_requests\": {served_reqs}, \
         \"overloaded_requests\": {shed_reqs}, \"served_queries\": {served_queries}, \
         \"wall_secs\": {wall:.3}, \"queries_per_sec\": {qps:.0}, \
         \"batch_fill_ratio\": {fill:.4}, \"service_p50_us\": {p50:.1}, \
         \"service_p99_us\": {p99:.1}, \"strategy_climbs\": {climbs:.0}}}\n}}\n",
        params.layers,
        params.rules_per_layer,
        params.constants,
        params.facts_per_predicate,
        args.threads,
        args.rounds,
        args.batch,
        args.adapt.map_or("null".to_string(), |d| d.to_string()),
    );
    std::fs::write(&args.out, &json).expect("write BENCH_serve.json");
    println!("wrote {} (cores={cores})", args.out);

    if let Some(min) = args.assert_qps {
        assert!(qps >= min, "sustained {qps:.0} qps is below the required {min:.0} qps floor");
        println!("qps floor {min:.0}: ok");
    }
}
