//! `qpl_serve` — stand-alone query server.
//!
//! ```text
//! cargo run --release --bin qpl_serve -- --addr 127.0.0.1:7878 --shape figure1
//! printf '{"kind":"query","q":"instructor(russ)"}\n{"kind":"stats"}\n' | nc 127.0.0.1 7878
//! ```

use std::process::ExitCode;
use std::time::Duration;

use qpl_serve::{ServeEngine, Server, ServerConfig};
use qpl_workload::generator::KbParams;

const USAGE: &str = "qpl_serve [--addr HOST:PORT] [--shape figure1|layered] [--seed N]\n\
                     \u{20}         [--shards N] [--adapt DELTA] [--queue LANES] [--max-wait-us N]\n\
                     \u{20}         [--data-dir PATH] [--fsync record|batch|off]\n\
 --addr HOST:PORT  bind address (default 127.0.0.1:7878; port 0 = ephemeral)\n\
 --shape SHAPE     knowledge base: figure1 (paper Fig. 1) or layered (default figure1)\n\
 --seed N          RNG seed for --shape layered (default 7)\n\
 --shards N        shared-nothing executor shards, each with its own engine\n\
 \u{20}                 replica (default: available cores)\n\
 --adapt DELTA     enable online PIB adaptation at confidence 1-DELTA (per shard)\n\
 --queue LANES     admission bound in queued query lanes, per shard (default 1024)\n\
 --max-wait-us N   batch flush deadline in microseconds (default 500)\n\
 --data-dir PATH   enable durability: recover from PATH at startup, journal\n\
 \u{20}                 every KB delta and adopted strategy, serve `checkpoint`\n\
 --fsync POLICY    WAL fsync policy with --data-dir: record, batch (default), off";

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut shape = "figure1".to_string();
    let mut seed = 7u64;
    let mut cfg = ServerConfig {
        shards: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        ..ServerConfig::default()
    };

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        let Some(value) = args.next() else {
            eprintln!("missing value for {flag}\n{USAGE}");
            return ExitCode::FAILURE;
        };
        let ok = match flag.as_str() {
            "--addr" => {
                addr = value;
                true
            }
            "--shape" => {
                shape = value;
                shape == "figure1" || shape == "layered"
            }
            "--seed" => value.parse().map(|v| seed = v).is_ok(),
            "--shards" => value.parse().map(|v: usize| cfg.shards = v.max(1)).is_ok(),
            "--adapt" => value.parse().map(|v| cfg.adapt_delta = Some(v)).is_ok(),
            "--queue" => value.parse().map(|v| cfg.queue_cap = v).is_ok(),
            "--max-wait-us" => {
                value.parse().map(|v| cfg.max_wait = Duration::from_micros(v)).is_ok()
            }
            "--data-dir" => {
                cfg.data_dir = Some(std::path::PathBuf::from(value));
                true
            }
            "--fsync" => value.parse().map(|v| cfg.fsync = v).is_ok(),
            _ => {
                eprintln!("unknown flag {flag}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        };
        if !ok {
            eprintln!("bad value for {flag}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    cfg.addr = addr;

    let engine = match shape.as_str() {
        "figure1" => ServeEngine::figure1(),
        _ => ServeEngine::layered(seed, &KbParams::default()),
    };
    let example = match shape.as_str() {
        "figure1" => "instructor(russ)",
        _ => "q0(c0)",
    };

    let shards = cfg.shards;
    let server = match Server::start(engine, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bound = server.local_addr();
    println!("qpl-serve listening on {bound} (shape: {shape}, shards: {shards})");
    println!(
        "try: printf '{{\"kind\":\"query\",\"q\":\"{example}\"}}\\n{{\"kind\":\"stats\"}}\\n' | nc {} {}",
        bound.ip(),
        bound.port()
    );
    // Serves until a client sends {"kind":"shutdown"}.
    server.join();
    println!("qpl-serve drained and stopped");
    ExitCode::SUCCESS
}
