//! Flat jump-threaded strategy programs.
//!
//! The satisficing interpreter ([`crate::context::execute_into`]) walks a
//! `Strategy` arc-by-arc, re-checking `reached[from]` for every arc —
//! including the whole tail of a path whose head was blocked. Because a
//! validated path-form strategy on a *tree* has a rigid control-flow
//! skeleton (Note 3: each path starts at a visited node, descends
//! arc-to-arc, and ends at its first retrieval), that control flow can be
//! compiled once per strategy into a flat instruction array with
//! precomputed jump targets:
//!
//! * one [`Instr`] per strategy arc, in strategy order, carrying the arc's
//!   cost, its target node, and whether that target is a success node;
//! * a `fail_jump` pointing one past the end of the instruction's path —
//!   on a tree with no duplicate arcs, a blocked arc (or an unreached path
//!   head) makes the *entire rest of the path* statically unreachable, so
//!   the executor jumps instead of testing each tail arc individually;
//! * a `guard` node only on path heads whose source is not the root —
//!   interior instructions are reached exclusively by falling through from
//!   a traversal, so their source is reached by construction and needs no
//!   check.
//!
//! Why the jump is sound: in a tree every node has exactly one parent arc,
//! and a strategy attempts each arc at most once. An interior arc's source
//! is the previous arc's target, so it is reached iff that previous arc
//! was traversed — if the head is skipped or any arc in the path is
//! blocked, no node further down the path can ever become reached, this
//! run or later. Duplicate arcs or multiple parents would break the
//! argument, so [`StrategyProgram::compile`] rejects non-trees and
//! non-path-form sequences; callers fall back to the interpreter.
//!
//! Execution is then pure index arithmetic — no `HashMap`, no path
//! re-decomposition, no allocation — and is bit-identical to the
//! interpreter (same cost additions in the same order, same events, same
//! outcome; property-tested below and in `tests/`). The same instruction
//! array drives the bit-parallel 64-lane executor in [`crate::batch`].

use crate::context::{ArcOutcome, Context, RunOutcome, RunScratch};
use crate::error::GraphError;
use crate::graph::{ArcId, ArcKind, InferenceGraph};
use crate::strategy::Strategy;

/// Sentinel index meaning "no node / no arc" in an [`Instr`] field.
pub const NO_INDEX: u32 = u32::MAX;

/// One compiled strategy step. `#[repr(C)]` keeps the hot fields on one
/// cache line per pair of instructions (32 bytes each).
#[derive(Debug, Clone, Copy)]
pub struct Instr {
    /// The arc this step attempts.
    pub arc: u32,
    /// Node whose reached-status gates this step, or [`NO_INDEX`] when
    /// the step is unconditional (interior of a path, or a path head
    /// starting at the root).
    pub guard: u32,
    /// The arc whose traversal reaches this step's source node, or
    /// [`NO_INDEX`] when the source is the root. The batch executor reads
    /// its traversed-plane as the per-lane reach mask — the bit-parallel
    /// form of the `guard` check (and of interior fallthrough).
    pub parent_arc: u32,
    /// Target node of the arc (marked reached on traversal).
    pub to: u32,
    /// Next instruction index when the guard fails or the arc is blocked:
    /// one past the end of this instruction's path.
    pub fail_jump: u32,
    /// Attempt cost `f(a)`, paid whether blocked or open.
    pub cost: f64,
    /// Whether `to` is a success node (traversal ends the run).
    pub success: bool,
    /// Whether the arc is a retrieval (used for pessimistic completion).
    pub retrieval: bool,
}

/// A strategy lowered to a flat jump-threaded instruction array, valid
/// for one ⟨graph, strategy⟩ pair.
#[derive(Debug, Clone)]
pub struct StrategyProgram {
    instrs: Vec<Instr>,
    arc_count: usize,
    node_count: usize,
    root: u32,
    /// Fingerprint of the compiled strategy (see
    /// [`Strategy::fingerprint`]) so callers can cheaply check whether a
    /// cached program still matches a current strategy.
    fingerprint: u64,
}

impl StrategyProgram {
    /// Lowers `strategy` against `g`.
    ///
    /// # Errors
    /// [`GraphError::NotTree`] if `g` is not a tree, or
    /// [`GraphError::InvalidStrategy`] if the sequence is not path-form
    /// or repeats an arc — the shapes for which jump-threading would be
    /// unsound. Callers should fall back to the interpreter.
    pub fn compile(g: &InferenceGraph, strategy: &Strategy) -> Result<Self, GraphError> {
        if !g.is_tree() {
            return Err(GraphError::NotTree("strategy programs require a tree".into()));
        }
        let mut seen = vec![false; g.arc_count()];
        for &a in strategy.arcs() {
            if a.index() >= g.arc_count() {
                return Err(GraphError::BadArc(a.0));
            }
            if seen[a.index()] {
                return Err(GraphError::InvalidStrategy(format!(
                    "arc {a} appears twice; jump-threading requires single attempts"
                )));
            }
            seen[a.index()] = true;
        }
        let paths = strategy.decompose(g)?;
        let mut instrs = Vec::with_capacity(strategy.arcs().len());
        for path in paths {
            let end = path.end as u32;
            for idx in path.clone() {
                let a = strategy.arcs()[idx];
                let data = g.arc(a);
                let head = idx == path.start;
                let guard = if head && data.from != g.root() { data.from.0 } else { NO_INDEX };
                let parent_arc = g.parent_arc(data.from).map_or(NO_INDEX, |p| p.0);
                instrs.push(Instr {
                    arc: a.0,
                    guard,
                    parent_arc,
                    to: data.to.0,
                    fail_jump: end,
                    cost: data.cost,
                    success: g.node(data.to).is_success,
                    retrieval: data.kind == ArcKind::Retrieval,
                });
            }
        }
        Ok(Self {
            instrs,
            arc_count: g.arc_count(),
            node_count: g.node_count(),
            root: g.root().0,
            fingerprint: strategy.fingerprint(),
        })
    }

    /// The instruction array, in strategy order.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Arc count of the graph this program was compiled against.
    pub fn arc_count(&self) -> usize {
        self.arc_count
    }

    /// Node count of the graph this program was compiled against.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Fingerprint of the compiled strategy (matches
    /// [`Strategy::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// Executes a compiled program against `context`, writing the trace into
/// `scratch` exactly as [`crate::context::execute_into`] would for the
/// source strategy: bit-identical cost, identical events, identical
/// outcome.
///
/// # Panics
/// Panics if `context` was built for a different graph (arc-count
/// mismatch).
pub fn execute_program_into(
    p: &StrategyProgram,
    context: &Context,
    scratch: &mut RunScratch,
) -> RunOutcome {
    assert_eq!(context.arc_count(), p.arc_count, "context built for a different graph");
    scratch.begin_sized(p.node_count, p.root as usize);
    let mut pc = 0usize;
    while pc < p.instrs.len() {
        let i = &p.instrs[pc];
        if i.guard != NO_INDEX && !scratch.reached[i.guard as usize] {
            pc = i.fail_jump as usize; // whole path below an unreached head: skipped at no cost
            continue;
        }
        scratch.cost += i.cost;
        if context.blocked[i.arc as usize] {
            scratch.events.push((ArcId(i.arc), ArcOutcome::Blocked));
            pc = i.fail_jump as usize; // rest of the path can never be reached
            continue;
        }
        scratch.events.push((ArcId(i.arc), ArcOutcome::Traversed));
        scratch.reached[i.to as usize] = true;
        if i.success {
            scratch.outcome = RunOutcome::Succeeded(ArcId(i.arc));
            return scratch.outcome;
        }
        pc += 1;
    }
    scratch.outcome
}

/// [`execute_program_into`] reading arc statuses from the scratch's own
/// partial context (the program counterpart of
/// [`crate::context::execute_partial_into`]).
///
/// # Panics
/// Panics if the partial context's arc count does not match the program.
pub fn execute_program_partial_into(p: &StrategyProgram, scratch: &mut RunScratch) -> RunOutcome {
    assert_eq!(
        scratch.partial.arc_count(),
        p.arc_count,
        "partial context not sized for this graph"
    );
    // Split borrow: the partial context is read-only while the run state
    // is written, mirroring the interpreter's layout.
    let RunScratch { reached, events, cost, outcome, partial } = scratch;
    reached.clear();
    reached.resize(p.node_count, false);
    reached[p.root as usize] = true;
    events.clear();
    *cost = 0.0;
    *outcome = RunOutcome::Exhausted;
    let mut pc = 0usize;
    while pc < p.instrs.len() {
        let i = &p.instrs[pc];
        if i.guard != NO_INDEX && !reached[i.guard as usize] {
            pc = i.fail_jump as usize;
            continue;
        }
        *cost += i.cost;
        if partial.blocked[i.arc as usize] {
            events.push((ArcId(i.arc), ArcOutcome::Blocked));
            pc = i.fail_jump as usize;
            continue;
        }
        events.push((ArcId(i.arc), ArcOutcome::Traversed));
        reached[i.to as usize] = true;
        if i.success {
            *outcome = RunOutcome::Succeeded(ArcId(i.arc));
            return *outcome;
        }
        pc += 1;
    }
    *outcome
}

/// Cost-only program execution — the program counterpart of
/// [`crate::context::cost_into`], bit-identical to it (same additions in
/// the same order).
///
/// # Panics
/// Panics if `context` was built for a different graph.
pub fn program_cost_into(p: &StrategyProgram, context: &Context, scratch: &mut RunScratch) -> f64 {
    assert_eq!(context.arc_count(), p.arc_count, "context built for a different graph");
    scratch.begin_sized(p.node_count, p.root as usize);
    let mut pc = 0usize;
    while pc < p.instrs.len() {
        let i = &p.instrs[pc];
        if i.guard != NO_INDEX && !scratch.reached[i.guard as usize] {
            pc = i.fail_jump as usize;
            continue;
        }
        scratch.cost += i.cost;
        if context.blocked[i.arc as usize] {
            pc = i.fail_jump as usize;
            continue;
        }
        scratch.reached[i.to as usize] = true;
        if i.success {
            return scratch.cost;
        }
        pc += 1;
    }
    scratch.cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{cost_into, execute, execute_into};
    use crate::graph::GraphBuilder;
    use crate::testgen::{lcg_context, lcg_strategy, lcg_tree};

    fn g_b() -> InferenceGraph {
        let mut b = GraphBuilder::new("G(κ)");
        let root = b.root();
        let (_, a) = b.reduction(root, "R_ga", 1.0, "A(κ)");
        b.retrieval(a, "D_a", 1.0);
        let (_, s) = b.reduction(root, "R_gs", 1.0, "S(κ)");
        let (_, bb) = b.reduction(s, "R_sb", 1.0, "B(κ)");
        b.retrieval(bb, "D_b", 1.0);
        let (_, t) = b.reduction(s, "R_st", 1.0, "T(κ)");
        let (_, c) = b.reduction(t, "R_tc", 1.0, "C(κ)");
        b.retrieval(c, "D_c", 1.0);
        let (_, d) = b.reduction(t, "R_td", 1.0, "D(κ)");
        b.retrieval(d, "D_d", 1.0);
        b.finish().unwrap()
    }

    #[test]
    fn compile_lays_out_paths_with_jumps() {
        let g = g_b();
        let s = Strategy::left_to_right(&g);
        let p = StrategyProgram::compile(&g, &s).unwrap();
        assert_eq!(p.instrs().len(), g.arc_count());
        // Θ_ABCD paths: [0..2), [2..5), [5..8), [8..10).
        let jumps: Vec<u32> = p.instrs().iter().map(|i| i.fail_jump).collect();
        assert_eq!(jumps, [2, 2, 5, 5, 5, 8, 8, 8, 10, 10]);
        // Heads from the root need no guard; the Θ_ABCD path heads all
        // start at root or at a node reached earlier.
        assert_eq!(p.instrs()[0].guard, NO_INDEX, "root head unconditional");
        assert_ne!(p.instrs()[8].guard, NO_INDEX, "⟨R_td D_d⟩ head guarded on T");
        // Interiors are never guarded.
        assert_eq!(p.instrs()[1].guard, NO_INDEX);
        assert_eq!(p.instrs()[4].guard, NO_INDEX);
    }

    #[test]
    fn program_matches_interpreter_on_g_b_exhaustively() {
        let g = g_b();
        let mut scratch_i = RunScratch::new(&g);
        let mut scratch_p = RunScratch::new(&g);
        for s in crate::strategy::enumerate_all(&g, 100_000).unwrap() {
            let p = StrategyProgram::compile(&g, &s).unwrap();
            for mask in 0u32..1024 {
                let ctx = Context::from_fn(&g, |a| mask & (1 << a.index()) != 0);
                let a = execute_into(&g, &s, &ctx, &mut scratch_i);
                let b = execute_program_into(&p, &ctx, &mut scratch_p);
                assert_eq!(a, b, "outcome diverged (mask {mask:b})");
                assert_eq!(scratch_i.events(), scratch_p.events());
                assert_eq!(scratch_i.cost().to_bits(), scratch_p.cost().to_bits());
                let ci = cost_into(&g, &s, &ctx, &mut scratch_i);
                let cp = program_cost_into(&p, &ctx, &mut scratch_p);
                assert_eq!(ci.to_bits(), cp.to_bits());
            }
        }
    }

    #[test]
    fn partial_variant_matches_context_variant() {
        let g = g_b();
        let s = Strategy::left_to_right(&g);
        let p = StrategyProgram::compile(&g, &s).unwrap();
        let mut scratch = RunScratch::new(&g);
        let mut scratch_partial = RunScratch::new(&g);
        for mask in 0u32..1024 {
            let ctx = Context::from_fn(&g, |a| mask & (1 << a.index()) != 0);
            execute_program_into(&p, &ctx, &mut scratch);
            scratch_partial.partial_mut().copy_from(&ctx);
            execute_program_partial_into(&p, &mut scratch_partial);
            assert_eq!(scratch.events(), scratch_partial.events());
            assert_eq!(scratch.cost().to_bits(), scratch_partial.cost().to_bits());
            assert_eq!(scratch.outcome(), scratch_partial.outcome());
        }
    }

    #[test]
    fn relaxed_partial_strategies_compile_when_path_form() {
        // A relaxed strategy covering only the first path still lowers
        // (decompose accepts any path-form prefix) and matches the
        // interpreter.
        let g = g_b();
        let by = |l: &str| g.arc_by_label(l).unwrap();
        let s = Strategy::from_arcs_relaxed(&g, vec![by("R_ga"), by("D_a")]).unwrap();
        let p = StrategyProgram::compile(&g, &s).unwrap();
        let mut si = RunScratch::new(&g);
        let mut sp = RunScratch::new(&g);
        for mask in 0u32..1024 {
            let ctx = Context::from_fn(&g, |a| mask & (1 << a.index()) != 0);
            assert_eq!(
                execute_into(&g, &s, &ctx, &mut si),
                execute_program_into(&p, &ctx, &mut sp)
            );
            assert_eq!(si.cost().to_bits(), sp.cost().to_bits());
        }
    }

    #[test]
    fn non_path_form_sequences_rejected() {
        // ⟨R_gs R_st⟩ stops mid-path: valid relaxed strategy, but not
        // decomposable — compile must refuse rather than mis-thread.
        let g = g_b();
        let by = |l: &str| g.arc_by_label(l).unwrap();
        let s = Strategy::from_arcs_relaxed(&g, vec![by("R_gs"), by("R_st")]).unwrap();
        assert!(matches!(StrategyProgram::compile(&g, &s), Err(GraphError::InvalidStrategy(_))));
    }

    #[test]
    fn non_tree_graphs_rejected() {
        // Note-5 redundant graph: two arcs into one node.
        let mut b = GraphBuilder::new("A").allow_dag();
        let root = b.root();
        let (_, bnode) = b.reduction(root, "R_ab", 1.0, "B");
        let (_, cnode) = b.reduction(bnode, "R_bc", 1.0, "C");
        b.reduction_to(root, cnode, "R_ac", 1.0);
        b.retrieval(cnode, "D_c", 1.0);
        let g = b.finish().unwrap();
        assert!(!g.is_tree());
        let by = |l: &str| g.arc_by_label(l).unwrap();
        let s = Strategy::from_arcs_relaxed(&g, vec![by("R_ab"), by("R_bc"), by("D_c")]).unwrap();
        assert!(matches!(StrategyProgram::compile(&g, &s), Err(GraphError::NotTree(_))));
    }

    #[test]
    fn fingerprint_matches_strategy() {
        let g = g_b();
        let s = Strategy::left_to_right(&g);
        let p = StrategyProgram::compile(&g, &s).unwrap();
        assert_eq!(p.fingerprint(), s.fingerprint());
    }

    proptest::proptest! {
        /// Program execution is bit-identical to the interpreter — cost,
        /// outcome, and full event sequence — on random trees × random
        /// path-form strategies × random contexts.
        #[test]
        fn program_bitwise_matches_interpreter_on_random_trees(
            seed in 0u64..3_000,
            strat_seed in 0u64..64,
            ctx_seed in 0u64..64,
        ) {
            let (g, _) = lcg_tree(seed);
            let s = lcg_strategy(&g, strat_seed);
            let p = StrategyProgram::compile(&g, &s).unwrap();
            let ctx = lcg_context(&g, ctx_seed);
            let mut si = RunScratch::new(&g);
            let mut sp = RunScratch::new(&g);
            let oi = execute_into(&g, &s, &ctx, &mut si);
            let op = execute_program_into(&p, &ctx, &mut sp);
            proptest::prop_assert_eq!(oi, op);
            proptest::prop_assert_eq!(si.events(), sp.events());
            proptest::prop_assert_eq!(si.cost().to_bits(), sp.cost().to_bits());
            let ci = cost_into(&g, &s, &ctx, &mut si);
            let cp = program_cost_into(&p, &ctx, &mut sp);
            proptest::prop_assert_eq!(ci.to_bits(), cp.to_bits());
        }

        /// The allocating reference (`execute`) also agrees — guards the
        /// scratch plumbing itself.
        #[test]
        fn program_matches_allocating_reference(seed in 0u64..500, ctx_seed in 0u64..16) {
            let (g, _) = lcg_tree(seed);
            let s = Strategy::left_to_right(&g);
            let p = StrategyProgram::compile(&g, &s).unwrap();
            let ctx = lcg_context(&g, ctx_seed);
            let reference = execute(&g, &s, &ctx);
            let mut sp = RunScratch::new(&g);
            execute_program_into(&p, &ctx, &mut sp);
            proptest::prop_assert_eq!(sp.to_trace(), reference);
        }
    }
}
