//! Wire protocol v2: line-delimited JSON, one object per line.
//!
//! ## Grammar
//!
//! Requests (client → server); `id` is an optional non-negative integer
//! echoed back verbatim:
//!
//! ```json
//! {"kind":"ping"}
//! {"kind":"query","q":"instructor(russ)","id":7}
//! {"kind":"batch","qs":["instructor(russ)","instructor(fred)"]}
//! {"kind":"update","insert":["edge(a, b)"],"retract":["edge(b, c)"],"id":9}
//! {"kind":"checkpoint","id":3}
//! {"kind":"stats"}
//! {"kind":"shutdown"}
//! ```
//!
//! `update` (new in v2) carries ground facts in Datalog syntax;
//! `insert` and `retract` may each be omitted, but not both. The delta
//! is validated (and, when the server runs with a data directory,
//! journaled to the write-ahead log) on shard 0 before any replica
//! applies it, then broadcast so all shared-nothing replicas converge.
//!
//! `checkpoint` (durable servers only) asks shard 0 to write an atomic
//! snapshot of its KB, learner statistics, and adopted strategy, then
//! truncate the WAL the snapshot covers; servers started without a
//! data directory refuse it with `store_unavailable`.
//!
//! Responses (server → client) always carry `"v":2` and a `kind`:
//!
//! * `pong` — ping reply;
//! * `answer` — one `result` object: `{"answer":"yes","witness":…,
//!   "cost":…}`, `{"answer":"no","cost":…}`, or
//!   `{"error":"bad_query","detail":…}` for a per-query failure inside
//!   an otherwise-served request;
//! * `answers` — `results` array, one entry per batch query, in order;
//! * `updated` — delta acknowledgement: `inserted`/`retracted` count
//!   the facts that actually changed the database (re-asserting a
//!   present fact or retracting an absent one is a no-op), and
//!   `deltas_applied` is the per-shard applied-delta counter after this
//!   update (equal across shards when replicas are convergent);
//! * `checkpointed` — checkpoint acknowledgement: `through_seq` is the
//!   highest WAL sequence the snapshot covers, `snapshot_bytes` its
//!   size, `segments_removed` the WAL segments deleted by the
//!   post-snapshot truncation;
//! * `stats` — admission/batching aggregates plus the full
//!   [`JsonSnapshot`](qpl_obs::JsonSnapshot) rendered single-line under
//!   `metrics`; durable servers add a `store` block (WAL bytes,
//!   segment count, append/replay counters, last checkpoint) and every
//!   shard reports its adopted strategy fingerprint as a hex string;
//! * `error` — whole-request failure: `"error"` is one of
//!   `"bad_request"`, `"overloaded"`, `"shutting_down"`,
//!   `"store_unavailable"` (durability requested but the store is
//!   absent or degraded — a degraded server sheds updates but keeps
//!   serving reads);
//! * `bye` — shutdown acknowledgement, after which the server drains
//!   and closes.
//!
//! Costs render through `f64`'s `Display`, which round-trips exactly —
//! clients can compare them bit-for-bit against local scalar runs.
//!
//! The parser is hand-rolled (the workspace builds offline with no
//! serialization dependency, matching the `qpl-obs` snapshot writer):
//! full JSON values with escape/`\u` handling, a nesting-depth cap, and
//! strict end-of-input — everything a public front door must refuse is
//! refused with a message, never a panic.

use std::fmt::Write as _;

/// The `"v"` field stamped into every response. v2 added the `update`
/// request, the `updated` response, and `deltas_applied` in `stats`.
pub const WIRE_VERSION: u32 = 2;

/// Maximum facts (insert + retract combined) one `update` request may
/// carry; larger deltas must be split across requests so a single line
/// cannot stall every shard for long.
pub const MAX_UPDATE_FACTS: usize = 1024;

/// Maximum nesting depth [`JsonValue::parse`] accepts; deeper input is
/// rejected (protects the recursive-descent parser from stack
/// exhaustion on hostile lines).
pub const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, fields in document order (duplicate keys kept; `get`
    /// returns the first).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    /// A human-readable description of the first syntax problem.
    pub fn parse(src: &str) -> Result<JsonValue, String> {
        let mut p = Parser { src, pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != src.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    /// First field named `key`, if this is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The truth value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if matches!(c, ' ' | '\t' | '\r' | '\n') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        if self.peek() == Some(want) {
            self.pos += want.len_utf8();
            Ok(())
        } else {
            Err(format!("expected '{want}' at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        if self.depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => self.string().map(JsonValue::Str),
            Some('t') => self.literal("true", JsonValue::Bool(true)),
            Some('f') => self.literal("false", JsonValue::Bool(false)),
            Some('n') => self.literal("null", JsonValue::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{c}' at offset {}", self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.src[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.src[start..self.pos]
            .parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            match c {
                '"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                '\\' => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                c if (c as u32) < 0x20 => {
                    return Err("raw control character in string".to_string());
                }
                c => {
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), String> {
        let Some(c) = self.peek() else {
            return Err("unterminated escape".to_string());
        };
        self.pos += c.len_utf8();
        match c {
            '"' | '\\' | '/' => out.push(c),
            'b' => out.push('\u{0008}'),
            'f' => out.push('\u{000c}'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let hi = self.hex4()?;
                let ch = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair; an unpaired surrogate degrades to
                    // the replacement character rather than an error.
                    if self.src[self.pos..].starts_with("\\u") {
                        self.pos += 2;
                        let lo = self.hex4()?;
                        if (0xDC00..0xE000).contains(&lo) {
                            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(code).unwrap_or('\u{FFFD}')
                        } else {
                            '\u{FFFD}'
                        }
                    } else {
                        '\u{FFFD}'
                    }
                } else {
                    char::from_u32(hi).unwrap_or('\u{FFFD}')
                };
                out.push(ch);
            }
            other => return Err(format!("bad escape \\{other}")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .src
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos += 4;
        Ok(v)
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect('{')?;
        self.depth += 1;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some('}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect('[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some(']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe, answered inline.
    Ping,
    /// One query; `q` is the query text in Datalog syntax.
    Query {
        /// The query text, e.g. `instructor(russ)`.
        q: String,
        /// Client correlation id, echoed back.
        id: Option<u64>,
    },
    /// Several queries served as lanes of (at most) one plane.
    Batch {
        /// The query texts, answered in order.
        qs: Vec<String>,
        /// Client correlation id, echoed back.
        id: Option<u64>,
    },
    /// A KB delta: ground facts to insert and/or retract, broadcast to
    /// every shard so replicas stay convergent.
    Update {
        /// Fact texts to insert, e.g. `edge(a, b)`.
        insert: Vec<String>,
        /// Fact texts to retract.
        retract: Vec<String>,
        /// Client correlation id, echoed back.
        id: Option<u64>,
    },
    /// Checkpoint request: snapshot shard 0's durable state and
    /// truncate the covered WAL (durable servers only).
    Checkpoint {
        /// Client correlation id, echoed back.
        id: Option<u64>,
    },
    /// Metrics snapshot request.
    Stats,
    /// Graceful drain: stop admitting, finish the queue, exit.
    Shutdown,
}

/// Extracts an optional array-of-strings field for `update`.
fn fact_list(v: &JsonValue, key: &str) -> Result<Vec<String>, String> {
    match v.get(key) {
        None => Ok(Vec::new()),
        Some(arr) => arr
            .as_array()
            .ok_or_else(|| format!("\"{key}\" must be an array of fact strings"))?
            .iter()
            .map(|f| {
                f.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("\"{key}\" entries must be strings"))
            })
            .collect(),
    }
}

/// Parses one request line. `max_batch` bounds `"qs"` (a serving config
/// knob, never above the 64-lane plane width).
///
/// # Errors
/// A detail string suitable for a `bad_request` response.
pub fn parse_request(line: &str, max_batch: usize) -> Result<Request, String> {
    let v = JsonValue::parse(line)?;
    let kind = v
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "missing string field \"kind\"".to_string())?;
    let id = match v.get("id") {
        None => None,
        Some(JsonValue::Num(n)) if *n >= 0.0 && n.fract() == 0.0 && *n < u64::MAX as f64 => {
            Some(*n as u64)
        }
        Some(_) => return Err("\"id\" must be a non-negative integer".to_string()),
    };
    match kind {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "checkpoint" => Ok(Request::Checkpoint { id }),
        "query" => {
            let q = v
                .get("q")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| "query needs a string field \"q\"".to_string())?;
            Ok(Request::Query { q: q.to_string(), id })
        }
        "batch" => {
            let qs = v
                .get("qs")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| "batch needs an array field \"qs\"".to_string())?;
            if qs.is_empty() {
                return Err("\"qs\" must be non-empty".to_string());
            }
            if qs.len() > max_batch {
                return Err(format!("\"qs\" exceeds the {max_batch}-query batch limit"));
            }
            let texts = qs
                .iter()
                .map(|q| {
                    q.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "\"qs\" entries must be strings".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Request::Batch { qs: texts, id })
        }
        "update" => {
            let insert = fact_list(&v, "insert")?;
            let retract = fact_list(&v, "retract")?;
            if insert.is_empty() && retract.is_empty() {
                return Err("update needs a non-empty \"insert\" or \"retract\"".to_string());
            }
            if insert.len() + retract.len() > MAX_UPDATE_FACTS {
                return Err(format!("update exceeds the {MAX_UPDATE_FACTS}-fact limit"));
            }
            Ok(Request::Update { insert, retract, id })
        }
        other => Err(format!("unknown kind {other:?}")),
    }
}

/// The outcome of one served query lane.
#[derive(Debug, Clone, PartialEq)]
pub enum LaneResult {
    /// Derivation found.
    Yes {
        /// The witnessing ground atom, rendered.
        witness: String,
        /// The run cost (bit-identical to a scalar run).
        cost: f64,
    },
    /// No derivation.
    No {
        /// The run cost.
        cost: f64,
    },
    /// The query could not be served (parse failure, form mismatch).
    Error {
        /// Human-readable reason.
        detail: String,
    },
}

/// The durability slice of the `stats` response (shard 0 owns the
/// store, so these are shard-0 numbers).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StoreStatsView {
    /// Live WAL bytes across all segments.
    pub wal_bytes: u64,
    /// Live WAL segment files.
    pub segments: u64,
    /// Records journaled since startup.
    pub records_appended: u64,
    /// Records replayed from the WAL during recovery at startup.
    pub records_replayed: u64,
    /// Unix seconds of the newest checkpoint (0 = never).
    pub last_checkpoint_unix_secs: u64,
    /// Size of the newest snapshot in bytes (0 = never).
    pub snapshot_bytes: u64,
    /// True once a store I/O failure put the server in degraded mode
    /// (updates shed with `store_unavailable`, reads still served).
    pub degraded: bool,
}

/// One executor shard's slice of the `stats` response.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStatsView {
    /// Shard index (0-based; matches steering).
    pub shard: u64,
    /// Query lanes waiting in this shard's queue at snapshot time.
    pub queue_lanes: u64,
    /// Query lanes this shard served.
    pub served: u64,
    /// Planes this shard executed.
    pub batches: u64,
    /// Offers this shard's batcher declined (the job then tried the
    /// least-loaded fallback; only a fallback failure sheds).
    pub declined: u64,
    /// Lanes that failed classification on this shard.
    pub errors: u64,
    /// Strategy climbs this shard's own learner accepted.
    pub climbs: u64,
    /// Peer-published strategies this shard adopted.
    pub adoptions: u64,
    /// KB deltas this shard applied (update-broadcast convergence
    /// check: equal across shards when replicas agree).
    pub deltas_applied: u64,
    /// Mean occupied-lane fraction over this shard's planes.
    pub fill_ratio: f64,
    /// p50 request service time on this shard, microseconds.
    pub p50_us: f64,
    /// p99 request service time on this shard, microseconds.
    pub p99_us: f64,
    /// Fingerprint of this shard's adopted strategy, rendered as a hex
    /// string (u64 values are not exactly representable as JSON
    /// numbers).
    pub strategy_fp: String,
}

/// Aggregates surfaced by the `stats` response. Totals sum over every
/// executor shard; `shards` breaks them down per shard.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsView {
    /// Query lanes waiting across all shard queues at snapshot time.
    pub queue_lanes: u64,
    /// Query lanes served since startup.
    pub served: u64,
    /// Planes executed.
    pub batches: u64,
    /// Requests refused with `overloaded` (home shard full *and* the
    /// least-loaded fallback full).
    pub shed: u64,
    /// Lanes that failed classification.
    pub errors: u64,
    /// Strategy climbs accepted by the adaptation loops (all shards).
    pub climbs: u64,
    /// Peer-published strategies adopted across shards.
    pub adoptions: u64,
    /// Jobs admitted at a non-home shard because the steered shard's
    /// queue was full.
    pub steer_fallbacks: u64,
    /// KB deltas applied, summed over shards (each broadcast update
    /// counts once per shard).
    pub deltas_applied: u64,
    /// Mean occupied fraction of executed plane capacity (each plane
    /// counts width × 64 lanes in the denominator).
    pub fill_ratio: f64,
    /// Planes executed at width 1/2/4/8 (64/128/256/512 lanes), all
    /// shards summed — the load-adaptive width distribution.
    pub width_planes: [u64; 4],
    /// p50 request service time, microseconds, over all shards.
    pub p50_us: f64,
    /// p99 request service time, microseconds, over all shards.
    pub p99_us: f64,
    /// Per-shard breakdown, in shard order.
    pub shards: Vec<ShardStatsView>,
    /// Durability health, present only when the server was started
    /// with a data directory.
    pub store: Option<StoreStatsView>,
    /// The full metrics snapshot, merged across shard sinks, rendered
    /// as one JSON line (embedded verbatim — it is already JSON).
    pub metrics_line: String,
}

/// Appends a JSON string literal (same escapes as the qpl-obs writer).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_envelope(out: &mut String, kind: &str, id: Option<u64>) {
    let _ = write!(out, "{{\"v\":{WIRE_VERSION},\"kind\":\"{kind}\"");
    if let Some(id) = id {
        let _ = write!(out, ",\"id\":{id}");
    }
}

fn push_lane(out: &mut String, r: &LaneResult) {
    match r {
        LaneResult::Yes { witness, cost } => {
            out.push_str("{\"answer\":\"yes\",\"witness\":");
            push_json_str(out, witness);
            let _ = write!(out, ",\"cost\":{cost}}}");
        }
        LaneResult::No { cost } => {
            let _ = write!(out, "{{\"answer\":\"no\",\"cost\":{cost}}}");
        }
        LaneResult::Error { detail } => {
            out.push_str("{\"error\":\"bad_query\",\"detail\":");
            push_json_str(out, detail);
            out.push('}');
        }
    }
}

/// `pong` response line.
pub fn render_pong() -> String {
    format!("{{\"v\":{WIRE_VERSION},\"kind\":\"pong\"}}")
}

/// `bye` response line (shutdown acknowledged).
pub fn render_bye() -> String {
    format!("{{\"v\":{WIRE_VERSION},\"kind\":\"bye\"}}")
}

/// Whole-request `error` response line; `code` is one of
/// `"bad_request"`, `"overloaded"`, `"shutting_down"`.
pub fn render_error(code: &str, detail: &str, id: Option<u64>) -> String {
    let mut out = String::with_capacity(64);
    push_envelope(&mut out, "error", id);
    out.push_str(",\"error\":");
    push_json_str(&mut out, code);
    out.push_str(",\"detail\":");
    push_json_str(&mut out, detail);
    out.push('}');
    out
}

/// `answer` response line for a single query.
pub fn render_answer(result: &LaneResult, id: Option<u64>) -> String {
    let mut out = String::with_capacity(96);
    push_envelope(&mut out, "answer", id);
    out.push_str(",\"result\":");
    push_lane(&mut out, result);
    out.push('}');
    out
}

/// `updated` response line: how many facts actually changed the
/// database, plus this replica set's applied-delta counter (the maximum
/// over shards; equal to every shard's counter when convergent).
pub fn render_updated(
    inserted: u64,
    retracted: u64,
    deltas_applied: u64,
    id: Option<u64>,
) -> String {
    let mut out = String::with_capacity(96);
    push_envelope(&mut out, "updated", id);
    let _ = write!(
        out,
        ",\"inserted\":{inserted},\"retracted\":{retracted},\"deltas_applied\":{deltas_applied}}}"
    );
    out
}

/// `checkpointed` response line: what the snapshot covers and what the
/// truncation reclaimed.
pub fn render_checkpointed(
    through_seq: u64,
    snapshot_bytes: u64,
    segments_removed: u64,
    id: Option<u64>,
) -> String {
    let mut out = String::with_capacity(96);
    push_envelope(&mut out, "checkpointed", id);
    let _ = write!(
        out,
        ",\"through_seq\":{through_seq},\"snapshot_bytes\":{snapshot_bytes},\
         \"segments_removed\":{segments_removed}}}"
    );
    out
}

/// `answers` response line for a batch, one result per query in order.
pub fn render_answers(results: &[LaneResult], id: Option<u64>) -> String {
    let mut out = String::with_capacity(64 + 64 * results.len());
    push_envelope(&mut out, "answers", id);
    out.push_str(",\"results\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_lane(&mut out, r);
    }
    out.push_str("]}");
    out
}

/// `stats` response line, per-shard breakdown included.
pub fn render_stats(s: &StatsView) -> String {
    let mut out = String::with_capacity(384 + 192 * s.shards.len() + s.metrics_line.len());
    push_envelope(&mut out, "stats", None);
    let _ = write!(
        out,
        ",\"queue_lanes\":{},\"served\":{},\"batches\":{},\"shed\":{},\"errors\":{},\"climbs\":{}",
        s.queue_lanes, s.served, s.batches, s.shed, s.errors, s.climbs
    );
    let _ = write!(out, ",\"adoptions\":{},\"steer_fallbacks\":{}", s.adoptions, s.steer_fallbacks);
    let _ = write!(out, ",\"deltas_applied\":{}", s.deltas_applied);
    let _ = write!(out, ",\"fill_ratio\":{}", s.fill_ratio);
    let _ = write!(
        out,
        ",\"width_planes\":[{},{},{},{}]",
        s.width_planes[0], s.width_planes[1], s.width_planes[2], s.width_planes[3]
    );
    let _ = write!(out, ",\"p50_us\":{},\"p99_us\":{}", s.p50_us, s.p99_us);
    out.push_str(",\"shards\":[");
    for (i, sh) in s.shards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"shard\":{},\"queue_lanes\":{},\"served\":{},\"batches\":{},\"declined\":{},\
             \"errors\":{},\"climbs\":{},\"adoptions\":{},\"deltas_applied\":{},\"fill_ratio\":{},\
             \"p50_us\":{},\"p99_us\":{},\"strategy_fp\":",
            sh.shard,
            sh.queue_lanes,
            sh.served,
            sh.batches,
            sh.declined,
            sh.errors,
            sh.climbs,
            sh.adoptions,
            sh.deltas_applied,
            sh.fill_ratio,
            sh.p50_us,
            sh.p99_us
        );
        push_json_str(&mut out, &sh.strategy_fp);
        out.push('}');
    }
    out.push(']');
    if let Some(st) = &s.store {
        let _ = write!(
            out,
            ",\"store\":{{\"wal_bytes\":{},\"segments\":{},\"records_appended\":{},\
             \"records_replayed\":{},\"last_checkpoint_unix_secs\":{},\"snapshot_bytes\":{},\
             \"degraded\":{}}}",
            st.wal_bytes,
            st.segments,
            st.records_appended,
            st.records_replayed,
            st.last_checkpoint_unix_secs,
            st.snapshot_bytes,
            st.degraded
        );
    }
    out.push_str(",\"metrics\":");
    out.push_str(&s.metrics_line);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("-2.5e2").unwrap(), JsonValue::Num(-250.0));
        assert_eq!(
            JsonValue::parse("\"a\\n\\u0041\\\"\"").unwrap(),
            JsonValue::Str("a\nA\"".to_string())
        );
        let v = JsonValue::parse(r#"{"a":[1,2,{"b":"c"}],"d":null}"#).unwrap();
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
        let arr = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arr[1], JsonValue::Num(2.0));
        assert_eq!(arr[2].get("b").and_then(JsonValue::as_str), Some("c"));
    }

    #[test]
    fn surrogate_pairs_and_unicode() {
        assert_eq!(
            JsonValue::parse("\"\\ud83d\\ude00\"").unwrap(),
            JsonValue::Str("😀".to_string())
        );
        // Unpaired surrogate degrades, never errors or panics.
        assert_eq!(
            JsonValue::parse("\"\\ud83dx\"").unwrap(),
            JsonValue::Str("\u{FFFD}x".to_string())
        );
        assert_eq!(JsonValue::parse("\"héllo\"").unwrap(), JsonValue::Str("héllo".to_string()));
    }

    #[test]
    fn rejects_malformed_input_without_panicking() {
        for bad in [
            "",
            "{",
            "}",
            "nul",
            "{\"a\"}",
            "{\"a\":}",
            "[1,]",
            "\"unterminated",
            "{} trailing",
            "1.2.3",
            "{\"a\":1,}",
            "\"\\q\"",
            "\"\\u12\"",
            "\u{1}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
        // Depth bomb: rejected, not a stack overflow.
        let bomb = "[".repeat(200) + &"]".repeat(200);
        assert!(JsonValue::parse(&bomb).is_err());
    }

    #[test]
    fn request_parsing_covers_all_kinds() {
        assert_eq!(parse_request(r#"{"kind":"ping"}"#, 64).unwrap(), Request::Ping);
        assert_eq!(parse_request(r#"{"kind":"stats"}"#, 64).unwrap(), Request::Stats);
        assert_eq!(parse_request(r#"{"kind":"shutdown"}"#, 64).unwrap(), Request::Shutdown);
        assert_eq!(
            parse_request(r#"{"kind":"checkpoint","id":3}"#, 64).unwrap(),
            Request::Checkpoint { id: Some(3) }
        );
        assert_eq!(
            parse_request(r#"{"kind":"query","q":"p(a)","id":7}"#, 64).unwrap(),
            Request::Query { q: "p(a)".to_string(), id: Some(7) }
        );
        assert_eq!(
            parse_request(r#"{"kind":"batch","qs":["p(a)","p(b)"]}"#, 64).unwrap(),
            Request::Batch { qs: vec!["p(a)".to_string(), "p(b)".to_string()], id: None }
        );
        assert_eq!(
            parse_request(
                r#"{"kind":"update","insert":["e(a, b)"],"retract":["e(b, c)"],"id":9}"#,
                64
            )
            .unwrap(),
            Request::Update {
                insert: vec!["e(a, b)".to_string()],
                retract: vec!["e(b, c)".to_string()],
                id: Some(9),
            }
        );
        // Either side of the delta may be omitted.
        assert_eq!(
            parse_request(r#"{"kind":"update","insert":["e(a, b)"]}"#, 64).unwrap(),
            Request::Update { insert: vec!["e(a, b)".to_string()], retract: vec![], id: None }
        );
    }

    #[test]
    fn request_parsing_rejects_bad_shapes() {
        for bad in [
            r#"{"q":"p(a)"}"#,
            r#"{"kind":"warp"}"#,
            r#"{"kind":"query"}"#,
            r#"{"kind":"query","q":3}"#,
            r#"{"kind":"query","q":"p(a)","id":-1}"#,
            r#"{"kind":"query","q":"p(a)","id":1.5}"#,
            r#"{"kind":"batch","qs":[]}"#,
            r#"{"kind":"batch","qs":["p(a)",2]}"#,
            r#"{"kind":"batch","qs":"p(a)"}"#,
            r#"{"kind":"update"}"#,
            r#"{"kind":"update","insert":[],"retract":[]}"#,
            r#"{"kind":"update","insert":"e(a, b)"}"#,
            r#"{"kind":"update","insert":[3]}"#,
        ] {
            assert!(parse_request(bad, 64).is_err(), "accepted {bad:?}");
        }
        // Batch limit enforced.
        let too_many = format!(
            r#"{{"kind":"batch","qs":[{}]}}"#,
            (0..65).map(|_| "\"p(a)\"").collect::<Vec<_>>().join(",")
        );
        assert!(parse_request(&too_many, 64).is_err());
        assert!(parse_request(&too_many, 65).is_ok());
        // Update fact limit enforced.
        let big_update = format!(
            r#"{{"kind":"update","insert":[{}]}}"#,
            (0..=MAX_UPDATE_FACTS).map(|_| "\"p(a)\"").collect::<Vec<_>>().join(",")
        );
        assert!(parse_request(&big_update, 64).is_err());
    }

    fn sample_stats() -> StatsView {
        let shard = |i: u64, served: u64| ShardStatsView {
            shard: i,
            queue_lanes: i,
            served,
            batches: served / 32,
            declined: 1,
            errors: 0,
            climbs: i,
            adoptions: 1 - i.min(1),
            deltas_applied: 5,
            fill_ratio: 0.5,
            p50_us: 120.0,
            p99_us: 800.0,
            strategy_fp: format!("{:016x}", 0xdead_beef_u64 + i),
        };
        StatsView {
            queue_lanes: 1,
            served: 100,
            batches: 3,
            shed: 2,
            errors: 1,
            climbs: 1,
            adoptions: 1,
            steer_fallbacks: 4,
            deltas_applied: 10,
            fill_ratio: 0.52,
            width_planes: [2, 1, 0, 0],
            p50_us: 130.5,
            p99_us: 900.0,
            shards: vec![shard(0, 64), shard(1, 36)],
            store: Some(StoreStatsView {
                wal_bytes: 4096,
                segments: 1,
                records_appended: 12,
                records_replayed: 3,
                last_checkpoint_unix_secs: 1_700_000_000,
                snapshot_bytes: 2048,
                degraded: false,
            }),
            metrics_line: "{\"schema_version\":1}".to_string(),
        }
    }

    #[test]
    fn stats_schema_exposes_totals_and_per_shard_breakdown() {
        let line = render_stats(&sample_stats());
        let v = JsonValue::parse(&line).unwrap();
        for key in [
            "queue_lanes",
            "served",
            "batches",
            "shed",
            "errors",
            "climbs",
            "adoptions",
            "steer_fallbacks",
            "deltas_applied",
            "fill_ratio",
            "p50_us",
            "p99_us",
        ] {
            assert!(v.get(key).and_then(JsonValue::as_f64).is_some(), "missing total {key}");
        }
        let widths = v.get("width_planes").and_then(JsonValue::as_array).expect("width_planes");
        assert_eq!(widths.len(), 4, "one bucket per plane width 1/2/4/8");
        assert_eq!(widths[0].as_f64(), Some(2.0));
        let shards = v.get("shards").and_then(JsonValue::as_array).expect("shards array");
        assert_eq!(shards.len(), 2);
        for (i, sh) in shards.iter().enumerate() {
            assert_eq!(sh.get("shard").and_then(JsonValue::as_f64), Some(i as f64));
            for key in [
                "queue_lanes",
                "served",
                "batches",
                "declined",
                "errors",
                "climbs",
                "adoptions",
                "deltas_applied",
                "fill_ratio",
                "p50_us",
                "p99_us",
            ] {
                assert!(
                    sh.get(key).and_then(JsonValue::as_f64).is_some(),
                    "shard {i} missing {key}"
                );
            }
            let fp = sh.get("strategy_fp").and_then(JsonValue::as_str).expect("strategy_fp");
            assert_eq!(fp.len(), 16, "strategy_fp is a zero-padded u64 hex string: {fp}");
        }
        let store = v.get("store").expect("store block present for durable servers");
        for key in [
            "wal_bytes",
            "segments",
            "records_appended",
            "records_replayed",
            "last_checkpoint_unix_secs",
            "snapshot_bytes",
        ] {
            assert!(store.get(key).and_then(JsonValue::as_f64).is_some(), "store missing {key}");
        }
        assert_eq!(store.get("degraded"), Some(&JsonValue::Bool(false)));
        assert!(v.get("metrics").is_some(), "merged metrics snapshot embedded");
    }

    #[test]
    fn stats_omits_the_store_block_without_durability() {
        let mut s = sample_stats();
        s.store = None;
        let line = render_stats(&s);
        let v = JsonValue::parse(&line).unwrap();
        assert!(v.get("store").is_none(), "non-durable servers have no store block");
    }

    #[test]
    fn responses_parse_with_own_parser() {
        let lanes = vec![
            LaneResult::Yes { witness: "prof(russ)".to_string(), cost: 2.0 },
            LaneResult::No { cost: 4.5 },
            LaneResult::Error { detail: "no \"such\" predicate".to_string() },
        ];
        for line in [
            render_pong(),
            render_bye(),
            render_error("overloaded", "queue full", Some(3)),
            render_answer(&lanes[0], Some(9)),
            render_answers(&lanes, None),
            render_updated(2, 1, 7, Some(4)),
            render_checkpointed(42, 2048, 3, Some(6)),
            render_stats(&sample_stats()),
        ] {
            let v = JsonValue::parse(&line).unwrap_or_else(|e| panic!("{e} in {line}"));
            assert_eq!(
                v.get("v").and_then(JsonValue::as_f64),
                Some(f64::from(WIRE_VERSION)),
                "{line}"
            );
            assert!(v.get("kind").and_then(JsonValue::as_str).is_some(), "{line}");
            assert!(!line.contains('\n'), "response must be one line: {line}");
        }
    }

    #[test]
    fn costs_round_trip_exactly() {
        // f64 Display is shortest-round-trip; parsing the rendered cost
        // must give back the identical bits.
        // The last entry deliberately over-specifies its decimals to get
        // a value whose nearest f64 needs all 17 significant digits.
        #[allow(clippy::excessive_precision)]
        let awkward = [2.0, 4.0, 0.1 + 0.2, 1e-17, 123456789.123456789];
        for cost in awkward {
            let line = render_answer(&LaneResult::No { cost }, None);
            let v = JsonValue::parse(&line).unwrap();
            let got = v.get("result").unwrap().get("cost").and_then(JsonValue::as_f64).unwrap();
            assert_eq!(got.to_bits(), cost.to_bits(), "{line}");
        }
    }
}
