//! Property tests for the dynamic batcher: under arbitrary arrival
//! patterns, queue bounds, and flush deadlines —
//!
//! * every offered request is either served exactly once or shed with
//!   an explicit refusal (never dropped, never double-served, never
//!   split across planes), and
//! * executing the cut planes bit-parallel produces exactly the
//!   per-lane cost (f64 bit pattern) and outcome that scalar execution
//!   of the same context produces.
//!
//! The batcher takes `Instant`s from the caller, so the tests drive it
//! with a synthetic clock — no sleeps, fully deterministic.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use proptest::{collection, num};
use qpl_graph::batch::{execute_batch, BatchRun, ContextBatch, LANES, MAX_LANES};
use qpl_graph::context::{Context, RunScratch};
use qpl_graph::program::{execute_program_into, StrategyProgram};
use qpl_graph::{InferenceGraph, Strategy};
use qpl_serve::batcher::{plane_width_for_depth, Batcher, LaneWeight};
use qpl_workload::generator::{random_tree_with_retrievals, TreeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Req {
    id: usize,
    contexts: Vec<Context>,
}

impl LaneWeight for Req {
    fn lanes(&self) -> usize {
        self.contexts.len()
    }
}

fn graph_for(seed: u64) -> InferenceGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    random_tree_with_retrievals(&mut rng, &TreeParams::default(), 4, 8)
}

/// Deterministic per-lane context from a bit mask (arc `i` blocked iff
/// bit `i % 64` of `mask` is set).
fn context_from_mask(g: &InferenceGraph, mask: u64) -> Context {
    let mut i = 0usize;
    Context::from_fn(g, |_| {
        let blocked = (mask >> (i % 64)) & 1 == 1;
        i += 1;
        blocked
    })
}

/// Cuts one plane, executes it bit-parallel, and checks every lane
/// against scalar execution of the same context. Returns the ids served.
fn serve_plane(
    g: &InferenceGraph,
    p: &StrategyProgram,
    batcher: &mut Batcher<Req>,
    plane_buf: &mut Vec<(Req, Instant)>,
) -> Vec<usize> {
    // Cut at the width the server would pick for this queue depth, so
    // the property covers 64..512-lane planes under backlog.
    let cap = plane_width_for_depth(batcher.lanes_queued()) * LANES;
    let lanes = batcher.cut_plane(cap, plane_buf);
    assert!(lanes <= cap && cap <= MAX_LANES, "a plane never exceeds its cut capacity");
    let contexts: Vec<&Context> =
        plane_buf.iter().flat_map(|(req, _)| req.contexts.iter()).collect();
    assert_eq!(contexts.len(), lanes, "jobs are whole: lane sums match the cut");

    if lanes > 0 {
        let mut batch = ContextBatch::new(g.arc_count(), lanes);
        for (lane, ctx) in contexts.iter().enumerate() {
            batch.set_lane(lane, ctx);
        }
        let mut run = BatchRun::new();
        execute_batch(p, &batch, batch.active_mask(), &mut run);
        let mut scratch = RunScratch::new(g);
        for (lane, ctx) in contexts.iter().enumerate() {
            let scalar_outcome = execute_program_into(p, ctx, &mut scratch);
            assert_eq!(
                run.outcome(lane),
                scalar_outcome,
                "lane {lane}: batched outcome equals scalar execution"
            );
            assert_eq!(
                run.cost(lane).to_bits(),
                scratch.cost().to_bits(),
                "lane {lane}: batched cost is bit-identical to scalar execution"
            );
        }
    }
    plane_buf.drain(..).map(|(req, _)| req.id).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_arrivals_serve_once_or_shed_and_match_scalar(
        graph_seed in 0u64..32,
        jobs in collection::vec((1usize..=3, num::u64::ANY, 0u64..4), 1..48),
        cap in 8usize..96,
        wait_ms in 1u64..8,
    ) {
        let g = graph_for(graph_seed);
        let strategy = Strategy::left_to_right(&g);
        let p = StrategyProgram::compile(&g, &strategy)
            .expect("left-to-right strategies are path-form");
        let wait = Duration::from_millis(wait_ms);

        let t0 = Instant::now();
        let mut now = t0;
        let mut batcher: Batcher<Req> = Batcher::new(cap);
        let mut plane_buf = Vec::new();
        let mut fates: BTreeMap<usize, &'static str> = BTreeMap::new();
        let record = |fates: &mut BTreeMap<usize, &'static str>, id: usize, fate| {
            prop_assert!(
                fates.insert(id, fate).is_none(),
                "request {id} got two fates — double-served or double-shed"
            );
            Ok(())
        };

        for (id, (w, mask, gap_ms)) in jobs.iter().enumerate() {
            now += Duration::from_millis(*gap_ms);
            // The executor cuts every plane that is due before this arrival.
            while batcher.ready(now, wait) {
                for sid in serve_plane(&g, &p, &mut batcher, &mut plane_buf) {
                    record(&mut fates, sid, "served")?;
                }
            }
            let contexts = (0..*w)
                .map(|lane| context_from_mask(&g, mask.rotate_left(lane as u32 * 7)))
                .collect();
            if batcher.offer(Req { id, contexts }, now).is_err() {
                record(&mut fates, id, "shed")?;
            }
        }
        // Drain (what the executor does on shutdown): flush everything.
        while !batcher.is_empty() {
            for sid in serve_plane(&g, &p, &mut batcher, &mut plane_buf) {
                record(&mut fates, sid, "served")?;
            }
        }

        prop_assert_eq!(
            fates.len(),
            jobs.len(),
            "every request has exactly one fate — none dropped"
        );
        let served = fates.values().filter(|f| **f == "served").count();
        let shed = fates.values().filter(|f| **f == "shed").count();
        prop_assert_eq!(served + shed, jobs.len());
        prop_assert_eq!(shed as u64, batcher.shed_count());
        prop_assert_eq!(served as u64, batcher.admitted_count());
    }
}
