//! The TCP server: acceptor + per-connection handlers + one executor.
//!
//! ## Threading model
//!
//! * **Acceptor** — polls a non-blocking listener, enforces the
//!   connection cap at the door, spawns one handler thread per
//!   connection.
//! * **Handlers** — read request lines (with a short read timeout so
//!   they notice shutdown), answer `ping` inline, and submit
//!   query/batch/stats work to the shared queue, blocking on a
//!   per-request channel for the response line. Handlers never touch
//!   the engine.
//! * **Executor** — a single thread that owns *all* engine state
//!   (symbol table, compiled graph, database, [`QueryProcessor`], the
//!   PIB learner, the metrics sink). It sleeps on a condvar until the
//!   [`Batcher`] is ready or a control request arrives, cuts a 64-lane
//!   plane, classifies each query into its Note-2 context, executes the
//!   plane bit-parallel, responds to every job, and feeds the served
//!   contexts to `Pib::observe_batch` so the deployed strategy
//!   hill-climbs on live traffic. Single ownership means zero locking
//!   on the hot path and no `Sync` requirements on engine internals.
//!
//! ## Overload and shutdown semantics
//!
//! Admission is bounded ([`ServerConfig::queue_cap`] lanes): a request
//! that does not fit is *refused with an `overloaded` error response*,
//! never silently dropped — every admitted request gets exactly one
//! response. `shutdown` (or [`Server::shutdown`]) flips the queue into
//! draining mode: new work is refused with `shutting_down`, queued work
//! is flushed plane by plane, then the executor and acceptor exit and
//! [`Server::join`] returns.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use qpl_core::{Pib, PibConfig};
use qpl_datalog::parser::{parse_program, parse_query, parse_query_form};
use qpl_datalog::{Atom, Database, SymbolTable};
use qpl_engine::qp::{classify_context_into, QueryAnswer, QueryProcessor};
use qpl_graph::batch::{BatchRun, ContextBatch, LANES};
use qpl_graph::compile::{compile, CompileOptions, CompiledGraph};
use qpl_graph::context::{Context, RunScratch};
use qpl_graph::InferenceGraph;
use qpl_obs::names::serve as names;
use qpl_obs::{JsonSnapshot, MemorySink, MetricsSink};
use qpl_workload::generator::{random_layered_kb, KbParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::batcher::{Batcher, LaneWeight};
use crate::wire::{self, LaneResult, Request, StatsView};

/// Server tuning knobs. `Default` suits tests and small deployments.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back via
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Admission bound in queued query lanes; at least one full plane.
    pub queue_cap: usize,
    /// Flush deadline: the longest a queued request waits for its plane
    /// to fill before executing anyway.
    pub max_wait: Duration,
    /// Connection cap, enforced at accept time.
    pub max_connections: usize,
    /// Largest `"qs"` array accepted per batch request (clamped to the
    /// 64-lane plane width).
    pub max_batch: usize,
    /// Longest accepted request line.
    pub max_line_bytes: usize,
    /// `Some(δ)` turns on online PIB adaptation at confidence `1 − δ`;
    /// `None` serves with the fixed left-to-right strategy.
    pub adapt_delta: Option<f64>,
    /// Handler read timeout — the latency with which idle connections
    /// notice a shutdown.
    pub read_poll: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            queue_cap: 1024,
            max_wait: Duration::from_micros(500),
            max_connections: 256,
            max_batch: LANES,
            max_line_bytes: 64 * 1024,
            adapt_delta: None,
            read_poll: Duration::from_millis(25),
        }
    }
}

/// Everything the executor needs to serve queries: symbol table,
/// compiled graph, and fact database. Moved into the executor thread at
/// [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeEngine {
    /// Symbol table the knowledge base (and incoming queries) intern
    /// into.
    pub table: SymbolTable,
    /// The compiled inference graph for the query form.
    pub compiled: CompiledGraph,
    /// The fact database.
    pub db: Database,
}

impl ServeEngine {
    /// Parses a Datalog knowledge base and compiles it for `form`.
    ///
    /// # Errors
    /// A rendered parse or compile error.
    pub fn from_source(kb: &str, form: &str) -> Result<Self, String> {
        let mut table = SymbolTable::new();
        let program = parse_program(kb, &mut table).map_err(|e| e.to_string())?;
        let qf = parse_query_form(form, &mut table).map_err(|e| e.to_string())?;
        let compiled = compile(&program.rules, &qf, &table, &CompileOptions::default())
            .map_err(|e| e.to_string())?;
        Ok(Self { table, compiled, db: program.facts })
    }

    /// The paper's Figure-1 university knowledge base, form
    /// `instructor(b)`.
    pub fn figure1() -> Self {
        Self::from_source(
            "instructor(X) :- prof(X).\n\
             instructor(X) :- grad(X).\n\
             prof(russ). grad(manolis).",
            "instructor(b)",
        )
        .expect("Figure 1 compiles")
    }

    /// A seeded random layered knowledge base (the E18-style workload
    /// shape), form `q0(b)`.
    pub fn layered(seed: u64, params: &KbParams) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut table, rules, db, _root) = random_layered_kb(&mut rng, params);
        let qf = parse_query_form("q0(b)", &mut table).expect("form parses");
        let compiled =
            compile(&rules, &qf, &table, &CompileOptions::default()).expect("layered KB compiles");
        Self { table, compiled, db }
    }
}

/// One admitted query/batch request.
struct Job {
    texts: Vec<String>,
    id: Option<u64>,
    batch: bool,
    resp: mpsc::Sender<String>,
}

impl LaneWeight for Job {
    fn lanes(&self) -> usize {
        self.texts.len()
    }
}

/// Work that bypasses admission (cheap, must stay responsive under
/// load).
enum Control {
    Stats { resp: mpsc::Sender<String> },
}

struct QueueState {
    batcher: Batcher<Job>,
    control: VecDeque<Control>,
    draining: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    cv: Condvar,
    stop: AtomicBool,
    conns: AtomicUsize,
}

/// A running server; dropping it initiates shutdown.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<thread::JoinHandle<()>>,
    executor: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the acceptor and executor threads, returns
    /// immediately.
    ///
    /// # Errors
    /// Bind or thread-spawn failures.
    pub fn start(engine: ServeEngine, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                batcher: Batcher::new(cfg.queue_cap.max(LANES)),
                control: VecDeque::new(),
                draining: false,
            }),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            conns: AtomicUsize::new(0),
        });
        let executor = {
            let shared = Arc::clone(&shared);
            let cfg = cfg.clone();
            thread::Builder::new()
                .name("qpl-serve-exec".to_string())
                .spawn(move || executor_loop(engine, cfg, &shared))?
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("qpl-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &cfg, &shared))?
        };
        Ok(Server { addr, shared, acceptor: Some(acceptor), executor: Some(executor) })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates graceful drain, as if a `shutdown` request arrived.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared);
    }

    /// Waits for the acceptor and executor to finish draining, then for
    /// handler threads to close their connections (bounded wait).
    pub fn join(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.executor.take() {
            let _ = h.join();
        }
        let t0 = Instant::now();
        while self.shared.conns.load(Ordering::SeqCst) > 0 && t0.elapsed() < Duration::from_secs(2)
        {
            thread::sleep(Duration::from_millis(2));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        initiate_shutdown(&self.shared);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.executor.take() {
            let _ = h.join();
        }
    }
}

fn initiate_shutdown(shared: &Shared) {
    shared.stop.store(true, Ordering::SeqCst);
    {
        let mut st = shared.state.lock().expect("state mutex");
        st.draining = true;
    }
    shared.cv.notify_all();
}

fn write_line(mut stream: &TcpStream, line: &str) -> io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")
}

fn accept_loop(listener: &TcpListener, cfg: &ServerConfig, shared: &Arc<Shared>) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.conns.load(Ordering::SeqCst) >= cfg.max_connections {
                    // Per-connection limit: refuse at the door with a
                    // proper response, then close.
                    let _ = write_line(
                        &stream,
                        &wire::render_error("overloaded", "connection limit reached", None),
                    );
                    continue;
                }
                shared.conns.fetch_add(1, Ordering::SeqCst);
                let h_shared = Arc::clone(shared);
                let h_cfg = cfg.clone();
                let spawned =
                    thread::Builder::new().name("qpl-serve-conn".to_string()).spawn(move || {
                        handle_connection(&stream, &h_cfg, &h_shared);
                        h_shared.conns.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    shared.conns.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
}

enum LineEvent {
    Line(String),
    TooLong,
    TimedOut,
    Closed,
}

/// Incremental line framing over a read-timeout socket.
struct LineReader {
    buf: Vec<u8>,
    start: usize,
    max: usize,
}

impl LineReader {
    fn new(max: usize) -> Self {
        Self { buf: Vec::new(), start: 0, max }
    }

    fn next_line(&mut self, mut stream: &TcpStream) -> LineEvent {
        loop {
            if let Some(nl) = self.buf[self.start..].iter().position(|&b| b == b'\n') {
                let line =
                    String::from_utf8_lossy(&self.buf[self.start..self.start + nl]).into_owned();
                self.start += nl + 1;
                return LineEvent::Line(line);
            }
            if self.buf.len() - self.start > self.max {
                return LineEvent::TooLong;
            }
            if self.start > 0 {
                self.buf.drain(..self.start);
                self.start = 0;
            }
            let mut chunk = [0u8; 4096];
            match stream.read(&mut chunk) {
                Ok(0) => {
                    if self.buf.len() > self.start {
                        // Final unterminated line: still serve it.
                        let line = String::from_utf8_lossy(&self.buf[self.start..]).into_owned();
                        self.buf.clear();
                        self.start = 0;
                        return LineEvent::Line(line);
                    }
                    return LineEvent::Closed;
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return LineEvent::TimedOut;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return LineEvent::Closed,
            }
        }
    }
}

enum Reply {
    Line(String),
    Bye(String),
    Closed,
}

fn handle_connection(stream: &TcpStream, cfg: &ServerConfig, shared: &Shared) {
    // Nagle off: responses are single short lines and latency-bound.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(cfg.read_poll));
    let mut reader = LineReader::new(cfg.max_line_bytes);
    loop {
        match reader.next_line(stream) {
            LineEvent::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                match handle_line(&line, cfg, shared) {
                    Reply::Line(resp) => {
                        if write_line(stream, &resp).is_err() {
                            break;
                        }
                    }
                    Reply::Bye(resp) => {
                        let _ = write_line(stream, &resp);
                        break;
                    }
                    Reply::Closed => break,
                }
            }
            LineEvent::TooLong => {
                let _ = write_line(
                    stream,
                    &wire::render_error("bad_request", "line exceeds max_line_bytes", None),
                );
                break;
            }
            LineEvent::TimedOut => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            LineEvent::Closed => break,
        }
    }
}

fn handle_line(line: &str, cfg: &ServerConfig, shared: &Shared) -> Reply {
    let max_batch = cfg.max_batch.min(LANES);
    let req = match wire::parse_request(line, max_batch) {
        Ok(r) => r,
        Err(detail) => return Reply::Line(wire::render_error("bad_request", &detail, None)),
    };
    match req {
        Request::Ping => Reply::Line(wire::render_pong()),
        Request::Shutdown => {
            initiate_shutdown(shared);
            Reply::Bye(wire::render_bye())
        }
        Request::Stats => {
            let (tx, rx) = mpsc::channel();
            {
                let mut st = shared.state.lock().expect("state mutex");
                st.control.push_back(Control::Stats { resp: tx });
            }
            shared.cv.notify_all();
            match rx.recv() {
                Ok(resp) => Reply::Line(resp),
                Err(_) => Reply::Closed,
            }
        }
        Request::Query { q, id } => submit(vec![q], id, false, shared),
        Request::Batch { qs, id } => submit(qs, id, true, shared),
    }
}

fn submit(texts: Vec<String>, id: Option<u64>, batch: bool, shared: &Shared) -> Reply {
    let (tx, rx) = mpsc::channel();
    let job = Job { texts, id, batch, resp: tx };
    {
        let mut st = shared.state.lock().expect("state mutex");
        if st.draining {
            return Reply::Line(wire::render_error("shutting_down", "server is draining", id));
        }
        if st.batcher.offer(job, Instant::now()).is_err() {
            return Reply::Line(wire::render_error("overloaded", "request queue full", id));
        }
    }
    shared.cv.notify_all();
    match rx.recv() {
        Ok(resp) => Reply::Line(resp),
        Err(_) => Reply::Closed,
    }
}

/// Fixed-capacity ring of recent per-request service times (µs) for
/// percentile reporting.
struct ServiceRing {
    buf: Vec<f64>,
    pos: usize,
    cap: usize,
}

impl ServiceRing {
    fn new(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap), pos: 0, cap }
    }

    fn push(&mut self, v: f64) {
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.pos] = v;
            self.pos = (self.pos + 1) % self.cap;
        }
    }

    fn percentile(&self, scratch: &mut Vec<f64>, p: f64) -> f64 {
        if self.buf.is_empty() {
            return 0.0;
        }
        scratch.clone_from(&self.buf);
        scratch.sort_by(f64::total_cmp);
        let idx = ((scratch.len() - 1) as f64 * p).round() as usize;
        scratch[idx]
    }
}

/// Everything the executor thread owns.
struct Executor<'g> {
    table: SymbolTable,
    compiled: &'g CompiledGraph,
    g: &'g InferenceGraph,
    db: Database,
    qp: QueryProcessor<'g>,
    pib: Option<Pib>,
    current_fp: u64,
    sink: MemorySink,
    served: u64,
    batches: u64,
    errors: u64,
    climbs: u64,
    shed_emitted: u64,
    ring: ServiceRing,
    // Plane-assembly buffers, reused across planes.
    atoms: Vec<Atom>,
    slots: Vec<(usize, usize)>,
    ctx_pool: Vec<Context>,
    batch: ContextBatch,
    run: BatchRun,
    scratch: RunScratch,
    lane_out: Vec<(QueryAnswer, f64)>,
    results: Vec<Vec<Option<LaneResult>>>,
    sort_buf: Vec<f64>,
}

fn executor_loop(engine: ServeEngine, cfg: ServerConfig, shared: &Shared) {
    let ServeEngine { table, compiled, db } = engine;
    let qp = QueryProcessor::left_to_right(&compiled);
    let pib = cfg
        .adapt_delta
        .map(|delta| Pib::new(&compiled.graph, qp.strategy().clone(), PibConfig::new(delta)));
    let current_fp = qp.strategy().fingerprint();
    let mut ex = Executor {
        table,
        g: &compiled.graph,
        db,
        current_fp,
        qp,
        pib,
        sink: MemorySink::new(),
        served: 0,
        batches: 0,
        errors: 0,
        climbs: 0,
        shed_emitted: 0,
        ring: ServiceRing::new(4096),
        atoms: Vec::new(),
        slots: Vec::new(),
        ctx_pool: Vec::new(),
        batch: ContextBatch::new(compiled.graph.arc_count(), LANES),
        run: BatchRun::new(),
        scratch: RunScratch::new(&compiled.graph),
        lane_out: Vec::new(),
        results: Vec::new(),
        sort_buf: Vec::new(),
        compiled: &compiled,
    };
    let mut jobs: Vec<(Job, Instant)> = Vec::new();
    let mut controls: Vec<Control> = Vec::new();
    loop {
        controls.clear();
        jobs.clear();
        let exit;
        let (queue_lanes, shed) = {
            let mut st = shared.state.lock().expect("state mutex");
            loop {
                while let Some(c) = st.control.pop_front() {
                    controls.push(c);
                }
                let now = Instant::now();
                let ready =
                    st.batcher.ready(now, cfg.max_wait) || (st.draining && !st.batcher.is_empty());
                if ready {
                    st.batcher.cut_plane(&mut jobs);
                }
                if ready || !controls.is_empty() || (st.draining && st.batcher.is_empty()) {
                    exit = st.draining && st.batcher.is_empty() && jobs.is_empty();
                    break (st.batcher.lanes_queued() as u64, st.batcher.shed_count());
                }
                st = match st.batcher.deadline(cfg.max_wait) {
                    Some(deadline) => {
                        let wait = deadline.saturating_duration_since(Instant::now());
                        shared.cv.wait_timeout(st, wait).expect("state mutex").0
                    }
                    None => shared.cv.wait(st).expect("state mutex"),
                };
            }
        };
        if shed > ex.shed_emitted {
            ex.sink.counter(names::SHED, shed - ex.shed_emitted);
            ex.shed_emitted = shed;
        }
        for control in controls.drain(..) {
            match control {
                Control::Stats { resp } => {
                    let line = ex.stats_line(queue_lanes, shed);
                    let _ = resp.send(line);
                }
            }
        }
        if !jobs.is_empty() {
            ex.process_plane(&mut jobs);
        }
        if exit {
            break;
        }
    }
}

impl Executor<'_> {
    /// Serves one cut plane: classify every query into a lane, execute
    /// the plane bit-parallel (bit-identical to scalar runs), respond
    /// to every job, feed the contexts to the adaptation loop.
    fn process_plane(&mut self, jobs: &mut Vec<(Job, Instant)>) {
        let t0 = Instant::now();
        self.results.clear();
        self.results.extend(jobs.iter().map(|(job, _)| vec![None; job.texts.len()]));
        self.atoms.clear();
        self.slots.clear();
        let mut lanes = 0usize;
        let mut plane_errors = 0u64;
        for (ji, (job, _)) in jobs.iter().enumerate() {
            for (si, text) in job.texts.iter().enumerate() {
                let parsed = parse_query(text, &mut self.table).map_err(|e| e.to_string());
                let classified = parsed.and_then(|atom| {
                    if self.ctx_pool.len() == lanes {
                        self.ctx_pool.push(Context::all_open(self.g));
                    }
                    classify_context_into(self.compiled, &atom, &self.db, &mut self.ctx_pool[lanes])
                        .map(|()| atom)
                        .map_err(|e| e.to_string())
                });
                match classified {
                    Ok(atom) => {
                        self.atoms.push(atom);
                        self.slots.push((ji, si));
                        lanes += 1;
                    }
                    Err(detail) => {
                        plane_errors += 1;
                        self.results[ji][si] = Some(LaneResult::Error { detail });
                    }
                }
            }
        }
        debug_assert!(lanes <= LANES, "the batcher never cuts past one plane");
        if lanes > 0 {
            self.batch.reset(self.g.arc_count(), lanes);
            for (lane, ctx) in self.ctx_pool[..lanes].iter().enumerate() {
                self.batch.set_lane(lane, ctx);
            }
            self.lane_out.clear();
            self.qp
                .run_classified_batch(
                    &self.atoms,
                    &self.db,
                    &self.batch,
                    &mut self.run,
                    &mut self.scratch,
                    &mut self.lane_out,
                )
                .expect("plane is assembled against the executor's own graph");
            for (lane, (answer, cost)) in self.lane_out.iter().enumerate() {
                let (ji, si) = self.slots[lane];
                self.results[ji][si] = Some(match answer {
                    QueryAnswer::Yes(atom) => LaneResult::Yes {
                        witness: atom.display(&self.table).to_string(),
                        cost: *cost,
                    },
                    QueryAnswer::No => LaneResult::No { cost: *cost },
                });
            }
            self.served += lanes as u64;
            self.batches += 1;
            self.sink.counter(names::QUERIES, lanes as u64);
            self.sink.counter(names::BATCHES, 1);
            self.sink.value(names::BATCH_FILL, lanes as f64 / LANES as f64);
            // Online adaptation: the served plane *is* the PIB sample
            // batch. On an accepted climb, swap the processor's compiled
            // program (fingerprint-memoized inside set_strategy).
            if let Some(pib) = &mut self.pib {
                pib.observe_batch(self.g, &self.batch);
                let fp = pib.strategy().fingerprint();
                if fp != self.current_fp {
                    self.qp.set_strategy(pib.strategy().clone());
                    self.current_fp = fp;
                    let accepted = pib.history().len() as u64;
                    self.sink.counter(names::CLIMBS, accepted - self.climbs);
                    self.climbs = accepted;
                }
            }
        }
        if plane_errors > 0 {
            self.errors += plane_errors;
            self.sink.counter(names::ERRORS, plane_errors);
        }
        self.sink.span_ns(names::EXEC, t0.elapsed().as_nanos() as u64);
        let done = Instant::now();
        for ((job, enqueued), row) in jobs.drain(..).zip(self.results.drain(..)) {
            let filled: Vec<LaneResult> =
                row.into_iter().map(|r| r.expect("every lane filled")).collect();
            let line = if job.batch {
                wire::render_answers(&filled, job.id)
            } else {
                wire::render_answer(&filled[0], job.id)
            };
            // A send error means the client hung up; the work is done
            // either way.
            let _ = job.resp.send(line);
            let us = done.duration_since(enqueued).as_secs_f64() * 1e6;
            self.ring.push(us);
            self.sink.value(names::SERVICE_US, us);
        }
    }

    fn stats_line(&mut self, queue_lanes: u64, shed: u64) -> String {
        let fill_ratio = if self.batches > 0 {
            self.served as f64 / (self.batches as f64 * LANES as f64)
        } else {
            0.0
        };
        let view = StatsView {
            queue_lanes,
            served: self.served,
            batches: self.batches,
            shed,
            errors: self.errors,
            climbs: self.climbs,
            fill_ratio,
            p50_us: self.ring.percentile(&mut self.sort_buf, 0.50),
            p99_us: self.ring.percentile(&mut self.sort_buf, 0.99),
            metrics_line: JsonSnapshot::capture(&self.sink).as_line(),
        };
        wire::render_stats(&view)
    }
}
