//! Cross-context answer caching: reuse proof work across Monte-Carlo
//! samples that share a ⟨database, blocked-arc set⟩ pair.
//!
//! The E-experiments draw thousands of i.i.d. contexts, and most draws
//! repeat a context class the run has already seen (Note 2: contexts
//! partition into finitely many blocked-arc classes). Everything proved
//! inside one class against one database state stays valid until either
//! changes, so:
//!
//! * [`CrossContextCache`] keeps one [`TableStore`] of tabled Datalog
//!   answers per context fingerprint, invalidated by the database's
//!   generation counter — a sample landing in a seen class reuses every
//!   subgoal table from previous samples of that class;
//! * [`RunCache`] memoizes whole `⟨query → (answer, cost)⟩` runs of a
//!   fixed-strategy [`QueryProcessor`](crate::qp::QueryProcessor),
//!   invalidated when the database generation *or* the strategy changes.
//!
//! Every validity key folds in [`Database::instance_id`], so two
//! databases that happen to share a generation number can never alias
//! each other's entries — a cache handed a different instance simply
//! treats its entries as stale. Within one instance, invalidation is
//! *selective*: validity is scoped to a [`DependencyFootprint`] (the
//! predicates a cached computation can possibly read), stamped with
//! [`Database::footprint_generation`], so deltas on predicates outside
//! the footprint leave the memo warm. Tabled stores can additionally be
//! repaired in place via [`CrossContextCache::maintain`], which runs
//! [`TopDown::maintain_tables`] (semi-naive delta re-derivation) instead
//! of clearing.
//!
//! Determinism: cached answers are pure functions of ⟨rules, database
//! state, context class⟩, so replacing a recomputation with a cache read
//! never changes a result — only *stats* (hit/miss counts) depend on
//! arrival order, which is why the parallel harness asserts on answers,
//! never on cache stats.

use crate::qp::QueryAnswer;
use qpl_datalog::table::TableStore;
use qpl_datalog::topdown::{MaintainReport, RetrievalStats, TopDown};
use qpl_datalog::{Database, DatalogError, RuleBase, Symbol};
use qpl_graph::compile::{ArcBinding, CompiledGraph};
use qpl_graph::context::Context;
use qpl_graph::strategy::Strategy;
use std::collections::HashMap;

/// The set of database predicates a cached computation can read — its
/// *dependency footprint*. A delta on a predicate outside the footprint
/// cannot change any answer the computation produces, so caches scoped to
/// a footprint survive such deltas (selective invalidation).
///
/// For a compiled inference graph the footprint is the set of predicates
/// named by its retrieval arc bindings, computed once per strategy
/// compilation via [`DependencyFootprint::of_compiled`]. For tabled
/// Datalog evaluation it is the body-reachability closure of the called
/// predicates (see [`qpl_datalog::RuleBase::reachable_predicates`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DependencyFootprint {
    /// Sorted, deduplicated predicate set.
    preds: Vec<Symbol>,
}

impl DependencyFootprint {
    /// A footprint over an explicit predicate set.
    pub fn from_predicates(preds: impl IntoIterator<Item = Symbol>) -> Self {
        let mut preds: Vec<Symbol> = preds.into_iter().collect();
        preds.sort();
        preds.dedup();
        Self { preds }
    }

    /// The footprint of a compiled graph: every predicate some retrieval
    /// arc probes. Reduction arcs only test constants against guards and
    /// never touch the database, so they contribute nothing.
    pub fn of_compiled(compiled: &CompiledGraph) -> Self {
        Self::from_predicates(compiled.bindings.iter().filter_map(|b| match b {
            ArcBinding::Retrieval { predicate, .. } => Some(*predicate),
            ArcBinding::Reduction { .. } => None,
        }))
    }

    /// The footprint's predicates, ascending.
    pub fn predicates(&self) -> &[Symbol] {
        &self.preds
    }

    /// Whether `p` is in the footprint.
    pub fn contains(&self, p: Symbol) -> bool {
        self.preds.binary_search(&p).is_ok()
    }

    /// Whether the footprint is empty (nothing reads the database).
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// The footprint-scoped generation of `db`: advances iff a footprint
    /// predicate changed (see [`Database::footprint_generation`]).
    pub fn generation(&self, db: &Database) -> u64 {
        db.footprint_generation(&self.preds)
    }
}

/// Lifetime counters for a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered by a live entry.
    pub hits: u64,
    /// Lookups that had no entry at all.
    pub misses: u64,
    /// Entries dropped because their generation (or strategy) went stale.
    pub invalidations: u64,
}

/// A 64-bit fingerprint of a context class: a SplitMix64-style fold over
/// the blocked arc indices (ascending) and the arc count. Equal contexts
/// always map to equal fingerprints; unequal ones collide with
/// probability ≈ 2⁻⁶⁴. A collision would serve answers from the wrong
/// context class, so the fold covers every blocked index rather than
/// sampling a few — at 2⁻⁶⁴ over at most a few thousand classes per run
/// the risk is far below that of memory corruption.
pub fn context_fingerprint(ctx: &Context) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (ctx.arc_count() as u64);
    let mut mix = |v: u64| {
        let mut z = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h = z ^ (z >> 31);
    };
    for a in ctx.blocked_arcs() {
        mix(a.index() as u64 + 1);
    }
    h
}

/// A 64-bit fingerprint of a strategy: a fold over its arc sequence.
/// Used to invalidate [`RunCache`] entries when PIB swaps strategies.
///
/// The hash now lives on the strategy itself, computed once and cached
/// ([`Strategy::fingerprint`]); this wrapper survives for callers keyed
/// to the old free-function spelling.
pub fn strategy_fingerprint(s: &Strategy) -> u64 {
    s.fingerprint()
}

/// Tabled-answer stores shared across samples: one [`TableStore`] per
/// blocked-arc context class, each validated against the database
/// generation it was filled under.
///
/// # Examples
/// ```
/// use qpl_engine::cache::{context_fingerprint, CrossContextCache};
/// use qpl_datalog::parser::{parse_program, parse_query};
/// use qpl_datalog::topdown::{RetrievalStats, TopDown};
/// use qpl_datalog::SymbolTable;
/// let mut t = SymbolTable::new();
/// let p = parse_program("a(X) :- b(X). b(k).", &mut t).unwrap();
/// let q = parse_query("a(k)", &mut t).unwrap();
/// let solver = TopDown::new(&p.rules, &p.facts);
/// let mut cache = CrossContextCache::new();
/// let mut stats = RetrievalStats::default();
/// // Key by whatever identifies the sample's context class; here one class.
/// let store = cache.tables_for(&p.facts, 0);
/// assert!(solver.solve_tabled_in(&q, store, &mut stats).unwrap().is_some());
/// let store = cache.tables_for(&p.facts, 0); // warm: same tables back
/// assert!(!store.is_empty());
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CrossContextCache {
    /// context fingerprint → (instance id, generation, tables).
    entries: HashMap<u64, (u64, u64, TableStore)>,
    stats: CacheStats,
    /// Tables dropped *selectively* by [`maintain`](Self::maintain)
    /// (retraction footprints), as opposed to wholesale entry clears.
    selective_invalidations: u64,
    /// Tables reopened and re-saturated in place by `maintain`.
    tables_maintained: u64,
}

impl CrossContextCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of context classes with a live table store.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no class has been seen yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime hit/miss/invalidation counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Emit the lifetime counters (plus the live class count) into a
    /// [`MetricsSink`](qpl_obs::MetricsSink) under
    /// `engine.cross_context_cache.*`. Hit/miss splits are
    /// arrival-order-dependent under the parallel harness (see the
    /// module header), so snapshots comparing them should come from
    /// serial runs.
    pub fn emit_to(&self, sink: &mut dyn qpl_obs::MetricsSink) {
        sink.counter("engine.cross_context_cache.hits", self.stats.hits);
        sink.counter("engine.cross_context_cache.misses", self.stats.misses);
        sink.counter("engine.cross_context_cache.invalidations", self.stats.invalidations);
        sink.counter("engine.cross_context_cache.classes", self.entries.len() as u64);
        sink.counter(
            "engine.cross_context_cache.selective_invalidations",
            self.selective_invalidations,
        );
        sink.counter("engine.cross_context_cache.tables_maintained", self.tables_maintained);
    }

    /// Tables dropped selectively by [`maintain`](Self::maintain).
    pub fn selective_invalidations(&self) -> u64 {
        self.selective_invalidations
    }

    /// Tables incrementally re-saturated by [`maintain`](Self::maintain).
    pub fn tables_maintained(&self) -> u64 {
        self.tables_maintained
    }

    /// Drops every entry (stats survive).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The table store for the context class `context_fp` (as computed by
    /// [`context_fingerprint`]), valid for `db`'s current state. A store
    /// filled under an older generation — or under a *different database
    /// instance* — is cleared before being returned; a fresh one is
    /// created on first sight of the class.
    ///
    /// Entry validity is `(instance id, generation)`, so interleaving
    /// calls with several `Database` instances is safe (each switch
    /// invalidates, never aliases). To keep entries warm across deltas
    /// instead of clearing, apply the deltas and call
    /// [`maintain`](Self::maintain) before the next lookup.
    pub fn tables_for(&mut self, db: &Database, context_fp: u64) -> &mut TableStore {
        let validity = (db.instance_id(), db.generation());
        if let Some((stored_inst, stored_gen, store)) = self.entries.get_mut(&context_fp) {
            if (*stored_inst, *stored_gen) == validity {
                self.stats.hits += 1;
            } else {
                store.clear();
                (*stored_inst, *stored_gen) = validity;
                self.stats.invalidations += 1;
            }
        } else {
            self.entries.insert(context_fp, (validity.0, validity.1, TableStore::new()));
            self.stats.misses += 1;
        }
        &mut self.entries.get_mut(&context_fp).expect("entry just ensured").2
    }

    /// Incrementally repairs every live entry after database deltas, so
    /// the next [`tables_for`](Self::tables_for) hits warm instead of
    /// clearing. `db` must already be post-delta; `inserted` /
    /// `retracted` name the predicates whose fact sets changed.
    ///
    /// Per entry this runs [`TopDown::maintain_tables`]: tables whose
    /// reachability footprint misses the delta are untouched; affected
    /// tables are re-saturated semi-naively (insert-only) or dropped
    /// (retractions), counted in
    /// [`selective_invalidations`](Self::selective_invalidations).
    /// Entries are only repaired if their stamp proves they were valid
    /// immediately before this batch: `pre_generation` is the database
    /// generation *before* the batch was applied (capture it with
    /// [`Database::generation`] before mutating). Entries stamped by a
    /// different instance or an older generation missed some earlier
    /// change, cannot be repaired by this batch's predicate list alone,
    /// and are left for `tables_for`'s wholesale invalidation — correct,
    /// just cold.
    ///
    /// # Errors
    /// Propagates [`DatalogError`] from re-saturation (depth backstop).
    pub fn maintain(
        &mut self,
        db: &Database,
        rules: &RuleBase,
        pre_generation: u64,
        inserted: &[Symbol],
        retracted: &[Symbol],
        stats: &mut RetrievalStats,
    ) -> Result<MaintainReport, DatalogError> {
        let solver = TopDown::new(rules, db);
        let mut total = MaintainReport::default();
        for (stored_inst, stored_gen, store) in self.entries.values_mut() {
            if *stored_inst != db.instance_id() || *stored_gen != pre_generation {
                continue;
            }
            let report = solver.maintain_tables(store, inserted, retracted, stats)?;
            *stored_gen = db.generation();
            total.dropped += report.dropped;
            total.reopened += report.reopened;
            total.kept += report.kept;
            total.answers_added += report.answers_added;
        }
        self.selective_invalidations += total.dropped as u64;
        self.tables_maintained += total.reopened as u64;
        Ok(total)
    }
}

/// Whole-run memoization for a fixed-strategy query processor: maps the
/// query's bound constants to its `(answer, cost)` pair, valid for one
/// ⟨database generation, strategy⟩ pair at a time.
///
/// Used by `QueryProcessor::run_cost_cached`; see there for the wiring.
#[derive(Debug, Clone, Default)]
pub struct RunCache {
    /// `(database instance, scoped generation, strategy fingerprint)` the
    /// map is valid for; `None` until the first run. The generation slot
    /// holds the *global* generation under [`revalidate`](Self::revalidate)
    /// and the footprint-scoped generation under
    /// [`revalidate_scoped`](Self::revalidate_scoped); use one mode
    /// consistently per cache.
    validity: Option<(u64, u64, u64)>,
    map: HashMap<Vec<Symbol>, (QueryAnswer, f64)>,
    stats: CacheStats,
}

impl RunCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lifetime hit/miss/invalidation counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Emit the lifetime counters (plus the live entry count) into a
    /// [`MetricsSink`](qpl_obs::MetricsSink) under `engine.run_cache.*`.
    pub fn emit_to(&self, sink: &mut dyn qpl_obs::MetricsSink) {
        sink.counter("engine.run_cache.hits", self.stats.hits);
        sink.counter("engine.run_cache.misses", self.stats.misses);
        sink.counter("engine.run_cache.invalidations", self.stats.invalidations);
        sink.counter("engine.run_cache.entries", self.map.len() as u64);
    }

    /// Number of memoized runs currently valid.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no run is currently memoized.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops memoized runs if the database (instance or generation) or
    /// strategy changed since they were recorded. Any delta invalidates —
    /// for footprint-selective survival use
    /// [`revalidate_scoped`](Self::revalidate_scoped).
    pub fn revalidate(&mut self, db: &Database, strategy_fp: u64) {
        self.revalidate_key((db.instance_id(), db.generation(), strategy_fp));
    }

    /// Footprint-scoped revalidation: drops memoized runs only when the
    /// database instance, the strategy, or a *footprint predicate*
    /// changed. Deltas on predicates the strategy's compiled graph never
    /// retrieves leave the memo warm — the selective-invalidation path
    /// used by `QueryProcessor::run_cost_cached`.
    pub fn revalidate_scoped(
        &mut self,
        db: &Database,
        footprint: &DependencyFootprint,
        strategy_fp: u64,
    ) {
        self.revalidate_key((db.instance_id(), footprint.generation(db), strategy_fp));
    }

    fn revalidate_key(&mut self, key: (u64, u64, u64)) {
        if self.validity != Some(key) {
            if !self.map.is_empty() {
                self.map.clear();
                self.stats.invalidations += 1;
            }
            self.validity = Some(key);
        }
    }

    /// The memoized run for a query with these bound constants, if any.
    /// Call [`revalidate`](Self::revalidate) first.
    pub fn get(&mut self, key: &[Symbol]) -> Option<&(QueryAnswer, f64)> {
        let found = self.map.get(key);
        if found.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        found
    }

    /// Records a run under the current validity window.
    pub fn insert(&mut self, key: Vec<Symbol>, answer: QueryAnswer, cost: f64) {
        self.map.insert(key, (answer, cost));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpl_datalog::parser::{parse_program, parse_query};
    use qpl_datalog::topdown::{RetrievalStats, TopDown};
    use qpl_datalog::{Fact, SymbolTable};
    use qpl_graph::context::Context;
    use qpl_graph::graph::GraphBuilder;
    use qpl_graph::ArcId;

    fn small_graph() -> qpl_graph::graph::InferenceGraph {
        let mut b = GraphBuilder::new("q(κ)");
        let root = b.root();
        let (_, n1) = b.reduction(root, "R1", 1.0, "p1(κ)");
        b.retrieval(n1, "D1", 1.0);
        let (_, n2) = b.reduction(root, "R2", 1.0, "p2(κ)");
        b.retrieval(n2, "D2", 1.0);
        b.finish().unwrap()
    }

    #[test]
    fn context_fingerprint_separates_classes() {
        let g = small_graph();
        let open = Context::all_open(&g);
        let b0 = Context::with_blocked(&g, &[ArcId(0)]);
        let b1 = Context::with_blocked(&g, &[ArcId(1)]);
        let b01 = Context::with_blocked(&g, &[ArcId(0), ArcId(1)]);
        let fps = [&open, &b0, &b1, &b01].map(context_fingerprint);
        for i in 0..fps.len() {
            for j in 0..i {
                assert_ne!(fps[i], fps[j], "classes {i} and {j} collide");
            }
        }
        // Deterministic: same class, same fingerprint.
        assert_eq!(context_fingerprint(&b0), context_fingerprint(&b0.clone()));
    }

    #[test]
    fn tables_survive_within_generation_and_die_across() {
        let mut t = SymbolTable::new();
        let p = parse_program(
            "path(X, Y) :- edge(X, Y). path(X, Z) :- edge(X, Y), path(Y, Z).\n\
             edge(a, b). edge(b, c).",
            &mut t,
        )
        .unwrap();
        let mut db = p.facts.clone();
        let solver_src = p.rules;
        let q = parse_query("path(a, c)", &mut t).unwrap();
        let mut cache = CrossContextCache::new();
        let fp = 7u64;

        // Fill under generation g0.
        {
            let solver = TopDown::new(&solver_src, &db);
            let mut stats = RetrievalStats::default();
            let store = cache.tables_for(&db, fp);
            assert!(solver.solve_tabled_in(&q, store, &mut stats).unwrap().is_some());
            assert!(stats.table_misses > 0);
        }
        assert_eq!(cache.stats().misses, 1);

        // Same generation: warm tables, zero database work.
        {
            let solver = TopDown::new(&solver_src, &db);
            let mut stats = RetrievalStats::default();
            let store = cache.tables_for(&db, fp);
            assert!(solver.solve_tabled_in(&q, store, &mut stats).unwrap().is_some());
            assert_eq!(stats.retrievals, 0);
            assert_eq!(stats.table_misses, 0);
        }
        assert_eq!(cache.stats().hits, 1);

        // Mutate the database: the entry must be invalidated, and the
        // new fact must be visible (a stale table would hide edge(c,d)).
        let edge = t.lookup("edge").unwrap();
        let (c, d) = (t.lookup("c").unwrap(), t.intern("d"));
        db.insert(Fact::new(edge, vec![c, d])).unwrap();
        {
            let solver = TopDown::new(&solver_src, &db);
            let mut stats = RetrievalStats::default();
            let q2 = parse_query("path(a, d)", &mut t).unwrap();
            let store = cache.tables_for(&db, fp);
            assert!(solver.solve_tabled_in(&q2, store, &mut stats).unwrap().is_some());
            assert!(stats.table_misses > 0, "tables rebuilt after invalidation");
        }
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn distinct_fingerprints_get_distinct_stores() {
        let mut t = SymbolTable::new();
        let p = parse_program("p(a).", &mut t).unwrap();
        let mut cache = CrossContextCache::new();
        cache.tables_for(&p.facts, 1);
        cache.tables_for(&p.facts, 2);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn strategy_fingerprint_is_stable_and_order_sensitive() {
        let g = small_graph();
        let strategies = qpl_graph::strategy::enumerate_all(&g, 100).unwrap();
        assert!(strategies.len() > 1);
        for (i, a) in strategies.iter().enumerate() {
            // Clones carry the cached value; recomputation agrees.
            assert_eq!(strategy_fingerprint(a), strategy_fingerprint(&a.clone()));
            for b in &strategies[..i] {
                assert_ne!(
                    strategy_fingerprint(a),
                    strategy_fingerprint(b),
                    "distinct arc orders must not collide here"
                );
            }
        }
    }

    #[test]
    fn run_cache_invalidates_on_strategy_change() {
        let mut t = SymbolTable::new();
        let (p, a) = (t.intern("p"), t.intern("a"));
        let mut db = Database::new();
        let mut rc = RunCache::new();
        let dummy = QueryAnswer::No;
        rc.revalidate(&db, 111);
        assert!(rc.get(&[]).is_none());
        rc.insert(vec![], dummy.clone(), 2.0);
        rc.revalidate(&db, 111);
        assert!(rc.get(&[]).is_some(), "same window: still valid");
        rc.revalidate(&db, 222); // strategy swapped
        assert!(rc.get(&[]).is_none(), "strategy change dropped the memo");
        rc.insert(vec![], dummy, 3.0);
        db.insert(Fact::new(p, vec![a])).unwrap(); // database mutated
        rc.revalidate(&db, 222);
        assert!(rc.get(&[]).is_none(), "generation change dropped the memo");
        assert_eq!(rc.stats().invalidations, 2);
    }

    #[test]
    fn run_cache_scoped_revalidation_survives_disjoint_deltas() {
        let mut t = SymbolTable::new();
        let (p, noise) = (t.intern("p"), t.intern("noise"));
        let (a, b) = (t.intern("a"), t.intern("b"));
        let mut db = Database::new();
        db.insert(Fact::new(p, vec![a])).unwrap();
        let fp = DependencyFootprint::from_predicates([p]);
        let mut rc = RunCache::new();
        rc.revalidate_scoped(&db, &fp, 1);
        rc.insert(vec![a], QueryAnswer::No, 1.0);
        // Insert and retract outside the footprint: memo stays warm.
        db.insert(Fact::new(noise, vec![b])).unwrap();
        rc.revalidate_scoped(&db, &fp, 1);
        assert!(rc.get(&[a]).is_some(), "noise insert must not invalidate");
        db.retract(Fact::new(noise, vec![b])).unwrap();
        rc.revalidate_scoped(&db, &fp, 1);
        assert!(rc.get(&[a]).is_some(), "noise retract must not invalidate");
        assert_eq!(rc.stats().invalidations, 0);
        // A footprint delta drops the memo.
        db.insert(Fact::new(p, vec![b])).unwrap();
        rc.revalidate_scoped(&db, &fp, 1);
        assert!(rc.get(&[a]).is_none());
        assert_eq!(rc.stats().invalidations, 1);
    }

    #[test]
    fn caches_never_alias_across_database_instances() {
        // Regression for the cross-instance aliasing bug: two databases
        // at identical generations must never share cache entries.
        let mut t = SymbolTable::new();
        let p = parse_program("path(X, Y) :- edge(X, Y).", &mut t).unwrap();
        let edge = t.lookup("edge").unwrap();
        let (a, b, c) = (t.intern("a"), t.intern("b"), t.intern("c"));
        let mut db1 = Database::new();
        db1.insert(Fact::new(edge, vec![a, b])).unwrap();
        let mut db2 = Database::new();
        db2.insert(Fact::new(edge, vec![a, c])).unwrap();
        assert_eq!(db1.generation(), db2.generation(), "equal generations by construction");

        // CrossContextCache: the same fingerprint probed with db2 must
        // not reuse db1's tables (a stale hit would claim path(a, b)
        // holds in db2).
        let q_ab = parse_query("path(a, b)", &mut t).unwrap();
        let mut cache = CrossContextCache::new();
        {
            let solver = TopDown::new(&p.rules, &db1);
            let mut stats = RetrievalStats::default();
            let store = cache.tables_for(&db1, 7);
            assert!(solver.solve_tabled_in(&q_ab, store, &mut stats).unwrap().is_some());
        }
        {
            let solver = TopDown::new(&p.rules, &db2);
            let mut stats = RetrievalStats::default();
            let store = cache.tables_for(&db2, 7);
            assert!(
                solver.solve_tabled_in(&q_ab, store, &mut stats).unwrap().is_none(),
                "db2 must not see db1's tabled answers"
            );
        }
        assert_eq!(cache.stats().invalidations, 1);

        // RunCache: same instance-id separation.
        let mut rc = RunCache::new();
        rc.revalidate(&db1, 9);
        rc.insert(vec![a], QueryAnswer::No, 1.0);
        rc.revalidate(&db2, 9);
        assert!(rc.get(&[a]).is_none(), "db2 must not see db1's memo");
        // And switching back does not resurrect the old entries either.
        rc.revalidate(&db1, 9);
        assert!(rc.get(&[a]).is_none());
    }

    #[test]
    fn maintain_keeps_entries_warm_across_deltas() {
        let mut t = SymbolTable::new();
        let p = parse_program(
            "path(X, Y) :- edge(X, Y). path(X, Z) :- edge(X, Y), path(Y, Z).\n\
             edge(a, b). edge(b, c).",
            &mut t,
        )
        .unwrap();
        let mut db = p.facts.clone();
        // Free second argument: the answer table accumulates tuples, so
        // semi-naive re-saturation visibly *adds* answers to it.
        let q = parse_query("path(a, X)", &mut t).unwrap();
        let mut cache = CrossContextCache::new();
        let mut stats = RetrievalStats::default();
        {
            let solver = TopDown::new(&p.rules, &db);
            let store = cache.tables_for(&db, 7);
            assert!(solver.solve_tabled_in(&q, store, &mut stats).unwrap().is_some());
        }

        // Delta on a predicate the path family never reaches: everything
        // kept, next lookup warm with zero database work.
        let noise = t.intern("noise");
        let a = t.lookup("a").unwrap();
        let pre = db.generation();
        let d = db.insert(Fact::new(noise, vec![a])).unwrap();
        let report = cache.maintain(&db, &p.rules, pre, &[d.predicate], &[], &mut stats).unwrap();
        assert_eq!(report.dropped + report.reopened, 0);
        assert!(report.kept > 0);
        {
            let solver = TopDown::new(&p.rules, &db);
            let mut warm = RetrievalStats::default();
            let store = cache.tables_for(&db, 7);
            assert!(solver.solve_tabled_in(&q, store, &mut warm).unwrap().is_some());
            assert_eq!(warm.retrievals, 0, "maintained entry is warm");
            assert_eq!(warm.table_misses, 0);
        }
        assert_eq!(cache.stats().invalidations, 0);

        // Insert-only edge delta: re-saturated in place, new answer
        // visible without a wholesale rebuild.
        let edge = t.lookup("edge").unwrap();
        let (c, dd) = (t.lookup("c").unwrap(), t.intern("d"));
        let pre = db.generation();
        let delta = db.insert(Fact::new(edge, vec![c, dd])).unwrap();
        let report =
            cache.maintain(&db, &p.rules, pre, &[delta.predicate], &[], &mut stats).unwrap();
        assert!(report.reopened > 0);
        assert!(report.answers_added > 0);
        {
            let solver = TopDown::new(&p.rules, &db);
            let q2 = parse_query("path(a, d)", &mut t).unwrap();
            let store = cache.tables_for(&db, 7);
            let mut s2 = RetrievalStats::default();
            assert!(solver.solve_tabled_in(&q2, store, &mut s2).unwrap().is_some());
        }
        assert!(cache.tables_maintained() > 0);
        assert_eq!(cache.stats().invalidations, 0, "never went cold");

        // Retraction: affected tables dropped selectively and counted.
        let b = t.lookup("b").unwrap();
        let pre = db.generation();
        let delta = db.retract(Fact::new(edge, vec![a, b])).unwrap();
        let report =
            cache.maintain(&db, &p.rules, pre, &[], &[delta.predicate], &mut stats).unwrap();
        assert!(report.dropped > 0);
        assert!(cache.selective_invalidations() > 0);
        {
            let solver = TopDown::new(&p.rules, &db);
            let store = cache.tables_for(&db, 7);
            let mut s3 = RetrievalStats::default();
            assert!(
                solver.solve_tabled_in(&q, store, &mut s3).unwrap().is_none(),
                "path(a, X) gone after retracting edge(a, b)"
            );
        }
    }
}
