//! Deterministic test-input generators shared by the crate's unit and
//! property tests: LCG-driven random trees, path-form strategies, and
//! contexts. No `rand` dependency — proptest drives the seeds, the LCG
//! makes each seed reproducible in isolation.

use crate::context::Context;
use crate::graph::{ArcKind, GraphBuilder, InferenceGraph, NodeId};
use crate::strategy::Strategy;

fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

/// Generates a random valid inference tree (depth ≤ 6, ≤ 3 children per
/// node, costs in 1..=4) together with independent per-arc open
/// probabilities. Same construction as the generator used by the
/// `expected` module's tests.
pub(crate) fn lcg_tree(seed: u64) -> (InferenceGraph, Vec<f64>) {
    fn grow(b: &mut GraphBuilder, node: NodeId, state: &mut u64, depth: usize, label: &mut u32) {
        let kids = if depth >= 5 { 0 } else { next(state) % 3 };
        if kids == 0 {
            b.retrieval(node, &format!("D{}", *label), (1 + next(state) % 4) as f64);
            *label += 1;
            return;
        }
        for _ in 0..kids {
            let (_, child) =
                b.reduction(node, &format!("R{}", *label), (1 + next(state) % 4) as f64, "goal");
            *label += 1;
            grow(b, child, state, depth + 1, label);
        }
    }
    let mut state = seed.wrapping_mul(2).wrapping_add(1);
    let mut b = GraphBuilder::new("root");
    let root = b.root();
    let mut label = 0;
    for _ in 0..1 + next(&mut state) % 3 {
        let (_, child) =
            b.reduction(root, &format!("R{label}"), (1 + next(&mut state) % 4) as f64, "goal");
        label += 1;
        grow(&mut b, child, &mut state, 1, &mut label);
    }
    let g = b.finish().expect("LCG tree is valid");
    let probs: Vec<f64> = g.arc_ids().map(|_| (next(&mut state) % 1000) as f64 / 999.0).collect();
    (g, probs)
}

/// Generates a random *complete* path-form strategy for `g`: repeatedly
/// picks a random unattempted arc out of an already-visited node as a
/// path head, then descends (random child at each reduction) until a
/// retrieval ends the path — exactly the move set `Strategy::from_arcs`
/// validates, so every output is a valid full strategy.
pub(crate) fn lcg_strategy(g: &InferenceGraph, seed: u64) -> Strategy {
    let mut state = seed.wrapping_mul(2).wrapping_add(1);
    let mut visited = vec![false; g.node_count()];
    visited[g.root().index()] = true;
    let mut used = vec![false; g.arc_count()];
    let mut arcs = Vec::with_capacity(g.arc_count());
    loop {
        let heads: Vec<_> =
            g.arc_ids().filter(|&a| !used[a.index()] && visited[g.arc(a).from.index()]).collect();
        if heads.is_empty() {
            break;
        }
        let mut a = heads[(next(&mut state) as usize) % heads.len()];
        loop {
            used[a.index()] = true;
            arcs.push(a);
            let data = g.arc(a);
            visited[data.to.index()] = true;
            if data.kind == ArcKind::Retrieval {
                break;
            }
            // Reduction target in a tree is freshly visited, so all its
            // children are unused; pick one to continue the path.
            let kids = g.children(data.to);
            a = kids[(next(&mut state) as usize) % kids.len()];
        }
    }
    Strategy::from_arcs(g, arcs).expect("generated move sequence is a valid strategy")
}

/// Generates a random context for `g` (each arc independently blocked
/// with probability ~1/2).
pub(crate) fn lcg_context(g: &InferenceGraph, seed: u64) -> Context {
    let mut state = seed.wrapping_mul(2).wrapping_add(1);
    Context::from_fn(g, |_| next(&mut state).is_multiple_of(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_and_valid() {
        for seed in 0..50 {
            let (g, probs) = lcg_tree(seed);
            assert!(g.is_tree());
            assert_eq!(probs.len(), g.arc_count());
            let s = lcg_strategy(&g, seed);
            assert_eq!(s.arcs().len(), g.arc_count(), "strategy is complete");
            let (g2, _) = lcg_tree(seed);
            assert_eq!(g2.arc_count(), g.arc_count());
            assert_eq!(lcg_strategy(&g2, seed).arcs(), s.arcs());
            assert_eq!(lcg_context(&g, seed), lcg_context(&g2, seed));
        }
    }
}
