//! Bench: the deterministic parallel sampling harness and the
//! incremental expected-cost evaluator.
//!
//! Two independent axes of the same optimization story:
//!
//! * `batch_fold_mc_cost` — Monte-Carlo cost estimation fanned out over
//!   1/2/4/8 workers via `qpl_engine::par::batch_fold` (results are
//!   bit-identical across worker counts; only wall clock changes).
//! * `per_candidate_cost` — scoring one member of `T(Θ)`: full `C[Θ']`
//!   recomputation vs `CostEvaluator::expected_cost_after_swap`'s
//!   O(depth · branching) ancestor repair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpl_core::TransformationSet;
use qpl_engine::par::{batch_fold, sample_rng, ParConfig};
use qpl_graph::context::cost;
use qpl_graph::expected::ContextDistribution;
use qpl_graph::{CostEvaluator, Strategy};
use qpl_workload::generator::{random_retrieval_model, random_tree_with_retrievals, TreeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_batch_fold(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let params = TreeParams { max_depth: 6, max_branch: 4, ..Default::default() };
    let g = random_tree_with_retrievals(&mut rng, &params, 32, 64);
    let model = random_retrieval_model(&mut rng, &g, (0.05, 0.6));
    let theta = Strategy::left_to_right(&g);
    let n = 4096usize;
    let mut group = c.benchmark_group("batch_fold_mc_cost");
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            let cfg = ParConfig { workers: w, block: ParConfig::DEFAULT_BLOCK };
            b.iter(|| {
                batch_fold(
                    n,
                    &cfg,
                    || (0.0f64, 0u64),
                    |acc, i| {
                        let mut r = sample_rng(7, i as u64);
                        let ctx = model.sample(&mut r);
                        acc.0 += cost(&g, &theta, std::hint::black_box(&ctx));
                        acc.1 += 1;
                    },
                    |a, p| {
                        a.0 += p.0;
                        a.1 += p.1;
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_per_candidate_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("per_candidate_cost");
    for retrievals in [16usize, 64] {
        let mut rng = StdRng::seed_from_u64(12);
        let params = TreeParams { max_depth: 7, max_branch: 3, ..Default::default() };
        let g = random_tree_with_retrievals(&mut rng, &params, retrievals, retrievals * 2);
        let model = random_retrieval_model(&mut rng, &g, (0.05, 0.6));
        let theta = Strategy::left_to_right(&g);
        let neighbors = TransformationSet::all_sibling_swaps(&g).neighbors(&g, &theta);
        assert!(!neighbors.is_empty());
        let ev = CostEvaluator::new(&g, &model, &theta).expect("depth-first tree strategy");

        group.bench_with_input(
            BenchmarkId::new("full_recompute", retrievals),
            &retrievals,
            |b, _| {
                let mut i = 0;
                b.iter(|| {
                    let (_, cand) = &neighbors[i % neighbors.len()];
                    i += 1;
                    model.expected_cost(&g, std::hint::black_box(cand))
                })
            },
        );

        group.bench_with_input(BenchmarkId::new("after_swap", retrievals), &retrievals, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let (swap, _) = &neighbors[i % neighbors.len()];
                i += 1;
                ev.expected_cost_after_swap(swap.r1, std::hint::black_box(swap.r2))
                    .expect("sibling swap")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_fold, bench_per_candidate_cost);
criterion_main!(benches);
