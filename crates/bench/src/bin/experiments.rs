//! CLI for the paper-reproduction experiment suite.
//!
//! ```text
//! experiments               # run everything
//! experiments e1 e4 e7      # run selected experiments
//! experiments --seed 99 e5  # override the base seed
//! ```

use qpl_bench::experiments::{run_one, ALL};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 20260707u64;
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        if pos + 1 < args.len() {
            seed = args[pos + 1].parse().unwrap_or_else(|_| {
                eprintln!("invalid seed `{}`", args[pos + 1]);
                std::process::exit(2);
            });
            args.drain(pos..=pos + 1);
        } else {
            eprintln!("--seed requires a value");
            std::process::exit(2);
        }
    }
    let ids: Vec<String> = if args.is_empty() {
        ALL.iter().map(|s| s.to_string()).collect()
    } else {
        args.iter().map(|s| s.to_lowercase()).collect()
    };
    println!("qpl experiment suite — Greiner, PODS'92 (seed {seed})\n");
    let mut failures = 0;
    for id in &ids {
        match run_one(id, seed) {
            Some(report) => {
                println!("{report}");
                if !report.verdict.starts_with("REPRODUCED") {
                    failures += 1;
                }
            }
            None => {
                eprintln!("unknown experiment `{id}`; known: {}", ALL.join(", "));
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) did not reproduce");
        std::process::exit(1);
    }
    println!("all {} experiment(s) reproduced", ids.len());
}
