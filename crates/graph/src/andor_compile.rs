//! Compiling conjunctive rule bases to and-or graphs (Note 4).
//!
//! The simple-graph compiler ([`crate::compile`]) handles disjunctive
//! rules; rules with conjunctive bodies (`A :- B, C.`) compile here,
//! into an [`AndOrGraph`] whose
//! reduction hyper-arcs descend to one child goal per body literal.
//!
//! ## The independence restriction
//!
//! The paper's cost model makes an arc's blocked-status a property of
//! the *context alone* (Note 2). For a conjunctive body this holds only
//! when the body literals do not share existential variables: in
//! `gp(X, Z) :- parent(X, Y), parent(Y, Z)` the binding of `Y` produced
//! by proving the first literal constrains the second, so "the second
//! literal is satisfiable" is not a per-arc property. Such *join* rules
//! are rejected with a clear error — satisficing strategy theory (this
//! paper's and \[GO91\]'s) genuinely does not model them. Bodies whose
//! extra variables appear in a single literal (independent existentials)
//! decompose exactly and compile fine, e.g.
//! `eligible(X) :- enrolled(X, C), paid(X, T).`

use crate::compile::{match_head, pattern_label, Guard, PatternTerm};
use crate::error::GraphError;
use crate::hypergraph::{AndOrBuilder, AndOrContext, AndOrGraph, GoalId, HyperArcId};
use qpl_datalog::{
    Atom, Database, QueryForm, RuleBase, RuleId, Substitution, Symbol, SymbolTable, Term, Var,
};
use std::collections::HashMap;

/// Runtime binding of one hyper-arc.
#[derive(Debug, Clone, PartialEq)]
pub enum HyperBinding {
    /// Conjunctive rule reduction: blocked iff a guard fails.
    Reduction {
        /// The applied rule.
        rule: RuleId,
        /// Conditions on the query's bound constants.
        guards: Vec<Guard>,
    },
    /// Database retrieval with its instantiation pattern.
    Retrieval {
        /// Probed predicate.
        predicate: Symbol,
        /// Argument pattern over the query's bound constants.
        pattern: Vec<PatternTerm>,
        /// Inherited guards.
        guards: Vec<Guard>,
    },
}

/// A compiled and-or graph: structure plus per-hyper-arc bindings.
#[derive(Debug, Clone)]
pub struct CompiledAndOr {
    /// The and-or structure.
    pub graph: AndOrGraph,
    /// Binding per hyper-arc (indexed by [`HyperArcId`]).
    pub bindings: Vec<HyperBinding>,
    /// The compiled query form.
    pub form: QueryForm,
}

impl CompiledAndOr {
    /// The binding of a hyper-arc.
    pub fn binding(&self, a: HyperArcId) -> &HyperBinding {
        &self.bindings[a.0 as usize]
    }

    /// Note-2 classification for and-or graphs: evaluates every
    /// hyper-arc's blocked status for `⟨query, db⟩`.
    ///
    /// # Errors
    /// [`GraphError::InvalidStrategy`] if the query does not match the
    /// form.
    pub fn classify(&self, query: &Atom, db: &Database) -> Result<AndOrContext, GraphError> {
        if !self.form.matches(query) {
            return Err(GraphError::InvalidStrategy("query does not match compiled form".into()));
        }
        let constants = self.form.bound_constants(query);
        let mut ctx = AndOrContext::all_open(&self.graph);
        for a in self.graph.arc_ids() {
            let blocked = match self.binding(a) {
                HyperBinding::Reduction { guards, .. } => !guards_hold(guards, &constants),
                HyperBinding::Retrieval { predicate, pattern, guards } => {
                    if !guards_hold(guards, &constants) {
                        true
                    } else {
                        let atom = instantiate(*predicate, pattern, &constants);
                        if atom.is_ground() {
                            !db.contains_atom(&atom)
                        } else {
                            db.matches(&atom, &Substitution::new()).is_empty()
                        }
                    }
                }
            };
            ctx.set_blocked(a, blocked);
        }
        Ok(ctx)
    }
}

fn guards_hold(guards: &[Guard], constants: &[Symbol]) -> bool {
    guards.iter().all(|g| match *g {
        Guard::ArgEqConst(i, c) => constants[i] == c,
        Guard::ArgEqArg(i, j) => constants[i] == constants[j],
    })
}

fn instantiate(predicate: Symbol, pattern: &[PatternTerm], constants: &[Symbol]) -> Atom {
    let mut fresh = 0u32;
    let args = pattern
        .iter()
        .map(|p| match *p {
            PatternTerm::QueryArg(i) => Term::Const(constants[i]),
            PatternTerm::Const(c) => Term::Const(c),
            PatternTerm::Free => {
                let v = Term::Var(Var(fresh));
                fresh += 1;
                v
            }
        })
        .collect();
    Atom::new(predicate, args)
}

/// Compiles a (possibly conjunctive) rule base for `form` into an
/// and-or graph with runtime bindings.
///
/// # Errors
/// [`GraphError::Compile`] on recursive rule bases, depth overflow, or
/// *join* rules (body literals sharing an existential variable — see the
/// module docs).
pub fn compile_andor(
    rules: &RuleBase,
    form: &QueryForm,
    table: &SymbolTable,
    max_depth: usize,
) -> Result<CompiledAndOr, GraphError> {
    if rules.is_recursive() {
        return Err(GraphError::Compile("rule base is recursive".into()));
    }
    let mut root_pattern = Vec::with_capacity(form.adornment.arity());
    let mut k = 0usize;
    for b in &form.adornment.0 {
        match b {
            qpl_datalog::Binding::Bound => {
                root_pattern.push(PatternTerm::QueryArg(k));
                k += 1;
            }
            qpl_datalog::Binding::Free => root_pattern.push(PatternTerm::Free),
        }
    }
    let mut builder = AndOrBuilder::new(&pattern_label(form.predicate, &root_pattern, table));
    let root = builder.root();
    let mut bindings = Vec::new();
    expand(
        rules,
        table,
        &mut builder,
        &mut bindings,
        root,
        form.predicate,
        &root_pattern,
        &[],
        0,
        max_depth,
    )?;
    let graph = builder.finish().map_err(|e| match e {
        GraphError::DeadLeaf(m) => GraphError::Compile(format!("dead goal: {m}")),
        other => other,
    })?;
    debug_assert_eq!(bindings.len(), graph.arc_count());
    Ok(CompiledAndOr { graph, bindings, form: form.clone() })
}

#[allow(clippy::too_many_arguments)]
fn expand(
    rules: &RuleBase,
    table: &SymbolTable,
    builder: &mut AndOrBuilder,
    bindings: &mut Vec<HyperBinding>,
    goal: GoalId,
    predicate: Symbol,
    pattern: &[PatternTerm],
    inherited_guards: &[Guard],
    depth: usize,
    max_depth: usize,
) -> Result<(), GraphError> {
    if depth > max_depth {
        return Err(GraphError::Compile(format!("unfolding exceeded depth {max_depth}")));
    }
    let is_intensional = rules.rules_for(predicate).next().is_some();
    if !is_intensional {
        let label = format!("D[{}]", pattern_label(predicate, pattern, table));
        let arc = builder.retrieval(goal, &label, 1.0);
        debug_assert_eq!(arc.0 as usize, bindings.len());
        bindings.push(HyperBinding::Retrieval {
            predicate,
            pattern: pattern.to_vec(),
            guards: inherited_guards.to_vec(),
        });
    }
    for (rule_id, rule) in rules.rules_for(predicate) {
        let Some((var_map, mut guards)) = match_head(&rule.head.args, pattern) else {
            continue; // statically blocked
        };
        // The independence restriction: every variable not bound through
        // the head must occur in exactly one body literal.
        let mut seen_in: HashMap<Var, usize> = HashMap::new();
        for (i, body) in rule.body.iter().enumerate() {
            for v in body.variables() {
                if var_map.contains_key(&v) {
                    continue; // head-bound: resolves to a pattern term
                }
                if let Some(&j) = seen_in.get(&v) {
                    if j != i {
                        return Err(GraphError::Compile(format!(
                            "rule {} joins body literals through variable V{} — \
                             blocked-status is not a per-arc property for joins; \
                             the satisficing framework does not model them",
                            rule.display(table),
                            v.0
                        )));
                    }
                } else {
                    seen_in.insert(v, i);
                }
            }
        }
        let mut all_guards = inherited_guards.to_vec();
        all_guards.append(&mut guards);
        all_guards.dedup();

        // One child goal per body literal.
        let mut children = Vec::with_capacity(rule.body.len());
        let mut child_specs = Vec::with_capacity(rule.body.len());
        for body in &rule.body {
            let child_pattern: Vec<PatternTerm> = body
                .args
                .iter()
                .map(|t| match t {
                    Term::Const(c) => PatternTerm::Const(*c),
                    Term::Var(v) => var_map.get(v).copied().unwrap_or(PatternTerm::Free),
                })
                .collect();
            let child = builder.goal(&pattern_label(body.predicate, &child_pattern, table));
            children.push(child);
            child_specs.push((child, body.predicate, child_pattern));
        }
        let label = format!("R{}[{}]", rule_id.0, pattern_label(predicate, pattern, table));
        let arc = builder.reduction(goal, children, &label, 1.0);
        debug_assert_eq!(arc.0 as usize, bindings.len());
        bindings.push(HyperBinding::Reduction { rule: rule_id, guards: all_guards.clone() });
        for (child, pred, child_pattern) in child_specs {
            expand(
                rules,
                table,
                builder,
                bindings,
                child,
                pred,
                &child_pattern,
                &all_guards,
                depth + 1,
                max_depth,
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph::{execute, AndOrStrategy};
    use qpl_datalog::parser::{parse_program, parse_query, parse_query_form};

    fn setup(kb: &str, form: &str) -> (SymbolTable, CompiledAndOr, Database) {
        let mut t = SymbolTable::new();
        let p = parse_program(kb, &mut t).unwrap();
        let qf = parse_query_form(form, &mut t).unwrap();
        let c = compile_andor(&p.rules, &qf, &t, 32).unwrap();
        (t, c, p.facts)
    }

    /// eligible(X) :- enrolled(X, C), paid(X, T): independent
    /// existentials C and T — compiles and agrees with the oracle.
    const ELIGIBLE_KB: &str = "eligible(X) :- enrolled(X, C), paid(X, T).\n\
                               eligible(X) :- scholarship(X).\n\
                               enrolled(ann, cs). paid(ann, fall).\n\
                               enrolled(bob, math).\n\
                               scholarship(carol).";

    #[test]
    fn independent_conjunction_compiles() {
        let (_, c, _) = setup(ELIGIBLE_KB, "eligible(b)");
        // Root has two reductions; the first has two children.
        assert_eq!(c.graph.outgoing(c.graph.root()).len(), 2);
        let conj = c.graph.outgoing(c.graph.root())[0];
        assert_eq!(c.graph.arc(conj).children.len(), 2);
    }

    #[test]
    fn answers_match_bottom_up_oracle() {
        let (mut t, c, db) = setup(ELIGIBLE_KB, "eligible(b)");
        let mut t2 = SymbolTable::new();
        let p = parse_program(ELIGIBLE_KB, &mut t2).unwrap();
        let s = AndOrStrategy::left_to_right(&c.graph);
        for name in ["ann", "bob", "carol", "dave"] {
            let q = parse_query(&format!("eligible({name})"), &mut t).unwrap();
            let ctx = c.classify(&q, &db).unwrap();
            let got = execute(&c.graph, &s, &ctx).proved;
            let q2 = parse_query(&format!("eligible({name})"), &mut t2).unwrap();
            let want = qpl_datalog::eval::holds(&p.rules, &p.facts, &q2);
            assert_eq!(got, want, "disagreement on {name}");
        }
    }

    #[test]
    fn conjunction_cost_reflects_partial_failure() {
        // bob is enrolled but hasn't paid: the conjunction pays for both
        // probes before failing, then tries the scholarship rule.
        let (mut t, c, db) = setup(ELIGIBLE_KB, "eligible(b)");
        let s = AndOrStrategy::left_to_right(&c.graph);
        let q = parse_query("eligible(bob)", &mut t).unwrap();
        let ctx = c.classify(&q, &db).unwrap();
        let run = execute(&c.graph, &s, &ctx);
        assert!(!run.proved);
        // r1 (1) + enrolled probe (1) + paid probe (1) + r2 (1) +
        // scholarship probe (1) = 5.
        assert_eq!(run.cost, 5.0);
    }

    #[test]
    fn join_rule_rejected_with_explanation() {
        let mut t = SymbolTable::new();
        let p = parse_program(
            "gp(X, Z) :- parent(X, Y), parent(Y, Z). parent(a, b). parent(b, c).",
            &mut t,
        )
        .unwrap();
        let qf = parse_query_form("gp(b,b)", &mut t).unwrap();
        match compile_andor(&p.rules, &qf, &t, 32) {
            Err(GraphError::Compile(m)) => {
                assert!(m.contains("joins body literals"), "{m}");
            }
            other => panic!("expected join rejection, got {other:?}"),
        }
    }

    #[test]
    fn head_bound_shared_variables_are_fine() {
        // X occurs in both literals but is head-bound (comes from the
        // query): no join, both literals independently checkable.
        let kb = "ok(X) :- lo(X), hi(X). lo(a). hi(a). lo(b).";
        let (mut t, c, db) = setup(kb, "ok(b)");
        let s = AndOrStrategy::left_to_right(&c.graph);
        for (name, want) in [("a", true), ("b", false), ("z", false)] {
            let q = parse_query(&format!("ok({name})"), &mut t).unwrap();
            let ctx = c.classify(&q, &db).unwrap();
            assert_eq!(execute(&c.graph, &s, &ctx).proved, want, "{name}");
        }
    }

    #[test]
    fn guarded_conjunctive_rule() {
        // Constant in the head guards the whole conjunction.
        let kb = "vip(gold) :- member(gold, L), sponsor(gold, S).\n\
                  vip(X) :- founder(X).\n\
                  member(gold, lounge). sponsor(gold, acme). founder(eve).";
        let (mut t, c, db) = setup(kb, "vip(b)");
        let s = AndOrStrategy::left_to_right(&c.graph);
        for (name, want) in [("gold", true), ("eve", true), ("bob", false)] {
            let q = parse_query(&format!("vip({name})"), &mut t).unwrap();
            let ctx = c.classify(&q, &db).unwrap();
            assert_eq!(execute(&c.graph, &s, &ctx).proved, want, "{name}");
        }
        // For non-gold queries the guarded reduction is blocked.
        let q = parse_query("vip(eve)", &mut t).unwrap();
        let ctx = c.classify(&q, &db).unwrap();
        let guarded = c
            .graph
            .arc_ids()
            .find(|&a| matches!(c.binding(a), HyperBinding::Reduction { guards, .. } if !guards.is_empty()))
            .unwrap();
        assert!(ctx.is_blocked(guarded));
    }

    #[test]
    fn nested_conjunctions() {
        let kb = "top(X) :- mid(X), extra(X).\n\
                  mid(X) :- base1(X), base2(X).\n\
                  base1(k). base2(k). extra(k). base1(j). extra(j).";
        let (mut t, c, db) = setup(kb, "top(b)");
        let s = AndOrStrategy::left_to_right(&c.graph);
        for (name, want) in [("k", true), ("j", false)] {
            let q = parse_query(&format!("top({name})"), &mut t).unwrap();
            let ctx = c.classify(&q, &db).unwrap();
            assert_eq!(execute(&c.graph, &s, &ctx).proved, want, "{name}");
        }
    }
}
