//! # qpl-obs — observability substrate
//!
//! A zero-overhead-when-disabled metrics layer for the qpl workspace.
//! Hot paths never pay for telemetry they do not use: the default
//! [`NoopSink`] reports `enabled() == false`, every instrumented call
//! site is an *opt-in variant* of the uninstrumented method (the plain
//! methods are untouched), and [`SpanTimer`] skips the clock read
//! entirely when the sink is disabled.
//!
//! The model is deliberately minimal — four primitives cover everything
//! the learning loop and the query engine need to report:
//!
//! * **counters** — monotonically increasing `u64` totals
//!   (`datalog.retrievals`, `engine.cross_context_cache.hits`, …);
//! * **values** — `f64` observations aggregated as
//!   count/sum/min/max (`engine.qp.cost`, …);
//! * **spans** — wall-clock durations in nanoseconds, aggregated the
//!   same way (`report.sampling`, …);
//! * **events** — structured per-decision records with a small set of
//!   numeric fields (`core.pib.candidate` carries the observed Δ sum,
//!   the Chernoff threshold, and the accept/reject verdict).
//!
//! [`MemorySink`] aggregates everything in-process with deterministic
//! (sorted) iteration order, and [`JsonSnapshot`] renders a
//! schema-stable JSON document — hand-rolled, no serialization
//! dependency — suitable for diffing across PRs next to `BENCH_*.json`.
//!
//! This crate depends on nothing (not even the rest of the workspace),
//! so every qpl crate — including the bottom-layer Datalog substrate —
//! can accept a `&mut dyn MetricsSink` without dependency cycles.
//!
//! ## Determinism contract
//!
//! Sinks observe; they never steer. An instrumented run must produce
//! bit-identical *results* to the uninstrumented run (the parallel
//! harness tests enforce this). Per-worker throughput events are the
//! one scheduling-dependent output: their *totals* are invariant, but
//! their per-worker split depends on which thread claimed which block.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
mod memory;
pub mod names;
mod sink;

pub use json::{JsonSnapshot, SCHEMA_VERSION};
pub use memory::{Event, MemorySink, SpanStats, ValueStats, DEFAULT_MAX_EVENTS};
pub use sink::{MetricsSink, NoopSink, SpanTimer};
