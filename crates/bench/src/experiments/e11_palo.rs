//! E11 — the PALO variant (\[CG91\], end of Section 3.2).
//!
//! Paper claims: PALO behaves like PIB but *stops* once it certifies an
//! ε-local optimum (`∀Θ ∈ T(Θ_m): C[Θ] ≥ C[Θ_m] − ε`). We verify the
//! certificate's soundness across random instances, and contrast with
//! PIB, which keeps sampling forever.

use crate::report::{fm, Report};
use qpl_core::{Palo, PaloConfig, TransformationSet};
use qpl_engine::{par_map_indexed, ParConfig};
use qpl_graph::expected::ContextDistribution;
use qpl_graph::{Context, Strategy};
use qpl_workload::generator::{random_retrieval_model, random_tree_with_retrievals, TreeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E11 and returns the report.
pub fn run(seed: u64) -> Report {
    let mut r = Report::new("E11: PALO — certified ε-local optima");
    r.note("60 random instances per ε; certificate checked against exact expected costs");

    let mut rows = Vec::new();
    let mut all_sound = true;
    let cfg = ParConfig::auto();
    for eps in [1.5, 0.75] {
        let runs = 60u64;
        // Each trial depends only on its index t via per-trial seeds, so
        // the instances run in parallel; per-trial results come back in t
        // order and the aggregation below matches the old serial loop.
        let per_run: Vec<(u64, u64, bool)> = par_map_indexed(runs as usize, &cfg, |ti| {
            let t = ti as u64;
            let mut gen_rng = StdRng::seed_from_u64(seed + t);
            let g = random_tree_with_retrievals(&mut gen_rng, &TreeParams::default(), 2, 5);
            let truth = random_retrieval_model(&mut gen_rng, &g, (0.05, 0.95));
            let mut palo = Palo::new(&g, Strategy::left_to_right(&g), PaloConfig::new(eps, 0.05));
            let mut rng = StdRng::seed_from_u64(seed + 40_000 + t);
            let mut n = 0u64;
            // One Context buffer per trial: `sample_into` consumes the
            // same randomness as `sample`, so the stream is unchanged.
            let mut ctx = Context::all_open(&g);
            loop {
                truth.sample_into(&mut rng, &mut ctx);
                if !palo.observe(&g, &ctx) {
                    break;
                }
                n += 1;
                if n > 2_000_000 {
                    break;
                }
            }
            // Soundness: every neighbour within ε of the final strategy.
            let set = TransformationSet::all_sibling_swaps(&g);
            let c_final = truth.expected_cost(&g, palo.strategy());
            let is_sound = set
                .neighbors(&g, palo.strategy())
                .iter()
                .all(|(_, s)| truth.expected_cost(&g, s) >= c_final - eps - 1e-9);
            (n, palo.climbs().len() as u64, is_sound)
        });
        let sound = per_run.iter().filter(|(_, _, s)| *s).count() as u64;
        let climbed: u64 = per_run.iter().map(|(_, c, _)| *c).sum();
        let mut sample_counts: Vec<u64> = per_run.iter().map(|(n, _, _)| *n).collect();
        sample_counts.sort_unstable();
        let sound_rate = sound as f64 / runs as f64;
        if sound_rate < 0.95 {
            all_sound = false;
        }
        rows.push(vec![
            fm(eps, 2),
            runs.to_string(),
            format!("{} ({}%)", sound, fm(100.0 * sound_rate, 1)),
            climbed.to_string(),
            sample_counts[sample_counts.len() / 2].to_string(),
            sample_counts.last().expect("non-empty").to_string(),
        ]);
    }
    r.table(
        "PALO certificates (δ = 0.05 → ≥ 95% sound expected)",
        &["ε", "runs", "sound certificates", "total climbs", "median samples", "max samples"],
        rows,
    );
    r.note("PIB, by contrast, never terminates: its anytime guarantee is monotone improvement");

    r.set_verdict(if all_sound {
        "REPRODUCED (certificates sound at the 1−δ level; cost of termination is exact replay)"
    } else {
        "MISMATCH (certificate soundness below 1−δ)"
    });
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn e11_reproduces() {
        let r = super::run(1111);
        assert!(r.verdict.starts_with("REPRODUCED"), "{r}");
    }
}
