//! Four-way strategy comparison on the paper's workloads, emitting
//! `BENCH_fourway.json`.
//!
//! ```text
//! bench_fourway [--out BENCH_fourway.json]
//! ```
//!
//! The contenders, all answering the same query mixes:
//!
//! * `learned` — PIB trained on the workload's context distribution
//!   (the paper's contribution: statistics about *queries*);
//! * `greedy` — the statistics-free visible-selectivity orderer
//!   ([`GreedyHeuristic`]), planned once from the program text alone;
//! * `smith` — the fact-count heuristic the paper critiques;
//! * `unrewritten` — bottom-up semi-naive evaluation with no strategy
//!   at all (saturates the model, reads the answer off).
//!
//! The first three lower through the same `StrategyProgram` executor,
//! so their measured times differ only by arc order. Two extra
//! sections probe where the cheap baselines break: a learned-vs-greedy
//! crossover sweep over blended section-2/minors query mixes, and the
//! binding-aware (magic) rewrite against unrewritten saturation on the
//! layered reachability KB.

use qpl_core::{GreedyHeuristic, Pib, PibConfig, SmithHeuristic};
use qpl_datalog::eval::EvalScratch;
use qpl_datalog::magic::rewrite;
use qpl_datalog::parser::{parse_program, parse_query};
use qpl_datalog::{eval, Adornment, Atom, Database, Fact, QueryForm, RuleBase};
use qpl_engine::{MagicRunner, QueryMixOracle, QueryProcessor};
use qpl_graph::compile::CompiledGraph;
use qpl_graph::expected::{ContextDistribution, FiniteDistribution};
use qpl_graph::{Context, Strategy};
use qpl_obs::{names, MemorySink};
use qpl_workload::generator::{recursive_path_kb, source_reachability_query, RecursiveKbParams};
use qpl_workload::paper::{pauper, reachability, university, PAUPER_KB, REACHABILITY_KB};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Base RNG seed (experiments re-derive per-sweep seeds from it).
const SEED: u64 = 20260808;
/// PIB observations per training run.
const TRAIN: usize = 4_000;
/// Timed repetitions per query.
const REPS: usize = 300;
/// Greedy planning must stay under this many microseconds (the whole
/// point of a statistics-free planner is that it costs nothing).
const GREEDY_PLAN_US_CEILING: u64 = 1_000;

/// One strategy arm's scorecard on one workload.
struct Arm {
    name: &'static str,
    /// Exact expected graph cost under the workload distribution
    /// (`None` for the strategy-free bottom-up arm).
    expected: Option<f64>,
    /// Mix-weighted measured microseconds per query.
    us: f64,
}

/// One workload's four-way row.
struct Row {
    name: &'static str,
    arms: Vec<Arm>,
    greedy_plan_us: u64,
}

/// Mix-weighted per-query wall time of a strategy arm.
fn strategy_us(cg: &CompiledGraph, s: &Strategy, db: &Database, mix: &[(Atom, f64)]) -> f64 {
    let qp = QueryProcessor::new(cg, s.clone());
    let mut weighted = 0.0;
    for (q, w) in mix {
        let t0 = Instant::now();
        for _ in 0..REPS {
            qp.run(q, db).expect("query runs");
        }
        weighted += w * (t0.elapsed().as_micros() as f64 / REPS as f64);
    }
    weighted
}

/// Mix-weighted per-query wall time of strategy-free bottom-up
/// saturation (the `unrewritten` arm).
fn bottomup_us(rules: &RuleBase, db: &Database, mix: &[(Atom, f64)]) -> f64 {
    let mut weighted = 0.0;
    for (q, w) in mix {
        let t0 = Instant::now();
        for _ in 0..REPS {
            eval::answers(rules, db, q);
        }
        weighted += w * (t0.elapsed().as_micros() as f64 / REPS as f64);
    }
    weighted
}

/// Runs all four arms on one workload.
fn run_workload(
    name: &'static str,
    cg: &CompiledGraph,
    rules: &RuleBase,
    db: &Database,
    mix: Vec<(Atom, f64)>,
    seed: u64,
) -> Row {
    let g = &cg.graph;
    let oracle = QueryMixOracle::new(cg, db.clone(), mix.clone()).expect("mix is valid");
    let dist = oracle.to_distribution();

    let mut pib = Pib::new(g, Strategy::left_to_right(g), PibConfig::new(0.05));
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..TRAIN {
        let idx = dist.sample_index(&mut rng);
        pib.observe(g, dist.context(idx));
    }
    let learned = pib.strategy().clone();

    let mut sink = MemorySink::new();
    let greedy = GreedyHeuristic::strategy_observed(cg, &mut sink).expect("tree graph");
    let greedy_plan_us = sink.counter_total(names::plan::GREEDY_MICROS);
    assert!(
        greedy_plan_us < GREEDY_PLAN_US_CEILING,
        "{name}: greedy planning must stay under 1 ms (took {greedy_plan_us} µs)"
    );

    let smith = SmithHeuristic::strategy(cg, db).expect("tree graph");

    let arms = vec![
        Arm {
            name: "learned",
            expected: Some(dist.expected_cost(g, &learned)),
            us: strategy_us(cg, &learned, db, &mix),
        },
        Arm {
            name: "greedy",
            expected: Some(dist.expected_cost(g, &greedy)),
            us: strategy_us(cg, &greedy, db, &mix),
        },
        Arm {
            name: "smith",
            expected: Some(dist.expected_cost(g, &smith)),
            us: strategy_us(cg, &smith, db, &mix),
        },
        Arm { name: "unrewritten", expected: None, us: bottomup_us(rules, db, &mix) },
    ];
    Row { name, arms, greedy_plan_us }
}

/// Learned-vs-greedy expected cost over `(1-λ)·section2 + λ·minors`
/// blends; returns per-λ costs and the first λ where learned wins
/// strictly.
fn crossover_sweep() -> (Vec<(f64, f64, f64)>, Option<f64>) {
    let u = university();
    let g = u.graph();
    let (dp, dg) = (u.d_p(), u.d_g());
    let greedy = GreedyHeuristic::strategy(&u.compiled).expect("tree graph");
    let mut rows = Vec::new();
    let mut crossover = None;
    for step in 0..=10u32 {
        let lam = f64::from(step) / 10.0;
        // minors(0.4): queried individuals are never professors; 40%
        // are grads. Blending merges the shared all-blocked class.
        let dist = FiniteDistribution::new(vec![
            (Context::with_blocked(g, &[dg]), (1.0 - lam) * 0.60),
            (Context::with_blocked(g, &[dp]), (1.0 - lam) * 0.15 + lam * 0.4),
            (Context::with_blocked(g, &[dp, dg]), (1.0 - lam) * 0.25 + lam * 0.6),
        ])
        .expect("blend weights sum to 1");
        let mut pib = Pib::new(g, Strategy::left_to_right(g), PibConfig::new(0.05));
        let mut rng = StdRng::seed_from_u64(SEED + u64::from(step));
        for _ in 0..TRAIN {
            let idx = dist.sample_index(&mut rng);
            pib.observe(g, dist.context(idx));
        }
        let c_learned = dist.expected_cost(g, pib.strategy());
        let c_greedy = dist.expected_cost(g, &greedy);
        if crossover.is_none() && c_learned < c_greedy - 1e-9 {
            crossover = Some(lam);
        }
        rows.push((lam, c_learned, c_greedy));
    }
    (rows, crossover)
}

/// Magic-rewritten vs unrewritten bottom-up on the layered
/// reachability KB (column 0 an isolated chain, columns 1+ densely
/// cross-connected — see `bench_tabling`'s `magic_speedup` scenario
/// for the gated version of this measurement).
struct MagicRow {
    layers: usize,
    width: usize,
    full_us: f64,
    fresh_us: f64,
    warm_us: f64,
    full_derived: usize,
    magic_derived: usize,
}

fn magic_section() -> MagicRow {
    let params = RecursiveKbParams { layers: 12, width: 5 };
    let (mut table, rules, db, _) =
        recursive_path_kb(&params, |_, i, j| i == j || (i > 0 && j > 0));
    let query = source_reachability_query(&mut table);
    let form = QueryForm { predicate: query.predicate, adornment: Adornment::of_atom(&query) };
    let program = rewrite(&rules, &form, &mut table);

    let reps = 10usize;
    let t0 = Instant::now();
    let mut full_answers = Vec::new();
    for _ in 0..reps {
        full_answers = eval::answers(&rules, &db, &query);
    }
    let full_us = t0.elapsed().as_micros() as f64 / reps as f64;
    let full_derived = eval::seminaive(&rules, &db).len() - db.len();

    let mut scratch = EvalScratch::new();
    let t0 = Instant::now();
    let mut magic = program.evaluate_into(&db, &query, &mut scratch);
    for _ in 1..reps {
        magic = program.evaluate_into(&db, &query, &mut scratch);
    }
    let fresh_us = t0.elapsed().as_micros() as f64 / reps as f64;
    assert_eq!(magic.answers, full_answers, "magic must be answer-set-identical");
    assert!(magic.derived < full_derived, "magic must derive strictly fewer facts");

    let mut runner = MagicRunner::new(&rules, &form, &mut table);
    runner.run_magic(&db, &query);
    let t0 = Instant::now();
    for _ in 0..reps * 20 {
        assert!(runner.run_magic(&db, &query).cache_hit);
    }
    let warm_us = t0.elapsed().as_micros() as f64 / (reps * 20) as f64;

    MagicRow {
        layers: params.layers,
        width: params.width,
        full_us,
        fresh_us,
        warm_us,
        full_derived,
        magic_derived: magic.derived,
    }
}

fn arm_json(a: &Arm) -> String {
    let expected = a.expected.map_or("null".to_string(), |c| format!("{c:.3}"));
    format!(
        "{{\"arm\": \"{}\", \"expected_cost\": {expected}, \"measured_us\": {:.2}}}",
        a.name, a.us
    )
}

fn main() {
    let out_path = {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match args.iter().position(|a| a == "--out") {
            Some(pos) if pos + 1 < args.len() => args[pos + 1].clone(),
            _ => "BENCH_fourway.json".to_string(),
        }
    };

    let mut rows = Vec::new();

    // Figure 1 over DB₁ with the section-2 query mix.
    {
        let mut u = university();
        let mix = u.section2_queries();
        let program = parse_program(qpl_workload::paper::UNIVERSITY_KB, &mut u.table)
            .expect("paper KB parses");
        rows.push(run_workload(
            "university-section2",
            &u.compiled,
            &program.rules,
            &u.db1,
            mix,
            SEED,
        ));
    }

    // Figure 1 over DB₂ statistics (2000 prof / 500 grad) with the
    // adversarial minors mix: the queried kids are never professors,
    // 40% are grads — fact counts point the wrong way.
    {
        let mut u = university();
        let mut db = u.db2();
        let grad = u.table.lookup("grad").expect("grad interned");
        for i in 0..4 {
            let kid = u.table.intern(&format!("kid{i}"));
            db.insert(Fact::new(grad, vec![kid])).expect("consistent arity");
        }
        let mix: Vec<(Atom, f64)> = (0..10)
            .map(|i| {
                let q = parse_query(&format!("instructor(kid{i})"), &mut u.table)
                    .expect("query parses");
                (q, 0.1)
            })
            .collect();
        let program = parse_program(qpl_workload::paper::UNIVERSITY_KB, &mut u.table)
            .expect("paper KB parses");
        rows.push(run_workload(
            "university-minors-db2",
            &u.compiled,
            &program.rules,
            &db,
            mix,
            SEED + 1,
        ));
    }

    // Section 4.1's guarded-arc KB.
    {
        let (mut table, cg, db) = reachability();
        let program = parse_program(REACHABILITY_KB, &mut table).expect("KB parses");
        let mix = vec![
            (parse_query("instructor(russ)", &mut table).expect("parses"), 0.40),
            (parse_query("instructor(manolis)", &mut table).expect("parses"), 0.35),
            (parse_query("instructor(fred)", &mut table).expect("parses"), 0.25),
        ];
        rows.push(run_workload("reachability", &cg, &program.rules, &db, mix, SEED + 2));
    }

    // Section 5.2's ownership KB (flat four-way disjunction).
    {
        let (mut table, cg, db) = pauper();
        let program = parse_program(PAUPER_KB, &mut table).expect("KB parses");
        let mix = vec![
            (parse_query("owns(midas, Y)", &mut table).expect("parses"), 0.50),
            (parse_query("owns(croesus, Y)", &mut table).expect("parses"), 0.20),
            (parse_query("owns(onassis, Y)", &mut table).expect("parses"), 0.20),
            (parse_query("owns(diogenes, Y)", &mut table).expect("parses"), 0.10),
        ];
        rows.push(run_workload("pauper", &cg, &program.rules, &db, mix, SEED + 3));
    }

    for row in &rows {
        let cells: Vec<String> = row
            .arms
            .iter()
            .map(|a| {
                let e = a.expected.map_or("—".to_string(), |c| format!("{c:.2}"));
                format!("{} E[c]={e} {:.1}µs", a.name, a.us)
            })
            .collect();
        println!(
            "{}: {} (greedy planned in {} µs)",
            row.name,
            cells.join(" | "),
            row.greedy_plan_us
        );
    }

    let (sweep, crossover) = crossover_sweep();
    let at_one = sweep.last().expect("grid is non-empty");
    assert!(
        at_one.1 < at_one.2 - 1e-9,
        "learned must beat greedy on the pure minors mix ({} vs {})",
        at_one.1,
        at_one.2
    );
    let crossover_lam = crossover.expect("a crossover exists on the λ grid");
    println!(
        "crossover: learned overtakes greedy at λ = {crossover_lam:.1} \
         (λ=1: learned {:.3} vs greedy {:.3})",
        at_one.1, at_one.2
    );

    let magic = magic_section();
    println!(
        "magic (layers={} width={}): unrewritten {:.1} µs ({} derived) vs fresh {:.1} µs \
         ({} derived) vs warm {:.2} µs",
        magic.layers,
        magic.width,
        magic.full_us,
        magic.full_derived,
        magic.fresh_us,
        magic.magic_derived,
        magic.warm_us,
    );

    let workloads = rows
        .iter()
        .map(|row| {
            let arms = row.arms.iter().map(arm_json).collect::<Vec<_>>().join(",\n        ");
            format!(
                "    {{\n      \"workload\": \"{}\",\n      \"greedy_plan_us\": {},\n      \
                 \"arms\": [\n        {arms}\n      ]\n    }}",
                row.name, row.greedy_plan_us
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let sweep_rows = sweep
        .iter()
        .map(|(lam, l, gr)| {
            format!("    {{\"lambda\": {lam:.1}, \"learned\": {l:.3}, \"greedy\": {gr:.3}}}")
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"four-way strategy comparison: learned (PIB) vs greedy \
         (statistics-free) vs smith (fact counts) vs unrewritten (bottom-up saturation)\",\n  \
         \"seed\": {SEED},\n  \"pib_observations\": {TRAIN},\n  \"reps_per_query\": {REPS},\n  \
         \"workloads\": [\n{workloads}\n  ],\n  \
         \"crossover\": {{\n    \"blend\": \"(1-lambda)*section2 + lambda*minors(grad_rate \
         0.4)\",\n    \"crossover_lambda\": {crossover_lam:.1},\n    \"grid\": [\n{sweep_rows}\n    \
         ]\n  }},\n  \
         \"magic\": {{\n    \"workload\": \"layers={} width={} reachability (column 0 an \
         isolated chain, columns 1+ densely cross-connected), query path(n0_0, W)\",\n    \
         \"unrewritten_us\": {:.1},\n    \"magic_fresh_us\": {:.1},\n    \
         \"magic_warm_us\": {:.2},\n    \"unrewritten_derived\": {},\n    \
         \"magic_derived\": {}\n  }}\n}}\n",
        magic.layers,
        magic.width,
        magic.full_us,
        magic.fresh_us,
        magic.warm_us,
        magic.full_derived,
        magic.magic_derived,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_fourway.json");
    println!("wrote {out_path}");
}
