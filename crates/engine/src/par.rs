//! Deterministic scoped-thread batch runner for Monte-Carlo outer loops.
//!
//! The estimators in this repo (PIB's `Δ̃` paired differences, PAO's
//! retrieval counters, the E5/E7/E11/E15 experiment loops) all consume
//! streams of i.i.d. context draws. This module splits such a stream of
//! `n` samples across `W` worker threads **without changing the result**:
//! the aggregate is bit-for-bit identical for any worker count, including
//! `W = 1`.
//!
//! Three ingredients make that hold:
//!
//! 1. **Counter-based seeding.** No RNG state is shared or threaded
//!    between samples. Sample `i` derives its own generator from
//!    `sample_seed(master_seed, i)` (a SplitMix64-style mix), so the
//!    randomness consumed by sample `i` depends only on `(master_seed, i)`
//!    — never on which worker ran it or what ran before it.
//! 2. **Fixed blocking.** The stream is cut into fixed-size blocks
//!    (`ParConfig::block`). Each block is folded into its own fresh
//!    accumulator. Workers claim whole blocks from a shared atomic
//!    counter, so scheduling only decides *who* computes a block, never
//!    *what* the block computes.
//! 3. **Block-ordered merge.** After the scope barrier the per-block
//!    partials are sorted by block index and merged left-to-right. The
//!    merge sequence is therefore a pure function of `(n, block)` — the
//!    same floating-point additions in the same order, every time.
//!
//! The canonical semantics is "merge of per-block folds in block order";
//! the serial `W = 1` path uses the *same* decomposition rather than one
//! long fold, which is what makes 1-vs-N bit-identical (a single whole-
//! stream fold would associate float additions differently).
//!
//! Built on `std::thread::scope` only — no rayon, no crossbeam (see
//! DESIGN.md's dependency-budget note).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Worker/block configuration for [`batch_fold`] and [`par_map_indexed`].
#[derive(Debug, Clone, Copy)]
pub struct ParConfig {
    /// Number of worker threads (clamped to ≥ 1). Any value yields the
    /// same aggregates; it only changes wall-clock time.
    pub workers: usize,
    /// Samples per block — the unit of work claiming *and* of partial
    /// aggregation. Part of the result's semantics: changing it changes
    /// how float additions associate (changing `workers` does not).
    pub block: usize,
}

impl ParConfig {
    /// Default block size: big enough to amortise claim traffic, small
    /// enough to load-balance a few thousand samples over 8 workers.
    pub const DEFAULT_BLOCK: usize = 64;

    /// `workers` threads with the default block size.
    pub fn with_workers(workers: usize) -> Self {
        Self { workers, block: Self::DEFAULT_BLOCK }
    }

    /// `workers` threads with one block per `width`-word context plane
    /// (`width * 64` samples), so a [`batch_fold_blocks`] step can fill
    /// and execute exactly one [`ContextBatch`](qpl_graph::batch::
    /// ContextBatch) of that plane width per block. Per-lane values stay
    /// bit-identical to scalar folds at any width; note the block size
    /// is part of the fold's semantics (it decides how partial-sum
    /// additions associate), so pick a width per experiment, not per
    /// run.
    ///
    /// # Panics
    /// Invariant assert: panics if `width` is not a supported plane
    /// width.
    pub fn with_plane_width(workers: usize, width: usize) -> Self {
        assert!(matches!(width, 1 | 2 | 4 | 8), "plane width {width} is not one of 1/2/4/8");
        Self { workers, block: width * qpl_graph::batch::LANES }
    }

    /// One thread per available core (1 if detection fails).
    pub fn auto() -> Self {
        let workers = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
        Self::with_workers(workers)
    }
}

impl Default for ParConfig {
    fn default() -> Self {
        Self::auto()
    }
}

/// Derives the seed for sample `sample_index` of a batch keyed by
/// `master_seed`. SplitMix64 finalisation of the pair: statistically
/// independent streams for distinct indices, and reproducible from the
/// pair alone — the heart of worker-count invariance.
pub fn sample_seed(master_seed: u64, sample_index: u64) -> u64 {
    let mut z = master_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(sample_index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fresh generator for sample `sample_index` of batch `master_seed`.
pub fn sample_rng(master_seed: u64, sample_index: u64) -> StdRng {
    StdRng::seed_from_u64(sample_seed(master_seed, sample_index))
}

/// Folds samples `0..n` into an accumulator, in parallel, with
/// worker-count-invariant results.
///
/// * `make` builds a fresh (empty) accumulator — called once per block
///   plus once for the final result.
/// * `step` folds sample `i` into a block's accumulator. All per-sample
///   randomness must come from [`sample_rng`]`(seed, i)` (or be otherwise
///   a pure function of `i`) for the invariance guarantee to hold.
/// * `merge` absorbs the partial for the *next* block in index order into
///   the running result (so order-sensitive merges are well-defined).
///
/// # Panics
/// Propagates panics from worker closures.
pub fn batch_fold<A, Mk, St, Mg>(n: usize, cfg: &ParConfig, make: Mk, step: St, merge: Mg) -> A
where
    A: Send,
    Mk: Fn() -> A + Sync,
    St: Fn(&mut A, usize) + Sync,
    Mg: Fn(&mut A, A),
{
    batch_fold_scratch(n, cfg, &make, || (), |acc, (), i| step(acc, i), merge)
}

/// [`batch_fold`] with a **per-worker scratch**: each worker thread builds
/// one scratch value with `make_scratch` when it starts and carries it
/// across every block it claims; `step` receives it alongside the block
/// accumulator. The serial `W = 1` path uses a single scratch for the
/// whole stream.
///
/// The scratch is for *memoization and buffer reuse only* — per-worker
/// [`CrossContextCache`](crate::cache::CrossContextCache)s, reusable
/// [`RunScratch`](qpl_graph::context::RunScratch)es, preallocated
/// [`Context`](qpl_graph::context::Context) buffers. Which blocks share a
/// scratch depends on scheduling, so worker-count invariance holds **iff
/// `step`'s effect on the accumulator is independent of the scratch's
/// contents** (a warm cache may make a sample faster, never different).
/// Scratch-derived *statistics* (hit rates etc.) are scheduling-dependent
/// by nature; folding them into the accumulator is allowed, but only the
/// scratch-independent components remain worker-count invariant — report
/// and assert cache statistics from a serial (`workers: 1`) run only.
///
/// # Panics
/// Propagates panics from worker closures.
pub fn batch_fold_scratch<A, S, MkA, MkS, St, Mg>(
    n: usize,
    cfg: &ParConfig,
    make: MkA,
    make_scratch: MkS,
    step: St,
    merge: Mg,
) -> A
where
    A: Send,
    MkA: Fn() -> A + Sync,
    MkS: Fn() -> S + Sync,
    St: Fn(&mut A, &mut S, usize) + Sync,
    Mg: Fn(&mut A, A),
{
    let block = cfg.block.max(1);
    let fold_block = |scratch: &mut S, b: usize| {
        let mut acc = make();
        for i in (b * block)..((b + 1) * block).min(n) {
            step(&mut acc, scratch, i);
        }
        (b, acc)
    };
    let n_blocks = n.div_ceil(block);
    let mut partials = run_blocks_scratch(n_blocks, cfg.workers, &make_scratch, &fold_block);
    partials.sort_by_key(|(b, _)| *b);
    let mut out = make();
    for (_, part) in partials {
        merge(&mut out, part);
    }
    out
}

/// [`batch_fold_scratch`] at **block granularity**: `step` receives each
/// block's whole sample-index range (`lo..hi`) instead of one index at a
/// time, so a step can process the block as a unit — the shape the
/// bit-parallel batch executor wants, where one block (the default block
/// size is 64 = one `u64` of lanes) becomes one `ContextBatch` filled
/// from [`sample_rng`]`(seed, i)` per lane and executed in a single
/// sweep.
///
/// The blocking, claiming, and block-ordered merge are identical to
/// [`batch_fold_scratch`]; a step that folds its range one index at a
/// time is bit-identical to the per-sample API, and worker-count
/// invariance holds under the same scratch contract.
///
/// # Panics
/// Propagates panics from worker closures.
pub fn batch_fold_blocks<A, S, MkA, MkS, St, Mg>(
    n: usize,
    cfg: &ParConfig,
    make: MkA,
    make_scratch: MkS,
    step: St,
    merge: Mg,
) -> A
where
    A: Send,
    MkA: Fn() -> A + Sync,
    MkS: Fn() -> S + Sync,
    St: Fn(&mut A, &mut S, std::ops::Range<usize>) + Sync,
    Mg: Fn(&mut A, A),
{
    let block = cfg.block.max(1);
    let fold_block = |scratch: &mut S, b: usize| {
        let mut acc = make();
        step(&mut acc, scratch, (b * block)..((b + 1) * block).min(n));
        (b, acc)
    };
    let n_blocks = n.div_ceil(block);
    let mut partials = run_blocks_scratch(n_blocks, cfg.workers, &make_scratch, &fold_block);
    partials.sort_by_key(|(b, _)| *b);
    let mut out = make();
    for (_, part) in partials {
        merge(&mut out, part);
    }
    out
}

/// [`batch_fold_blocks`] with the same telemetry as
/// [`batch_fold_scratch_observed`]: an `engine.par.batch_fold` span,
/// batch/sample/block counters, and per-worker throughput events.
///
/// # Panics
/// Propagates panics from worker closures.
pub fn batch_fold_blocks_observed<A, S, MkA, MkS, St, Mg>(
    n: usize,
    cfg: &ParConfig,
    make: MkA,
    make_scratch: MkS,
    step: St,
    merge: Mg,
    sink: &mut dyn qpl_obs::MetricsSink,
) -> A
where
    A: Send,
    MkA: Fn() -> A + Sync,
    MkS: Fn() -> S + Sync,
    St: Fn(&mut A, &mut S, std::ops::Range<usize>) + Sync,
    Mg: Fn(&mut A, A),
{
    let timer = qpl_obs::SpanTimer::start(sink, "engine.par.batch_fold");
    let enabled = sink.enabled();
    let block = cfg.block.max(1);
    let fold_block = |scratch: &mut S, b: usize| {
        let mut acc = make();
        let lo = b * block;
        let hi = ((b + 1) * block).min(n);
        step(&mut acc, scratch, lo..hi);
        ((b, acc), (hi - lo) as u64)
    };
    let n_blocks = n.div_ceil(block);
    let (mut partials, tallies) =
        run_blocks_weighted(n_blocks, cfg.workers, &make_scratch, &fold_block, enabled);
    partials.sort_by_key(|(b, _)| *b);
    let mut out = make();
    for (_, part) in partials {
        merge(&mut out, part);
    }
    timer.finish(sink);
    sink.counter("engine.par.batches", 1);
    sink.counter("engine.par.samples", n as u64);
    sink.counter("engine.par.blocks", n_blocks as u64);
    if enabled {
        sink.counter("engine.par.workers_used", tallies.len() as u64);
        for (w, t) in tallies.iter().enumerate() {
            sink.event(
                "engine.par.worker",
                &[
                    ("worker", w as f64),
                    ("blocks", t.blocks as f64),
                    ("samples", t.samples as f64),
                    ("busy_ns", t.busy_ns as f64),
                ],
            );
        }
    }
    out
}

/// [`batch_fold_scratch`] with telemetry: the identical fold (same
/// blocks, same merge order, bit-identical accumulator for any worker
/// count — property-tested against the unobserved variant), wrapped in
/// an `engine.par.batch_fold` span and followed by batch counters plus
/// one `engine.par.worker` event per worker thread reporting its block
/// and sample throughput.
///
/// The *totals* across worker events (blocks, samples) are worker-count
/// invariant; the per-worker *split* and `busy_ns` depend on which
/// thread claimed which block, and are the one scheduling-dependent
/// output the observability layer has (see the crate-level determinism
/// contract in `qpl-obs`). With a disabled sink no clocks are read and
/// no events are built.
///
/// # Panics
/// Propagates panics from worker closures.
#[allow(clippy::too_many_arguments)]
pub fn batch_fold_scratch_observed<A, S, MkA, MkS, St, Mg>(
    n: usize,
    cfg: &ParConfig,
    make: MkA,
    make_scratch: MkS,
    step: St,
    merge: Mg,
    sink: &mut dyn qpl_obs::MetricsSink,
) -> A
where
    A: Send,
    MkA: Fn() -> A + Sync,
    MkS: Fn() -> S + Sync,
    St: Fn(&mut A, &mut S, usize) + Sync,
    Mg: Fn(&mut A, A),
{
    let timer = qpl_obs::SpanTimer::start(sink, "engine.par.batch_fold");
    let enabled = sink.enabled();
    let block = cfg.block.max(1);
    let fold_block = |scratch: &mut S, b: usize| {
        let mut acc = make();
        let lo = b * block;
        let hi = ((b + 1) * block).min(n);
        for i in lo..hi {
            step(&mut acc, scratch, i);
        }
        ((b, acc), (hi - lo) as u64)
    };
    let n_blocks = n.div_ceil(block);
    let (mut partials, tallies) =
        run_blocks_weighted(n_blocks, cfg.workers, &make_scratch, &fold_block, enabled);
    partials.sort_by_key(|(b, _)| *b);
    let mut out = make();
    for (_, part) in partials {
        merge(&mut out, part);
    }
    timer.finish(sink);
    sink.counter("engine.par.batches", 1);
    sink.counter("engine.par.samples", n as u64);
    sink.counter("engine.par.blocks", n_blocks as u64);
    if enabled {
        sink.counter("engine.par.workers_used", tallies.len() as u64);
        for (w, t) in tallies.iter().enumerate() {
            sink.event(
                "engine.par.worker",
                &[
                    ("worker", w as f64),
                    ("blocks", t.blocks as f64),
                    ("samples", t.samples as f64),
                    ("busy_ns", t.busy_ns as f64),
                ],
            );
        }
    }
    out
}

/// Maps `f` over `0..n` in parallel and returns the results **in index
/// order** (`out[i] = f(i)`). Use for experiment outer loops whose trials
/// are independent but whose aggregation is order-sensitive: compute in
/// parallel, aggregate serially in trial order, and the output is
/// identical to the old serial loop.
///
/// # Panics
/// Propagates panics from worker closures.
pub fn par_map_indexed<T, F>(n: usize, cfg: &ParConfig, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let produce = |i: usize| (i, f(i));
    let pairs = run_blocks(n, cfg.workers, &produce);
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    for (i, v) in pairs {
        out[i] = Some(v);
    }
    out.into_iter().map(|slot| slot.expect("every index produced exactly once")).collect()
}

/// Runs `job(0..n_jobs)` across `workers` scoped threads with atomic
/// claiming, returning the results in completion order (callers that
/// care re-order by the index `job` embeds in its output).
fn run_blocks<T, F>(n_jobs: usize, workers: usize, job: &F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_blocks_scratch(n_jobs, workers, &|| (), &|(), b| job(b))
}

/// [`run_blocks`] with a per-worker scratch: each thread builds one
/// scratch on entry (so `S` need not be `Send`) and threads it through
/// every job it claims.
fn run_blocks_scratch<S, T, MkS, F>(
    n_jobs: usize,
    workers: usize,
    make_scratch: &MkS,
    job: &F,
) -> Vec<T>
where
    T: Send,
    MkS: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    run_blocks_weighted(n_jobs, workers, make_scratch, &|s: &mut S, b| (job(s, b), 0), false).0
}

/// Per-worker throughput tallies from one batch. The split across
/// workers is scheduling-dependent; only the totals are invariant.
#[derive(Debug, Clone, Copy, Default)]
struct WorkerTally {
    /// Blocks this worker claimed and folded.
    blocks: u64,
    /// Job-reported weights (samples) summed over those blocks.
    samples: u64,
    /// Wall-clock nanoseconds from the worker's first claim attempt to
    /// its exit (0 when `timed` is off — no clocks are read).
    busy_ns: u64,
}

/// The claiming core: like [`run_blocks_scratch`] but each job also
/// reports a weight (its sample count), tallied per worker. `timed`
/// gates every clock read so the unobserved paths stay clock-free.
fn run_blocks_weighted<S, T, MkS, F>(
    n_jobs: usize,
    workers: usize,
    make_scratch: &MkS,
    job: &F,
    timed: bool,
) -> (Vec<T>, Vec<WorkerTally>)
where
    T: Send,
    MkS: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> (T, u64) + Sync,
{
    let workers = workers.max(1).min(n_jobs.max(1));
    if workers == 1 {
        let mut scratch = make_scratch();
        let start = timed.then(Instant::now);
        let mut tally = WorkerTally::default();
        let out = (0..n_jobs)
            .map(|b| {
                let (t, w) = job(&mut scratch, b);
                tally.blocks += 1;
                tally.samples += w;
                t
            })
            .collect();
        if let Some(start) = start {
            tally.busy_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        }
        return (out, vec![tally]);
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut scratch = make_scratch();
                    let start = timed.then(Instant::now);
                    let mut tally = WorkerTally::default();
                    let mut local = Vec::new();
                    loop {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b >= n_jobs {
                            break;
                        }
                        let (t, w) = job(&mut scratch, b);
                        tally.blocks += 1;
                        tally.samples += w;
                        local.push(t);
                    }
                    if let Some(start) = start {
                        tally.busy_ns =
                            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    }
                    (local, tally)
                })
            })
            .collect();
        let mut outs = Vec::new();
        let mut tallies = Vec::new();
        for h in handles {
            let (local, tally) = h.join().expect("batch worker panicked");
            outs.extend(local);
            tallies.push(tally);
        }
        (outs, tallies)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, RngCore};

    fn fold_sums(n: usize, workers: usize, block: usize) -> (f64, u64) {
        let cfg = ParConfig { workers, block };
        batch_fold(
            n,
            &cfg,
            || (0.0f64, 0u64),
            |acc, i| {
                let mut rng = sample_rng(42, i as u64);
                acc.0 += rng.gen::<f64>();
                acc.1 += 1;
            },
            |acc, part| {
                acc.0 += part.0;
                acc.1 += part.1;
            },
        )
    }

    #[test]
    fn batch_fold_is_worker_count_invariant() {
        let (base_sum, base_count) = fold_sums(1000, 1, 64);
        assert_eq!(base_count, 1000);
        for workers in [2, 3, 4, 8] {
            let (sum, count) = fold_sums(1000, workers, 64);
            assert_eq!(count, 1000);
            assert_eq!(sum.to_bits(), base_sum.to_bits(), "W={workers} diverged from W=1");
        }
    }

    #[test]
    fn batch_fold_scratch_is_worker_count_invariant() {
        use std::collections::HashMap;
        // The scratch memoizes a pure function of the sample's class, so a
        // warm memo changes speed, never results — the contract under which
        // per-worker caches preserve worker-count invariance.
        let run = |workers: usize| {
            let cfg = ParConfig { workers, block: 16 };
            batch_fold_scratch(
                500,
                &cfg,
                || 0.0f64,
                HashMap::<u64, f64>::new,
                |acc, memo, i| {
                    let class = (i % 7) as u64;
                    let v = *memo.entry(class).or_insert_with(|| sample_rng(9, class).gen::<f64>());
                    *acc += v;
                },
                |acc, part| *acc += part,
            )
        };
        let base = run(1);
        for w in [2, 3, 8] {
            assert_eq!(run(w).to_bits(), base.to_bits(), "W={w} diverged from W=1");
        }
    }

    #[test]
    fn batch_fold_handles_ragged_tail_and_empty() {
        let (a, n_a) = fold_sums(130, 1, 64); // 64 + 64 + 2
        let (b, n_b) = fold_sums(130, 4, 64);
        assert_eq!((n_a, a.to_bits()), (n_b, b.to_bits()));
        let (zero, n_zero) = fold_sums(0, 4, 64);
        assert_eq!((zero, n_zero), (0.0, 0));
    }

    #[test]
    fn block_size_is_semantic_worker_count_is_not() {
        // Same samples, different blocking: counts agree and sums agree to
        // rounding, but the association of additions legitimately differs.
        let (a, _) = fold_sums(1000, 1, 64);
        let (b, _) = fold_sums(1000, 1, 128);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn par_map_indexed_preserves_index_order() {
        for workers in [1, 2, 4] {
            let cfg = ParConfig { workers, block: 8 };
            let out = par_map_indexed(100, &cfg, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn observed_fold_is_bit_identical_to_unobserved() {
        // Satellite: metrics-enabled parallel runs must be bit-identical
        // to metrics-disabled runs modulo the sink — for every worker
        // count, with both an enabled and a disabled sink.
        let run_observed = |workers: usize, sink: &mut dyn qpl_obs::MetricsSink| {
            let cfg = ParConfig { workers, block: 64 };
            batch_fold_scratch_observed(
                1000,
                &cfg,
                || (0.0f64, 0u64),
                || (),
                |acc, (), i| {
                    let mut rng = sample_rng(42, i as u64);
                    acc.0 += rng.gen::<f64>();
                    acc.1 += 1;
                },
                |acc, part| {
                    acc.0 += part.0;
                    acc.1 += part.1;
                },
                sink,
            )
        };
        let (base_sum, base_count) = fold_sums(1000, 1, 64);
        for workers in [1, 2, 4, 8] {
            let mut mem = qpl_obs::MemorySink::new();
            let (sum, count) = run_observed(workers, &mut mem);
            assert_eq!(count, base_count);
            assert_eq!(sum.to_bits(), base_sum.to_bits(), "W={workers} enabled sink diverged");
            let (sum, count) = run_observed(workers, &mut qpl_obs::NoopSink);
            assert_eq!(count, base_count);
            assert_eq!(sum.to_bits(), base_sum.to_bits(), "W={workers} noop sink diverged");
        }
    }

    #[test]
    fn observed_fold_worker_totals_are_invariant() {
        for workers in [1, 2, 4] {
            let mut sink = qpl_obs::MemorySink::new();
            let cfg = ParConfig { workers, block: 16 };
            let n = batch_fold_scratch_observed(
                130, // ragged tail: 8 full blocks + 2
                &cfg,
                || 0u64,
                || (),
                |acc, (), _| *acc += 1,
                |acc, part| *acc += part,
                &mut sink,
            );
            assert_eq!(n, 130);
            assert_eq!(sink.counter_total("engine.par.samples"), 130);
            assert_eq!(sink.counter_total("engine.par.blocks"), 9);
            assert_eq!(sink.span_stats("engine.par.batch_fold").unwrap().count, 1);
            // The per-worker split is scheduling-dependent; the totals
            // across worker events are not.
            let (mut blocks, mut samples) = (0u64, 0u64);
            for e in sink.events_named("engine.par.worker") {
                blocks += e.field("blocks").unwrap() as u64;
                samples += e.field("samples").unwrap() as u64;
            }
            assert_eq!(blocks, 9, "W={workers}");
            assert_eq!(samples, 130, "W={workers}");
        }
    }

    #[test]
    fn block_fold_matches_per_sample_fold_bitwise() {
        // The block-granular API folding its range index-by-index must be
        // bit-identical to the per-sample API, for every worker count.
        let (base_sum, base_count) = fold_sums(1000, 1, 64);
        for workers in [1, 2, 4, 8] {
            let cfg = ParConfig { workers, block: 64 };
            let (sum, count) = batch_fold_blocks(
                1000,
                &cfg,
                || (0.0f64, 0u64),
                || (),
                |acc, (), range| {
                    for i in range {
                        let mut rng = sample_rng(42, i as u64);
                        acc.0 += rng.gen::<f64>();
                        acc.1 += 1;
                    }
                },
                |acc, part| {
                    acc.0 += part.0;
                    acc.1 += part.1;
                },
            );
            assert_eq!(count, base_count);
            assert_eq!(sum.to_bits(), base_sum.to_bits(), "W={workers}");
            let mut sink = qpl_obs::MemorySink::new();
            let (sum, count) = batch_fold_blocks_observed(
                1000,
                &cfg,
                || (0.0f64, 0u64),
                || (),
                |acc, (), range| {
                    for i in range {
                        let mut rng = sample_rng(42, i as u64);
                        acc.0 += rng.gen::<f64>();
                        acc.1 += 1;
                    }
                },
                |acc, part| {
                    acc.0 += part.0;
                    acc.1 += part.1;
                },
                &mut sink,
            );
            assert_eq!(count, base_count);
            assert_eq!(sum.to_bits(), base_sum.to_bits(), "W={workers} observed");
            assert_eq!(sink.counter_total("engine.par.samples"), 1000);
            assert_eq!(sink.counter_total("engine.par.blocks"), 16);
        }
    }

    #[test]
    fn block_fold_with_wide_planes_matches_per_sample_scalar_runs() {
        // One block = one width-W ContextBatch: filling a 1/2/4/8-word
        // plane from sample_rng(seed, i) per lane and executing it in a
        // single sweep folds the same per-lane costs, in the same lane
        // (= sample-index) order, as the per-sample scalar path — for
        // every supported plane width and worker count.
        use qpl_graph::batch::{execute_batch, BatchRun, ContextBatch, LaneMask};
        use qpl_graph::context::RunScratch;
        use qpl_graph::program::execute_program_into;
        use qpl_graph::program::StrategyProgram;
        use qpl_graph::{ContextDistribution, GraphBuilder, IndependentModel, Strategy};

        let mut b = GraphBuilder::new("G");
        let root = b.root();
        for i in 0..6 {
            let (_, n) = b.reduction(root, &format!("R{i}"), 1.0 + i as f64, &format!("n{i}"));
            b.retrieval(n, &format!("D{i}"), 2.0 + i as f64);
        }
        let g = b.finish().unwrap();
        let model = IndependentModel::uniform(&g, 0.55).unwrap();
        let p = StrategyProgram::compile(&g, &Strategy::left_to_right(&g)).unwrap();
        let n = 1000usize;

        let scalar_sum = {
            let cfg = ParConfig { workers: 1, block: 64 };
            batch_fold(
                n,
                &cfg,
                || 0.0f64,
                |acc, i| {
                    let mut rng = sample_rng(7, i as u64);
                    let ctx = model.sample(&mut rng);
                    let mut scratch = RunScratch::new(&g);
                    execute_program_into(&p, &ctx, &mut scratch);
                    *acc += scratch.cost();
                },
                |acc, part| *acc += part,
            )
        };

        for width in [1usize, 2, 4, 8] {
            for workers in [1usize, 3] {
                let cfg = ParConfig::with_plane_width(workers, width);
                assert_eq!(cfg.block, width * 64);
                let sum = batch_fold_blocks(
                    n,
                    &cfg,
                    || 0.0f64,
                    || {
                        (
                            ContextBatch::new(g.arc_count(), cfg.block),
                            BatchRun::new(),
                            Vec::<rand::rngs::StdRng>::new(),
                        )
                    },
                    |acc, (batch, run, rngs), range| {
                        let lanes = range.len();
                        batch.reset(g.arc_count(), lanes);
                        rngs.clear();
                        rngs.extend(range.clone().map(|i| sample_rng(7, i as u64)));
                        model.sample_batch_into(rngs, batch);
                        execute_batch(&p, batch, LaneMask::ALL, run);
                        for lane in 0..lanes {
                            *acc += run.cost(lane);
                        }
                    },
                    |acc, part| *acc += part,
                );
                // Per-lane costs are bit-identical; the fold's partial
                // sums associate per block, so compare against a scalar
                // fold *of the same block size* for bit equality.
                let scalar_same_block = batch_fold(
                    n,
                    &ParConfig { workers: 1, block: cfg.block },
                    || 0.0f64,
                    |acc, i| {
                        let mut rng = sample_rng(7, i as u64);
                        let ctx = model.sample(&mut rng);
                        let mut scratch = RunScratch::new(&g);
                        execute_program_into(&p, &ctx, &mut scratch);
                        *acc += scratch.cost();
                    },
                    |acc, part| *acc += part,
                );
                assert_eq!(
                    sum.to_bits(),
                    scalar_same_block.to_bits(),
                    "width {width} workers {workers} diverged from scalar"
                );
                // And all block sizes agree to rounding on this sum.
                assert!((sum - scalar_sum).abs() < 1e-9, "width {width}");
            }
        }
    }

    #[test]
    fn block_fold_ranges_partition_the_stream() {
        let cfg = ParConfig { workers: 4, block: 64 };
        let ranges = batch_fold_blocks(
            130,
            &cfg,
            Vec::new,
            || (),
            |acc: &mut Vec<(usize, usize)>, (), range| acc.push((range.start, range.end)),
            |acc, part| acc.extend(part),
        );
        assert_eq!(ranges, vec![(0, 64), (64, 128), (128, 130)]);
    }

    #[test]
    fn sample_seed_decorrelates_neighbours() {
        let a = sample_seed(7, 0);
        let b = sample_seed(7, 1);
        let c = sample_seed(8, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Streams from adjacent indices should not be shifted copies.
        let mut r0 = sample_rng(7, 0);
        let mut r1 = sample_rng(7, 1);
        let s0: Vec<u64> = (0..4).map(|_| r0.next_u64()).collect();
        let s1: Vec<u64> = (0..4).map(|_| r1.next_u64()).collect();
        assert_ne!(s0, s1);
    }
}
