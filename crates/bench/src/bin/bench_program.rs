//! Measures the strategy-program compiler and the bit-parallel batch
//! executor against the scalar tree-walk, emitting `BENCH_program.json`.
//!
//! ```text
//! bench_program [--out BENCH_program.json] [--samples N]
//! ```
//!
//! Three execution paths answer the same pre-sampled context stream on
//! the layered-tree workload the tabling experiment (E18) and the
//! parallel harness benchmark draw from:
//!
//! * `scalar tree-walk` — [`cost_into`] walking `Strategy` arc order
//!   with HashMap-free scratch (the seed's hot loop);
//! * `compiled program` — [`program_cost_into`] over the flat
//!   jump-threaded [`StrategyProgram`];
//! * `bit-parallel batch` — [`execute_batch`] over [`ContextBatch`]
//!   planes, swept across every plane width W ∈ {1, 2, 4, 8}
//!   (64/128/256/512 lanes per plane; restrict with `--widths 1,4,8`).
//!
//! Total cost sums are asserted bit-identical across all paths and all
//! plane widths (the lane/index drain order matches the scalar sample
//! order), and a PIB end-to-end section checks the batched learner
//! reaches the same strategy at the same throughput gain. Sampling
//! happens outside the timed region: this benchmark prices the
//! execution loop itself.

use qpl_core::{Pib, PibConfig};
use qpl_engine::par::sample_rng;
use qpl_graph::batch::{execute_batch, BatchRun, ContextBatch, LANES};
use qpl_graph::context::{cost_into, Context, RunScratch};
use qpl_graph::expected::ContextDistribution;
use qpl_graph::program::{program_cost_into, StrategyProgram};
use qpl_graph::Strategy;
use qpl_workload::generator::{random_retrieval_model, random_tree_with_retrievals, TreeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::num::NonZeroUsize;
use std::time::Instant;

/// Pre-sampled context stream: scalar contexts plus the same stream
/// packed into `plane_lanes`-lane batches (lane `l` of batch `b` is
/// sample `b * plane_lanes + l`, drawn from the identical per-index
/// RNG). `plane_lanes` = width × 64 picks the plane storage width.
struct Stream {
    contexts: Vec<Context>,
    batches: Vec<ContextBatch>,
}

fn sample_stream(
    g: &qpl_graph::InferenceGraph,
    model: &dyn ContextDistribution,
    seed: u64,
    n: usize,
    plane_lanes: usize,
) -> Stream {
    let mut contexts = Vec::with_capacity(n);
    let mut ctx = Context::all_open(g);
    for i in 0..n {
        let mut rng = sample_rng(seed, i as u64);
        model.sample_into(&mut rng, &mut ctx);
        contexts.push(ctx.clone()); // building the fixture, not the timed loop
    }
    let batches = pack_stream(g, model, seed, n, plane_lanes);
    Stream { contexts, batches }
}

/// Packs the same per-index RNG stream into `plane_lanes`-lane planes
/// (fixture building, outside every timed region).
fn pack_stream(
    g: &qpl_graph::InferenceGraph,
    model: &dyn ContextDistribution,
    seed: u64,
    n: usize,
    plane_lanes: usize,
) -> Vec<ContextBatch> {
    let mut batches = Vec::with_capacity(n.div_ceil(plane_lanes));
    let mut start = 0usize;
    while start < n {
        let lanes = (n - start).min(plane_lanes);
        let mut rngs: Vec<StdRng> =
            (start..start + lanes).map(|i| sample_rng(seed, i as u64)).collect();
        let mut batch = ContextBatch::new(g.arc_count(), lanes);
        model.sample_batch_into(&mut rngs, &mut batch);
        batches.push(batch);
        start += lanes;
    }
    batches
}

/// One workload shape: (contexts/sec, bit-identical sum) per path,
/// with the batch path swept over plane widths.
struct ShapeResult {
    retrievals: usize,
    arcs: usize,
    samples: usize,
    walk_cps: f64,
    reuse_cps: f64,
    program_cps: f64,
    /// (plane width in 64-lane words, contexts/sec) per swept width.
    batch_cps: Vec<(usize, f64)>,
}

fn bench_shape(
    seed: u64,
    retrievals: usize,
    depth: usize,
    n: usize,
    widths: &[usize],
) -> ShapeResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = TreeParams { max_depth: depth, max_branch: 4, ..Default::default() };
    let g = random_tree_with_retrievals(&mut rng, &params, retrievals, retrievals * 2);
    let model = random_retrieval_model(&mut rng, &g, (0.05, 0.6));
    let theta = Strategy::left_to_right(&g);
    let prog = StrategyProgram::compile(&g, &theta).expect("depth-first tree compiles");
    let stream = sample_stream(&g, &model, seed.wrapping_mul(31), n, LANES);

    // Best-of-`REPS` wall time per variant: the repeats defend against
    // scheduler noise on shared machines, and the minimum is the run
    // least polluted by it.
    const REPS: usize = 5;

    // The tree-walk exactly as the repo's Monte-Carlo harness calls it
    // per sample (`cost` allocates its run scratch every call).
    let mut walk_sum = 0.0f64;
    let mut walk_secs = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let mut sum = 0.0f64;
        for ctx in &stream.contexts {
            sum += qpl_graph::context::cost(&g, &theta, ctx);
        }
        walk_secs = walk_secs.min(t0.elapsed().as_secs_f64());
        walk_sum = sum;
    }

    let mut scratch = RunScratch::new(&g);
    let mut scalar_sum = 0.0f64;
    let mut scalar_secs = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let mut sum = 0.0f64;
        for ctx in &stream.contexts {
            sum += cost_into(&g, &theta, ctx, &mut scratch);
        }
        scalar_secs = scalar_secs.min(t0.elapsed().as_secs_f64());
        scalar_sum = sum;
    }

    let mut program_sum = 0.0f64;
    let mut program_secs = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let mut sum = 0.0f64;
        for ctx in &stream.contexts {
            sum += program_cost_into(&prog, ctx, &mut scratch);
        }
        program_secs = program_secs.min(t0.elapsed().as_secs_f64());
        program_sum = sum;
    }

    assert_eq!(walk_sum.to_bits(), scalar_sum.to_bits(), "scratch reuse changed the walk");
    assert_eq!(
        program_sum.to_bits(),
        scalar_sum.to_bits(),
        "compiled program diverged from the tree-walk"
    );

    // Plane-width sweep: the identical sample stream repacked into
    // width × 64-lane planes (repacking is fixture work, untimed); the
    // cost sum must land on the very same bits at every width.
    let mut run = BatchRun::new();
    let mut batch_cps = Vec::with_capacity(widths.len());
    for &width in widths {
        let batches = pack_stream(&g, &model, seed.wrapping_mul(31), n, width * LANES);
        let mut batch_sum = 0.0f64;
        let mut batch_secs = f64::INFINITY;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let mut sum = 0.0f64;
            for batch in &batches {
                execute_batch(&prog, batch, batch.active_mask(), &mut run);
                for lane in 0..batch.lanes() {
                    sum += run.cost(lane);
                }
            }
            batch_secs = batch_secs.min(t0.elapsed().as_secs_f64());
            batch_sum = sum;
        }
        assert_eq!(
            batch_sum.to_bits(),
            scalar_sum.to_bits(),
            "width-{width} batch executor diverged from the tree-walk"
        );
        batch_cps.push((width, n as f64 / batch_secs));
    }

    let widths_line =
        batch_cps.iter().map(|(w, cps)| format!("w{w} {cps:.0}/s")).collect::<Vec<_>>().join(", ");
    println!(
        "retrievals={retrievals} arcs={}: walk {:.0}/s, walk+reuse {:.0}/s, program {:.0}/s, \
         batch [{widths_line}] (sums bit-identical at every width)",
        g.arc_count(),
        n as f64 / walk_secs,
        n as f64 / scalar_secs,
        n as f64 / program_secs,
    );
    ShapeResult {
        retrievals,
        arcs: g.arc_count(),
        samples: n,
        walk_cps: n as f64 / walk_secs,
        reuse_cps: n as f64 / scalar_secs,
        program_cps: n as f64 / program_secs,
        batch_cps,
    }
}

/// PIB end-to-end: scalar `observe` vs `observe_batch` on the same
/// stream; asserts the learned strategy is identical before reporting
/// throughput.
fn bench_pib(seed: u64, n: usize) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = TreeParams { max_depth: 6, max_branch: 4, ..Default::default() };
    let g = random_tree_with_retrievals(&mut rng, &params, 32, 64);
    let model = random_retrieval_model(&mut rng, &g, (0.05, 0.6));
    let theta = Strategy::left_to_right(&g);
    let stream = sample_stream(&g, &model, seed.wrapping_mul(17), n, LANES);

    let mut scalar = Pib::new(&g, theta.clone(), PibConfig::new(0.1));
    let t0 = Instant::now();
    for ctx in &stream.contexts {
        scalar.observe_quiet(&g, ctx);
    }
    let scalar_secs = t0.elapsed().as_secs_f64();

    let mut batched = Pib::new(&g, theta, PibConfig::new(0.1));
    let t0 = Instant::now();
    for batch in &stream.batches {
        batched.observe_batch(&g, batch);
    }
    let batch_secs = t0.elapsed().as_secs_f64();

    assert_eq!(
        scalar.strategy().arcs(),
        batched.strategy().arcs(),
        "batched PIB learned a different strategy"
    );
    println!(
        "PIB end-to-end: scalar {:.0}/s, batched {:.0}/s (same final strategy)",
        n as f64 / scalar_secs,
        n as f64 / batch_secs,
    );
    (n as f64 / scalar_secs, n as f64 / batch_secs)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(pos) if pos + 1 < args.len() => args[pos + 1].clone(),
        _ => "BENCH_program.json".to_string(),
    };
    let n = match args.iter().position(|a| a == "--samples") {
        Some(pos) if pos + 1 < args.len() => {
            args[pos + 1].parse().expect("--samples takes a count")
        }
        _ => 200_000usize,
    };
    let widths: Vec<usize> = match args.iter().position(|a| a == "--widths") {
        Some(pos) if pos + 1 < args.len() => args[pos + 1]
            .split(',')
            .map(|w| {
                let w: usize = w.trim().parse().expect("--widths takes e.g. 1,4,8");
                assert!(matches!(w, 1 | 2 | 4 | 8), "plane widths are 1, 2, 4, or 8");
                w
            })
            .collect(),
        _ => vec![1, 2, 4, 8],
    };
    let cores = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);

    let shapes = [
        bench_shape(21, 32, 6, n, &widths),
        bench_shape(22, 128, 8, n, &widths),
        bench_shape(23, 512, 10, n / 4, &widths),
    ];
    let shape_rows: Vec<String> = shapes
        .iter()
        .map(|s| {
            // The width-1 plane is the baseline; `batch_per_sec` keeps
            // naming it so older readers of this file stay correct.
            let w1 = s.batch_cps.first().map_or(0.0, |&(_, cps)| cps);
            let (best_w, best_cps) = s
                .batch_cps
                .iter()
                .copied()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("at least one width swept");
            let by_width = s
                .batch_cps
                .iter()
                .map(|(w, cps)| format!("\"w{w}\": {cps:.0}"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "    {{\"retrievals\": {}, \"arcs\": {}, \"samples\": {}, \
                 \"tree_walk_per_sec\": {:.0}, \"walk_reuse_per_sec\": {:.0}, \
                 \"program_per_sec\": {:.0}, \"batch_per_sec\": {:.0}, \
                 \"batch_by_width_per_sec\": {{{by_width}}}, \
                 \"best_width\": {best_w}, \"best_width_vs_w1\": {:.2}, \
                 \"batch_vs_tree_walk\": {:.2}, \"batch_vs_walk_reuse\": {:.2}}}",
                s.retrievals,
                s.arcs,
                s.samples,
                s.walk_cps,
                s.reuse_cps,
                s.program_cps,
                w1,
                if w1 > 0.0 { best_cps / w1 } else { 1.0 },
                best_cps / s.walk_cps,
                best_cps / s.reuse_cps
            )
        })
        .collect();

    let (pib_scalar, pib_batch) = bench_pib(24, n / 2);

    let json = format!(
        "{{\n  \"bench\": \"strategy programs + bit-parallel batch execution\",\n  \
         \"cores\": {cores},\n  \
         \"note\": \"tree_walk is the per-sample loop as the MC harness calls it (scratch \
         allocated per call); walk_reuse hoists the scratch; batch sweeps plane widths \
         (w1..w8 = 64..512 lanes per plane, same [u64; W] executor); sums asserted \
         bit-identical across every path and width; sampling excluded from timing; \
         best-of-5 reps per variant; batch_per_sec is the w1 plane, best_width the \
         fastest swept width (best_width 1 = honest no-regression: on this box the \
         wider planes' dispatch amortization does not pay for their larger resident \
         footprint)\",\n  \
         \"execution_throughput\": [\n{}\n  ],\n  \
         \"pib_end_to_end\": {{\"scalar_per_sec\": {pib_scalar:.0}, \
         \"batched_per_sec\": {pib_batch:.0}, \"speedup\": {:.2}}}\n}}\n",
        shape_rows.join(",\n"),
        pib_batch / pib_scalar
    );
    std::fs::write(&out_path, &json).expect("write BENCH_program.json");
    println!("wrote {out_path} (cores={cores})");
}
