//! Measures tabled evaluation and the cross-context answer cache on the
//! layered-DAG reachability workload, emitting `BENCH_tabling.json`.
//!
//! ```text
//! bench_tabling [--out BENCH_tabling.json]
//! ```
//!
//! Three solver configurations answer the same exhaustive-failure query
//! `path(n0_0, sink)`:
//!
//! * `plain` — the seed's depth-bounded SLD solver (re-proves each
//!   shared path suffix once per derivation path, `width^layers` total);
//! * `tabled` — fresh tables per query (each subgoal proved once);
//! * `cached` — warm tables reused across queries, the steady state of a
//!   Monte-Carlo loop whose samples revisit few context classes.
//!
//! The speedups reported are algorithmic, so they do not depend on core
//! count — but the count is recorded anyway, for honesty about the
//! machine the numbers came from.

use qpl_datalog::table::TableStore;
use qpl_datalog::topdown::RetrievalStats;
use qpl_datalog::TopDown;
use qpl_workload::generator::{recursive_path_kb, RecursiveKbParams};
use std::num::NonZeroUsize;
use std::time::Instant;

fn main() {
    let out_path = {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match args.iter().position(|a| a == "--out") {
            Some(pos) if pos + 1 < args.len() => args[pos + 1].clone(),
            _ => "BENCH_tabling.json".to_string(),
        }
    };
    let cores = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);

    let mut rows = Vec::new();
    for layers in [8usize, 11, 14] {
        let params = RecursiveKbParams { layers, width: 2 };
        let (_, rules, db, sink_query) = recursive_path_kb(&params, |_, _, _| true);
        let solver = TopDown::new(&rules, &db);

        // Calibrate repetitions so each variant runs long enough to time.
        let reps = match layers {
            8 => 200usize,
            11 => 40,
            _ => 5,
        };

        let mut plain_stats = RetrievalStats::default();
        let t0 = Instant::now();
        for _ in 0..reps {
            assert!(solver
                .solve_with_stats(&sink_query, &mut plain_stats)
                .expect("within depth bound")
                .is_none());
        }
        let plain_us = t0.elapsed().as_micros() as f64 / reps as f64;

        let t0 = Instant::now();
        for _ in 0..reps {
            assert!(solver.solve_tabled(&sink_query).unwrap().is_none());
        }
        let tabled_us = t0.elapsed().as_micros() as f64 / reps as f64;

        let mut store = TableStore::new();
        let mut stats = RetrievalStats::default();
        assert!(solver.solve_tabled_in(&sink_query, &mut store, &mut stats).unwrap().is_none());
        let warm_reps = reps * 50;
        let t0 = Instant::now();
        for _ in 0..warm_reps {
            let mut stats = RetrievalStats::default();
            assert!(solver.solve_tabled_in(&sink_query, &mut store, &mut stats).unwrap().is_none());
        }
        let cached_us = t0.elapsed().as_micros() as f64 / warm_reps as f64;

        let retr = plain_stats.retrievals / reps as u64;
        let tabled_speedup = plain_us / tabled_us.max(1e-9);
        let cached_speedup = plain_us / cached_us.max(1e-9);
        println!(
            "layers={layers}: plain {plain_us:.1} µs ({retr} retrievals), tabled {tabled_us:.1} µs \
             ({tabled_speedup:.1}x), cached-warm {cached_us:.2} µs ({cached_speedup:.0}x)"
        );
        rows.push(format!(
            "    {{\"layers\": {layers}, \"width\": 2, \"plain_us\": {plain_us:.1}, \
             \"plain_retrievals\": {retr}, \"tabled_fresh_us\": {tabled_us:.1}, \
             \"tabled_speedup\": {tabled_speedup:.1}, \"cached_warm_us\": {cached_us:.2}, \
             \"cached_speedup\": {cached_speedup:.1}}}"
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"tabled top-down evaluation + cross-context answer cache\",\n  \
         \"cores\": {cores},\n  \
         \"workload\": \"layered-DAG reachability, exhaustive-failure query path(n0_0, sink)\",\n  \
         \"note\": \"speedups are algorithmic (plain SLD work grows like 2^layers, tabled stays \
         polynomial, warm cache skips re-proof entirely), so they hold at any core count\",\n  \
         \"tabling\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write BENCH_tabling.json");
    println!("wrote {out_path} (cores={cores})");
}
