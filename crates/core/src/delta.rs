//! Paired cost differences Δ and their observable under-estimates Δ̃.
//!
//! PIB must compare the running strategy `Θ` against an *unbuilt*
//! alternative `Θ'` using only what `Θ`'s execution revealed. Section 3
//! shows how: evaluate `Θ'` against the pessimistic completion of the
//! trace ("the value of Δ̃[Θ, Θ', I] corresponds to the value of
//! Δ[Θ, Θ', I] under the assumption that all of the arcs in the
//! unexplored part of the inference graph will be blocked"), giving
//!
//! ```text
//! Δ̃[Θ, Θ', I] = c(Θ, I) − c(Θ', I⁻)   ≤   Δ[Θ, Θ', I]
//! ```
//!
//! The property tests at the bottom verify the under-estimate inequality
//! on random contexts, and that Δ̃ is *exact* whenever the trace explored
//! everything `Θ'` needs.

use qpl_graph::context::{cost, cost_into, ArcOutcome, Context, RunScratch, Trace};
use qpl_graph::graph::{ArcId, InferenceGraph};
use qpl_graph::pessimistic::{pessimistic_completion, pessimistic_completion_into};
use qpl_graph::strategy::Strategy;

/// Reusable buffers for the Δ/Δ̃ hot path: one pessimistic-completion
/// context plus one execution scratch. PIB evaluates every candidate
/// against every observed context; with this scratch held across the
/// loop those probes allocate nothing.
#[derive(Debug, Clone)]
pub struct DeltaScratch {
    completed: Context,
    run: RunScratch,
}

impl DeltaScratch {
    /// Buffers sized for `g`.
    pub fn new(g: &InferenceGraph) -> Self {
        Self { completed: Context::all_open(g), run: RunScratch::new(g) }
    }
}

/// The exact paired difference `Δ[Θ, Θ', I] = c(Θ, I) − c(Θ', I)`.
/// Requires full knowledge of the context (used by oracles and tests;
/// PIB itself uses [`delta_tilde`]).
pub fn delta_exact(g: &InferenceGraph, theta: &Strategy, theta2: &Strategy, ctx: &Context) -> f64 {
    cost(g, theta, ctx) - cost(g, theta2, ctx)
}

/// [`delta_exact`] through reusable buffers — identical value, no
/// allocation per probe.
pub fn delta_exact_with(
    g: &InferenceGraph,
    theta: &Strategy,
    theta2: &Strategy,
    ctx: &Context,
    scratch: &mut DeltaScratch,
) -> f64 {
    cost_into(g, theta, ctx, &mut scratch.run) - cost_into(g, theta2, ctx, &mut scratch.run)
}

/// The observable under-estimate `Δ̃[Θ, Θ', I]`, computed from `Θ`'s
/// trace alone.
pub fn delta_tilde(g: &InferenceGraph, trace: &Trace, theta2: &Strategy) -> f64 {
    let completed = pessimistic_completion(g, trace);
    trace.cost - cost(g, theta2, &completed)
}

/// [`delta_tilde`] from raw run results (cost + events, e.g. read off a
/// [`RunScratch`]) through reusable buffers — identical value, no
/// allocation per probe.
pub fn delta_tilde_with(
    g: &InferenceGraph,
    observed_cost: f64,
    events: &[(ArcId, ArcOutcome)],
    theta2: &Strategy,
    scratch: &mut DeltaScratch,
) -> f64 {
    pessimistic_completion_into(g, events, &mut scratch.completed);
    observed_cost - cost_into(g, theta2, &scratch.completed, &mut scratch.run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::{SiblingSwap, TransformationSet};
    use qpl_graph::context::execute;
    use qpl_graph::graph::GraphBuilder;

    fn g_a() -> InferenceGraph {
        let mut b = GraphBuilder::new("instructor(κ)");
        let root = b.root();
        let (_, prof) = b.reduction(root, "R_p", 1.0, "prof(κ)");
        b.retrieval(prof, "D_p", 1.0);
        let (_, grad) = b.reduction(root, "R_g", 1.0, "grad(κ)");
        b.retrieval(grad, "D_g", 1.0);
        b.finish().unwrap()
    }

    fn g_b() -> InferenceGraph {
        let mut b = GraphBuilder::new("G(κ)");
        let root = b.root();
        let (_, a) = b.reduction(root, "R_ga", 1.0, "A(κ)");
        b.retrieval(a, "D_a", 1.0);
        let (_, s) = b.reduction(root, "R_gs", 1.0, "S(κ)");
        let (_, bb) = b.reduction(s, "R_sb", 1.0, "B(κ)");
        b.retrieval(bb, "D_b", 1.0);
        let (_, t) = b.reduction(s, "R_st", 1.0, "T(κ)");
        let (_, c) = b.reduction(t, "R_tc", 1.0, "C(κ)");
        b.retrieval(c, "D_c", 1.0);
        let (_, d) = b.reduction(t, "R_td", 1.0, "D(κ)");
        b.retrieval(d, "D_d", 1.0);
        b.finish().unwrap()
    }

    /// Section 3.1's three cases for G_A, observing Θ₁ (prof-first):
    /// solution only under R_g → Δ̃ = f*(R_p);
    /// no solution anywhere     → Δ̃ = 0;
    /// solution under R_p       → Δ̃ = −f*(R_g).
    #[test]
    fn section31_case_analysis() {
        let g = g_a();
        let theta1 = Strategy::left_to_right(&g);
        let swap =
            SiblingSwap::new(&g, g.arc_by_label("R_p").unwrap(), g.arc_by_label("R_g").unwrap())
                .unwrap();
        let theta2 = swap.apply(&g, &theta1).unwrap();
        let dp = g.arc_by_label("D_p").unwrap();
        let dg = g.arc_by_label("D_g").unwrap();

        // Case 1: grad holds, prof does not.
        let trace = execute(&g, &theta1, &Context::with_blocked(&g, &[dp]));
        assert_eq!(delta_tilde(&g, &trace, &theta2), 2.0, "Δ̃ = f*(R_p)");

        // Case 2: neither holds.
        let trace = execute(&g, &theta1, &Context::with_blocked(&g, &[dp, dg]));
        assert_eq!(delta_tilde(&g, &trace, &theta2), 0.0);

        // Case 3: prof holds (D_g unobserved → assumed blocked).
        let trace = execute(&g, &theta1, &Context::with_blocked(&g, &[dg]));
        assert_eq!(delta_tilde(&g, &trace, &theta2), -2.0, "Δ̃ = −f*(R_g)");
        // The true Δ in this context is also −2 (D_g really is blocked)…
        assert_eq!(delta_exact(&g, &theta1, &theta2, &Context::with_blocked(&g, &[dg])), -2.0);
        // …but if D_g were actually open, Δ = 0 > Δ̃ = −2: strictly
        // conservative.
        let trace = execute(&g, &theta1, &Context::all_open(&g));
        assert_eq!(delta_tilde(&g, &trace, &theta2), -2.0);
        assert_eq!(delta_exact(&g, &theta1, &theta2, &Context::all_open(&g)), 0.0);
    }

    /// Section 3.2's I_c analysis on G_B: Θ_ABCD observed with first
    /// success at D_c; D_d unknown. Δ̃[Θ_ABCD, Θ_ABDC, I_c] = −f*(R_td).
    #[test]
    fn section32_ic_analysis() {
        let g = g_b();
        let theta = Strategy::left_to_right(&g);
        let swap =
            SiblingSwap::new(&g, g.arc_by_label("R_tc").unwrap(), g.arc_by_label("R_td").unwrap())
                .unwrap();
        let theta_abdc = swap.apply(&g, &theta).unwrap();
        let i_c = Context::with_blocked(
            &g,
            &[g.arc_by_label("D_a").unwrap(), g.arc_by_label("D_b").unwrap()],
        );
        let trace = execute(&g, &theta, &i_c);
        assert_eq!(delta_tilde(&g, &trace, &theta_abdc), -2.0, "−f*(R_td)");
        // If D_d is truly open, the real Δ is f*(R_tc) − f*(R_td) = 0.
        assert_eq!(delta_exact(&g, &theta, &theta_abdc, &i_c), 0.0);
        // If D_d is truly blocked, Δ equals the pessimistic value.
        let i_c_blocked = Context::with_blocked(
            &g,
            &[
                g.arc_by_label("D_a").unwrap(),
                g.arc_by_label("D_b").unwrap(),
                g.arc_by_label("D_d").unwrap(),
            ],
        );
        assert_eq!(delta_exact(&g, &theta, &theta_abdc, &i_c_blocked), -2.0);
    }

    #[test]
    fn delta_tilde_exact_when_everything_observed() {
        // A context where Θ exhausts the graph: the pessimistic
        // completion is the truth, so Δ̃ = Δ.
        let g = g_b();
        let theta = Strategy::left_to_right(&g);
        let all_blocked: Vec<_> =
            ["D_a", "D_b", "D_c", "D_d"].iter().map(|l| g.arc_by_label(l).unwrap()).collect();
        let ctx = Context::with_blocked(&g, &all_blocked);
        let trace = execute(&g, &theta, &ctx);
        let set = TransformationSet::all_sibling_swaps(&g);
        for (_, theta2) in set.neighbors(&g, &theta) {
            assert_eq!(delta_tilde(&g, &trace, &theta2), delta_exact(&g, &theta, &theta2, &ctx));
        }
    }

    proptest::proptest! {
        /// Δ̃ ≤ Δ on random contexts for every neighbour of Θ_ABCD —
        /// the soundness property Theorem 1 rests on.
        #[test]
        fn tilde_under_estimates_exact(blocked_mask in 0u32..1024) {
            let g = g_b();
            let theta = Strategy::left_to_right(&g);
            let ctx = Context::from_fn(&g, |a| blocked_mask & (1 << a.index()) != 0);
            let trace = execute(&g, &theta, &ctx);
            let set = TransformationSet::all_sibling_swaps(&g);
            for (swap, theta2) in set.neighbors(&g, &theta) {
                let tilde = delta_tilde(&g, &trace, &theta2);
                let exact = delta_exact(&g, &theta, &theta2, &ctx);
                proptest::prop_assert!(
                    tilde <= exact + 1e-12,
                    "swap {:?}: Δ̃={} > Δ={} (mask {:b})", swap, tilde, exact, blocked_mask
                );
                // And Δ̃ stays within the declared range Λ.
                let lambda = swap.lambda(&g);
                proptest::prop_assert!(tilde.abs() <= lambda + 1e-12);
                proptest::prop_assert!(exact.abs() <= lambda + 1e-12);
            }
        }

        /// The same soundness property for a random *non-DFS* base
        /// strategy: Δ̃ is trace-based, so it works for any path-form Θ.
        #[test]
        fn scratch_variants_bitwise_match_allocating(blocked_mask in 0u32..1024) {
            // delta_tilde_with / delta_exact_with over ONE reused scratch
            // must reproduce the allocating functions bit-for-bit across
            // every neighbour and context.
            let g = g_b();
            let theta = Strategy::left_to_right(&g);
            let ctx = Context::from_fn(&g, |a| blocked_mask & (1 << a.index()) != 0);
            let trace = execute(&g, &theta, &ctx);
            let set = TransformationSet::all_sibling_swaps(&g);
            let mut scratch = DeltaScratch::new(&g);
            for (_, theta2) in set.neighbors(&g, &theta) {
                let tilde = delta_tilde(&g, &trace, &theta2);
                let tilde_s = delta_tilde_with(&g, trace.cost, &trace.events, &theta2, &mut scratch);
                proptest::prop_assert_eq!(tilde.to_bits(), tilde_s.to_bits());
                let exact = delta_exact(&g, &theta, &theta2, &ctx);
                let exact_s = delta_exact_with(&g, &theta, &theta2, &ctx, &mut scratch);
                proptest::prop_assert_eq!(exact.to_bits(), exact_s.to_bits());
            }
        }

        #[test]
        fn tilde_sound_for_interleaved_base(blocked_mask in 0u32..1024) {
            let g = g_b();
            let by = |l: &str| g.arc_by_label(l).unwrap();
            let theta = Strategy::from_arcs(&g, vec![
                by("R_gs"), by("R_sb"), by("D_b"),
                by("R_ga"), by("D_a"),
                by("R_st"), by("R_tc"), by("D_c"), by("R_td"), by("D_d"),
            ]).unwrap();
            let ctx = Context::from_fn(&g, |a| blocked_mask & (1 << a.index()) != 0);
            let trace = execute(&g, &theta, &ctx);
            let set = TransformationSet::all_sibling_swaps(&g);
            for (_, theta2) in set.neighbors(&g, &theta) {
                let tilde = delta_tilde(&g, &trace, &theta2);
                let exact = delta_exact(&g, &theta, &theta2, &ctx);
                proptest::prop_assert!(tilde <= exact + 1e-12);
            }
        }
    }
}
