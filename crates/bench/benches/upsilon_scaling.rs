//! Bench: `Υ_AOT` runtime scaling vs brute-force enumeration (E10).
//!
//! The block-merge algorithm stays near-linear in the number of arcs;
//! enumerating all path-form strategies is factorial. The crossover is
//! immediate: brute force is only benchmarked on tiny graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpl_core::{brute_force_optimal, upsilon_aot};
use qpl_workload::generator::{random_retrieval_model, random_tree_with_retrievals, TreeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_upsilon(c: &mut Criterion) {
    let mut group = c.benchmark_group("upsilon_aot");
    for retrievals in [8usize, 32, 128, 512] {
        let mut rng = StdRng::seed_from_u64(retrievals as u64);
        let params = TreeParams { max_depth: 8, max_branch: 4, ..Default::default() };
        let g = random_tree_with_retrievals(&mut rng, &params, retrievals, retrievals * 2);
        let m = random_retrieval_model(&mut rng, &g, (0.05, 0.95));
        group.bench_with_input(BenchmarkId::from_parameter(retrievals), &retrievals, |b, _| {
            b.iter(|| upsilon_aot(&g, std::hint::black_box(&m)).expect("tree"))
        });
    }
    group.finish();
}

fn bench_brute_force(c: &mut Criterion) {
    let mut group = c.benchmark_group("brute_force_optimal");
    group.sample_size(10);
    for retrievals in [3usize, 4] {
        let mut rng = StdRng::seed_from_u64(retrievals as u64 + 100);
        let g =
            random_tree_with_retrievals(&mut rng, &TreeParams::default(), retrievals, retrievals);
        let m = random_retrieval_model(&mut rng, &g, (0.05, 0.95));
        group.bench_with_input(BenchmarkId::from_parameter(retrievals), &retrievals, |b, _| {
            b.iter(|| {
                brute_force_optimal(&g, std::hint::black_box(&m), 10_000_000).expect("within cap")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_upsilon, bench_brute_force);
criterion_main!(benches);
