//! Property tests for live KB deltas against the cached query
//! processor: any interleaving of inserts and retracts must leave
//! `run_cost_cached` bit-identical to a from-scratch rebuild, and
//! deltas outside a strategy's dependency footprint must leave its
//! answer memo warm.

use proptest::prelude::*;
use qpl_datalog::parser::{parse_program, parse_query, parse_query_form};
use qpl_datalog::{Database, Fact, Symbol, SymbolTable};
use qpl_engine::{QueryProcessor, RunCache};
use qpl_graph::compile::{compile, CompileOptions, CompiledGraph};
use qpl_graph::context::RunScratch;

const KB: &str = "instructor(X) :- prof(X).\n\
                  instructor(X) :- grad(X).\n\
                  prof(p0). grad(g0).";

struct Rig {
    table: SymbolTable,
    compiled: CompiledGraph,
    db: Database,
    consts: Vec<Symbol>,
    preds: Vec<Symbol>,
}

fn rig() -> Rig {
    let mut table = SymbolTable::new();
    let program = parse_program(KB, &mut table).expect("KB parses");
    let form = parse_query_form("instructor(b)", &mut table).expect("form parses");
    let compiled =
        compile(&program.rules, &form, &table, &CompileOptions::default()).expect("KB compiles");
    let consts: Vec<Symbol> =
        ["p0", "g0", "c0", "c1", "c2"].iter().map(|c| table.intern(c)).collect();
    // prof and grad are footprint predicates; noise is not reachable
    // from the compiled graph at all.
    let preds: Vec<Symbol> = ["prof", "grad", "noise"].iter().map(|p| table.intern(p)).collect();
    Rig { table, compiled, db: program.facts, consts, preds }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Replay an arbitrary interleaving of insert/retract deltas,
    /// querying through one long-lived `RunCache` after every delta.
    /// Every cached answer and cost must be bit-identical to an
    /// uncached scalar run against an identically-rebuilt database.
    #[test]
    fn interleaved_deltas_match_a_fresh_rebuild(
        ops in proptest::collection::vec((0u8..2, 0u8..3, 0u8..5), 1..10)
    ) {
        let mut r = rig();
        let qp = QueryProcessor::left_to_right(&r.compiled);
        let mut cache = RunCache::new();
        let mut scratch = RunScratch::new(&r.compiled.graph);
        let queries: Vec<_> = ["p0", "g0", "c0", "c1", "c2"]
            .iter()
            .map(|c| parse_query(&format!("instructor({c})"), &mut r.table).unwrap())
            .collect();
        // The from-scratch twin: rebuilt by replaying the same ops into
        // a database that never saw a cache.
        let mut applied: Vec<(bool, Fact)> = Vec::new();
        for (op, pi, ci) in ops {
            let fact = Fact::new(r.preds[pi as usize], vec![r.consts[ci as usize]]);
            let is_insert = op == 0;
            if is_insert {
                r.db.insert(fact.clone()).unwrap();
            } else {
                r.db.retract(fact.clone()).unwrap();
            }
            applied.push((is_insert, fact));

            let mut rebuilt = parse_program(KB, &mut r.table).unwrap().facts;
            for (ins, f) in &applied {
                if *ins {
                    rebuilt.insert(f.clone()).unwrap();
                } else {
                    rebuilt.retract(f.clone()).unwrap();
                }
            }
            for q in &queries {
                let (cached_answer, cached_cost) =
                    qp.run_cost_cached(q, &r.db, &mut cache, &mut scratch).unwrap();
                let fresh_answer = qp.run_into(q, &rebuilt, &mut scratch).unwrap();
                let fresh_cost = scratch.cost();
                prop_assert_eq!(&cached_answer, &fresh_answer, "answer after delta");
                prop_assert_eq!(
                    cached_cost.to_bits(),
                    fresh_cost.to_bits(),
                    "cost bit-identical after delta"
                );
            }
        }
    }

    /// Deltas confined to predicates outside the footprint never
    /// invalidate, no matter how many pile up: hit counters keep
    /// growing across every update.
    #[test]
    fn out_of_footprint_churn_keeps_the_memo_warm(
        ops in proptest::collection::vec((0u8..2, 0u8..5), 1..12)
    ) {
        let mut r = rig();
        let qp = QueryProcessor::left_to_right(&r.compiled);
        let mut cache = RunCache::new();
        let mut scratch = RunScratch::new(&r.compiled.graph);
        let q = parse_query("instructor(p0)", &mut r.table).unwrap();
        let noise = r.preds[2];
        qp.run_cost_cached(&q, &r.db, &mut cache, &mut scratch).unwrap();
        let mut hits = cache.stats().hits;
        for (op, ci) in ops {
            let fact = Fact::new(noise, vec![r.consts[ci as usize]]);
            if op == 0 {
                r.db.insert(fact).unwrap();
            } else {
                r.db.retract(fact).unwrap();
            }
            qp.run_cost_cached(&q, &r.db, &mut cache, &mut scratch).unwrap();
            let now = cache.stats().hits;
            prop_assert!(now > hits, "every post-churn run is a warm hit");
            hits = now;
        }
        prop_assert_eq!(cache.stats().invalidations, 0);
    }
}

/// Two processors over the same database with disjoint footprints: a
/// delta aimed at family A flushes only A's memo; family B's hit
/// counter stays strictly positive across the update.
#[test]
fn disjoint_footprints_invalidate_independently() {
    let mut table = SymbolTable::new();
    let program = parse_program(
        "instructor(X) :- prof(X).\n\
         course(X) :- listed(X).\n\
         prof(russ). listed(cs101).",
        &mut table,
    )
    .unwrap();
    let mut db = program.facts;
    let form_a = parse_query_form("instructor(b)", &mut table).unwrap();
    let form_b = parse_query_form("course(b)", &mut table).unwrap();
    let opts = CompileOptions::default();
    let compiled_a = compile(&program.rules, &form_a, &table, &opts).unwrap();
    let compiled_b = compile(&program.rules, &form_b, &table, &opts).unwrap();
    let qp_a = QueryProcessor::left_to_right(&compiled_a);
    let qp_b = QueryProcessor::left_to_right(&compiled_b);
    let (mut cache_a, mut cache_b) = (RunCache::new(), RunCache::new());
    let mut scratch_a = RunScratch::new(&compiled_a.graph);
    let mut scratch_b = RunScratch::new(&compiled_b.graph);
    let qa = parse_query("instructor(russ)", &mut table).unwrap();
    let qb = parse_query("course(cs101)", &mut table).unwrap();

    // Warm both memos: miss, then hit.
    for _ in 0..2 {
        qp_a.run_cost_cached(&qa, &db, &mut cache_a, &mut scratch_a).unwrap();
        qp_b.run_cost_cached(&qb, &db, &mut cache_b, &mut scratch_b).unwrap();
    }
    assert_eq!(cache_a.stats().hits, 1);
    assert_eq!(cache_b.stats().hits, 1);

    // Delta on prof: in A's footprint, not in B's.
    let prof = table.lookup("prof").unwrap();
    let ada = table.intern("ada");
    db.insert(Fact::new(prof, vec![ada])).unwrap();

    qp_a.run_cost_cached(&qa, &db, &mut cache_a, &mut scratch_a).unwrap();
    qp_b.run_cost_cached(&qb, &db, &mut cache_b, &mut scratch_b).unwrap();
    assert_eq!(cache_a.stats().invalidations, 1, "family A flushed");
    assert_eq!(cache_a.stats().hits, 1, "A's post-delta run re-executed");
    assert_eq!(cache_b.stats().invalidations, 0, "family B untouched");
    assert_eq!(cache_b.stats().hits, 2, "B's hit counter grew across the delta");
}
