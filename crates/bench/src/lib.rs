//! # qpl-bench — the experiment harness and benchmarks
//!
//! Reproduces every worked example, equation, and theorem of Greiner
//! (PODS'92) as a paper-vs-measured report (modules [`experiments`]),
//! and hosts the Criterion benches (`benches/`). Run the full suite
//! with:
//!
//! ```text
//! cargo run -p qpl-bench --release --bin experiments
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
