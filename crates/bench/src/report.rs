//! Plain-text report formatting for the experiment harness.

use std::fmt;

/// A formatted experiment report: a title, prose lines describing the
/// paper's claim, and one or more aligned tables of paper-vs-measured
/// values.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment id and title, e.g. `E1: Figure 1 expected costs`.
    pub title: String,
    /// Prose lines (the paper's claim, our setup).
    pub notes: Vec<String>,
    /// Tables: `(caption, headers, rows)`.
    pub tables: Vec<(String, Vec<String>, Vec<Vec<String>>)>,
    /// One-line verdict, e.g. `REPRODUCED` / `REPRODUCED (with erratum)`.
    pub verdict: String,
}

impl Report {
    /// Creates an empty report with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Self { title: title.into(), ..Default::default() }
    }

    /// Adds a prose line.
    pub fn note(&mut self, line: impl Into<String>) -> &mut Self {
        self.notes.push(line.into());
        self
    }

    /// Adds a table.
    pub fn table(
        &mut self,
        caption: impl Into<String>,
        headers: &[&str],
        rows: Vec<Vec<String>>,
    ) -> &mut Self {
        self.tables.push((caption.into(), headers.iter().map(|s| s.to_string()).collect(), rows));
        self
    }

    /// Sets the verdict line.
    pub fn set_verdict(&mut self, v: impl Into<String>) -> &mut Self {
        self.verdict = v.into();
        self
    }
}

fn render_table(headers: &[String], rows: &[Vec<String>], out: &mut String) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let line = |out: &mut String, cells: &[String]| {
        out.push_str("  ");
        for (i, cell) in cells.iter().enumerate().take(cols) {
            out.push_str(cell);
            for _ in cell.chars().count()..widths[i] + 2 {
                out.push(' ');
            }
        }
        out.push('\n');
    };
    line(out, headers);
    out.push_str("  ");
    for w in &widths {
        out.push_str(&"-".repeat(*w));
        out.push_str("  ");
    }
    out.push('\n');
    for row in rows {
        line(out, row);
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        for n in &self.notes {
            out.push_str(&format!("  {n}\n"));
        }
        for (caption, headers, rows) in &self.tables {
            out.push('\n');
            if !caption.is_empty() {
                out.push_str(&format!("  [{caption}]\n"));
            }
            render_table(headers, rows, &mut out);
        }
        if !self.verdict.is_empty() {
            out.push_str(&format!("\n  verdict: {}\n", self.verdict));
        }
        write!(f, "{out}")
    }
}

/// Formats a float to a fixed number of decimals.
pub fn fm(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut r = Report::new("E0: smoke");
        r.note("a note");
        r.table(
            "cap",
            &["strategy", "paper", "measured"],
            vec![
                vec!["Θ₁".into(), "2.8".into(), "2.800".into()],
                vec!["Θ₂ (grad-first)".into(), "3.7".into(), "3.700".into()],
            ],
        );
        r.set_verdict("REPRODUCED");
        let s = r.to_string();
        assert!(s.contains("== E0: smoke =="));
        assert!(s.contains("[cap]"));
        assert!(s.contains("verdict: REPRODUCED"));
        // Header separator present.
        assert!(s.contains("--"));
    }

    #[test]
    fn fm_rounds() {
        assert_eq!(fm(2.7999999, 2), "2.80");
        assert_eq!(fm(1.0, 0), "1");
    }
}
