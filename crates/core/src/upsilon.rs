//! `Υ_AOT` — the optimal-strategy algorithm for tree-shaped inference
//! graphs (Section 4).
//!
//! "There are algorithms `Υ_G(G, p)` that take a graph `G` in the class
//! `G` … and a vector of the success probabilities of the relevant
//! retrievals `p` … and produce the optimal strategy for that graph."
//! The paper cites \[Smi89\]'s efficient algorithm for simple disjunctive
//! tree-shaped graphs; the underlying theory is Simon & Kadane's
//! satisficing-search result \[SK75\]: order the root-to-retrieval paths
//! by success-probability-to-cost ratio, merging blocks upward through
//! the tree's precedence constraints (Horn's series-parallel scheduling
//! algorithm).
//!
//! [`upsilon_aot`] implements the `O(n log n)`-style block-merge;
//! [`brute_force_optimal`] enumerates *all* path-form strategies as the
//! optimality oracle (property-tested agreement); and
//! [`optimal_strategy`] dispatches — block-merge when only retrievals
//! are probabilistic, enumeration otherwise (the paper notes the general
//! problem is NP-hard \[Gre91\]).

use qpl_graph::expected::{ContextDistribution, IndependentModel};
use qpl_graph::graph::{ArcId, ArcKind, InferenceGraph, NodeId};
use qpl_graph::strategy::{enumerate_all, Strategy};
use qpl_graph::GraphError;

/// A scheduled block: a run of arcs executed consecutively, with its
/// aggregate expected cost and success probability.
#[derive(Debug, Clone)]
struct Block {
    arcs: Vec<ArcId>,
    /// Expected cost of running the block (conditional on starting it).
    cost: f64,
    /// Probability the block ends the satisficing search.
    prob: f64,
}

impl Block {
    fn ratio(&self) -> f64 {
        self.prob / self.cost
    }

    /// Sequential composition: run `self`; if it fails, run `next`.
    fn compose(mut self, next: Block) -> Block {
        self.cost += (1.0 - self.prob) * next.cost;
        self.prob += (1.0 - self.prob) * next.prob;
        self.arcs.extend(next.arcs);
        self
    }
}

/// Merges ratio-descending block sequences into one (stable merge).
fn merge_sequences(mut seqs: Vec<Vec<Block>>) -> Vec<Block> {
    let mut out = Vec::new();
    loop {
        let best = seqs
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .max_by(|(_, a), (_, b)| {
                a[0].ratio().partial_cmp(&b[0].ratio()).expect("finite ratios")
            })
            .map(|(i, _)| i);
        match best {
            Some(i) => out.push(seqs[i].remove(0)),
            None => return out,
        }
    }
}

/// The ratio-descending block sequence for the subtree under `a`.
fn sequence_for(g: &InferenceGraph, a: ArcId, model: &IndependentModel) -> Vec<Block> {
    match g.arc(a).kind {
        ArcKind::Retrieval => {
            vec![Block { arcs: vec![a], cost: g.arc(a).cost, prob: model.prob(a) }]
        }
        ArcKind::Reduction => {
            let children: Vec<Vec<Block>> =
                g.children(g.arc(a).to).iter().map(|&c| sequence_for(g, c, model)).collect();
            let mut rest = merge_sequences(children);
            let mut head = Block { arcs: vec![a], cost: g.arc(a).cost, prob: 0.0 };
            // Absorb following blocks while they have a higher ratio than
            // the head: the head must come first (precedence), so
            // high-ratio work is fused to it.
            while let Some(first) = rest.first() {
                if first.ratio() > head.ratio() {
                    head = head.compose(rest.remove(0));
                } else {
                    break;
                }
            }
            let mut out = vec![head];
            out.append(&mut rest);
            out
        }
    }
}

/// `Υ_AOT(G, p)`: the optimal strategy for a tree-shaped inference graph
/// under independent retrieval success probabilities.
///
/// # Errors
/// [`GraphError::NotTree`] if `g` is not a tree, or
/// [`GraphError::BadProbability`] if some *reduction* arc is
/// probabilistic (`p < 1`): the classic algorithm covers retrieval-only
/// blocking; use [`optimal_strategy`] for the general case.
pub fn upsilon_aot(g: &InferenceGraph, model: &IndependentModel) -> Result<Strategy, GraphError> {
    if !g.is_tree() {
        return Err(GraphError::NotTree("Υ_AOT requires a tree-shaped graph".into()));
    }
    for a in g.arc_ids() {
        if g.arc(a).kind == ArcKind::Reduction && model.prob(a) < 1.0 {
            return Err(GraphError::BadProbability(model.prob(a)));
        }
    }
    let root: NodeId = g.root();
    let seqs: Vec<Vec<Block>> =
        g.children(root).iter().map(|&c| sequence_for(g, c, model)).collect();
    let blocks = merge_sequences(seqs);
    let arcs: Vec<ArcId> = blocks.into_iter().flat_map(|b| b.arcs).collect();
    Strategy::from_arcs(g, arcs)
}

/// Exhaustive optimum over **all** path-form strategies under any
/// context distribution. Returns `None` if the strategy space exceeds
/// `limit` (graph too large for brute force).
pub fn brute_force_optimal(
    g: &InferenceGraph,
    dist: &impl ContextDistribution,
    limit: usize,
) -> Option<(Strategy, f64)> {
    let all = enumerate_all(g, limit)?;
    all.into_iter()
        .map(|s| {
            let c = dist.expected_cost(g, &s);
            (s, c)
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
}

/// Dispatching optimizer: block-merge `Υ_AOT` when admissible, otherwise
/// exhaustive enumeration up to `fallback_limit` strategies.
///
/// # Errors
/// [`GraphError::Compile`] when neither method applies (probabilistic
/// reductions *and* a strategy space larger than the limit — the
/// NP-hard territory of \[Gre91\]).
pub fn optimal_strategy(
    g: &InferenceGraph,
    model: &IndependentModel,
    fallback_limit: usize,
) -> Result<(Strategy, f64), GraphError> {
    match upsilon_aot(g, model) {
        Ok(s) => {
            let c = model.expected_cost(g, &s);
            Ok((s, c))
        }
        Err(GraphError::BadProbability(_)) => brute_force_optimal(g, model, fallback_limit)
            .ok_or_else(|| {
                GraphError::Compile(format!(
                    "probabilistic reductions and > {fallback_limit} strategies: \
                     exact optimization is intractable here"
                ))
            }),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpl_graph::graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn g_a() -> InferenceGraph {
        let mut b = GraphBuilder::new("instructor(κ)");
        let root = b.root();
        let (_, prof) = b.reduction(root, "R_p", 1.0, "prof(κ)");
        b.retrieval(prof, "D_p", 1.0);
        let (_, grad) = b.reduction(root, "R_g", 1.0, "grad(κ)");
        b.retrieval(grad, "D_g", 1.0);
        b.finish().unwrap()
    }

    fn g_b() -> InferenceGraph {
        let mut b = GraphBuilder::new("G(κ)");
        let root = b.root();
        let (_, a) = b.reduction(root, "R_ga", 1.0, "A(κ)");
        b.retrieval(a, "D_a", 1.0);
        let (_, s) = b.reduction(root, "R_gs", 1.0, "S(κ)");
        let (_, bb) = b.reduction(s, "R_sb", 1.0, "B(κ)");
        b.retrieval(bb, "D_b", 1.0);
        let (_, t) = b.reduction(s, "R_st", 1.0, "T(κ)");
        let (_, c) = b.reduction(t, "R_tc", 1.0, "C(κ)");
        b.retrieval(c, "D_c", 1.0);
        let (_, d) = b.reduction(t, "R_td", 1.0, "D(κ)");
        b.retrieval(d, "D_d", 1.0);
        b.finish().unwrap()
    }

    #[test]
    fn paper_pao_examples() {
        let g = g_a();
        // p = ⟨0.2, 0.6⟩ → Θ₂ (grad-first) optimal.
        let m = IndependentModel::from_retrieval_probs(&g, &[0.2, 0.6]).unwrap();
        let s = upsilon_aot(&g, &m).unwrap();
        assert_eq!(s.display(&g).to_string(), "⟨R_g D_g R_p D_p⟩");
        // p̂ = ⟨18/30, 10/20⟩ → Θ₁ (prof-first) optimal.
        let m = IndependentModel::from_retrieval_probs(&g, &[0.6, 0.5]).unwrap();
        let s = upsilon_aot(&g, &m).unwrap();
        assert_eq!(s.display(&g).to_string(), "⟨R_p D_p R_g D_g⟩");
    }

    #[test]
    fn agrees_with_brute_force_on_g_b() {
        let g = g_b();
        let m = IndependentModel::from_retrieval_probs(&g, &[0.3, 0.5, 0.2, 0.7]).unwrap();
        let s = upsilon_aot(&g, &m).unwrap();
        let (_, best) = brute_force_optimal(&g, &m, 1_000_000).unwrap();
        let c = m.expected_cost(&g, &s);
        assert!((c - best).abs() < 1e-9, "Υ gave {c}, brute force {best}");
    }

    #[test]
    fn optimal_can_be_non_depth_first() {
        // Make D_b's ratio sandwiched between D_c's and D_d's so the
        // optimal strategy interleaves the S subtree.
        let g = g_b();
        let m = IndependentModel::from_retrieval_probs(&g, &[0.05, 0.35, 0.9, 0.1]).unwrap();
        let s = upsilon_aot(&g, &m).unwrap();
        let (_, best) = brute_force_optimal(&g, &m, 1_000_000).unwrap();
        assert!((m.expected_cost(&g, &s) - best).abs() < 1e-9);
        // And the best DFS strategy is strictly worse.
        let best_dfs = qpl_graph::strategy::enumerate_dfs(&g, 1000)
            .unwrap()
            .into_iter()
            .map(|s| m.expected_cost(&g, &s))
            .fold(f64::INFINITY, f64::min);
        assert!(best < best_dfs - 1e-9, "optimal {best} should beat best DFS {best_dfs}");
        assert!(!s.is_depth_first(&g));
    }

    #[test]
    fn deterministic_success_goes_first() {
        let g = g_b();
        let m = IndependentModel::from_retrieval_probs(&g, &[0.0, 0.0, 0.0, 1.0]).unwrap();
        let s = upsilon_aot(&g, &m).unwrap();
        let labels: Vec<&str> = s.arcs().iter().map(|&a| g.arc(a).label.as_str()).collect();
        assert_eq!(&labels[..3], ["R_gs", "R_st", "R_td"], "straight to the sure thing");
        assert_eq!(labels[3], "D_d");
    }

    #[test]
    fn rejects_probabilistic_reductions() {
        let g = g_a();
        let mut m = IndependentModel::from_retrieval_probs(&g, &[0.5, 0.5]).unwrap();
        m.set_prob(g.arc_by_label("R_p").unwrap(), 0.7).unwrap();
        assert!(matches!(upsilon_aot(&g, &m), Err(GraphError::BadProbability(_))));
        // optimal_strategy falls back to enumeration and still succeeds.
        let (s, c) = optimal_strategy(&g, &m, 100_000).unwrap();
        let (_, best) = brute_force_optimal(&g, &m, 100_000).unwrap();
        assert!((c - best).abs() < 1e-12);
        let _ = s;
    }

    #[test]
    fn zero_probabilities_handled() {
        let g = g_a();
        let m = IndependentModel::from_retrieval_probs(&g, &[0.0, 0.0]).unwrap();
        let s = upsilon_aot(&g, &m).unwrap();
        // Everything fails; any order is optimal, but the strategy must
        // still be valid and complete.
        assert_eq!(s.arcs().len(), 4);
    }

    /// Random tree generator for the optimality property test.
    fn random_tree(rng: &mut StdRng, max_depth: usize) -> (InferenceGraph, Vec<f64>) {
        fn grow(
            b: &mut GraphBuilder,
            node: qpl_graph::NodeId,
            rng: &mut StdRng,
            depth: usize,
            max_depth: usize,
            probs: &mut Vec<f64>,
            label: &mut u32,
        ) {
            let kids = if depth >= max_depth { 0 } else { rng.gen_range(0..=2) };
            if kids == 0 {
                b.retrieval(node, &format!("D{}", *label), rng.gen_range(1..=4) as f64);
                probs.push(rng.gen_range(0.0..1.0));
                *label += 1;
                return;
            }
            for _ in 0..kids {
                let (_, child) =
                    b.reduction(node, &format!("R{}", *label), rng.gen_range(1..=4) as f64, "goal");
                *label += 1;
                grow(b, child, rng, depth + 1, max_depth, probs, label);
            }
        }
        loop {
            let mut b = GraphBuilder::new("root");
            let root = b.root();
            let mut probs = Vec::new();
            let mut label = 0;
            // Root: 1-3 children.
            let kids = rng.gen_range(1..=3);
            for _ in 0..kids {
                let (_, child) =
                    b.reduction(root, &format!("R{label}"), rng.gen_range(1..=4) as f64, "goal");
                label += 1;
                grow(&mut b, child, rng, 1, max_depth, &mut probs, &mut label);
            }
            let g = b.finish().expect("generated tree is valid");
            if g.retrievals().count() >= 2 && g.retrievals().count() <= 5 {
                return (g, probs);
            }
        }
    }

    #[test]
    fn upsilon_optimal_on_random_trees() {
        // The decisive check: block-merge equals brute force over ALL
        // path-form strategies, across many random trees, costs, and
        // probabilities.
        let mut rng = StdRng::seed_from_u64(123);
        for case in 0..60 {
            let (g, probs) = random_tree(&mut rng, 3);
            let m = IndependentModel::from_retrieval_probs(&g, &probs).unwrap();
            let s = upsilon_aot(&g, &m).unwrap();
            let c = m.expected_cost(&g, &s);
            let Some((_, best)) = brute_force_optimal(&g, &m, 2_000_000) else {
                continue; // too many strategies; skip this case
            };
            assert!((c - best).abs() < 1e-9, "case {case}: Υ={c} vs brute={best}\n{}", g.outline());
        }
    }
}
