//! In-memory aggregation: [`MemorySink`] and its snapshot structs.

use std::collections::BTreeMap;

use crate::sink::MetricsSink;

/// Aggregate statistics for a `value` series: count/sum/min/max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueStats {
    /// Number of observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl ValueStats {
    fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn first(v: f64) -> Self {
        ValueStats { count: 1, sum: v, min: v, max: v }
    }

    /// Mean of the observations (`NaN` when `count == 0`, which a
    /// [`MemorySink`] never produces).
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }
}

/// Aggregate statistics for a span series, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of spans recorded.
    pub count: u64,
    /// Total duration across all spans (saturating).
    pub total_ns: u64,
    /// Shortest span.
    pub min_ns: u64,
    /// Longest span.
    pub max_ns: u64,
}

impl SpanStats {
    fn observe(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    fn first(ns: u64) -> Self {
        SpanStats { count: 1, total_ns: ns, min_ns: ns, max_ns: ns }
    }
}

/// One structured per-decision record.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event name (e.g. `core.pib.candidate`).
    pub name: &'static str,
    /// Numeric fields in the order the emitter supplied them.
    pub fields: Vec<(&'static str, f64)>,
}

impl Event {
    /// Look up a field by name (first match).
    pub fn field(&self, name: &str) -> Option<f64> {
        self.fields.iter().find(|(k, _)| *k == name).map(|(_, v)| *v)
    }
}

/// Default cap on retained events; later events are counted as dropped
/// rather than growing the sink without bound.
pub const DEFAULT_MAX_EVENTS: usize = 4096;

/// An in-process sink aggregating counters, values, and spans into
/// sorted maps, and retaining up to `max_events` structured events.
///
/// Iteration order over every series is deterministic (sorted by name),
/// so two runs that record the same telemetry render identical
/// [`JsonSnapshot`](crate::JsonSnapshot)s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemorySink {
    counters: BTreeMap<&'static str, u64>,
    values: BTreeMap<&'static str, ValueStats>,
    spans: BTreeMap<&'static str, SpanStats>,
    events: Vec<Event>,
    max_events: usize,
    dropped_events: u64,
}

impl MemorySink {
    /// A fresh sink with the default event cap.
    pub fn new() -> Self {
        Self::with_max_events(DEFAULT_MAX_EVENTS)
    }

    /// A fresh sink retaining at most `max_events` events.
    pub fn with_max_events(max_events: usize) -> Self {
        MemorySink { max_events, ..MemorySink::default() }
    }

    /// Total of the named counter (0 when never incremented).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Aggregate stats for the named value series.
    pub fn value_stats(&self, name: &str) -> Option<ValueStats> {
        self.values.get(name).copied()
    }

    /// Aggregate stats for the named span series.
    pub fn span_stats(&self, name: &str) -> Option<SpanStats> {
        self.spans.get(name).copied()
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// All value series, sorted by name.
    pub fn values(&self) -> impl Iterator<Item = (&'static str, ValueStats)> + '_ {
        self.values.iter().map(|(k, v)| (*k, *v))
    }

    /// All span series, sorted by name.
    pub fn spans(&self) -> impl Iterator<Item = (&'static str, SpanStats)> + '_ {
        self.spans.iter().map(|(k, v)| (*k, *v))
    }

    /// Retained events in arrival order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Retained events with the given name, in arrival order.
    pub fn events_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Event> + 'a {
        self.events.iter().filter(move |e| e.name == name)
    }

    /// How many events were discarded because the cap was reached.
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    /// Folds another sink's aggregates into this one: counters add,
    /// value/span series merge count/sum/min/max, events append until
    /// this sink's cap (overflow counts as dropped), and dropped-event
    /// tallies add. A sharded server uses this to render one fleet-wide
    /// snapshot out of its per-shard shared-nothing sinks.
    pub fn merge_from(&mut self, other: &MemorySink) {
        for (name, v) in &other.counters {
            let slot = self.counters.entry(name).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (name, s) in &other.values {
            match self.values.get_mut(name) {
                Some(mine) => {
                    mine.count += s.count;
                    mine.sum += s.sum;
                    mine.min = mine.min.min(s.min);
                    mine.max = mine.max.max(s.max);
                }
                None => {
                    self.values.insert(name, *s);
                }
            }
        }
        for (name, s) in &other.spans {
            match self.spans.get_mut(name) {
                Some(mine) => {
                    mine.count += s.count;
                    mine.total_ns = mine.total_ns.saturating_add(s.total_ns);
                    mine.min_ns = mine.min_ns.min(s.min_ns);
                    mine.max_ns = mine.max_ns.max(s.max_ns);
                }
                None => {
                    self.spans.insert(name, *s);
                }
            }
        }
        for e in &other.events {
            if self.events.len() >= self.max_events {
                self.dropped_events += 1;
            } else {
                self.events.push(e.clone());
            }
        }
        self.dropped_events += other.dropped_events;
    }

    /// Forget everything recorded so far (the event cap is kept).
    pub fn clear(&mut self) {
        self.counters.clear();
        self.values.clear();
        self.spans.clear();
        self.events.clear();
        self.dropped_events = 0;
    }
}

impl MetricsSink for MemorySink {
    fn counter(&mut self, name: &'static str, delta: u64) {
        let slot = self.counters.entry(name).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    fn value(&mut self, name: &'static str, v: f64) {
        match self.values.get_mut(name) {
            Some(stats) => stats.observe(v),
            None => {
                self.values.insert(name, ValueStats::first(v));
            }
        }
    }

    fn span_ns(&mut self, name: &'static str, ns: u64) {
        match self.spans.get_mut(name) {
            Some(stats) => stats.observe(ns),
            None => {
                self.spans.insert(name, SpanStats::first(ns));
            }
        }
    }

    fn event(&mut self, name: &'static str, fields: &[(&'static str, f64)]) {
        if self.events.len() >= self.max_events {
            self.dropped_events += 1;
            return;
        }
        self.events.push(Event { name, fields: fields.to_vec() });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let mut sink = MemorySink::new();
        sink.counter("hits", 2);
        sink.counter("hits", 3);
        assert_eq!(sink.counter_total("hits"), 5);
        sink.counter("hits", u64::MAX);
        assert_eq!(sink.counter_total("hits"), u64::MAX);
        assert_eq!(sink.counter_total("absent"), 0);
    }

    #[test]
    fn value_stats_track_count_sum_min_max() {
        let mut sink = MemorySink::new();
        for v in [3.0, -1.0, 2.0] {
            sink.value("cost", v);
        }
        let stats = sink.value_stats("cost").unwrap();
        assert_eq!(stats.count, 3);
        assert_eq!(stats.sum, 4.0);
        assert_eq!(stats.min, -1.0);
        assert_eq!(stats.max, 3.0);
        assert!((stats.mean() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn span_stats_aggregate() {
        let mut sink = MemorySink::new();
        sink.span_ns("phase", 10);
        sink.span_ns("phase", 30);
        let stats = sink.span_stats("phase").unwrap();
        assert_eq!(stats.count, 2);
        assert_eq!(stats.total_ns, 40);
        assert_eq!(stats.min_ns, 10);
        assert_eq!(stats.max_ns, 30);
    }

    #[test]
    fn events_are_capped_not_unbounded() {
        let mut sink = MemorySink::with_max_events(2);
        for i in 0..4 {
            sink.event("e", &[("i", i as f64)]);
        }
        assert_eq!(sink.events().len(), 2);
        assert_eq!(sink.dropped_events(), 2);
        assert_eq!(sink.events()[1].field("i"), Some(1.0));
        assert_eq!(sink.events()[1].field("missing"), None);
    }

    #[test]
    fn iteration_is_sorted_by_name() {
        let mut sink = MemorySink::new();
        sink.counter("zebra", 1);
        sink.counter("alpha", 1);
        let names: Vec<_> = sink.counters().map(|(k, _)| k).collect();
        assert_eq!(names, ["alpha", "zebra"]);
    }

    #[test]
    fn merge_from_folds_all_series_and_respects_the_event_cap() {
        let mut a = MemorySink::with_max_events(3);
        a.counter("c", 2);
        a.value("v", 1.0);
        a.span_ns("s", 10);
        a.event("e", &[("i", 0.0)]);

        let mut b = MemorySink::new();
        b.counter("c", 3);
        b.counter("only_b", 7);
        b.value("v", 5.0);
        b.value("only_b", -2.0);
        b.span_ns("s", 4);
        b.event("e", &[("i", 1.0)]);
        b.event("e", &[("i", 2.0)]);
        b.event("e", &[("i", 3.0)]);

        a.merge_from(&b);
        assert_eq!(a.counter_total("c"), 5);
        assert_eq!(a.counter_total("only_b"), 7);
        let v = a.value_stats("v").unwrap();
        assert_eq!((v.count, v.sum, v.min, v.max), (2, 6.0, 1.0, 5.0));
        assert_eq!(a.value_stats("only_b").unwrap().min, -2.0);
        let s = a.span_stats("s").unwrap();
        assert_eq!((s.count, s.total_ns, s.min_ns, s.max_ns), (2, 14, 4, 10));
        // 1 own event + 2 merged fill the cap of 3; the third drops.
        assert_eq!(a.events().len(), 3);
        assert_eq!(a.dropped_events(), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut sink = MemorySink::with_max_events(1);
        sink.counter("c", 1);
        sink.value("v", 1.0);
        sink.span_ns("s", 1);
        sink.event("e", &[]);
        sink.event("e", &[]);
        sink.clear();
        assert_eq!(sink.counter_total("c"), 0);
        assert!(sink.value_stats("v").is_none());
        assert!(sink.span_stats("s").is_none());
        assert!(sink.events().is_empty());
        assert_eq!(sink.dropped_events(), 0);
    }
}
