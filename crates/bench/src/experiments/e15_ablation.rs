//! E15 — ablations of PIB's design choices (DESIGN.md's ablation item).
//!
//! The paper leaves three knobs open: the transformation vocabulary
//! (`T` can be "almost arbitrary"), the testing frequency ("Theorem 1
//! continues to hold if we perform this test less frequently"), and δ.
//! This experiment quantifies each on a fixed family of random
//! instances: samples-to-converge and final exact cost.

use crate::report::{fm, Report};
use qpl_core::{Pib, PibConfig, TransformationSet};
use qpl_engine::{par_map_indexed, ParConfig};
use qpl_graph::expected::ContextDistribution;
use qpl_graph::Strategy;
use qpl_workload::generator::{random_retrieval_model, random_tree_with_retrievals, TreeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Outcome {
    final_cost: f64,
    climbs: usize,
    tests: u64,
    last_climb_at: u64,
}

fn run_pib(seed: u64, vocab: &str, test_every: u64, delta: f64, horizon: u64) -> Outcome {
    let mut gen_rng = StdRng::seed_from_u64(seed);
    let g = random_tree_with_retrievals(&mut gen_rng, &TreeParams::default(), 4, 8);
    let truth = random_retrieval_model(&mut gen_rng, &g, (0.02, 0.6));
    let transforms = match vocab {
        "adjacent" => TransformationSet::adjacent_sibling_swaps(&g),
        _ => TransformationSet::all_sibling_swaps(&g),
    };
    let mut pib = Pib::with_transforms(
        &g,
        Strategy::left_to_right(&g),
        transforms,
        PibConfig::new(delta).with_test_every(test_every),
    );
    let mut rng = StdRng::seed_from_u64(seed + 777);
    let mut last_climb_at = 0;
    let mut climbs_seen = 0;
    for i in 0..horizon {
        pib.observe(&g, &truth.sample(&mut rng));
        if pib.history().len() > climbs_seen {
            climbs_seen = pib.history().len();
            last_climb_at = i + 1;
        }
    }
    Outcome {
        final_cost: truth.expected_cost(&g, pib.strategy()),
        climbs: pib.history().len(),
        tests: pib.tests_performed(),
        last_climb_at,
    }
}

fn aggregate(outcomes: &[Outcome]) -> (f64, f64, f64, f64) {
    let n = outcomes.len() as f64;
    (
        outcomes.iter().map(|o| o.final_cost).sum::<f64>() / n,
        outcomes.iter().map(|o| o.climbs as f64).sum::<f64>() / n,
        outcomes.iter().map(|o| o.tests as f64).sum::<f64>() / n,
        outcomes.iter().map(|o| o.last_climb_at as f64).sum::<f64>() / n,
    )
}

/// Runs E15 and returns the report.
pub fn run(seed: u64) -> Report {
    let mut r = Report::new("E15: ablations — vocabulary, test frequency, δ");
    r.note("30 random instances (4–8 retrievals) per configuration, 20k contexts each");
    let instances = 30u64;
    let horizon = 20_000u64;
    // `run_pib` is a pure function of its seed, so each configuration's
    // 30 instances fan out across workers; par_map_indexed returns them
    // in t order, so the means match the old serial loops exactly.
    let cfg = ParConfig::auto();
    let run_batch = |vocab: &str, every: u64, delta: f64| -> Vec<Outcome> {
        par_map_indexed(instances as usize, &cfg, |t| {
            run_pib(seed + t as u64, vocab, every, delta, horizon)
        })
    };

    // Vocabulary ablation.
    let mut rows = Vec::new();
    let mut costs = Vec::new();
    for vocab in ["all-pairs", "adjacent"] {
        let outs = run_batch(vocab, 1, 0.05);
        let (cost, climbs, tests, last) = aggregate(&outs);
        costs.push(cost);
        rows.push(vec![vocab.into(), fm(cost, 3), fm(climbs, 2), fm(tests, 0), fm(last, 0)]);
    }
    r.table(
        "transformation vocabulary (δ = 0.05, test every context)",
        &["vocabulary", "mean final C[Θ]", "mean climbs", "mean tests", "mean last-climb sample"],
        rows,
    );
    let vocab_close = (costs[0] - costs[1]).abs() < 0.35;
    r.note(
        "adjacent swaps connect the same DFS space, so final costs are close; \
            all-pairs can jump further per climb",
    );

    // Test-frequency ablation.
    let mut rows = Vec::new();
    let mut freq_costs = Vec::new();
    for every in [1u64, 10, 100] {
        let outs = run_batch("all-pairs", every, 0.05);
        let (cost, climbs, tests, last) = aggregate(&outs);
        freq_costs.push(cost);
        rows.push(vec![every.to_string(), fm(cost, 3), fm(climbs, 2), fm(tests, 0), fm(last, 0)]);
    }
    r.table(
        "Equation-6 test frequency (all-pairs, δ = 0.05)",
        &["test every", "mean final C[Θ]", "mean climbs", "mean tests", "mean last-climb sample"],
        rows,
    );
    r.note(
        "testing rarely charges fewer δᵢ budgets (larger per-test budget) but reacts later; \
            final costs are statistically indistinguishable here",
    );

    // δ ablation.
    let mut rows = Vec::new();
    let mut delta_lastclimb = Vec::new();
    for delta in [0.2, 0.05, 0.005] {
        let outs = run_batch("all-pairs", 1, delta);
        let (cost, climbs, _, last) = aggregate(&outs);
        delta_lastclimb.push(last);
        rows.push(vec![fm(delta, 3), fm(cost, 3), fm(climbs, 2), fm(last, 0)]);
    }
    r.table(
        "confidence budget δ",
        &["δ", "mean final C[Θ]", "mean climbs", "mean last-climb sample"],
        rows,
    );
    r.note(
        "smaller δ demands more evidence per climb, delaying convergence — \
            the anytime cost of a stronger lifetime guarantee",
    );

    let delta_monotone = delta_lastclimb.windows(2).all(|w| w[1] >= w[0] * 0.8);
    let ok = vocab_close && (freq_costs[0] - freq_costs[2]).abs() < 0.35 && delta_monotone;
    r.set_verdict(if ok {
        "REPRODUCED (design knobs behave as the paper's remarks predict)"
    } else {
        "MISMATCH (an ablation behaved unexpectedly)"
    });
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn e15_reproduces() {
        let r = super::run(1515);
        assert!(r.verdict.starts_with("REPRODUCED"), "{r}");
    }
}
