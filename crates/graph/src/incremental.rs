//! Incremental expected-cost evaluation for depth-first strategies —
//! the compile-once / evaluate-many pattern applied to `C[Θ]`.
//!
//! A hill-climb over the sibling-swap vocabulary `T(Θ)` evaluates every
//! neighbor of the current strategy at every step. Recomputing the exact
//! expected cost from scratch is O(|G|·depth) per candidate; but a sibling
//! swap only permutes the child order at one node, so everything below the
//! two swapped subtrees — and everything outside their root path — is
//! unchanged. [`CostEvaluator`] caches two quantities per node `v` of a
//! depth-first strategy:
//!
//! * `S(v)` — probability the subtree search below `v` succeeds, given `v`
//!   is reached: `S(v) = 1 − Π_c (1 − s(c))` over children in strategy
//!   order, with `s(c) = p(c)` for retrievals and `p(c)·S(to(c))` for
//!   reductions;
//! * `E(v)` — expected cost spent inside the subtree, given `v` is reached
//!   and the search enters it: `E(v) = Σ_i Π_{j<i}(1−s(c_j)) · w(c_i)`,
//!   with `w(c) = f(c) + p(c)·E(to(c))` for reductions and `f(c)` for
//!   retrievals.
//!
//! `C[Θ] = E(root)`, and [`CostEvaluator::expected_cost_after_swap`]
//! re-derives only the swap node and its root path: O(depth · branching)
//! per candidate versus O(|G|·depth) for a full recompute. The after-swap
//! value is **bit-identical** to rebuilding the evaluator on the swapped
//! strategy, because the same node recomputation routine serves both
//! paths.

use crate::error::GraphError;
use crate::expected::IndependentModel;
use crate::graph::{ArcId, ArcKind, InferenceGraph, NodeId};
use crate::strategy::Strategy;

/// Cached exact-cost state for one depth-first strategy under an
/// [`IndependentModel`]; supports O(depth · branching) sibling-swap
/// candidate evaluation and in-place commits.
#[derive(Debug, Clone)]
pub struct CostEvaluator<'g> {
    g: &'g InferenceGraph,
    probs: Vec<f64>,
    /// Child order per node, as induced by the current strategy.
    orders: Vec<Vec<ArcId>>,
    /// `S(v)` per node.
    s_node: Vec<f64>,
    /// `E(v)` per node.
    e_node: Vec<f64>,
}

impl<'g> CostEvaluator<'g> {
    /// Builds the cache for `strategy` under `model`.
    ///
    /// # Errors
    /// [`GraphError::NotTree`] if `g` is not a tree, or
    /// [`GraphError::InvalidStrategy`] if `strategy` is not depth-first
    /// (interleaved strategies have no per-node decomposition; score them
    /// with [`IndependentModel::expected_cost`] instead).
    pub fn new(
        g: &'g InferenceGraph,
        model: &IndependentModel,
        strategy: &Strategy,
    ) -> Result<Self, GraphError> {
        if !g.is_tree() {
            return Err(GraphError::NotTree("CostEvaluator requires a tree".into()));
        }
        if !strategy.is_depth_first(g) {
            return Err(GraphError::InvalidStrategy(
                "CostEvaluator requires a depth-first strategy".into(),
            ));
        }
        let mut ev = Self {
            g,
            probs: g.arc_ids().map(|a| model.prob(a)).collect(),
            orders: strategy.child_orders(g),
            s_node: vec![0.0; g.node_count()],
            e_node: vec![0.0; g.node_count()],
        };
        // Builder order is topological: children have larger indices.
        for idx in (0..g.node_count()).rev() {
            let (s, e) = ev.evaluate_node(&ev.orders[idx]);
            ev.s_node[idx] = s;
            ev.e_node[idx] = e;
        }
        Ok(ev)
    }

    /// `(S(v), E(v))` for a node whose children are visited in `order`,
    /// reading child values from the cache. Shared by the full build, the
    /// after-swap preview, and the commit — which is what makes preview
    /// and rebuild bit-identical.
    fn evaluate_node(&self, order: &[ArcId]) -> (f64, f64) {
        let mut no_success = 1.0;
        let mut e = 0.0;
        for &c in order {
            let p = self.probs[c.index()];
            let (s_c, w_c) = match self.g.arc(c).kind {
                ArcKind::Retrieval => (p, self.g.arc(c).cost),
                ArcKind::Reduction => {
                    let child = self.g.arc(c).to.index();
                    (p * self.s_node[child], self.g.arc(c).cost + p * self.e_node[child])
                }
            };
            e += no_success * w_c;
            no_success *= 1.0 - s_c;
        }
        (1.0 - no_success, e)
    }

    /// `C[Θ]` of the current strategy.
    pub fn expected_cost(&self) -> f64 {
        self.e_node[self.g.root().index()]
    }

    /// The expected cost the strategy would have after swapping the
    /// sibling arcs `r1` and `r2` (exchanging their subtree blocks), i.e.
    /// the candidate score for that member of `T(Θ)` — without touching
    /// the cache. O(depth · branching).
    ///
    /// # Errors
    /// [`GraphError::InapplicableTransform`] unless `r1` and `r2` are
    /// distinct siblings.
    pub fn expected_cost_after_swap(&self, r1: ArcId, r2: ArcId) -> Result<f64, GraphError> {
        let (swap_node, order) = self.swapped_order(r1, r2)?;
        let (mut s, mut e) = self.evaluate_node(&order);
        // Re-derive each ancestor with the updated child contribution;
        // sibling factors come from the untouched cache.
        let mut node = swap_node;
        while let Some(parent_arc) = self.g.parent_arc(node) {
            let parent = self.g.arc(parent_arc).from;
            let (ps, pe) =
                self.evaluate_node_with_override(parent, &self.orders[parent.index()], node, s, e);
            s = ps;
            e = pe;
            node = parent;
        }
        Ok(e)
    }

    /// Commits the swap: updates the child order at the common node and
    /// repairs `S`/`E` along the root path. O(depth · branching).
    ///
    /// # Errors
    /// [`GraphError::InapplicableTransform`] unless `r1` and `r2` are
    /// distinct siblings.
    pub fn apply_swap(&mut self, r1: ArcId, r2: ArcId) -> Result<(), GraphError> {
        let (swap_node, order) = self.swapped_order(r1, r2)?;
        let (s, e) = self.evaluate_node(&order);
        self.orders[swap_node.index()] = order;
        self.s_node[swap_node.index()] = s;
        self.e_node[swap_node.index()] = e;
        let mut node = swap_node;
        while let Some(parent_arc) = self.g.parent_arc(node) {
            let parent = self.g.arc(parent_arc).from;
            let (ps, pe) = self.evaluate_node(&self.orders[parent.index()]);
            self.s_node[parent.index()] = ps;
            self.e_node[parent.index()] = pe;
            node = parent;
        }
        Ok(())
    }

    /// The strategy the cache currently scores (depth-first order over
    /// `orders`).
    ///
    /// # Panics
    /// Invariant assert: `orders` starts as the strategy's child orders
    /// (validated by [`new`](Self::new)) and is only ever permuted by
    /// [`apply_swap`](Self::apply_swap), so it is always a per-node
    /// child permutation and `dfs_from_orders` cannot fail. No caller
    /// input reaches this expect.
    pub fn strategy(&self) -> Strategy {
        Strategy::dfs_from_orders(self.g, &self.orders)
            .expect("cached orders are per-node child permutations")
    }

    /// Validates the swap pair and returns the common node together with
    /// its child order after exchanging `r1` and `r2`.
    fn swapped_order(&self, r1: ArcId, r2: ArcId) -> Result<(NodeId, Vec<ArcId>), GraphError> {
        if r1 == r2 {
            return Err(GraphError::InapplicableTransform("cannot swap an arc with itself".into()));
        }
        let v = self.g.arc(r1).from;
        if self.g.arc(r2).from != v {
            return Err(GraphError::InapplicableTransform(format!(
                "arcs {} and {} are not siblings",
                self.g.arc(r1).label,
                self.g.arc(r2).label
            )));
        }
        let order = &self.orders[v.index()];
        // The cached order is a permutation of the node's children, so a
        // missing arc means the caller handed us ids from a different
        // graph — a typed error, not a panic, so a malformed request can
        // never take down a serving worker mid-climb.
        let (i1, i2) =
            match (order.iter().position(|&c| c == r1), order.iter().position(|&c| c == r2)) {
                (Some(i1), Some(i2)) => (i1, i2),
                _ => {
                    return Err(GraphError::InapplicableTransform(format!(
                        "arcs {} and {} are not covered by the cached child order",
                        self.g.arc(r1).label,
                        self.g.arc(r2).label
                    )))
                }
            };
        let mut swapped = order.clone();
        swapped.swap(i1, i2);
        Ok((v, swapped))
    }

    /// `evaluate_node`, but with the cached `S`/`E` of one child node
    /// overridden — used to propagate an un-committed swap up the path.
    fn evaluate_node_with_override(
        &self,
        v: NodeId,
        order: &[ArcId],
        child_node: NodeId,
        s_override: f64,
        e_override: f64,
    ) -> (f64, f64) {
        let _ = v;
        let mut no_success = 1.0;
        let mut e = 0.0;
        for &c in order {
            let p = self.probs[c.index()];
            let (s_c, w_c) = match self.g.arc(c).kind {
                ArcKind::Retrieval => (p, self.g.arc(c).cost),
                ArcKind::Reduction => {
                    let child = self.g.arc(c).to;
                    let (cs, ce) = if child == child_node {
                        (s_override, e_override)
                    } else {
                        (self.s_node[child.index()], self.e_node[child.index()])
                    };
                    (p * cs, self.g.arc(c).cost + p * ce)
                }
            };
            e += no_success * w_c;
            no_success *= 1.0 - s_c;
        }
        (1.0 - no_success, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expected::ContextDistribution;
    use crate::graph::GraphBuilder;

    fn g_b() -> InferenceGraph {
        let mut b = GraphBuilder::new("G(κ)");
        let root = b.root();
        let (_, a) = b.reduction(root, "R_ga", 1.0, "A(κ)");
        b.retrieval(a, "D_a", 1.0);
        let (_, s) = b.reduction(root, "R_gs", 1.0, "S(κ)");
        let (_, bb) = b.reduction(s, "R_sb", 1.0, "B(κ)");
        b.retrieval(bb, "D_b", 1.0);
        let (_, t) = b.reduction(s, "R_st", 1.0, "T(κ)");
        let (_, c) = b.reduction(t, "R_tc", 1.0, "C(κ)");
        b.retrieval(c, "D_c", 1.0);
        let (_, d) = b.reduction(t, "R_td", 1.0, "D(κ)");
        b.retrieval(d, "D_d", 1.0);
        b.finish().unwrap()
    }

    #[test]
    fn matches_exact_cost_on_g_b() {
        let g = g_b();
        let m = IndependentModel::from_retrieval_probs(&g, &[0.3, 0.5, 0.2, 0.7]).unwrap();
        for s in crate::strategy::enumerate_dfs(&g, 100).unwrap() {
            let ev = CostEvaluator::new(&g, &m, &s).unwrap();
            let exact = m.expected_cost(&g, &s);
            assert!(
                (ev.expected_cost() - exact).abs() < 1e-9,
                "strategy {}: evaluator {} vs exact {exact}",
                s.display(&g),
                ev.expected_cost()
            );
        }
    }

    #[test]
    fn after_swap_equals_fresh_rebuild() {
        let g = g_b();
        let m = IndependentModel::from_retrieval_probs(&g, &[0.3, 0.5, 0.2, 0.7]).unwrap();
        let theta = Strategy::left_to_right(&g);
        let ev = CostEvaluator::new(&g, &m, &theta).unwrap();
        let by = |l: &str| g.arc_by_label(l).unwrap();
        for (r1, r2) in [("R_ga", "R_gs"), ("R_sb", "R_st"), ("R_tc", "R_td")] {
            let preview = ev.expected_cost_after_swap(by(r1), by(r2)).unwrap();
            let mut committed = ev.clone();
            committed.apply_swap(by(r1), by(r2)).unwrap();
            let rebuilt =
                CostEvaluator::new(&g, &m, &committed.strategy()).unwrap().expected_cost();
            assert_eq!(preview.to_bits(), rebuilt.to_bits(), "swap ({r1}, {r2})");
            assert_eq!(committed.expected_cost().to_bits(), rebuilt.to_bits());
        }
    }

    #[test]
    fn rejects_non_siblings_and_non_dfs() {
        let g = g_b();
        let m = IndependentModel::from_retrieval_probs(&g, &[0.3, 0.5, 0.2, 0.7]).unwrap();
        let theta = Strategy::left_to_right(&g);
        let ev = CostEvaluator::new(&g, &m, &theta).unwrap();
        let by = |l: &str| g.arc_by_label(l).unwrap();
        assert!(ev.expected_cost_after_swap(by("R_ga"), by("R_sb")).is_err());
        assert!(ev.expected_cost_after_swap(by("R_ga"), by("R_ga")).is_err());

        let interleaved = Strategy::from_arcs(
            &g,
            ["R_gs", "R_st", "R_tc", "D_c", "R_ga", "D_a", "R_td", "D_d", "R_sb", "D_b"]
                .iter()
                .map(|l| by(l))
                .collect(),
        )
        .unwrap();
        assert!(matches!(
            CostEvaluator::new(&g, &m, &interleaved),
            Err(GraphError::InvalidStrategy(_))
        ));
    }

    #[test]
    fn strategy_round_trips() {
        let g = g_b();
        let m = IndependentModel::from_retrieval_probs(&g, &[0.3, 0.5, 0.2, 0.7]).unwrap();
        let theta = Strategy::left_to_right(&g);
        let ev = CostEvaluator::new(&g, &m, &theta).unwrap();
        assert_eq!(ev.strategy().arcs(), theta.arcs());
    }
}
