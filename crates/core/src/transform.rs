//! Strategy transformations (Section 3.2).
//!
//! "The general PIB system is parameterized by a set of transformations
//! `T = {τⱼ}`, where each `τⱼ` maps one strategy to another, perhaps by
//! re-ordering a particular pair of arcs that descend from a common
//! node." The workhorse is [`SiblingSwap`]: interchange arc `r₁` (and its
//! descendants) with its sibling `r₂` (and its descendants).
//!
//! [`TransformationSet`] materializes `T(Θ) = {τ(Θ) | τ ∈ T}` — the
//! neighbourhood PIB hill-climbs over — and supplies each
//! transformation's range `Λ[Θ, τ(Θ)]`, "never more than the sum of the
//! costs of the arcs under the node where Θ deviates from τ(Θ)".

use qpl_graph::graph::{ArcId, InferenceGraph};
use qpl_graph::strategy::Strategy;
use qpl_graph::GraphError;

/// Interchange two sibling arcs (and their subtrees) in a strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SiblingSwap {
    /// First sibling arc.
    pub r1: ArcId,
    /// Second sibling arc.
    pub r2: ArcId,
}

impl SiblingSwap {
    /// Creates a swap, validating that the arcs are distinct siblings.
    ///
    /// # Errors
    /// [`GraphError::InapplicableTransform`] otherwise.
    pub fn new(g: &InferenceGraph, r1: ArcId, r2: ArcId) -> Result<Self, GraphError> {
        if r1 == r2 {
            return Err(GraphError::InapplicableTransform("arcs must be distinct".into()));
        }
        if g.arc(r1).from != g.arc(r2).from {
            return Err(GraphError::InapplicableTransform(format!(
                "`{}` and `{}` do not descend from a common node",
                g.arc(r1).label,
                g.arc(r2).label
            )));
        }
        Ok(Self { r1, r2 })
    }

    /// The paper's range bound on `Δ[Θ, τ(Θ), I]`: "never more than the
    /// sum of the costs of the arcs under the node where Θ deviates from
    /// Θⱼ". With exactly two siblings this is `f*(r₁) + f*(r₂)` (e.g.
    /// `Λ[Θ_ABCD, Θ_ABDC] = f*(R_tc) + f*(R_td)`); with more siblings the
    /// blocks *between* `r₁` and `r₂` also shift, so all children of the
    /// deviation node are counted.
    pub fn lambda(&self, g: &InferenceGraph) -> f64 {
        g.children(g.arc(self.r1).from).iter().map(|&c| g.f_star(c)).sum()
    }

    /// Applies the swap: the contiguous block of `subtree(r1)` arcs and
    /// the contiguous block of `subtree(r2)` arcs exchange positions.
    ///
    /// # Errors
    /// [`GraphError::InapplicableTransform`] if either subtree is not
    /// contiguous in `s` (the swap is well-defined on depth-first
    /// strategies, which are closed under it), if arcs from *outside*
    /// the common node's subtree sit between the two blocks (the
    /// permuted segment must stay inside that subtree, or the
    /// [`lambda`](Self::lambda) range bound — and with it Theorem 1's
    /// Hoeffding argument — would not cover the cost difference), or if
    /// the result fails strategy validation.
    pub fn apply(&self, g: &InferenceGraph, s: &Strategy) -> Result<Strategy, GraphError> {
        if !g.is_tree() {
            // The block/Λ analysis (and `subtree_arcs`/`parent_arc`)
            // assume unique root paths; on redundant graphs the swap is
            // not well-defined.
            return Err(GraphError::NotTree(
                "sibling swaps are defined on tree-shaped graphs only".into(),
            ));
        }
        let b1 = contiguous_block(g, s, self.r1)?;
        let b2 = contiguous_block(g, s, self.r2)?;
        let (first, second) = if b1.start < b2.start { (b1, b2) } else { (b2, b1) };
        if first.end > second.start {
            return Err(GraphError::InapplicableTransform(
                "subtree blocks overlap; strategy is not in swap-normal form".into(),
            ));
        }
        let common = g.arc(self.r1).from;
        for &x in &s.arcs()[first.end..second.start] {
            if !descends_from(g, x, common) {
                return Err(GraphError::InapplicableTransform(format!(
                    "arc `{}` between the swapped blocks lies outside the common node's \
                     subtree; Λ would not bound the cost difference",
                    g.arc(x).label
                )));
            }
        }
        let arcs = s.arcs();
        let mut out = Vec::with_capacity(arcs.len());
        out.extend_from_slice(&arcs[..first.start]);
        out.extend_from_slice(&arcs[second.clone()]);
        out.extend_from_slice(&arcs[first.end..second.start]);
        out.extend_from_slice(&arcs[first.clone()]);
        out.extend_from_slice(&arcs[second.end..]);
        Strategy::from_arcs(g, out)
    }
}

/// Whether the source of `x` lies at or below node `v` (tree walk).
fn descends_from(g: &InferenceGraph, x: ArcId, v: qpl_graph::NodeId) -> bool {
    let mut n = g.arc(x).from;
    loop {
        if n == v {
            return true;
        }
        match g.parent_arc(n) {
            Some(p) => n = g.arc(p).from,
            None => return false,
        }
    }
}

/// The index range the subtree of `a` occupies in `s`, if contiguous.
fn contiguous_block(
    g: &InferenceGraph,
    s: &Strategy,
    a: ArcId,
) -> Result<std::ops::Range<usize>, GraphError> {
    let subtree = g.subtree_arcs(a);
    let mut positions: Vec<usize> = subtree
        .iter()
        .map(|&x| {
            s.position(x).ok_or_else(|| {
                GraphError::InapplicableTransform(format!("arc {x} missing from strategy"))
            })
        })
        .collect::<Result<_, _>>()?;
    positions.sort_unstable();
    let start = positions[0];
    let end = positions[positions.len() - 1] + 1;
    if end - start != subtree.len() {
        return Err(GraphError::InapplicableTransform(format!(
            "subtree of `{}` is not contiguous in the strategy",
            g.arc(a).label
        )));
    }
    Ok(start..end)
}

/// A set of candidate transformations and the neighbourhood they induce.
#[derive(Debug, Clone)]
pub struct TransformationSet {
    swaps: Vec<SiblingSwap>,
}

impl TransformationSet {
    /// Every unordered pair of sibling arcs in the graph — the paper's
    /// default transformation vocabulary.
    pub fn all_sibling_swaps(g: &InferenceGraph) -> Self {
        let mut swaps = Vec::new();
        for n in g.node_ids() {
            let ch = g.children(n);
            for i in 0..ch.len() {
                for j in (i + 1)..ch.len() {
                    swaps.push(SiblingSwap { r1: ch[i], r2: ch[j] });
                }
            }
        }
        Self { swaps }
    }

    /// Only swaps of *adjacent* siblings (a smaller vocabulary; still
    /// connects the whole depth-first strategy space).
    pub fn adjacent_sibling_swaps(g: &InferenceGraph) -> Self {
        let mut swaps = Vec::new();
        for n in g.node_ids() {
            let ch = g.children(n);
            for w in ch.windows(2) {
                swaps.push(SiblingSwap { r1: w[0], r2: w[1] });
            }
        }
        Self { swaps }
    }

    /// An explicit vocabulary.
    pub fn from_swaps(swaps: Vec<SiblingSwap>) -> Self {
        Self { swaps }
    }

    /// The transformations.
    pub fn swaps(&self) -> &[SiblingSwap] {
        &self.swaps
    }

    /// Number of transformations `|T|`.
    pub fn len(&self) -> usize {
        self.swaps.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.swaps.is_empty()
    }

    /// `T(Θ)`: the applicable transformations with their results.
    /// Transformations inapplicable to this particular strategy (e.g.
    /// non-contiguous subtrees) are skipped — they are not neighbours.
    pub fn neighbors(&self, g: &InferenceGraph, s: &Strategy) -> Vec<(SiblingSwap, Strategy)> {
        self.swaps.iter().filter_map(|&swap| swap.apply(g, s).ok().map(|t| (swap, t))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpl_graph::graph::GraphBuilder;

    fn g_b() -> InferenceGraph {
        let mut b = GraphBuilder::new("G(κ)");
        let root = b.root();
        let (_, a) = b.reduction(root, "R_ga", 1.0, "A(κ)");
        b.retrieval(a, "D_a", 1.0);
        let (_, s) = b.reduction(root, "R_gs", 1.0, "S(κ)");
        let (_, bb) = b.reduction(s, "R_sb", 1.0, "B(κ)");
        b.retrieval(bb, "D_b", 1.0);
        let (_, t) = b.reduction(s, "R_st", 1.0, "T(κ)");
        let (_, c) = b.reduction(t, "R_tc", 1.0, "C(κ)");
        b.retrieval(c, "D_c", 1.0);
        let (_, d) = b.reduction(t, "R_td", 1.0, "D(κ)");
        b.retrieval(d, "D_d", 1.0);
        b.finish().unwrap()
    }

    fn labels(g: &InferenceGraph, s: &Strategy) -> Vec<String> {
        s.arcs().iter().map(|&a| g.arc(a).label.clone()).collect()
    }

    #[test]
    fn tau_dc_produces_theta_abdc() {
        // "τ_{d,c} would rearrange the order of the R_td and R_tc arcs …
        //  τ_{d,c}(Θ_ABCD) = Θ_ABDC."
        let g = g_b();
        let theta = Strategy::left_to_right(&g);
        let swap =
            SiblingSwap::new(&g, g.arc_by_label("R_td").unwrap(), g.arc_by_label("R_tc").unwrap())
                .unwrap();
        let out = swap.apply(&g, &theta).unwrap();
        assert_eq!(
            labels(&g, &out),
            ["R_ga", "D_a", "R_gs", "R_sb", "D_b", "R_st", "R_td", "D_d", "R_tc", "D_c"],
            "Θ_ABDC"
        );
    }

    #[test]
    fn swapping_sb_st_produces_theta_acdb() {
        // "move everything below R_st to be before R_sb, leading to Θ_ACDB"
        let g = g_b();
        let theta = Strategy::left_to_right(&g);
        let swap =
            SiblingSwap::new(&g, g.arc_by_label("R_sb").unwrap(), g.arc_by_label("R_st").unwrap())
                .unwrap();
        let out = swap.apply(&g, &theta).unwrap();
        assert_eq!(
            labels(&g, &out),
            ["R_ga", "D_a", "R_gs", "R_st", "R_tc", "D_c", "R_td", "D_d", "R_sb", "D_b"],
            "Θ_ACDB"
        );
    }

    #[test]
    fn lambda_matches_paper_values() {
        // Λ[Θ_ABCD, Θ_ABDC] = f*(R_tc) + f*(R_td) = 2 + 2;
        // Λ[Θ_ABCD, Θ_ACDB] = f*(R_sb) + f*(R_st) = 2 + 5.
        let g = g_b();
        let s1 =
            SiblingSwap::new(&g, g.arc_by_label("R_tc").unwrap(), g.arc_by_label("R_td").unwrap())
                .unwrap();
        assert_eq!(s1.lambda(&g), 4.0);
        let s2 =
            SiblingSwap::new(&g, g.arc_by_label("R_sb").unwrap(), g.arc_by_label("R_st").unwrap())
                .unwrap();
        assert_eq!(s2.lambda(&g), 7.0);
    }

    #[test]
    fn swap_is_involutive() {
        let g = g_b();
        let theta = Strategy::left_to_right(&g);
        let set = TransformationSet::all_sibling_swaps(&g);
        for (swap, neighbor) in set.neighbors(&g, &theta) {
            let back = swap.apply(&g, &neighbor).unwrap();
            assert_eq!(back.arcs(), theta.arcs(), "swap twice = identity for {swap:?}");
        }
    }

    #[test]
    fn non_siblings_rejected() {
        let g = g_b();
        let err =
            SiblingSwap::new(&g, g.arc_by_label("R_ga").unwrap(), g.arc_by_label("R_sb").unwrap());
        assert!(matches!(err, Err(GraphError::InapplicableTransform(_))));
        let err =
            SiblingSwap::new(&g, g.arc_by_label("R_ga").unwrap(), g.arc_by_label("R_ga").unwrap());
        assert!(matches!(err, Err(GraphError::InapplicableTransform(_))));
    }

    #[test]
    fn all_sibling_swaps_counts() {
        // G_B: root{2 children}→1 pair, S{2}→1, T{2}→1; total 3.
        let g = g_b();
        assert_eq!(TransformationSet::all_sibling_swaps(&g).len(), 3);
        assert_eq!(TransformationSet::adjacent_sibling_swaps(&g).len(), 3);
    }

    #[test]
    fn neighbors_of_dfs_strategy_are_dfs() {
        let g = g_b();
        let theta = Strategy::left_to_right(&g);
        let set = TransformationSet::all_sibling_swaps(&g);
        let ns = set.neighbors(&g, &theta);
        assert_eq!(ns.len(), 3);
        for (_, n) in &ns {
            assert!(n.is_depth_first(&g));
        }
    }

    #[test]
    fn dfs_space_connected_by_swaps() {
        // Repeatedly applying swaps reaches all 8 DFS strategies of G_B.
        let g = g_b();
        let set = TransformationSet::all_sibling_swaps(&g);
        let mut seen: Vec<Vec<ArcId>> = vec![Strategy::left_to_right(&g).arcs().to_vec()];
        let mut frontier = vec![Strategy::left_to_right(&g)];
        while let Some(s) = frontier.pop() {
            for (_, n) in set.neighbors(&g, &s) {
                if !seen.contains(&n.arcs().to_vec()) {
                    seen.push(n.arcs().to_vec());
                    frontier.push(n);
                }
            }
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn non_contiguous_strategy_skipped_not_error() {
        // An interleaved (non-DFS) strategy: R_gs's subtree is split, so
        // the root swap is inapplicable (non-contiguous block), and the
        // S-children swap is inapplicable too (the foreign R_ga block
        // sits between them). Only the T-children swap survives;
        // neighbors() skips the rest without erroring.
        let g = g_b();
        let by = |l: &str| g.arc_by_label(l).unwrap();
        let s = Strategy::from_arcs(
            &g,
            vec![
                by("R_gs"),
                by("R_sb"),
                by("D_b"),
                by("R_ga"),
                by("D_a"),
                by("R_st"),
                by("R_tc"),
                by("D_c"),
                by("R_td"),
                by("D_d"),
            ],
        )
        .unwrap();
        let root_swap = SiblingSwap::new(&g, by("R_ga"), by("R_gs")).unwrap();
        assert!(root_swap.apply(&g, &s).is_err());
        let s_swap = SiblingSwap::new(&g, by("R_sb"), by("R_st")).unwrap();
        assert!(s_swap.apply(&g, &s).is_err(), "foreign block between the siblings");
        let set = TransformationSet::all_sibling_swaps(&g);
        let ns = set.neighbors(&g, &s);
        assert_eq!(ns.len(), 1, "only the T-children swap remains applicable");
        assert_eq!(ns[0].0.r1, by("R_tc"));
    }

    #[test]
    fn foreign_gap_rejected_keeps_lambda_sound() {
        // The unsound shape: a pair of siblings deep in the tree with an
        // expensive *root-level* block interleaved between their blocks.
        // Swapping them would also shift that foreign block relative to
        // the pair, so the cost difference can exceed the siblings' Λ.
        let mut b = GraphBuilder::new("root");
        let root = b.root();
        let (_, s) = b.reduction(root, "R_s", 1.0, "S");
        let (_, p) = b.reduction(s, "R_p", 1.0, "P");
        b.retrieval(p, "D_p", 1.0);
        let (_, q) = b.reduction(s, "R_q", 1.0, "Q");
        b.retrieval(q, "D_q", 1.0);
        let (_, big) = b.reduction(root, "R_big", 10.0, "BIG");
        b.retrieval(big, "D_big", 10.0);
        let g = b.finish().unwrap();
        let by = |l: &str| g.arc_by_label(l).unwrap();
        // Interleave the expensive root-level block between S's children.
        let theta = Strategy::from_arcs(
            &g,
            vec![by("R_s"), by("R_p"), by("D_p"), by("R_big"), by("D_big"), by("R_q"), by("D_q")],
        )
        .unwrap();
        let swap = SiblingSwap::new(&g, by("R_p"), by("R_q")).unwrap();
        // Λ = f*(R_p) + f*(R_q) = 4, but a success in R_p's block would
        // shift the 20-cost R_big block: |Δ| could reach 22 ≫ Λ. The
        // transform must therefore refuse.
        assert!(matches!(swap.apply(&g, &theta), Err(GraphError::InapplicableTransform(_))));
    }

    #[test]
    fn dag_graphs_rejected_instead_of_panicking() {
        // On a redundant (non-tree) graph the swap machinery's
        // unique-parent walks would panic; `apply` must refuse cleanly.
        let mut b = GraphBuilder::new("A").allow_dag();
        let root = b.root();
        let (r_ab, nb) = b.reduction(root, "R_ab", 1.0, "B");
        let (_, nc) = b.reduction(nb, "R_bc", 1.0, "C");
        b.retrieval(nc, "D_c", 1.0);
        let r_ac = b.reduction_to(root, nc, "R_ac", 1.0);
        let g = b.finish().unwrap();
        let s = Strategy::from_arcs_relaxed(
            &g,
            vec![r_ac, r_ab, g.arc_by_label("R_bc").unwrap(), g.arc_by_label("D_c").unwrap()],
        )
        .unwrap();
        let swap = SiblingSwap::new(&g, r_ab, r_ac).unwrap();
        assert!(matches!(swap.apply(&g, &s), Err(GraphError::NotTree(_))));
    }

    #[test]
    fn sibling_gap_of_same_parent_allowed() {
        // A node with three children: swapping the outer two with the
        // middle sibling between them is fine — the whole permuted
        // segment stays under the common node, so Λ (sum of all three
        // f*) still bounds Δ.
        let mut b = GraphBuilder::new("root");
        let root = b.root();
        for (label, cost) in [("D_x", 1.0), ("D_y", 5.0), ("D_z", 2.0)] {
            b.retrieval(root, label, cost);
        }
        let g = b.finish().unwrap();
        let by = |l: &str| g.arc_by_label(l).unwrap();
        let theta = Strategy::left_to_right(&g);
        let swap = SiblingSwap::new(&g, by("D_x"), by("D_z")).unwrap();
        let out = swap.apply(&g, &theta).unwrap();
        let labels: Vec<&str> = out.arcs().iter().map(|&a| g.arc(a).label.as_str()).collect();
        assert_eq!(labels, ["D_z", "D_y", "D_x"]);
        assert_eq!(swap.lambda(&g), 8.0, "all three children counted");
    }
}
