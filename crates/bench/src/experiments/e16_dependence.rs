//! E16 — dependent success probabilities (Section 5.1's assumption list
//! and Section 5.3's closing comparison).
//!
//! Paper claims: PIB "can be used efficiently with arbitrary inference
//! graphs, and does not require that the success probabilities of the
//! retrievals be independent", whereas PAO/Υ assume independence
//! (footnote 8). We construct a correlated context distribution under
//! which the independence-fitted Υ provably picks a sub-optimal
//! strategy, and show PIB recovers the true optimum from samples.
//!
//! Construction: root has a direct retrieval `D₀` (cost 1, p = 0.17) and
//! a reduction `R` (cost 1) over two unit retrievals `D₁`, `D₂` whose
//! statuses are *perfectly correlated* (both open w.p. q = 0.3, both
//! blocked otherwise). Marginal fitting sees p̂ = ⟨0.17, 0.3, 0.3⟩ and
//! credits the subtree with success 1 − 0.7² = 0.51 (ratio 0.189 >
//! 0.17), so Υ orders the subtree first; the *true* subtree success is
//! only 0.3, making D₀-first optimal:
//!
//! ```text
//! C[D₀ first]      = 1 + 0.83·2.7        = 3.241
//! C[subtree first] = 2.7 + 0.7·1         = 3.400
//! ```
//!
//! The parameters are chosen so PIB's conservative Δ̃ still has positive
//! mean for the corrective swap (E[Δ̃] = 3·0.7·0.17 − 0.3 = +0.057), so
//! PIB certifies the fix — slowly, which the experiment also shows.

use crate::report::{fm, Report};
use qpl_core::{brute_force_optimal, upsilon_aot, Pib, PibConfig};
use qpl_graph::expected::{ContextDistribution, FiniteDistribution, IndependentModel};
use qpl_graph::graph::GraphBuilder;
use qpl_graph::Context;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E16 and returns the report.
pub fn run(seed: u64) -> Report {
    let mut r = Report::new("E16: correlated retrievals — Υ's independence assumption vs PIB");

    let mut b = GraphBuilder::new("q");
    let root = b.root();
    let d0 = b.retrieval(root, "D_0", 1.0);
    let (_, sub) = b.reduction(root, "R", 1.0, "sub");
    let d1 = b.retrieval(sub, "D_1", 1.0);
    let d2 = b.retrieval(sub, "D_2", 1.0);
    let g = b.finish().expect("valid graph");

    // The correlated truth: D₀ independent (p = .17); D₁ = D₂ (q = .3).
    let (p0, q) = (0.17, 0.3);
    let truth = FiniteDistribution::new(vec![
        (Context::with_blocked(&g, &[]), p0 * q),
        (Context::with_blocked(&g, &[d1, d2]), p0 * (1.0 - q)),
        (Context::with_blocked(&g, &[d0]), (1.0 - p0) * q),
        (Context::with_blocked(&g, &[d0, d1, d2]), (1.0 - p0) * (1.0 - q)),
    ])
    .expect("valid weights");

    // Marginals (what PAO's counters would estimate in the limit).
    let marginals: Vec<f64> = [d0, d1, d2]
        .iter()
        .map(|&a| {
            truth.items().iter().filter(|(ctx, _)| !ctx.is_blocked(a)).map(|(_, w)| w).sum::<f64>()
        })
        .collect();
    r.table(
        "marginal success probabilities (what independence fitting sees)",
        &["retrieval", "marginal p̂", "implied subtree success", "true subtree success"],
        vec![
            vec!["D_0".into(), fm(marginals[0], 3), "—".into(), "—".into()],
            vec!["D_1".into(), fm(marginals[1], 3), "".into(), "".into()],
            vec!["D_2".into(), fm(marginals[2], 3), fm(1.0 - (1.0 - q) * (1.0 - q), 3), fm(q, 3)],
        ],
    );

    let fitted = IndependentModel::from_retrieval_probs(&g, &marginals).expect("valid");
    let theta_upsilon = upsilon_aot(&g, &fitted).expect("tree");
    let (theta_opt, c_opt) = brute_force_optimal(&g, &truth, 10_000).expect("tiny graph");
    let c_upsilon = truth.expected_cost(&g, &theta_upsilon);

    // PIB from the Υ-fitted strategy on the correlated stream. The
    // certifiable edge is thin (E[Δ̃] ≈ +0.057 per sample), so give it a
    // long horizon.
    let mut pib = Pib::new(&g, theta_upsilon.clone(), PibConfig::new(0.05));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut climbed_at = None;
    for i in 0..400_000u64 {
        pib.observe(&g, &truth.sample(&mut rng));
        if climbed_at.is_none() && !pib.history().is_empty() {
            climbed_at = Some(i + 1);
            break;
        }
    }
    let c_pib = truth.expected_cost(&g, pib.strategy());

    r.table(
        "true expected costs under the correlated distribution",
        &["strategy", "analytic", "C[Θ] (exact)", "note"],
        vec![
            vec![
                format!("Υ on marginals: {}", theta_upsilon.display(&g)),
                "3.400".into(),
                fm(c_upsilon, 4),
                "subtree success overestimated (0.51 vs 0.30)".into(),
            ],
            vec![
                format!("true optimum:   {}", theta_opt.display(&g)),
                "3.241".into(),
                fm(c_opt, 4),
                "tries D_0 first".into(),
            ],
            vec![
                format!("PIB learned:    {}", pib.strategy().display(&g)),
                "".into(),
                fm(c_pib, 4),
                match climbed_at {
                    Some(n) => format!("certified the swap after {n} samples"),
                    None => "did not climb within the horizon".into(),
                },
            ],
        ],
    );
    r.note("PIB's statistics are distribution-free (Δ̃ depends only on observed traces);");
    r.note("Υ's product-form cost model cannot represent the D₁ = D₂ coupling.");
    r.note("Caveat (also why the paper keeps PAO around): Δ̃'s conservatism means PIB only");
    r.note("certifies swaps with positive *observable* evidence — here E[Δ̃] ≈ +0.057/sample.");

    let upsilon_suboptimal = c_upsilon > c_opt + 1e-9;
    let pib_recovers = (c_pib - c_opt).abs() < 1e-9;
    r.set_verdict(if upsilon_suboptimal && pib_recovers {
        "REPRODUCED (independence-fitted Υ sub-optimal; PIB reaches the true optimum)"
    } else {
        "MISMATCH"
    });
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn e16_reproduces() {
        let r = super::run(1616);
        assert!(r.verdict.starts_with("REPRODUCED"), "{r}");
    }

    /// Pin the analytic values backing the construction.
    #[test]
    fn analytic_costs() {
        use qpl_graph::expected::ContextDistribution;
        let mut b = qpl_graph::GraphBuilder::new("q");
        let root = b.root();
        let d0 = b.retrieval(root, "D_0", 1.0);
        let (_, sub) = b.reduction(root, "R", 1.0, "sub");
        let d1 = b.retrieval(sub, "D_1", 1.0);
        let d2 = b.retrieval(sub, "D_2", 1.0);
        let g = b.finish().unwrap();
        let (p0, q) = (0.17, 0.3);
        let truth = qpl_graph::FiniteDistribution::new(vec![
            (qpl_graph::Context::with_blocked(&g, &[]), p0 * q),
            (qpl_graph::Context::with_blocked(&g, &[d1, d2]), p0 * (1.0 - q)),
            (qpl_graph::Context::with_blocked(&g, &[d0]), (1.0 - p0) * q),
            (qpl_graph::Context::with_blocked(&g, &[d0, d1, d2]), (1.0 - p0) * (1.0 - q)),
        ])
        .unwrap();
        let by = |labels: &[&str]| {
            qpl_graph::Strategy::from_arcs(
                &g,
                labels.iter().map(|l| g.arc_by_label(l).unwrap()).collect(),
            )
            .unwrap()
        };
        let d0_first = by(&["D_0", "R", "D_1", "D_2"]);
        let sub_first = by(&["R", "D_1", "D_2", "D_0"]);
        // C[D0 first] = 1 + (1−p0)(3−q); C[sub first] = (3−q) + (1−q)·1.
        assert!((truth.expected_cost(&g, &d0_first) - (1.0 + 0.83 * 2.7)).abs() < 1e-12);
        assert!((truth.expected_cost(&g, &sub_first) - (2.7 + 0.7)).abs() < 1e-12);
    }
}
