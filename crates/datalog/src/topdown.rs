//! Top-down SLD resolution with satisficing semantics.
//!
//! This is the *reference semantics* for the paper's query processor: a
//! query is reduced through rules to attempted retrievals, depth-first,
//! returning as soon as one derivation succeeds ("satisficing search",
//! \[SK75\]). The strategy-parameterized engine in `qpl-engine` must agree
//! with this solver on the yes/no answer for every context — only the
//! order of exploration (and hence the cost) differs.
//!
//! Two evaluation modes are provided:
//!
//! * **Plain SLD** ([`TopDown::solve`]) re-proves every subgoal from
//!   scratch. A depth bound guards against recursive rule bases;
//!   exceeding it is an error rather than a silent wrong answer.
//! * **Tabled SLD** ([`TopDown::solve_tabled`]) memoizes subgoal answer
//!   sets in a [`TableStore`] keyed by adorned call patterns and runs a
//!   leader-based fixpoint over recursive call groups, so recursion
//!   terminates by saturation rather than by hitting the depth bound
//!   (which is kept only as a backstop against pathological nesting).
//!   Passing a long-lived store via [`TopDown::solve_tabled_in`] reuses
//!   answers across queries against the same database.

use crate::database::Database;
use crate::error::DatalogError;
use crate::rule::RuleBase;
use crate::symbol::Symbol;
use crate::table::{CallKey, TableId, TableStore};
use crate::term::{Atom, Term, Var};
use crate::unify::{rename_apart, unify_atoms, Substitution};
use std::collections::{HashMap, HashSet};

/// Statistics from one top-down run (plain or tabled).
///
/// The table counters stay zero for plain SLD runs; tabled runs fill
/// them in so experiments can report measured memoization honestly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetrievalStats {
    /// Attempted database retrievals (ground membership probes plus
    /// pattern matches).
    pub retrievals: u64,
    /// Rule reductions applied.
    pub reductions: u64,
    /// Subgoal calls answered from an existing table.
    pub table_hits: u64,
    /// Subgoal calls that had to build a fresh table.
    pub table_misses: u64,
    /// Answer tuples consumed from already-complete tables — proof work
    /// the memo saved outright.
    pub tabled_answers_reused: u64,
}

impl RetrievalStats {
    /// Emit the counters into a [`MetricsSink`](qpl_obs::MetricsSink)
    /// under the `datalog.*` namespace — the sink adapter that lets
    /// observability snapshots report retrieval work without the solver
    /// hot loops ever touching a sink.
    pub fn emit_to(&self, sink: &mut dyn qpl_obs::MetricsSink) {
        sink.counter("datalog.retrievals", self.retrievals);
        sink.counter("datalog.reductions", self.reductions);
        sink.counter("datalog.table_hits", self.table_hits);
        sink.counter("datalog.table_misses", self.table_misses);
        sink.counter("datalog.tabled_answers_reused", self.tabled_answers_reused);
    }
}

/// Former name of [`RetrievalStats`], kept for source compatibility.
pub type SolveStats = RetrievalStats;

/// What a [`TopDown::maintain_tables`] pass did to a [`TableStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintainReport {
    /// Tables dropped (retraction made their answer sets non-monotone).
    pub dropped: usize,
    /// Tables reopened and re-saturated in place (insert-only delta).
    pub reopened: usize,
    /// Tables untouched — their footprints miss the delta, so their
    /// answers stayed warm.
    pub kept: usize,
    /// New answer tuples appended during re-saturation.
    pub answers_added: usize,
}

/// A satisficing SLD solver over a rule base and database.
#[derive(Debug, Clone)]
pub struct TopDown<'a> {
    rules: &'a RuleBase,
    db: &'a Database,
    depth_limit: usize,
}

impl<'a> TopDown<'a> {
    /// Default resolution depth bound.
    pub const DEFAULT_DEPTH: usize = 256;

    /// Creates a solver with the default depth bound.
    pub fn new(rules: &'a RuleBase, db: &'a Database) -> Self {
        Self { rules, db, depth_limit: Self::DEFAULT_DEPTH }
    }

    /// Overrides the depth bound.
    pub fn with_depth_limit(mut self, limit: usize) -> Self {
        self.depth_limit = limit;
        self
    }

    /// Finds the first solution to `query`, if any, returning the
    /// satisfying substitution.
    ///
    /// # Errors
    /// [`DatalogError::DepthExceeded`] if resolution exceeds the bound.
    pub fn solve(&self, query: &Atom) -> Result<Option<Substitution>, DatalogError> {
        let mut stats = RetrievalStats::default();
        self.solve_with_stats(query, &mut stats)
    }

    /// Like [`solve`](Self::solve) but also accumulates work statistics.
    pub fn solve_with_stats(
        &self,
        query: &Atom,
        stats: &mut RetrievalStats,
    ) -> Result<Option<Substitution>, DatalogError> {
        let goals = vec![query.clone()];
        self.prove(&goals, Substitution::new(), 0, query.variables().len() as u32 + 64, stats)
    }

    /// Whether any derivation of `query` exists.
    pub fn provable(&self, query: &Atom) -> Result<bool, DatalogError> {
        Ok(self.solve(query)?.is_some())
    }

    /// Tabled variant of [`solve`](Self::solve): memoizes subgoal answer
    /// sets, terminating on recursive rule bases by fixpoint saturation
    /// instead of the depth bound. Uses a throwaway [`TableStore`]; use
    /// [`solve_tabled_in`](Self::solve_tabled_in) to reuse tables across
    /// queries.
    ///
    /// # Errors
    /// [`DatalogError::DepthExceeded`] only if *distinct* subgoal calls
    /// nest deeper than the bound (a backstop — repeated calls hit their
    /// table and consume no depth).
    pub fn solve_tabled(&self, query: &Atom) -> Result<Option<Substitution>, DatalogError> {
        let mut store = TableStore::new();
        let mut stats = RetrievalStats::default();
        self.solve_tabled_in(query, &mut store, &mut stats)
    }

    /// Tabled solve against a caller-owned [`TableStore`], accumulating
    /// statistics. The store must have been built against the *same*
    /// rule base and database (callers are responsible for clearing it
    /// when the database changes; `qpl-engine`'s cross-context cache
    /// automates that via the database generation counter).
    pub fn solve_tabled_in(
        &self,
        query: &Atom,
        store: &mut TableStore,
        stats: &mut RetrievalStats,
    ) -> Result<Option<Substitution>, DatalogError> {
        let before = store.stats();
        let result = self.tabled_answer(query, store, stats);
        let after = store.stats();
        stats.table_hits += after.hits - before.hits;
        stats.table_misses += after.misses - before.misses;
        stats.tabled_answers_reused += after.answers_reused - before.answers_reused;
        result
    }

    /// Whether any derivation of `query` exists, via tabled evaluation.
    pub fn provable_tabled(&self, query: &Atom) -> Result<bool, DatalogError> {
        Ok(self.solve_tabled(query)?.is_some())
    }

    /// Incrementally maintains `store` after a batch of database deltas,
    /// instead of clearing it wholesale. `inserted` / `retracted` name
    /// the predicates touched by the batch (duplicates are fine); `self`
    /// must already see the *post*-delta database.
    ///
    /// A table is *affected* iff some changed predicate is reachable from
    /// its call's predicate through rule bodies ([`RuleBase::reachable_predicates`]);
    /// reachability is closed under consumption, so an unaffected table's
    /// answers — and its `complete` flag — remain valid verbatim and are
    /// left untouched (they stay warm).
    ///
    /// * Insert-only deltas are monotone: affected tables are
    ///   [`reopen`](TableStore::reopen)ed and re-saturated in one shared
    ///   fixpoint group. Existing answers survive (the dedup set filters
    ///   re-derivations); only genuinely new tuples append. Note the
    ///   *order* of an incrementally grown answer set may differ from a
    ///   from-scratch rebuild (old answers keep their positions); the
    ///   set itself is identical.
    /// * Any retraction makes affected answer sets non-monotone, so those
    ///   tables are dropped and rebuilt lazily on next call — still
    ///   selective: unaffected tables survive.
    ///
    /// # Errors
    /// [`DatalogError::DepthExceeded`] if re-saturation nests distinct
    /// calls past the depth bound (same backstop as a fresh solve).
    pub fn maintain_tables(
        &self,
        store: &mut TableStore,
        inserted: &[Symbol],
        retracted: &[Symbol],
        stats: &mut RetrievalStats,
    ) -> Result<MaintainReport, DatalogError> {
        let changed: HashSet<Symbol> = inserted.iter().chain(retracted.iter()).copied().collect();
        let total = store.len();
        if changed.is_empty() || total == 0 {
            return Ok(MaintainReport { kept: total, ..MaintainReport::default() });
        }
        // One reachability closure per distinct table-root predicate.
        let mut memo: HashMap<Symbol, bool> = HashMap::new();
        let mut affected: Vec<TableId> = Vec::new();
        for (id, key, _) in store.iter_keys() {
            let hit = *memo.entry(key.predicate).or_insert_with(|| {
                self.rules.reachable_predicates(key.predicate).iter().any(|q| changed.contains(q))
            });
            if hit {
                affected.push(id);
            }
        }
        if affected.is_empty() {
            return Ok(MaintainReport { kept: total, ..MaintainReport::default() });
        }
        if !retracted.is_empty() {
            let doomed: HashSet<Symbol> =
                memo.iter().filter(|&(_, &a)| a).map(|(&p, _)| p).collect();
            let dropped = store.retain_tables(|k| !doomed.contains(&k.predicate));
            return Ok(MaintainReport { dropped, kept: store.len(), ..MaintainReport::default() });
        }
        // Insert-only: reopen and re-saturate the affected group. New
        // tables created mid-expansion join the group (and complete with
        // it), exactly as under a leader's fixpoint.
        for &t in &affected {
            store.reopen(t);
        }
        let reopened = affected.len();
        let answers_before = store.total_answers();
        let mut eval = TabledEval {
            rules: self.rules,
            db: self.db,
            depth_limit: self.depth_limit,
            store,
            stats,
            group: affected,
            in_fixpoint: true,
            changed: false,
        };
        loop {
            eval.changed = false;
            let mut i = 0;
            while i < eval.group.len() {
                let member = eval.group[i];
                eval.expand(member, 0)?;
                i += 1;
            }
            if !eval.changed {
                break;
            }
        }
        let group = std::mem::take(&mut eval.group);
        for &member in &group {
            eval.store.set_complete(member);
        }
        Ok(MaintainReport {
            dropped: 0,
            reopened,
            kept: total - reopened,
            answers_added: store.total_answers() - answers_before,
        })
    }

    fn tabled_answer(
        &self,
        query: &Atom,
        store: &mut TableStore,
        stats: &mut RetrievalStats,
    ) -> Result<Option<Substitution>, DatalogError> {
        let empty = Substitution::new();
        if !self.rules.has_rules_for(query.predicate) {
            // Purely extensional query: a single retrieval answers it.
            stats.retrievals += 1;
            return Ok(self.db.matches(query, &empty).into_iter().next());
        }
        let (key, vars) = CallKey::of(query, &empty);
        let mut eval = TabledEval {
            rules: self.rules,
            db: self.db,
            depth_limit: self.depth_limit,
            store,
            stats,
            group: Vec::new(),
            in_fixpoint: false,
            changed: false,
        };
        let (t, was_hit) = eval.ensure(&key, 0)?;
        if store.answer_count(t) == 0 {
            return Ok(None);
        }
        if was_hit {
            store.note_reuse(1);
        }
        let answer = store.answer(t, 0);
        let mut sub = Substitution::new();
        for (i, &v) in vars.iter().enumerate() {
            sub.bind(v, Term::Const(answer[i]));
        }
        Ok(Some(sub))
    }

    fn prove(
        &self,
        goals: &[Atom],
        sub: Substitution,
        depth: usize,
        var_offset: u32,
        stats: &mut SolveStats,
    ) -> Result<Option<Substitution>, DatalogError> {
        if depth > self.depth_limit {
            return Err(DatalogError::DepthExceeded(self.depth_limit));
        }
        let Some((goal, rest)) = goals.split_first() else {
            return Ok(Some(sub));
        };
        let resolved = sub.apply(goal);

        // 1. Try direct retrieval from the database.
        stats.retrievals += 1;
        for ext in self.db.matches(&resolved, &sub) {
            if let Some(found) = self.prove(rest, ext, depth + 1, var_offset, stats)? {
                return Ok(Some(found));
            }
        }

        // 2. Try each rule whose head unifies with the goal.
        for (_, rule) in self.rules.rules_for(resolved.predicate) {
            let head = rename_apart(&rule.head, var_offset);
            let Some(ext) = unify_atoms(&resolved, &head, &sub) else {
                continue;
            };
            stats.reductions += 1;
            let mut new_goals: Vec<Atom> =
                rule.body.iter().map(|b| rename_apart(b, var_offset)).collect();
            new_goals.extend_from_slice(rest);
            let next_offset = var_offset + rule.var_span();
            if let Some(found) = self.prove(&new_goals, ext, depth + 1, next_offset, stats)? {
                return Ok(Some(found));
            }
        }
        Ok(None)
    }
}

/// The tabled evaluation engine: SLG-style producer/consumer resolution
/// with a leader-based fixpoint for recursive call groups.
///
/// Every intensional subgoal is canonicalized to a [`CallKey`] and
/// evaluated into its table exactly once per saturation round. The first
/// in-progress call on the stack becomes the *leader*: it repeatedly
/// re-expands every table created beneath it (the group — a superset of
/// the recursive component, which is conservative but correct) until no
/// round adds an answer, then marks the whole group complete. Later
/// calls on any of those patterns are pure table reads.
///
/// Termination: the active domain is finite (no function symbols), so
/// there are finitely many call keys and finitely many answer tuples per
/// key; every fixpoint round either adds an answer or is the last. The
/// depth bound only limits how deep *distinct* call creations nest — a
/// backstop, not the termination mechanism.
struct TabledEval<'a, 'b> {
    rules: &'a RuleBase,
    db: &'a Database,
    depth_limit: usize,
    store: &'b mut TableStore,
    stats: &'b mut RetrievalStats,
    /// Tables created under the current leader, in creation order.
    group: Vec<TableId>,
    in_fixpoint: bool,
    /// Whether the current fixpoint round derived a new answer.
    changed: bool,
}

impl TabledEval<'_, '_> {
    /// Returns the table for `key`, evaluating it first if absent. The
    /// flag is `true` when the table already existed (a hit).
    fn ensure(&mut self, key: &CallKey, depth: usize) -> Result<(TableId, bool), DatalogError> {
        if let Some(t) = self.store.lookup(key) {
            return Ok((t, true));
        }
        if depth > self.depth_limit {
            return Err(DatalogError::DepthExceeded(self.depth_limit));
        }
        let t = self.store.create(key.clone());
        self.group.push(t);
        if self.in_fixpoint {
            // A leader above us is iterating: expand once now so the
            // caller sees first-round answers; the leader's loop will
            // re-expand us until the whole group saturates.
            self.expand(t, depth)?;
        } else {
            self.in_fixpoint = true;
            loop {
                self.changed = false;
                let mut i = 0;
                while i < self.group.len() {
                    let member = self.group[i];
                    self.expand(member, depth)?;
                    i += 1;
                }
                if !self.changed {
                    break;
                }
            }
            for &member in &self.group {
                self.store.set_complete(member);
            }
            self.group.clear();
            self.in_fixpoint = false;
        }
        Ok((t, false))
    }

    /// One expansion pass over `t`'s defining clauses: re-derives every
    /// answer currently reachable from the table snapshots it consumes.
    fn expand(&mut self, t: TableId, depth: usize) -> Result<(), DatalogError> {
        let call = self.store.key(t).to_atom();
        let n_free = u32::try_from(self.store.key(t).free_count()).expect("free count fits u32");
        let empty = Substitution::new();
        // Extensional facts for the called predicate.
        self.stats.retrievals += 1;
        for sub in self.db.matches(&call, &empty) {
            self.add_answer(t, n_free, &sub);
        }
        // Rules: the canonical call uses Var(0..n_free), so renaming rule
        // variables by n_free keeps the two namespaces disjoint.
        for (_, rule) in self.rules.rules_for(call.predicate) {
            let head = rename_apart(&rule.head, n_free);
            let Some(sub) = unify_atoms(&call, &head, &empty) else {
                continue;
            };
            self.stats.reductions += 1;
            let body: Vec<Atom> = rule.body.iter().map(|b| rename_apart(b, n_free)).collect();
            self.solve_body(t, n_free, &body, 0, sub, depth)?;
        }
        Ok(())
    }

    /// Enumerates all solutions of `body[idx..]` under `sub`, adding one
    /// answer to `t` per complete solution. Intensional subgoals consume
    /// a *snapshot* of their table (answers added behind the snapshot are
    /// picked up by the leader's next round); extensional subgoals probe
    /// the database directly.
    fn solve_body(
        &mut self,
        t: TableId,
        n_free: u32,
        body: &[Atom],
        idx: usize,
        sub: Substitution,
        depth: usize,
    ) -> Result<(), DatalogError> {
        let Some(goal) = body.get(idx) else {
            self.add_answer(t, n_free, &sub);
            return Ok(());
        };
        if self.rules.has_rules_for(goal.predicate) {
            let (key, vars) = CallKey::of(goal, &sub);
            let (sub_t, was_hit) = self.ensure(&key, depth + 1)?;
            let n = self.store.answer_count(sub_t);
            if was_hit && self.store.is_complete(sub_t) {
                self.store.note_reuse(n as u64);
            }
            for i in 0..n {
                let mut ext = sub.clone();
                let mut consistent = true;
                for (j, &v) in vars.iter().enumerate() {
                    let c = self.store.answer(sub_t, i)[j];
                    match ext.resolve(Term::Var(v)) {
                        Term::Const(x) if x != c => {
                            consistent = false;
                            break;
                        }
                        Term::Const(_) => {}
                        Term::Var(w) => ext.bind(w, Term::Const(c)),
                    }
                }
                if consistent {
                    self.solve_body(t, n_free, body, idx + 1, ext, depth)?;
                }
            }
        } else {
            self.stats.retrievals += 1;
            for ext in self.db.matches(goal, &sub) {
                self.solve_body(t, n_free, body, idx + 1, ext, depth)?;
            }
        }
        Ok(())
    }

    /// Projects `sub` onto the canonical call variables `Var(0..n_free)`
    /// and records the tuple. Range restriction guarantees every position
    /// is ground by the time a body is fully solved; a non-ground tuple
    /// (unreachable for validated rules) is skipped rather than stored.
    fn add_answer(&mut self, t: TableId, n_free: u32, sub: &Substitution) {
        let mut tuple = Vec::with_capacity(n_free as usize);
        for i in 0..n_free {
            match sub.resolve(Term::Var(Var(i))) {
                Term::Const(c) => tuple.push(c),
                Term::Var(_) => return,
            }
        }
        if self.store.insert_answer(t, tuple.into_boxed_slice()) {
            self.changed = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;
    use crate::parser::{parse_program, parse_query};
    use crate::symbol::SymbolTable;

    fn ask(src: &str, query: &str) -> bool {
        let mut t = SymbolTable::new();
        let p = parse_program(src, &mut t).unwrap();
        let q = parse_query(query, &mut t).unwrap();
        TopDown::new(&p.rules, &p.facts).provable(&q).unwrap()
    }

    #[test]
    fn figure1_contexts() {
        let kb = "instructor(X) :- prof(X). instructor(X) :- grad(X).\n\
                  prof(russ). grad(manolis).";
        assert!(ask(kb, "instructor(russ)"));
        assert!(ask(kb, "instructor(manolis)"));
        assert!(!ask(kb, "instructor(fred)"));
    }

    #[test]
    fn direct_fact_retrieval() {
        assert!(ask("p(a).", "p(a)"));
        assert!(!ask("p(a).", "p(b)"));
    }

    #[test]
    fn conjunctive_goal_ordering() {
        let kb = "gp(X, Z) :- parent(X, Y), parent(Y, Z).\n\
                  parent(ann, bob). parent(bob, cal).";
        assert!(ask(kb, "gp(ann, cal)"));
        assert!(!ask(kb, "gp(ann, bob)"));
        assert!(ask(kb, "gp(ann, X)"));
    }

    #[test]
    fn chained_rules() {
        let kb = "a(X) :- b(X). b(X) :- c(X). c(k).";
        assert!(ask(kb, "a(k)"));
        assert!(!ask(kb, "a(j)"));
    }

    #[test]
    fn recursion_hits_depth_bound() {
        let mut t = SymbolTable::new();
        let p = parse_program("p(X) :- p(X). seed(a).", &mut t).unwrap();
        let q = parse_query("p(a)", &mut t).unwrap();
        let err = TopDown::new(&p.rules, &p.facts).with_depth_limit(32).provable(&q);
        assert!(matches!(err, Err(DatalogError::DepthExceeded(32))));
    }

    #[test]
    fn recursive_but_provable_succeeds_before_bound() {
        // Left-recursion avoided: path(X,Y) :- edge(X,Y). path(X,Z) :- edge(X,Y), path(Y,Z).
        let kb = "path(X, Y) :- edge(X, Y).\n\
                  path(X, Z) :- edge(X, Y), path(Y, Z).\n\
                  edge(a, b). edge(b, c).";
        assert!(ask(kb, "path(a, c)"));
    }

    #[test]
    fn solve_returns_bindings() {
        let mut t = SymbolTable::new();
        let p = parse_program("instructor(X) :- prof(X). prof(russ).", &mut t).unwrap();
        let q = parse_query("instructor(W)", &mut t).unwrap();
        let sub = TopDown::new(&p.rules, &p.facts).solve(&q).unwrap().unwrap();
        let bound = sub.apply(&q);
        assert_eq!(bound.display(&t).to_string(), "instructor(russ)");
    }

    #[test]
    fn stats_count_work() {
        let mut t = SymbolTable::new();
        let p = parse_program(
            "instructor(X) :- prof(X). instructor(X) :- grad(X). grad(manolis).",
            &mut t,
        )
        .unwrap();
        let q = parse_query("instructor(manolis)", &mut t).unwrap();
        let mut stats = SolveStats::default();
        let found = TopDown::new(&p.rules, &p.facts).solve_with_stats(&q, &mut stats).unwrap();
        assert!(found.is_some());
        // Must have tried the prof branch (reduction + retrieval) before grad.
        assert!(stats.reductions >= 2);
        assert!(stats.retrievals >= 2);
    }

    fn ask_tabled(src: &str, query: &str) -> bool {
        let mut t = SymbolTable::new();
        let p = parse_program(src, &mut t).unwrap();
        let q = parse_query(query, &mut t).unwrap();
        TopDown::new(&p.rules, &p.facts).provable_tabled(&q).unwrap()
    }

    #[test]
    fn tabled_handles_left_recursion() {
        // Plain SLD loops forever on a left-recursive clause; tabling
        // saturates. path(X,Z) :- path(X,Y), edge(Y,Z).
        let kb = "path(X, Y) :- edge(X, Y).\n\
                  path(X, Z) :- path(X, Y), edge(Y, Z).\n\
                  edge(a, b). edge(b, c). edge(c, d).";
        assert!(ask_tabled(kb, "path(a, d)"));
        assert!(!ask_tabled(kb, "path(d, a)"));
        assert!(ask_tabled(kb, "path(a, X)"));
    }

    #[test]
    fn tabled_handles_right_recursion_on_cycles() {
        let kb = "path(X, Y) :- edge(X, Y).\n\
                  path(X, Z) :- edge(X, Y), path(Y, Z).\n\
                  edge(a, b). edge(b, c). edge(c, a).";
        // Every pair on the cycle is reachable…
        assert!(ask_tabled(kb, "path(a, a)"));
        assert!(ask_tabled(kb, "path(c, b)"));
        // …but nothing reaches a vertex off the cycle.
        assert!(!ask_tabled(kb, "path(a, z)"));
    }

    #[test]
    fn tabled_handles_nonlinear_recursion() {
        // path(X,Z) :- path(X,Y), path(Y,Z): both body goals recursive.
        let kb = "path(X, Y) :- edge(X, Y).\n\
                  path(X, Z) :- path(X, Y), path(Y, Z).\n\
                  edge(a, b). edge(b, c). edge(c, d). edge(d, b).";
        assert!(ask_tabled(kb, "path(a, d)"));
        assert!(ask_tabled(kb, "path(b, b)"));
        assert!(!ask_tabled(kb, "path(c, a)"));
    }

    #[test]
    fn tabled_recursion_does_not_depend_on_depth_bound() {
        // Regression: on this cyclic KB plain SLD exhausts any depth
        // bound; tabled evaluation must answer under the same tiny bound
        // because repeated calls hit their table instead of deepening.
        let kb = "path(X, Y) :- edge(X, Y).\n\
                  path(X, Z) :- edge(X, Y), path(Y, Z).\n\
                  edge(a, b). edge(b, a).";
        let mut t = SymbolTable::new();
        let p = parse_program(kb, &mut t).unwrap();
        let q = parse_query("path(a, z)", &mut t).unwrap();
        let solver = TopDown::new(&p.rules, &p.facts).with_depth_limit(8);
        assert!(matches!(solver.provable(&q), Err(DatalogError::DepthExceeded(8))));
        assert!(!solver.provable_tabled(&q).unwrap());
        let yes = parse_query("path(a, a)", &mut t).unwrap();
        assert!(solver.provable_tabled(&yes).unwrap());
    }

    #[test]
    fn tabled_solve_returns_bindings() {
        let mut t = SymbolTable::new();
        let p = parse_program(
            "path(X, Y) :- edge(X, Y). path(X, Z) :- edge(X, Y), path(Y, Z).\n\
             edge(a, b). edge(b, c).",
            &mut t,
        )
        .unwrap();
        let q = parse_query("path(a, X)", &mut t).unwrap();
        let sub = TopDown::new(&p.rules, &p.facts).solve_tabled(&q).unwrap().unwrap();
        let bound = sub.apply(&q);
        // First answer in derivation order: the base clause fires first.
        assert_eq!(bound.display(&t).to_string(), "path(a, b)");
    }

    #[test]
    fn tabled_store_reuse_skips_reproof() {
        use crate::table::TableStore;
        let mut t = SymbolTable::new();
        let p = parse_program(
            "path(X, Y) :- edge(X, Y). path(X, Z) :- edge(X, Y), path(Y, Z).\n\
             edge(a, b). edge(b, c). edge(c, d).",
            &mut t,
        )
        .unwrap();
        let q = parse_query("path(a, d)", &mut t).unwrap();
        let solver = TopDown::new(&p.rules, &p.facts);
        let mut store = TableStore::new();

        let mut first = RetrievalStats::default();
        assert!(solver.solve_tabled_in(&q, &mut store, &mut first).unwrap().is_some());
        // Cold store: every distinct call pattern is a miss (hits can
        // still occur — fixpoint rounds re-read in-progress tables).
        assert!(first.table_misses > 0);
        assert!(first.retrievals > 0);

        let mut second = RetrievalStats::default();
        assert!(solver.solve_tabled_in(&q, &mut store, &mut second).unwrap().is_some());
        assert_eq!(second.table_misses, 0, "everything answered from tables");
        assert_eq!(second.table_hits, 1);
        assert_eq!(second.retrievals, 0, "no database work on a warm store");
        assert_eq!(second.tabled_answers_reused, 1);
    }

    #[test]
    fn tabled_ground_query_answers() {
        // Ground (all-bound) calls produce zero-width answer tuples.
        assert!(ask_tabled("a(X) :- b(X). b(k).", "a(k)"));
        assert!(!ask_tabled("a(X) :- b(X). b(k).", "a(j)"));
    }

    #[test]
    fn tabled_extensional_query_bypasses_tables() {
        let mut t = SymbolTable::new();
        let p = parse_program("p(a).", &mut t).unwrap();
        let q = parse_query("p(X)", &mut t).unwrap();
        let mut store = crate::table::TableStore::new();
        let mut stats = RetrievalStats::default();
        let found =
            TopDown::new(&p.rules, &p.facts).solve_tabled_in(&q, &mut store, &mut stats).unwrap();
        assert!(found.is_some());
        assert!(store.is_empty(), "no table for a purely extensional predicate");
        assert_eq!(stats.retrievals, 1);
    }

    const TWO_FAMILY_KB: &str = "path(X, Y) :- edge(X, Y). path(X, Z) :- edge(X, Y), path(Y, Z).\n\
         reach(X, Y) :- link(X, Y). reach(X, Z) :- link(X, Y), reach(Y, Z).\n\
         edge(a, b). edge(b, c). link(a, b).";

    #[test]
    fn maintain_reopens_affected_and_keeps_disjoint_tables_warm() {
        use crate::table::TableStore;
        let mut t = SymbolTable::new();
        let p = parse_program(TWO_FAMILY_KB, &mut t).unwrap();
        let qp = parse_query("path(a, X)", &mut t).unwrap();
        let qr = parse_query("reach(a, X)", &mut t).unwrap();
        let mut db = p.facts;
        let mut store = TableStore::new();
        let mut stats = RetrievalStats::default();
        {
            let solver = TopDown::new(&p.rules, &db);
            assert!(solver.solve_tabled_in(&qp, &mut store, &mut stats).unwrap().is_some());
            assert!(solver.solve_tabled_in(&qr, &mut store, &mut stats).unwrap().is_some());
        }
        let tables_before = store.len();
        let edge = t.intern("edge");
        let (c, d) = (t.intern("c"), t.intern("d"));
        let delta = db.insert(crate::term::Fact::new(edge, vec![c, d])).unwrap();
        assert!(delta.changed);
        let solver = TopDown::new(&p.rules, &db);
        let report =
            solver.maintain_tables(&mut store, &[delta.predicate], &[], &mut stats).unwrap();
        assert_eq!(report.dropped, 0);
        assert!(report.reopened >= 1, "the path/edge family re-saturates");
        assert!(report.kept >= 1, "the reach/link family is untouched");
        assert!(report.answers_added >= 1, "path(a, _) now reaches d");
        // Re-saturation may create tables for new subgoals (path(d, _)),
        // but never drops any.
        assert!(store.len() >= tables_before);
        // The maintained table holds the new answer without a re-solve.
        let (key, _) = CallKey::of(&qp, &Substitution::new());
        let tid = store.lookup(&key).expect("path(a, X) table survives");
        let answers: HashSet<Symbol> =
            (0..store.answer_count(tid)).map(|i| store.answer(tid, i)[0]).collect();
        assert!(answers.contains(&d));
        // Unaffected family still answers with zero database work.
        let mut warm = RetrievalStats::default();
        assert!(solver.solve_tabled_in(&qr, &mut store, &mut warm).unwrap().is_some());
        assert_eq!(warm.retrievals, 0, "link family untouched by the edge delta");
        assert_eq!(warm.table_misses, 0);
    }

    #[test]
    fn maintain_drops_affected_tables_on_retract_and_keeps_the_rest() {
        use crate::table::TableStore;
        let mut t = SymbolTable::new();
        let p = parse_program(TWO_FAMILY_KB, &mut t).unwrap();
        let qp = parse_query("path(a, c)", &mut t).unwrap();
        let qr = parse_query("reach(a, X)", &mut t).unwrap();
        let mut db = p.facts;
        let mut store = TableStore::new();
        let mut stats = RetrievalStats::default();
        {
            let solver = TopDown::new(&p.rules, &db);
            assert!(solver.solve_tabled_in(&qp, &mut store, &mut stats).unwrap().is_some());
            assert!(solver.solve_tabled_in(&qr, &mut store, &mut stats).unwrap().is_some());
        }
        let edge = t.intern("edge");
        let (b, c) = (t.intern("b"), t.intern("c"));
        let delta = db.retract(crate::term::Fact::new(edge, vec![b, c])).unwrap();
        assert!(delta.changed);
        let solver = TopDown::new(&p.rules, &db);
        let report =
            solver.maintain_tables(&mut store, &[], &[delta.predicate], &mut stats).unwrap();
        assert!(report.dropped >= 1, "non-monotone change drops the path tables");
        assert_eq!(report.reopened, 0);
        assert!(report.kept >= 1);
        // The dropped table rebuilds lazily and sees the retraction.
        assert!(solver.solve_tabled_in(&qp, &mut store, &mut stats).unwrap().is_none());
        // The disjoint family never went cold.
        let mut warm = RetrievalStats::default();
        assert!(solver.solve_tabled_in(&qr, &mut store, &mut warm).unwrap().is_some());
        assert_eq!(warm.retrievals, 0);
        assert_eq!(warm.table_misses, 0);
    }

    #[test]
    fn maintain_without_changes_is_a_no_op() {
        use crate::table::TableStore;
        let mut t = SymbolTable::new();
        let p = parse_program(TWO_FAMILY_KB, &mut t).unwrap();
        let q = parse_query("path(a, X)", &mut t).unwrap();
        let mut store = TableStore::new();
        let mut stats = RetrievalStats::default();
        let solver = TopDown::new(&p.rules, &p.facts);
        assert!(solver.solve_tabled_in(&q, &mut store, &mut stats).unwrap().is_some());
        let report = solver.maintain_tables(&mut store, &[], &[], &mut stats).unwrap();
        assert_eq!(report, MaintainReport { kept: store.len(), ..MaintainReport::default() });
        // A delta on a predicate no table reaches is equally free.
        let ghost = t.intern("ghost");
        let report = solver.maintain_tables(&mut store, &[ghost], &[], &mut stats).unwrap();
        assert_eq!(report.reopened + report.dropped, 0);
        assert_eq!(report.kept, store.len());
    }

    proptest::proptest! {
        /// After ANY interleaving of edge inserts/retracts (maintaining
        /// the store after each changed delta), the maintained store
        /// answers every ground path query exactly as a fresh tabled
        /// solve against the final database.
        #[test]
        fn maintained_store_agrees_with_fresh_rebuild(
            ops in proptest::collection::vec((0u8..2, 0u8..4, 0u8..4), 1..8),
        ) {
            use crate::table::TableStore;
            let mut t = SymbolTable::new();
            let p = parse_program(
                "path(X, Y) :- edge(X, Y). path(X, Z) :- edge(X, Y), path(Y, Z).\n\
                 edge(c0, c1). edge(c1, c2).",
                &mut t,
            ).unwrap();
            let mut db = p.facts;
            let mut store = TableStore::new();
            let mut stats = RetrievalStats::default();
            let q = parse_query("path(c0, X)", &mut t).unwrap();
            {
                let solver = TopDown::new(&p.rules, &db);
                let _ = solver.solve_tabled_in(&q, &mut store, &mut stats).unwrap();
            }
            let edge = t.intern("edge");
            for (op, x, y) in ops {
                let is_insert = op == 0;
                let (cx, cy) = (t.intern(&format!("c{x}")), t.intern(&format!("c{y}")));
                let f = crate::term::Fact::new(edge, vec![cx, cy]);
                let delta =
                    if is_insert { db.insert(f).unwrap() } else { db.retract(f).unwrap() };
                let solver = TopDown::new(&p.rules, &db);
                if delta.changed {
                    let (ins, ret) = match delta.op {
                        crate::database::DeltaOp::Insert => (vec![delta.predicate], vec![]),
                        crate::database::DeltaOp::Retract => (vec![], vec![delta.predicate]),
                    };
                    solver.maintain_tables(&mut store, &ins, &ret, &mut stats).unwrap();
                }
                for s in 0..4u8 {
                    for e in 0..4u8 {
                        let qq = parse_query(&format!("path(c{s}, c{e})"), &mut t).unwrap();
                        let mut scratch = RetrievalStats::default();
                        let maintained = solver
                            .solve_tabled_in(&qq, &mut store, &mut scratch)
                            .unwrap()
                            .is_some();
                        let fresh = solver.provable_tabled(&qq).unwrap();
                        proptest::prop_assert_eq!(maintained, fresh);
                    }
                }
            }
        }
    }

    proptest::proptest! {
        /// Tabled top-down agrees with the bottom-up oracle on random
        /// *recursive* programs mixing left-, right-, and nonlinear
        /// recursion over a random edge relation.
        #[test]
        fn tabled_agrees_with_bottom_up_on_recursion(
            edges in proptest::collection::vec((0u8..5, 0u8..5), 0..12),
            shape in 0u8..3,
            qs in 0u8..5,
            qt in 0u8..5,
        ) {
            let recursive = match shape {
                0 => "path(X, Z) :- path(X, Y), edge(Y, Z).\n",      // left
                1 => "path(X, Z) :- edge(X, Y), path(Y, Z).\n",      // right
                _ => "path(X, Z) :- path(X, Y), path(Y, Z).\n",      // nonlinear
            };
            let mut src = format!("path(X, Y) :- edge(X, Y).\n{recursive}");
            for (a, b) in &edges {
                src.push_str(&format!("edge(n{a}, n{b}).\n"));
            }
            let mut t = SymbolTable::new();
            let p = parse_program(&src, &mut t).unwrap();
            let solver = TopDown::new(&p.rules, &p.facts);
            let model = eval::MinimalModel::compute(&p.rules, &p.facts);
            // Ground query.
            let g = parse_query(&format!("path(n{qs}, n{qt})"), &mut t).unwrap();
            proptest::prop_assert_eq!(solver.provable_tabled(&g).unwrap(), model.holds(&g));
            // Half-open query.
            let h = parse_query(&format!("path(n{qs}, W)"), &mut t).unwrap();
            proptest::prop_assert_eq!(solver.provable_tabled(&h).unwrap(), model.holds(&h));
        }

        /// On non-recursive programs the tabled solver and the plain SLD
        /// solver agree answer-for-answer with the oracle.
        #[test]
        fn tabled_agrees_with_plain_sld_nonrecursive(
            rules in proptest::collection::vec((0u8..3, 0u8..3), 1..6),
            facts in proptest::collection::vec((0u8..3, 0u8..4), 0..6),
            qx in 0u8..4,
        ) {
            let mut src = String::new();
            for (i, _) in &rules {
                src.push_str(&format!("l{}(X) :- l{}(X).\n", i, i + 1));
            }
            for (layer, c) in &facts {
                src.push_str(&format!("l{}(c{}).\n", layer + 1, c));
            }
            let mut t = SymbolTable::new();
            let p = parse_program(&src, &mut t).unwrap();
            let q = parse_query(&format!("l0(c{qx})"), &mut t).unwrap();
            let solver = TopDown::new(&p.rules, &p.facts);
            let plain = solver.provable(&q).unwrap();
            let tabled = solver.provable_tabled(&q).unwrap();
            proptest::prop_assert_eq!(plain, tabled);
            proptest::prop_assert_eq!(tabled, eval::holds(&p.rules, &p.facts, &q));
        }
    }

    proptest::proptest! {
        /// Top-down agrees with the bottom-up oracle on random
        /// non-recursive layered KBs.
        #[test]
        fn agrees_with_bottom_up(
            rules in proptest::collection::vec((0u8..3, 0u8..3), 1..6),
            facts in proptest::collection::vec((0u8..3, 0u8..4), 0..6),
            qx in 0u8..4,
        ) {
            // Layered predicates l0, l1, l2, l3: rule (i, j) is
            // l{i}(X) :- l{i+1}(X) with variation j ignored (dedup ok);
            // facts live at layer 3 over constants c0..c3.
            let mut src = String::new();
            for (i, _) in &rules {
                src.push_str(&format!("l{}(X) :- l{}(X).\n", i, i + 1));
            }
            for (layer, c) in &facts {
                src.push_str(&format!("l{}(c{}).\n", layer + 1, c));
            }
            let mut t = SymbolTable::new();
            let p = parse_program(&src, &mut t).unwrap();
            let q = parse_query(&format!("l0(c{qx})"), &mut t).unwrap();
            let td = TopDown::new(&p.rules, &p.facts).provable(&q).unwrap();
            let bu = eval::holds(&p.rules, &p.facts, &q);
            proptest::prop_assert_eq!(td, bu);
        }
    }
}

#[cfg(test)]
mod obs_tests {
    use super::RetrievalStats;
    use qpl_obs::MemorySink;

    #[test]
    fn retrieval_stats_emit_as_datalog_counters() {
        let stats = RetrievalStats {
            retrievals: 5,
            reductions: 3,
            table_hits: 2,
            table_misses: 1,
            tabled_answers_reused: 4,
        };
        let mut sink = MemorySink::new();
        stats.emit_to(&mut sink);
        stats.emit_to(&mut sink); // adapters accumulate across runs
        assert_eq!(sink.counter_total("datalog.retrievals"), 10);
        assert_eq!(sink.counter_total("datalog.table_hits"), 4);
        assert_eq!(sink.counter_total("datalog.tabled_answers_reused"), 8);
    }
}
