//! Property tests over randomly generated tree-shaped inference graphs:
//! the structural identities of Note 5, strategy-space invariants, the
//! execution cost model, and the pessimistic-completion soundness that
//! Theorem 1 leans on.

use proptest::prelude::*;
use qpl_graph::context::{cost, execute, Context, RunOutcome};
use qpl_graph::expected::{ContextDistribution, IndependentModel};
use qpl_graph::graph::{ArcKind, GraphBuilder, InferenceGraph, NodeId};
use qpl_graph::pessimistic::pessimistic_completion;
use qpl_graph::strategy::{count_dfs, enumerate_dfs, Strategy};

/// Deterministically builds a random-ish tree from a shape seed.
fn build_tree(seed: u64, max_depth: usize) -> InferenceGraph {
    fn lcg(state: &mut u64) -> u64 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *state >> 33
    }
    fn grow(
        b: &mut GraphBuilder,
        node: NodeId,
        depth: usize,
        max_depth: usize,
        state: &mut u64,
        label: &mut u32,
    ) {
        let r = lcg(state) % 100;
        let branch = depth < max_depth && r < 55;
        if !branch {
            let c = 1.0 + (lcg(state) % 4) as f64;
            b.retrieval(node, &format!("D{}", *label), c);
            *label += 1;
            return;
        }
        let kids = 1 + (lcg(state) % 3) as usize;
        for _ in 0..kids {
            let c = 1.0 + (lcg(state) % 4) as f64;
            let (_, child) = b.reduction(node, &format!("R{}", *label), c, "goal");
            *label += 1;
            grow(b, child, depth + 1, max_depth, state, label);
        }
    }
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut b = GraphBuilder::new("root");
    let root = b.root();
    let mut label = 0;
    let kids = 1 + (lcg(&mut state) % 3) as usize;
    for _ in 0..kids {
        let c = 1.0 + (lcg(&mut state) % 4) as f64;
        let (_, child) = b.reduction(root, &format!("R{label}"), c, "goal");
        label += 1;
        grow(&mut b, child, 1, max_depth, &mut state, &mut label);
    }
    b.finish().expect("generated trees are valid")
}

fn context_from_mask(g: &InferenceGraph, mask: u64) -> Context {
    Context::from_fn(g, |a| mask & (1 << (a.index() % 64)) != 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Note-5 identity: for every arc, Π(a) + f*(a) + F¬(a) covers the
    /// whole graph's cost exactly once.
    #[test]
    fn cost_function_identity(seed in 0u64..10_000) {
        let g = build_tree(seed, 3);
        let total = g.total_cost();
        for a in g.arc_ids() {
            let path: f64 = g.root_path(a).iter().map(|&x| g.arc(x).cost).sum();
            let covered = path + g.f_star(a) + g.f_not(a);
            prop_assert!((covered - total).abs() < 1e-9);
        }
    }

    /// The left-to-right strategy is depth-first and decomposes into
    /// retrieval-terminated paths partitioning the arcs.
    #[test]
    fn left_to_right_invariants(seed in 0u64..10_000) {
        let g = build_tree(seed, 3);
        let s = Strategy::left_to_right(&g);
        prop_assert!(s.is_depth_first(&g));
        let paths = s.paths(&g);
        let covered: usize = paths.iter().map(Vec::len).sum();
        prop_assert_eq!(covered, g.arc_count());
        prop_assert_eq!(paths.len(), g.retrievals().count());
        for p in &paths {
            let last = *p.last().unwrap();
            prop_assert_eq!(g.arc(last).kind, ArcKind::Retrieval);
        }
    }

    /// Execution cost is bounded by [0, total]; an all-open context
    /// succeeds at the very first path; all-blocked pays exactly the
    /// root's children.
    #[test]
    fn execution_cost_bounds(seed in 0u64..10_000, mask in proptest::num::u64::ANY) {
        let g = build_tree(seed, 3);
        let s = Strategy::left_to_right(&g);
        let ctx = context_from_mask(&g, mask);
        let c = cost(&g, &s, &ctx);
        prop_assert!(c >= 0.0 && c <= g.total_cost() + 1e-9);

        let open = execute(&g, &s, &Context::all_open(&g));
        prop_assert!(open.outcome.is_success());
        let first_path = &s.paths(&g)[0];
        let first_cost: f64 = first_path.iter().map(|&a| g.arc(a).cost).sum();
        prop_assert!((open.cost - first_cost).abs() < 1e-9);

        let blocked = execute(&g, &s, &Context::all_blocked(&g));
        prop_assert_eq!(blocked.outcome, RunOutcome::Exhausted);
        let root_children: f64 =
            g.children(g.root()).iter().map(|&a| g.arc(a).cost).sum();
        prop_assert!((blocked.cost - root_children).abs() < 1e-9);
    }

    /// Pessimistic completion replays the observed run exactly, for any
    /// strategy and context.
    #[test]
    fn pessimistic_replay_identity(seed in 0u64..10_000, mask in proptest::num::u64::ANY) {
        let g = build_tree(seed, 3);
        let s = Strategy::left_to_right(&g);
        let ctx = context_from_mask(&g, mask);
        let trace = execute(&g, &s, &ctx);
        let completed = pessimistic_completion(&g, &trace);
        let replay = execute(&g, &s, &completed);
        prop_assert_eq!(replay.cost, trace.cost);
        prop_assert_eq!(replay.outcome.is_success(), trace.outcome.is_success());
        prop_assert_eq!(replay.events, trace.events);
    }

    /// Exact expected cost is monotone in retrieval probabilities:
    /// raising any single retrieval's success probability never
    /// increases C[Θ] (satisficing runs only get shorter).
    #[test]
    fn expected_cost_monotone_in_probabilities(seed in 0u64..5_000, bump in 0usize..8) {
        let g = build_tree(seed, 3);
        let retrievals: Vec<_> = g.retrievals().collect();
        let probs: Vec<f64> =
            (0..retrievals.len()).map(|i| 0.2 + 0.1 * ((seed as usize + i) % 5) as f64).collect();
        let m = IndependentModel::from_retrieval_probs(&g, &probs).unwrap();
        let s = Strategy::left_to_right(&g);
        let base = m.expected_cost(&g, &s);
        let idx = bump % retrievals.len();
        let mut probs2 = probs.clone();
        probs2[idx] = (probs2[idx] + 0.3).min(1.0);
        let m2 = IndependentModel::from_retrieval_probs(&g, &probs2).unwrap();
        prop_assert!(m2.expected_cost(&g, &s) <= base + 1e-9);
    }

    /// Exact expected cost agrees with exhaustive enumeration on small
    /// graphs (the cross-check that the tree recursion is right).
    #[test]
    fn exact_matches_exhaustive(seed in 0u64..5_000) {
        let g = build_tree(seed, 2);
        if g.retrievals().count() > 10 {
            return Ok(()); // keep enumeration cheap
        }
        let probs: Vec<f64> =
            g.retrievals().enumerate().map(|(i, _)| 0.15 + 0.1 * (i % 7) as f64).collect();
        let m = IndependentModel::from_retrieval_probs(&g, &probs).unwrap();
        let s = Strategy::left_to_right(&g);
        let exact = m.expected_cost(&g, &s);
        let brute = m.expected_cost_exhaustive(&g, &s);
        prop_assert!((exact - brute).abs() < 1e-9, "{} vs {}", exact, brute);
    }

    /// enumerate_dfs agrees with the count_dfs formula and yields
    /// pairwise-distinct, individually valid strategies.
    #[test]
    fn dfs_enumeration_count(seed in 0u64..5_000) {
        let g = build_tree(seed, 2);
        let expected = count_dfs(&g);
        if expected > 500.0 {
            return Ok(());
        }
        let all = enumerate_dfs(&g, 501).unwrap();
        prop_assert_eq!(all.len() as f64, expected);
        let mut sigs: Vec<Vec<u32>> =
            all.iter().map(|s| s.arcs().iter().map(|a| a.0).collect()).collect();
        sigs.sort();
        sigs.dedup();
        prop_assert_eq!(sigs.len(), all.len());
    }

    /// ρ(e) coincides between the independent model and the equivalent
    /// finite distribution induced by sampling it exhaustively.
    #[test]
    fn rho_definition_consistency(seed in 0u64..5_000) {
        let g = build_tree(seed, 2);
        if g.arc_count() > 12 {
            return Ok(());
        }
        // Make some reductions probabilistic too.
        let m = IndependentModel::from_fn(&g, |a| {
            match g.arc(a).kind {
                ArcKind::Retrieval => 0.4,
                ArcKind::Reduction => if a.index() % 2 == 0 { 0.7 } else { 1.0 },
            }
        })
        .unwrap();
        // Enumerate the full finite distribution.
        let vars: Vec<_> = m.experiments(&g);
        let mut items = Vec::new();
        for mask in 0u32..(1 << vars.len()) {
            let mut ctx = Context::all_open(&g);
            let mut w = 1.0;
            for (bit, &a) in vars.iter().enumerate() {
                let open = mask & (1 << bit) != 0;
                if !open {
                    ctx.set_blocked(a, true);
                }
                w *= if open { m.prob(a) } else { 1.0 - m.prob(a) };
            }
            items.push((ctx, w));
        }
        let fd = qpl_graph::FiniteDistribution::new(items).unwrap();
        for e in g.arc_ids() {
            prop_assert!((m.rho(&g, e) - fd.rho(&g, e)).abs() < 1e-9);
        }
    }
}
