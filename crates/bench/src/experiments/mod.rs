//! One module per reproduced paper artifact (see DESIGN.md's
//! per-experiment index). Each `run` returns a [`crate::report::Report`]
//! whose verdict line states whether the paper's claim reproduced.

pub mod e01_figure1;
pub mod e02_smith;
pub mod e03_pib1;
pub mod e04_figure2;
pub mod e05_theorem1;
pub mod e06_pao_example;
pub mod e07_theorem2;
pub mod e08_theorem3;
pub mod e09_lemma1;
pub mod e10_upsilon;
pub mod e11_palo;
pub mod e12_applications;
pub mod e13_sequential;
pub mod e14_overhead;
pub mod e15_ablation;
pub mod e16_dependence;
pub mod e17_conjunctive;
pub mod e18_tabling;

use crate::report::Report;

/// Experiment ids accepted by the harness.
pub const ALL: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18",
];

/// Runs one experiment by id with the given base seed.
pub fn run_one(id: &str, seed: u64) -> Option<Report> {
    Some(match id {
        "e1" => e01_figure1::run(),
        "e2" => e02_smith::run(),
        "e3" => e03_pib1::run(seed),
        "e4" => e04_figure2::run(seed),
        "e5" => e05_theorem1::run(seed),
        "e6" => e06_pao_example::run(),
        "e7" => e07_theorem2::run(seed),
        "e8" => e08_theorem3::run(seed),
        "e9" => e09_lemma1::run(seed),
        "e10" => e10_upsilon::run(seed),
        "e11" => e11_palo::run(seed),
        "e12" => e12_applications::run(seed),
        "e13" => e13_sequential::run(seed),
        "e14" => e14_overhead::run(seed),
        "e15" => e15_ablation::run(seed),
        "e16" => e16_dependence::run(seed),
        "e17" => e17_conjunctive::run(seed),
        "e18" => e18_tabling::run(seed),
        _ => return None,
    })
}
