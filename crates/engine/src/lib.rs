//! # qpl-engine — strategy-driven query processors
//!
//! A query processor `QP = ⟨G, Θ⟩` (Section 2.1) executes concrete
//! contexts `I = ⟨q, DB⟩` by walking the inference graph in strategy
//! order, paying arc costs and discovering which arcs are blocked. This
//! crate binds the abstract machinery of `qpl-graph` to the Datalog
//! substrate of `qpl-datalog`:
//!
//! * [`qp`] — the fixed-strategy processor and the `⟨query, DB⟩ →`
//!   blocked-arc-set classification of Note 2;
//! * [`adaptive`] — the adaptive `QP^A` of Section 4.1 that re-aims its
//!   strategy per sample so every experiment gets enough trials;
//! * [`oracle`] — i.i.d. context sources (finite query mixes over a
//!   database, independent-arc synthetic models);
//! * [`cache`] — cross-context answer caching: tabled Datalog answers
//!   shared across samples in the same blocked-arc class, and
//!   whole-run `(answer, cost)` memoization, both invalidated by the
//!   database's generation counter;
//! * [`magic`] — binding-aware bottom-up answering: magic-set/SIP
//!   rewritten programs with answers cached per binding and scoped to
//!   the query's dependency footprint;
//! * [`naf`] — negation-as-failure queries (Section 5.2's `pauper`
//!   example);
//! * [`par`] — a deterministic scoped-thread sampling harness: Monte
//!   Carlo batches split across workers with counter-based per-sample
//!   seeding, bit-for-bit identical for any worker count;
//! * [`segmented`] — horizontally segmented distributed databases as a
//!   flat satisficing-scan graph (Section 5.2);
//! * [`firstk`] — the first-`k`-answers variant (Section 5.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod cache;
pub mod firstk;
pub mod magic;
pub mod naf;
pub mod oracle;
pub mod par;
pub mod qp;
pub mod segmented;

pub use adaptive::{AdaptiveQp, SamplingMode};
pub use cache::{
    context_fingerprint, strategy_fingerprint, CacheStats, CrossContextCache, DependencyFootprint,
    RunCache,
};
pub use magic::{MagicAnswer, MagicRunner};
pub use oracle::{ContextOracle, QueryMixOracle};
pub use par::{
    batch_fold, batch_fold_blocks, batch_fold_blocks_observed, batch_fold_scratch,
    batch_fold_scratch_observed, par_map_indexed, sample_rng, sample_seed, ParConfig,
};
pub use qp::{classify_context, classify_context_into, BatchScratch, QueryAnswer, QueryProcessor};
