//! E6 — Section 4's worked PAO example.
//!
//! Paper claims: with `M = ⟨m_p, m_g⟩ = ⟨30, 20⟩`, if `D_p` succeeds 18
//! of its 30 trials and `D_g` 10 of its 20, then
//! `p̂ = ⟨18/30, 10/20⟩ = ⟨0.6, 0.5⟩` and `Υ_AOT(G_A, p̂) = Θ₁`
//! (prof-first); whereas the true `p = ⟨0.2, 0.6⟩` makes `Θ₂`
//! (grad-first) optimal. Also Section 4.1's sample sharing: the 12
//! failed `D_p` trials double as `D_g` samples, so only 8 extra
//! contexts are needed.

use crate::report::{fm, Report};
use qpl_core::upsilon_aot;
use qpl_engine::adaptive::AdaptiveQp;
use qpl_graph::context::{execute, Context};
use qpl_graph::expected::IndependentModel;
use qpl_workload::university;

/// Runs E6 and returns the report.
pub fn run() -> Report {
    let u = university();
    let g = u.graph().clone();
    let (dp, dg) = (u.d_p(), u.d_g());

    let mut r = Report::new("E6: Section 4 — the worked PAO example");

    // Υ on the true and estimated probability vectors.
    let truth = IndependentModel::from_retrieval_probs(&g, &[0.2, 0.6]).expect("valid");
    let opt_truth = upsilon_aot(&g, &truth).expect("tree");
    let est =
        IndependentModel::from_retrieval_probs(&g, &[18.0 / 30.0, 10.0 / 20.0]).expect("valid");
    let opt_est = upsilon_aot(&g, &est).expect("tree");
    r.table(
        "Υ_AOT on the paper's probability vectors",
        &["input p", "paper says Υ returns", "measured"],
        vec![
            vec![
                "⟨0.2, 0.6⟩ (truth)".into(),
                "Θ₂ grad-first".into(),
                if opt_truth.arcs() == u.grad_first.arcs() { "Θ₂ grad-first" } else { "other" }
                    .into(),
            ],
            vec![
                "⟨18/30, 10/20⟩ (p̂)".into(),
                "Θ₁ prof-first".into(),
                if opt_est.arcs() == u.prof_first.arcs() { "Θ₁ prof-first" } else { "other" }
                    .into(),
            ],
        ],
    );

    // Sample sharing: 30 contexts aimed at D_p (18 succeed), then only 8
    // more for D_g.
    let mut qp = AdaptiveQp::for_retrievals(&g, &[30, 20]);
    let aim_p = AdaptiveQp::aiming_strategy(&g, dp);
    for i in 0..30u32 {
        let mut blocked = Vec::new();
        if i >= 18 {
            blocked.push(dp);
        }
        if !(18..24).contains(&i) {
            blocked.push(dg);
        }
        let trace = execute(&g, &aim_p, &Context::with_blocked(&g, &blocked));
        qp.absorb(&g, &trace);
    }
    let free_dg = qp.stats().iter().find(|s| s.arc == dg).expect("tracked").reached;
    let aim_g = AdaptiveQp::aiming_strategy(&g, dg);
    let mut extra = 0u64;
    while !qp.done() {
        let blocked = if extra < 4 { vec![] } else { vec![dg, dp] };
        let trace = execute(&g, &aim_g, &Context::with_blocked(&g, &blocked));
        qp.absorb(&g, &trace);
        extra += 1;
    }
    let sp = *qp.stats().iter().find(|s| s.arc == dp).expect("tracked");
    let sg = *qp.stats().iter().find(|s| s.arc == dg).expect("tracked");
    r.table(
        "Section 4.1 sample sharing (M = ⟨30, 20⟩)",
        &["quantity", "paper", "measured"],
        vec![
            vec![
                "D_p trials / successes".into(),
                "30 / 18".into(),
                format!("{} / {}", 30, sp.successes),
            ],
            vec![
                "free D_g samples from failed D_p probes".into(),
                "12".into(),
                free_dg.to_string(),
            ],
            vec!["extra contexts needed for D_g".into(), "8".into(), extra.to_string()],
            vec!["total contexts".into(), "38".into(), qp.runs().to_string()],
            vec!["p̂_g".into(), "10/20 = 0.5".into(), fm(sg.p_hat(), 2)],
        ],
    );

    let ok = opt_truth.arcs() == u.grad_first.arcs()
        && opt_est.arcs() == u.prof_first.arcs()
        && free_dg == 12
        && extra == 8
        && qp.runs() == 38
        && (sg.p_hat() - 0.5).abs() < 1e-12;
    r.set_verdict(if ok { "REPRODUCED" } else { "MISMATCH" });
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn e6_reproduces() {
        let r = super::run();
        assert_eq!(r.verdict, "REPRODUCED", "{r}");
    }
}
