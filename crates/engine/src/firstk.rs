//! The first-`k`-answers variant (Section 5.2).
//!
//! "There are obvious variants of these algorithms that can be used in
//! related situations. For example, one set of variants seek the first
//! `k` answers to a query, for some fixed `k > 1`. This can be useful in
//! situations where we know that there can be only `k` answers to some
//! query; e.g., `parent(x, Y)` will only yield two bindings for `Y`."
//!
//! [`execute_first_k`] generalizes the satisficing executor: the run
//! stops after the `k`-th success node instead of the first, and its cost
//! is the variant's `c_k(Θ, I)`. With `k = 1` it coincides exactly with
//! [`qpl_graph::context::execute`]. The PIB/PAO statistics carry over:
//! the same trace/counter machinery estimates how often each retrieval
//! contributes one of the first `k` answers.

use qpl_graph::context::{ArcOutcome, Context, Trace};
use qpl_graph::graph::{ArcId, InferenceGraph};
use qpl_graph::strategy::Strategy;

/// Outcome of a first-`k` run.
#[derive(Debug, Clone, PartialEq)]
pub struct FirstKRun {
    /// Retrieval arcs that produced the collected answers, in order.
    ///
    /// Answers are deduplicated *by success node*: in a DAG graph two
    /// different arcs can reach the same success node, and reaching it a
    /// second time rediscovers the same answer rather than producing a
    /// new one, so only the first arc to reach each success node is
    /// recorded (and counted toward `k`).
    pub answers: Vec<ArcId>,
    /// Whether `k` answers were found before exhaustion.
    pub satisfied: bool,
    /// The execution trace (`events` includes every attempted arc).
    ///
    /// `trace.outcome` is `Succeeded(a)` — with `a` the arc that reached
    /// the `k`-th answer — only when the run was satisfied; an exhausted
    /// run reports `Exhausted` even if it collected some answers (the
    /// partial haul is still in `answers`).
    pub trace: Trace,
}

/// Executes `strategy` in `context`, stopping after `k` successes.
///
/// # Panics
/// Panics if `k == 0` or the context belongs to a different graph.
pub fn execute_first_k(
    g: &InferenceGraph,
    strategy: &Strategy,
    context: &Context,
    k: usize,
) -> FirstKRun {
    assert!(k >= 1, "k must be at least 1");
    assert_eq!(context.arc_count(), g.arc_count(), "context built for a different graph");
    let mut reached = vec![false; g.node_count()];
    reached[g.root().index()] = true;
    let mut events = Vec::new();
    let mut cost = 0.0;
    let mut answers = Vec::new();
    for &a in strategy.arcs() {
        let arc = g.arc(a);
        if !reached[arc.from.index()] {
            continue;
        }
        cost += arc.cost;
        if context.is_blocked(a) {
            events.push((a, ArcOutcome::Blocked));
            continue;
        }
        events.push((a, ArcOutcome::Traversed));
        // An arc into an already-reached success node rediscovers an
        // answer we have; only the first arrival counts toward `k`.
        let first_arrival = !reached[arc.to.index()];
        reached[arc.to.index()] = true;
        if g.node(arc.to).is_success && first_arrival {
            answers.push(a);
            if answers.len() == k {
                let outcome = qpl_graph::context::RunOutcome::Succeeded(a);
                return FirstKRun {
                    answers,
                    satisfied: true,
                    trace: Trace { events, cost, outcome },
                };
            }
        }
    }
    // The strategy ran out before the k-th answer: the run is exhausted,
    // not "succeeded at whatever answer happened to come last".
    FirstKRun {
        answers,
        satisfied: false,
        trace: Trace { events, cost, outcome: qpl_graph::context::RunOutcome::Exhausted },
    }
}

/// Exact expected cost of the first-`k` variant under a finite context
/// distribution.
pub fn expected_cost_first_k(
    g: &InferenceGraph,
    strategy: &Strategy,
    dist: &qpl_graph::expected::FiniteDistribution,
    k: usize,
) -> f64 {
    dist.items().iter().map(|(ctx, w)| w * execute_first_k(g, strategy, ctx, k).trace.cost).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpl_graph::expected::FiniteDistribution;
    use qpl_graph::graph::GraphBuilder;

    /// parent(x, Y): four candidate sources, at most two can hold.
    fn parents_graph() -> InferenceGraph {
        let mut b = GraphBuilder::new("parent(x,Y)");
        let root = b.root();
        for name in ["D_mother", "D_father", "D_guardian", "D_step"] {
            b.retrieval(root, name, 1.0);
        }
        b.finish().unwrap()
    }

    #[test]
    fn k1_matches_plain_execute() {
        let g = parents_graph();
        let s = Strategy::left_to_right(&g);
        for blocked in [vec![], vec![0u32], vec![0, 1], vec![0, 1, 2, 3]] {
            let arcs: Vec<ArcId> = blocked.iter().map(|&i| ArcId(i)).collect();
            let ctx = Context::with_blocked(&g, &arcs);
            let k1 = execute_first_k(&g, &s, &ctx, 1);
            let plain = qpl_graph::context::execute(&g, &s, &ctx);
            assert_eq!(k1.trace, plain, "blocked={blocked:?}");
        }
    }

    #[test]
    fn first_two_parents_found() {
        let g = parents_graph();
        let s = Strategy::left_to_right(&g);
        // mother and guardian known; father and step unknown.
        let ctx = Context::with_blocked(&g, &[ArcId(1), ArcId(3)]);
        let run = execute_first_k(&g, &s, &ctx, 2);
        assert!(run.satisfied);
        assert_eq!(run.answers, vec![ArcId(0), ArcId(2)]);
        // mother (1) + father probe (1) + guardian (1) = 3; step skipped.
        assert_eq!(run.trace.cost, 3.0);
    }

    #[test]
    fn unsatisfied_when_fewer_answers_exist() {
        let g = parents_graph();
        let s = Strategy::left_to_right(&g);
        let ctx = Context::with_blocked(&g, &[ArcId(1), ArcId(2), ArcId(3)]);
        let run = execute_first_k(&g, &s, &ctx, 2);
        assert!(!run.satisfied);
        assert_eq!(run.answers, vec![ArcId(0)]);
        assert_eq!(run.trace.cost, 4.0, "exhausted the whole graph looking for #2");
        // Regression: an unsatisfied run used to report
        // Succeeded(last_answer); it is an exhausted run.
        assert_eq!(run.trace.outcome, qpl_graph::context::RunOutcome::Exhausted);
    }

    #[test]
    fn duplicate_arrivals_at_a_success_node_count_once() {
        // DAG: a retrieval reaches success node S, and a shortcut
        // reduction reaches the same S. Two arcs, one answer.
        use qpl_graph::graph::NodeId;
        let mut b = GraphBuilder::new("dag").allow_dag();
        let root = b.root();
        let d = b.retrieval(root, "D", 1.0); // creates success node NodeId(1)
        let shortcut = b.reduction_to(root, NodeId(1), "shortcut", 1.0);
        let d2 = b.retrieval(root, "D2", 1.0);
        let g = b.finish().unwrap();
        let s = Strategy::from_arcs_relaxed(&g, vec![d, shortcut, d2]).unwrap();
        let run = execute_first_k(&g, &s, &Context::all_open(&g), 2);
        // Regression: the shortcut used to be pushed as a second answer,
        // so k=2 stopped early reporting the same success node twice.
        assert_eq!(run.answers, vec![d, d2]);
        assert!(run.satisfied);
        assert_eq!(run.trace.cost, 3.0, "must pay for D2, not stop at the rediscovery");
    }

    #[test]
    fn order_matters_more_with_larger_k() {
        // With k=2 and the two open sources last, cost is maximal; with
        // them first, minimal. The strategy learner has signal to use.
        let g = parents_graph();
        let open_last = Strategy::left_to_right(&g); // open are 2,3
        let ctx = Context::with_blocked(&g, &[ArcId(0), ArcId(1)]);
        let run = execute_first_k(&g, &open_last, &ctx, 2);
        assert_eq!(run.trace.cost, 4.0);
        let open_first =
            Strategy::from_arcs(&g, vec![ArcId(2), ArcId(3), ArcId(0), ArcId(1)]).unwrap();
        let run = execute_first_k(&g, &open_first, &ctx, 2);
        assert_eq!(run.trace.cost, 2.0);
    }

    #[test]
    fn expected_cost_weighted_sum() {
        let g = parents_graph();
        let s = Strategy::left_to_right(&g);
        let dist = FiniteDistribution::new(vec![
            (Context::with_blocked(&g, &[ArcId(1), ArcId(3)]), 0.5), // cost 3 at k=2
            (Context::with_blocked(&g, &[ArcId(2), ArcId(3)]), 0.5), // cost 2 at k=2
        ])
        .unwrap();
        let c = expected_cost_first_k(&g, &s, &dist, 2);
        assert!((c - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_rejected() {
        let g = parents_graph();
        let s = Strategy::left_to_right(&g);
        execute_first_k(&g, &s, &Context::all_open(&g), 0);
    }
}
