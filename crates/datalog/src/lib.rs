//! # qpl-datalog — a from-scratch Datalog substrate
//!
//! Greiner's PODS'92 paper assumes a *knowledge base* consisting of a
//! database of ground atomic facts plus a rule base of function-free
//! definite clauses (Datalog), and a query processor that reduces a query
//! to a series of attempted retrievals. This crate provides that
//! substrate:
//!
//! * [`SymbolTable`] / [`Symbol`] — interned constant and predicate names.
//! * [`Term`], [`Atom`], [`Fact`] — terms (constants or variables),
//!   possibly-non-ground atoms, and ground facts.
//! * [`Database`] — the extensional store: per-predicate relations with
//!   hash membership (the paper's "attempted retrieval" primitive) and
//!   per-column indexes for pattern matching.
//! * [`Rule`] / [`RuleBase`] — validated definite clauses with a
//!   by-head-predicate index.
//! * [`unify`] — substitutions and syntactic unification.
//! * [`parser`] — a small concrete syntax
//!   (`prof(russ).`, `instructor(X) :- prof(X).`, query forms
//!   `instructor(b)`).
//! * [`eval`] — bottom-up naive and semi-naive evaluation (used as the
//!   ground-truth oracle for the strategy-driven engine).
//! * [`topdown`] — a satisficing SLD resolution solver (the second
//!   oracle, and the reference semantics for "blocked" arcs), plus a
//!   tabled variant that terminates on recursive rule bases.
//! * [`table`] — SLG-style answer tables keyed by adorned call patterns,
//!   reusable across queries against an unchanged database.
//! * [`adornment`] — query forms `q^α` with bound/free adornments
//!   (Section 2 of the paper).
//! * [`magic`] — magic-set/SIP rewriting driven by the same adornments,
//!   making the bottom-up fixpoint query-directed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adornment;
pub mod database;
pub mod error;
pub mod eval;
pub mod magic;
pub mod parser;
pub mod rule;
pub mod symbol;
pub mod table;
pub mod term;
pub mod topdown;
pub mod unify;

pub use adornment::{Adornment, Binding, QueryForm};
pub use database::{Database, Delta, DeltaOp};
pub use error::DatalogError;
pub use eval::EvalScratch;
pub use magic::{magic_answers, MagicEval, MagicProgram};
pub use rule::{Rule, RuleBase, RuleId};
pub use symbol::{Symbol, SymbolTable};
pub use table::{CallKey, TableId, TableStats, TableStore};
pub use term::{Atom, Fact, Term, Var};
pub use topdown::{MaintainReport, RetrievalStats, TopDown};
pub use unify::Substitution;
