//! qpl-store — durability for warm-restartable serving.
//!
//! The paper's central asset is *learned* state: PIB sample statistics
//! and climbed strategies. This crate persists that state (plus the
//! live KB it was learned against) so a serving process survives a
//! kill -9 without relearning from zero:
//!
//! * [`wal`] — segmented append-only log with CRC-framed records and a
//!   configurable [`FsyncPolicy`]; torn tails are detected, dropped,
//!   and repaired on open (longest-valid-prefix recovery).
//! * [`snapshot`] — atomic checkpoints of the full KB (facts +
//!   per-predicate generation stamps), serialized PIB statistics, and
//!   the adopted strategy; rename-into-place, never a torn hybrid.
//! * [`Store`] — the facade: open → snapshot load → ordered WAL
//!   replay; [`Store::checkpoint`] writes a snapshot then truncates
//!   the WAL it covers.
//!
//! Deliberately std-only and engine-free: facts are display strings
//! that round-trip through the serving parser, PIB state is a plain
//! mirror struct ([`PibSnapshot`]) the serving layer maps to
//! `qpl_core::PibState`. The on-disk format never learns about
//! interning order or engine internals.

mod codec;
mod error;
mod records;
mod snapshot;
mod store;
mod wal;

pub use codec::CodecError;
pub use error::StoreError;
pub use records::Record;
pub use snapshot::{CandidateEntry, ClimbEntry, PibSnapshot, Snapshot, StrategyState};
pub use store::{CheckpointInfo, Recovered, Store, StoreConfig, StoreStatus};
pub use wal::{FsyncPolicy, MAX_PAYLOAD};
