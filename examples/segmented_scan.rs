//! Section 5.2's distributed-database application: learn the order in
//! which to scan horizontally segmented files so that `age(person, X)`
//! queries hit the right file early. The same PIB machinery that orders
//! rule reductions orders file probes.
//!
//! ```text
//! cargo run --example segmented_scan
//! ```

use qpl::engine::segmented::SegmentedDb;
use qpl::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut table = SymbolTable::new();
    let age = table.intern("age");

    // Three physical files; most people live in `emea`.
    let mut seg = SegmentedDb::new();
    let make_segment = |names: &[&str], table: &mut SymbolTable| {
        let mut db = Database::new();
        for (i, n) in names.iter().enumerate() {
            let person = table.intern(n);
            let a = table.intern(&format!("age{i}"));
            db.insert(Fact::new(age, vec![person, a])).expect("consistent arity");
        }
        db
    };
    let amer = make_segment(&["alice", "bob"], &mut table);
    let emea = make_segment(&["claire", "dmitri", "elena", "farid", "gita"], &mut table);
    let apac = make_segment(&["hiro"], &mut table);
    seg.add_segment("amer", amer);
    seg.add_segment("emea", emea);
    seg.add_segment("apac", apac);

    // The apac link is slow: probing it costs 5× a local probe.
    let g = seg.scan_graph("age(b,f)", |i| if i == 2 { 5.0 } else { 1.0 })?;
    println!("scan graph:\n{}", g.outline());

    // The query stream: 80% emea people, 15% amer, 5% apac.
    let people: Vec<(String, f64)> = [
        ("claire", 0.2),
        ("dmitri", 0.2),
        ("elena", 0.2),
        ("farid", 0.1),
        ("gita", 0.1),
        ("alice", 0.1),
        ("bob", 0.05),
        ("hiro", 0.05),
    ]
    .iter()
    .map(|(n, w)| (n.to_string(), *w))
    .collect();

    let naive = Strategy::left_to_right(&g);
    let mut pib = Pib::new(&g, naive.clone(), PibConfig::new(0.05));
    let mut rng = StdRng::seed_from_u64(5);
    let mut spent_naive = 0.0;
    let mut spent_learned = 0.0;
    for i in 0..30_000u32 {
        // Draw a person by weight.
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut person = people[0].0.as_str();
        for (n, w) in &people {
            acc += w;
            if u < acc {
                person = n;
                break;
            }
        }
        let q = parser::parse_query(&format!("age({person}, X)"), &mut table)?;
        let ctx = seg.classify(&g, &q);
        spent_naive += qpl::graph::context::cost(&g, &naive, &ctx);
        spent_learned += pib.observe(&g, &ctx).cost;
        if i == 999 || i == 29_999 {
            println!(
                "after {:5} queries: scan order {} | cumulative probes: naive {:.0}, learned {:.0}",
                i + 1,
                pib.strategy().display(&g),
                spent_naive,
                spent_learned,
            );
        }
    }
    println!(
        "\nsavings: {:.1}% of probe cost",
        100.0 * (spent_naive - spent_learned) / spent_naive
    );
    for record in pib.history() {
        println!(
            "  climb at test #{} after {} samples (evidence {:.1})",
            record.test_index, record.samples, record.evidence
        );
    }
    Ok(())
}
