//! Schema-stable JSON rendering of a [`MemorySink`].
//!
//! Hand-rolled (the workspace builds offline with no serialization
//! dependency), mirroring the `BENCH_*.json` writer idiom in
//! `qpl-bench`. The schema is intentionally boring and diff-friendly:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "counters":       { "<name>": <u64>, ... },
//!   "values":         { "<name>": {"count": n, "sum": s, "min": m, "max": M}, ... },
//!   "spans":          { "<name>": {"count": n, "total_ns": t, "min_ns": m, "max_ns": M}, ... },
//!   "events":         [ {"name": "<name>", "fields": {"<k>": <f64>, ...}}, ... ],
//!   "dropped_events": <u64>
//! }
//! ```
//!
//! Map keys are sorted (inherited from [`MemorySink`]'s `BTreeMap`s),
//! events keep arrival order, and non-finite floats render as `null`,
//! so identical telemetry always renders byte-identical JSON.

use std::fmt::Write as _;

use crate::memory::MemorySink;

/// The `schema_version` stamped into every snapshot. Bump when the
/// layout above changes shape (adding new counter *names* is not a
/// schema change).
pub const SCHEMA_VERSION: u32 = 1;

/// A rendered, schema-stable JSON view of everything a [`MemorySink`]
/// recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonSnapshot {
    json: String,
}

impl JsonSnapshot {
    /// Render `sink`'s current contents.
    pub fn capture(sink: &MemorySink) -> Self {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");

        // The sink's own drop count is surfaced twice: as the legacy
        // top-level `dropped_events` field and as a synthetic counter
        // under the canonical cross-crate name, merged into sorted
        // position so consumers that only read the counters map (the
        // serve stats endpoint, CI schema checks) still see it.
        out.push_str("  \"counters\": {");
        let mut counters: std::collections::BTreeMap<&str, u64> = sink.counters().collect();
        *counters.entry(crate::names::obs::EVENTS_DROPPED).or_insert(0) += sink.dropped_events();
        let mut first = true;
        for (name, total) in counters {
            push_key(&mut out, &mut first, name);
            let _ = write!(out, "{total}");
        }
        close_map(&mut out, first);

        out.push_str("  \"values\": {");
        let mut first = true;
        for (name, v) in sink.values() {
            push_key(&mut out, &mut first, name);
            let _ = write!(out, "{{\"count\": {}, \"sum\": ", v.count);
            push_f64(&mut out, v.sum);
            out.push_str(", \"min\": ");
            push_f64(&mut out, v.min);
            out.push_str(", \"max\": ");
            push_f64(&mut out, v.max);
            out.push('}');
        }
        close_map(&mut out, first);

        out.push_str("  \"spans\": {");
        let mut first = true;
        for (name, s) in sink.spans() {
            push_key(&mut out, &mut first, name);
            let _ = write!(
                out,
                "{{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
                s.count, s.total_ns, s.min_ns, s.max_ns
            );
        }
        close_map(&mut out, first);

        out.push_str("  \"events\": [");
        for (i, event) in sink.events().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": ");
            push_str(&mut out, event.name);
            out.push_str(", \"fields\": {");
            for (j, (key, value)) in event.fields.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                push_str(&mut out, key);
                out.push_str(": ");
                push_f64(&mut out, *value);
            }
            out.push_str("}}");
        }
        if sink.events().is_empty() {
            out.push_str("],\n");
        } else {
            out.push_str("\n  ],\n");
        }

        let _ = writeln!(out, "  \"dropped_events\": {}", sink.dropped_events());
        out.push_str("}\n");
        JsonSnapshot { json: out }
    }

    /// The rendered JSON document (ends with a newline).
    pub fn as_str(&self) -> &str {
        &self.json
    }

    /// Consume the snapshot, yielding the rendered JSON.
    pub fn into_string(self) -> String {
        self.json
    }

    /// The document rendered as one line: structural newlines and the
    /// indentation that follows them stripped, for embedding a snapshot
    /// inside a line-delimited wire protocol. Safe on any snapshot
    /// because in-string newlines render as `\n` escapes
    /// ([`push_str`]), so every raw `'\n'` in the document is
    /// structural.
    pub fn as_line(&self) -> String {
        let mut out = String::with_capacity(self.json.len());
        let mut after_newline = false;
        for c in self.json.chars() {
            if c == '\n' {
                after_newline = true;
                continue;
            }
            if after_newline && c == ' ' {
                continue;
            }
            after_newline = false;
            out.push(c);
        }
        out
    }

    /// Crude structural probe used by tests and smoke checks: whether
    /// the document contains a top-level-style `"key":` occurrence.
    pub fn has_key(&self, key: &str) -> bool {
        self.json.contains(&format!("\"{key}\":"))
    }
}

/// Append `", "`-separated sorted-map entries: `"name": `.
fn push_key(out: &mut String, first: &mut bool, name: &str) {
    if *first {
        *first = false;
        out.push_str("\n    ");
    } else {
        out.push_str(",\n    ");
    }
    push_str(out, name);
    out.push_str(": ");
}

fn close_map(out: &mut String, was_empty: bool) {
    if was_empty {
        out.push_str("},\n");
    } else {
        out.push_str("\n  },\n");
    }
}

/// Append a JSON string literal with the escapes JSON requires.
fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append an `f64` as a JSON number; non-finite values become `null`
/// (JSON has no NaN/Infinity).
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MetricsSink;

    fn sample_sink() -> MemorySink {
        let mut sink = MemorySink::new();
        sink.counter("b.hits", 7);
        sink.counter("a.misses", 2);
        sink.value("cost", 1.5);
        sink.value("cost", 2.5);
        sink.span_ns("phase", 1000);
        sink.event("decide", &[("delta", -0.25), ("accept", 1.0)]);
        sink
    }

    #[test]
    fn snapshot_has_all_top_level_keys() {
        let snap = JsonSnapshot::capture(&sample_sink());
        for key in ["schema_version", "counters", "values", "spans", "events", "dropped_events"] {
            assert!(snap.has_key(key), "missing {key} in {}", snap.as_str());
        }
    }

    #[test]
    fn snapshot_is_deterministic_and_sorted() {
        let a = JsonSnapshot::capture(&sample_sink());
        let b = JsonSnapshot::capture(&sample_sink());
        assert_eq!(a, b);
        let json = a.as_str();
        let a_pos = json.find("\"a.misses\"").unwrap();
        let b_pos = json.find("\"b.hits\"").unwrap();
        assert!(a_pos < b_pos, "map keys must render sorted");
    }

    #[test]
    fn empty_sink_still_renders_every_section() {
        let snap = JsonSnapshot::capture(&MemorySink::new());
        let json = snap.as_str();
        assert!(json.contains("\"obs.events_dropped\": 0"));
        assert!(json.contains("\"events\": []"));
        assert!(json.contains("\"dropped_events\": 0"));
    }

    #[test]
    fn capped_event_drops_surface_as_the_canonical_counter() {
        let mut sink = MemorySink::with_max_events(2);
        for _ in 0..5 {
            sink.event("e", &[]);
        }
        let snap = JsonSnapshot::capture(&sink);
        assert!(snap.has_key("obs.events_dropped"));
        assert!(snap.as_str().contains("\"obs.events_dropped\": 3"), "{}", snap.as_str());
        assert!(snap.as_str().contains("\"dropped_events\": 3"));

        // Drop counts survive a shard merge: two sinks over cap sum.
        let mut other = MemorySink::with_max_events(2);
        for _ in 0..4 {
            other.event("e", &[]);
        }
        sink.merge_from(&other);
        let merged = JsonSnapshot::capture(&sink);
        // 3 own + 2 of other's (other's cap already dropped 2) + 2
        // overflowing this sink's full buffer = 7.
        assert!(merged.as_str().contains("\"obs.events_dropped\": 7"), "{}", merged.as_str());
    }

    #[test]
    fn as_line_is_single_line_and_content_preserving() {
        let mut sink = sample_sink();
        sink.counter("tricky\nname", 1); // escaped newline must survive
        let snap = JsonSnapshot::capture(&sink);
        let line = snap.as_line();
        assert!(!line.contains('\n'), "still multi-line: {line}");
        assert!(line.contains("\"tricky\\nname\": 1"), "escaped content lost: {line}");
        assert!(line.contains("\"schema_version\": 1"));
        let opens = line.matches(['{', '[']).count();
        let closes = line.matches(['}', ']']).count();
        assert_eq!(opens, closes, "unbalanced after flattening:\n{line}");
    }

    #[test]
    fn non_finite_values_render_null() {
        let mut sink = MemorySink::new();
        sink.value("bad", f64::NAN);
        let snap = JsonSnapshot::capture(&sink);
        assert!(snap.as_str().contains("null"));
        assert!(!snap.as_str().contains("NaN"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        push_str(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn balanced_braces_and_brackets() {
        let snap = JsonSnapshot::capture(&sample_sink());
        let json = snap.as_str();
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes, "unbalanced JSON:\n{json}");
    }
}
