//! Bottom-up evaluation: naive and semi-naive fixpoint computation.
//!
//! The strategy-driven query processor in `qpl-engine` is top-down and
//! satisficing; these bottom-up evaluators compute the *full* minimal
//! model and serve as ground-truth oracles in tests ("does a derivation
//! exist for this query in this context?") — exactly the yes/no question
//! whose *cost*, not answer, the paper's strategies change.

use crate::database::Database;
use crate::rule::{Rule, RuleBase};
use crate::symbol::Symbol;
use crate::term::{Atom, Fact};
use crate::unify::Substitution;
use std::collections::HashSet;

/// Reusable buffers for the bottom-up fixpoints: the staging vector of
/// freshly derived facts, the semi-naive delta frontier (current and
/// next), and the frontier's predicate set. One scratch serves any
/// number of [`naive_into`]/[`seminaive_into`] runs, so a caller that
/// evaluates in a loop (the magic-rewritten engine path, benches) does
/// not churn the allocator once the buffers reach steady-state size.
#[derive(Debug, Default)]
pub struct EvalScratch {
    new_facts: Vec<Fact>,
    delta: HashSet<Fact>,
    next_delta: HashSet<Fact>,
    delta_preds: HashSet<Symbol>,
}

impl EvalScratch {
    /// Empty scratch; buffers grow on first use and are kept thereafter.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Computes the minimal model by naive iteration: applies every rule to
/// the whole database until no new fact appears. Quadratic in rounds but
/// obviously correct; used to validate [`seminaive`].
pub fn naive(rules: &RuleBase, edb: &Database) -> Database {
    naive_into(rules, edb, &mut EvalScratch::new())
}

/// [`naive`] with caller-owned scratch buffers.
pub fn naive_into(rules: &RuleBase, edb: &Database, scratch: &mut EvalScratch) -> Database {
    let mut db = edb.clone();
    loop {
        scratch.new_facts.clear();
        for (_, rule) in rules.iter() {
            derive(rule, &db, None, &mut scratch.new_facts);
        }
        let mut changed = false;
        for f in scratch.new_facts.drain(..) {
            if db.insert(f).expect("derived fact arity is consistent").changed {
                changed = true;
            }
        }
        if !changed {
            return db;
        }
    }
}

/// Computes the minimal model by semi-naive iteration: each round only
/// joins rule bodies against at least one *delta* (newly derived) fact.
pub fn seminaive(rules: &RuleBase, edb: &Database) -> Database {
    seminaive_into(rules, edb, &mut EvalScratch::new())
}

/// [`seminaive`] with caller-owned scratch buffers.
pub fn seminaive_into(rules: &RuleBase, edb: &Database, scratch: &mut EvalScratch) -> Database {
    let mut db = edb.clone();
    // Round 0: fire every rule once against the EDB.
    scratch.delta.clear();
    scratch.new_facts.clear();
    for (_, rule) in rules.iter() {
        derive(rule, &db, None, &mut scratch.new_facts);
    }
    for f in scratch.new_facts.drain(..) {
        if db.insert(f.clone()).expect("consistent arity").changed {
            scratch.delta.insert(f);
        }
    }
    while !scratch.delta.is_empty() {
        scratch.delta_preds.clear();
        scratch.delta_preds.extend(scratch.delta.iter().map(|f| f.predicate));
        scratch.new_facts.clear();
        for (_, rule) in rules.iter() {
            // Only rules whose body mentions a delta predicate can fire anew.
            if rule.body.iter().any(|b| scratch.delta_preds.contains(&b.predicate)) {
                derive(rule, &db, Some(&scratch.delta), &mut scratch.new_facts);
            }
        }
        scratch.next_delta.clear();
        for f in scratch.new_facts.drain(..) {
            if db.insert(f.clone()).expect("consistent arity").changed {
                scratch.next_delta.insert(f);
            }
        }
        std::mem::swap(&mut scratch.delta, &mut scratch.next_delta);
    }
    db
}

/// Fires one rule against `db`, pushing derived ground head instances.
/// When `delta` is given, only derivations using at least one delta fact
/// in the body are produced (the semi-naive restriction).
fn derive(rule: &Rule, db: &Database, delta: Option<&HashSet<Fact>>, out: &mut Vec<Fact>) {
    // Depth-first join over body literals, tracking whether a delta fact
    // participated so far.
    #[allow(clippy::too_many_arguments)]
    fn join(
        body: &[Atom],
        idx: usize,
        sub: Substitution,
        used_delta: bool,
        rule: &Rule,
        db: &Database,
        delta: Option<&HashSet<Fact>>,
        out: &mut Vec<Fact>,
    ) {
        if idx == body.len() {
            if delta.is_some() && !used_delta {
                return;
            }
            let head = sub.apply(&rule.head);
            if let Some(f) = head.to_fact() {
                out.push(f);
            }
            return;
        }
        for next in db.matches(&body[idx], &sub) {
            let used = used_delta
                || delta.is_some_and(|d| {
                    let ground = next.apply(&body[idx]);
                    ground.to_fact().is_some_and(|f| d.contains(&f))
                });
            join(body, idx + 1, next, used, rule, db, delta, out);
        }
    }
    join(&rule.body, 0, Substitution::new(), false, rule, db, delta, out);
}

/// Whether `query` (possibly non-ground) holds in the minimal model of
/// `rules ∪ edb` — the oracle's yes/no answer.
///
/// Recomputes the model from scratch; for many queries against the same
/// knowledge base, precompute a [`MinimalModel`] once instead.
pub fn holds(rules: &RuleBase, edb: &Database, query: &Atom) -> bool {
    MinimalModel::compute(rules, edb).holds(query)
}

/// A precomputed minimal model, for answering many oracle queries
/// against one knowledge base without re-running the fixpoint each time.
///
/// # Examples
/// ```
/// use qpl_datalog::eval::MinimalModel;
/// use qpl_datalog::parser::{parse_program, parse_query};
/// use qpl_datalog::SymbolTable;
/// let mut t = SymbolTable::new();
/// let p = parse_program("a(X) :- b(X). b(k).", &mut t).unwrap();
/// let model = MinimalModel::compute(&p.rules, &p.facts);
/// assert!(model.holds(&parse_query("a(k)", &mut t).unwrap()));
/// assert!(!model.holds(&parse_query("a(j)", &mut t).unwrap()));
/// ```
#[derive(Debug, Clone)]
pub struct MinimalModel {
    model: Database,
}

impl MinimalModel {
    /// Runs semi-naive evaluation to saturation.
    pub fn compute(rules: &RuleBase, edb: &Database) -> Self {
        Self { model: seminaive(rules, edb) }
    }

    /// Whether `query` (possibly non-ground) holds in the model.
    pub fn holds(&self, query: &Atom) -> bool {
        if let Some(f) = query.to_fact() {
            self.model.contains(f.predicate, &f.args)
        } else {
            !self.model.matches(query, &Substitution::new()).is_empty()
        }
    }

    /// The saturated database (EDB plus every derived fact).
    pub fn database(&self) -> &Database {
        &self.model
    }
}

/// All ground instances of `query` in the minimal model.
pub fn answers(rules: &RuleBase, edb: &Database, query: &Atom) -> Vec<Atom> {
    let model = seminaive(rules, edb);
    let mut out: Vec<Atom> =
        model.matches(query, &Substitution::new()).iter().map(|s| s.apply(query)).collect();
    out.sort_by_key(|a| a.args.iter().map(|t| t.as_const().map(|s| s.index())).collect::<Vec<_>>());
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::symbol::SymbolTable;
    use crate::term::{Term, Var};

    fn model_dump(src: &str, semi: bool) -> Vec<String> {
        let mut t = SymbolTable::new();
        let p = parse_program(src, &mut t).unwrap();
        let m = if semi { seminaive(&p.rules, &p.facts) } else { naive(&p.rules, &p.facts) };
        m.dump(&t)
    }

    #[test]
    fn university_kb_derives_instructors() {
        let src = "instructor(X) :- prof(X).\n\
                   instructor(X) :- grad(X).\n\
                   prof(russ). grad(manolis).";
        let m = model_dump(src, true);
        assert!(m.contains(&"instructor(russ)".to_string()));
        assert!(m.contains(&"instructor(manolis)".to_string()));
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn naive_and_seminaive_agree_on_transitive_closure() {
        let src = "path(X, Y) :- edge(X, Y).\n\
                   path(X, Z) :- path(X, Y), edge(Y, Z).\n\
                   edge(a, b). edge(b, c). edge(c, d).";
        assert_eq!(model_dump(src, false), model_dump(src, true));
        let m = model_dump(src, true);
        assert!(m.contains(&"path(a, d)".to_string()));
        // 3 edges + 6 paths = 9 facts.
        assert_eq!(m.len(), 9);
    }

    #[test]
    fn conjunctive_join() {
        let src = "gp(X, Z) :- parent(X, Y), parent(Y, Z).\n\
                   parent(ann, bob). parent(bob, cal). parent(bob, dan).";
        let m = model_dump(src, true);
        assert!(m.contains(&"gp(ann, cal)".to_string()));
        assert!(m.contains(&"gp(ann, dan)".to_string()));
        assert_eq!(m.iter().filter(|f| f.starts_with("gp")).count(), 2);
    }

    #[test]
    fn cyclic_edges_terminate() {
        let src = "path(X, Y) :- edge(X, Y).\n\
                   path(X, Z) :- path(X, Y), edge(Y, Z).\n\
                   edge(a, b). edge(b, a).";
        let m = model_dump(src, true);
        // {a,b}² = 4 paths.
        assert_eq!(m.iter().filter(|f| f.starts_with("path")).count(), 4);
    }

    #[test]
    fn holds_ground_and_open_queries() {
        let mut t = SymbolTable::new();
        let p = parse_program("instructor(X) :- prof(X). prof(russ).", &mut t).unwrap();
        let instr = t.lookup("instructor").unwrap();
        let russ = t.lookup("russ").unwrap();
        let fred = t.intern("fred");
        assert!(holds(&p.rules, &p.facts, &Atom::new(instr, vec![Term::Const(russ)])));
        assert!(!holds(&p.rules, &p.facts, &Atom::new(instr, vec![Term::Const(fred)])));
        assert!(holds(&p.rules, &p.facts, &Atom::new(instr, vec![Term::Var(Var(0))])));
    }

    #[test]
    fn answers_enumerates_bindings() {
        let mut t = SymbolTable::new();
        let p = parse_program(
            "instructor(X) :- prof(X). instructor(X) :- grad(X).\n\
             prof(russ). grad(manolis).",
            &mut t,
        )
        .unwrap();
        let instr = t.lookup("instructor").unwrap();
        let q = Atom::new(instr, vec![Term::Var(Var(0))]);
        let ans = answers(&p.rules, &p.facts, &q);
        assert_eq!(ans.len(), 2);
    }

    #[test]
    fn empty_rule_base_returns_edb() {
        let src = "p(a). q(b).";
        let m = model_dump(src, true);
        assert_eq!(m, vec!["p(a)", "q(b)"]);
    }

    #[test]
    fn partially_ground_rule_head() {
        // The Section-4.1 rule: grad(fred) :- admitted(fred, X).
        let src = "grad(fred) :- admitted(fred, X).\n\
                   admitted(fred, toronto).";
        let m = model_dump(src, true);
        assert!(m.contains(&"grad(fred)".to_string()));
    }

    #[test]
    fn seminaive_matches_naive_on_diamond() {
        // Diamond dependency: a :- b. a :- c. b :- d. c :- d. d.
        let src = "a(X) :- b(X). a(X) :- c(X). b(X) :- d(X). c(X) :- d(X). d(k).";
        assert_eq!(model_dump(src, false), model_dump(src, true));
    }

    proptest::proptest! {
        /// Random edge sets: semi-naive and naive compute identical
        /// transitive closures.
        #[test]
        fn closure_equivalence(edges in proptest::collection::vec((0u8..5, 0u8..5), 0..12)) {
            let mut src = String::from(
                "path(X, Y) :- edge(X, Y).\npath(X, Z) :- path(X, Y), edge(Y, Z).\n");
            for (a, b) in &edges {
                src.push_str(&format!("edge(n{a}, n{b}).\n"));
            }
            let n = model_dump(&src, false);
            let s = model_dump(&src, true);
            proptest::prop_assert_eq!(n, s);
        }
    }
}
