//! Hill-climbing over and-or (hypergraph) strategies — PIB for the
//! Note-4 setting.
//!
//! And-or strategies are per-goal orderings of hyper-arcs; the natural
//! transformation vocabulary is "swap two hyper-arcs at one goal". The
//! trace-only `Δ̃` machinery of the tree case does **not** carry over:
//! with conjunctions, assuming an unexplored arc blocked can *lower* an
//! alternative's cost (a failed conjunction aborts its remaining
//! children), so pessimistic completion no longer under-estimates.
//! Instead this learner evaluates the exact paired difference
//! `c(Θ, I) − c(τ(Θ), I)` per sampled context — the PALO discipline —
//! and accepts a swap under the same sequential Chernoff test as PIB
//! (Equation 6 with `δᵢ = 6δ/(π²i²)`), so the Theorem-1-style guarantee
//! (mistake probability ≤ δ) still holds.

use qpl_graph::hypergraph::{execute, AndOrContext, AndOrGraph, AndOrStrategy, GoalId, HyperArcId};
use qpl_stats::{PairedDifference, SequentialSchedule};

/// A per-goal hyper-arc order swap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AndOrSwap {
    /// The goal whose order changes.
    pub goal: GoalId,
    /// Index of the first hyper-arc in the goal's current order.
    pub i: usize,
    /// Index of the second.
    pub j: usize,
}

#[derive(Debug, Clone)]
struct Candidate {
    swap: AndOrSwap,
    strategy: AndOrStrategy,
    acc: PairedDifference,
}

/// The and-or hill-climber.
#[derive(Debug, Clone)]
pub struct AndOrPib {
    current: AndOrStrategy,
    candidates: Vec<Candidate>,
    schedule: SequentialSchedule,
    climbs: Vec<AndOrSwap>,
}

impl AndOrPib {
    /// Creates a learner starting from `initial` with total mistake
    /// budget `δ`.
    ///
    /// # Panics
    /// Panics unless `δ ∈ (0, 1)` (via the schedule).
    pub fn new(g: &AndOrGraph, initial: AndOrStrategy, delta: f64) -> Self {
        let schedule = SequentialSchedule::new(delta);
        let mut pib =
            Self { current: initial, candidates: Vec::new(), schedule, climbs: Vec::new() };
        pib.rebuild(g);
        pib
    }

    fn rebuild(&mut self, g: &AndOrGraph) {
        self.candidates.clear();
        for gi in 0..g.goal_count() {
            let goal = GoalId(gi as u32);
            let order = self.current.order(goal);
            for i in 0..order.len() {
                for j in (i + 1)..order.len() {
                    let mut orders: Vec<Vec<HyperArcId>> = (0..g.goal_count())
                        .map(|k| self.current.order(GoalId(k as u32)).to_vec())
                        .collect();
                    orders[gi].swap(i, j);
                    let strategy = AndOrStrategy::from_orders(g, orders)
                        .expect("swapped orders remain permutations");
                    // Λ: on a tree every hyper-arc is attempted at most
                    // once per run, so 0 ≤ c(Θ, I) ≤ Σf and any paired
                    // difference lies within ±Σf.
                    let lambda: f64 = g.arc_ids().map(|a| g.arc(a).cost).sum();
                    self.candidates.push(Candidate {
                        swap: AndOrSwap { goal, i, j },
                        strategy,
                        acc: PairedDifference::new(lambda),
                    });
                }
            }
        }
    }

    /// The strategy currently in use (anytime property).
    pub fn strategy(&self) -> &AndOrStrategy {
        &self.current
    }

    /// Swaps taken so far.
    pub fn climbs(&self) -> &[AndOrSwap] {
        &self.climbs
    }

    /// Observes one context: replays the current strategy and every
    /// neighbour on it (exact paired differences), then runs the
    /// sequential acceptance test. Returns the current strategy's cost
    /// on this context.
    pub fn observe(&mut self, g: &AndOrGraph, ctx: &AndOrContext) -> f64 {
        let base = execute(g, &self.current, ctx).cost;
        for cand in &mut self.candidates {
            let alt = execute(g, &cand.strategy, ctx).cost;
            cand.acc.record(base - alt);
        }
        if self.candidates.is_empty() {
            return base;
        }
        let delta_i = self.schedule.advance(self.candidates.len() as u64);
        let winner = self
            .candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| c.acc.certifies_improvement(delta_i))
            .max_by(|(_, a), (_, b)| {
                (a.acc.sum() - a.acc.threshold(delta_i))
                    .partial_cmp(&(b.acc.sum() - b.acc.threshold(delta_i)))
                    .expect("finite statistics")
            })
            .map(|(i, _)| i);
        if let Some(idx) = winner {
            let cand = self.candidates[idx].clone();
            self.climbs.push(cand.swap);
            self.current = cand.strategy;
            self.rebuild(g);
        }
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpl_graph::hypergraph::{brute_force_optimal, AndOrBuilder, AndOrModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A :- B∧C (often fails), plus a direct retrieval dA (often works).
    fn conj_graph() -> AndOrGraph {
        let mut b = AndOrBuilder::new("A");
        let root = b.root();
        let gb = b.goal("B");
        let gc = b.goal("C");
        b.reduction(root, vec![gb, gc], "r1", 1.0);
        b.retrieval(root, "dA", 1.0);
        b.retrieval(gb, "dB", 1.0);
        b.retrieval(gc, "dC", 1.0);
        b.finish().unwrap()
    }

    fn model(g: &AndOrGraph, probs: &[(&str, f64)]) -> AndOrModel {
        let v: Vec<f64> = g
            .arc_ids()
            .map(|a| {
                probs.iter().find(|(l, _)| *l == g.arc(a).label).map(|(_, p)| *p).unwrap_or(1.0)
            })
            .collect();
        AndOrModel::new(g, v).unwrap()
    }

    #[test]
    fn learns_to_try_direct_retrieval_first() {
        let g = conj_graph();
        let m = model(&g, &[("dA", 0.85), ("dB", 0.4), ("dC", 0.4)]);
        let initial = AndOrStrategy::left_to_right(&g); // conjunction first
        let mut pib = AndOrPib::new(&g, initial.clone(), 0.05);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..4000 {
            let ctx = m.sample(&mut rng);
            pib.observe(&g, &ctx);
        }
        assert_eq!(pib.climbs().len(), 1);
        let c_init = m.expected_cost(&g, &initial);
        let c_final = m.expected_cost(&g, pib.strategy());
        assert!(c_final < c_init, "{c_final} < {c_init}");
        // Matches the brute-force optimum.
        let (_, c_opt) = brute_force_optimal(&g, &m, 10_000);
        assert!((c_final - c_opt).abs() < 1e-9);
    }

    #[test]
    fn keeps_conjunction_first_when_it_dominates() {
        let g = conj_graph();
        let m = model(&g, &[("dA", 0.05), ("dB", 0.95), ("dC", 0.95)]);
        let mut pib = AndOrPib::new(&g, AndOrStrategy::left_to_right(&g), 0.05);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..4000 {
            let ctx = m.sample(&mut rng);
            pib.observe(&g, &ctx);
        }
        assert!(pib.climbs().is_empty(), "conjunction-first is already optimal");
    }

    #[test]
    fn mistake_rate_bounded_on_neutral_model() {
        // dA and the conjunction have exactly equal expected cost?
        // Easier: make the two root options symmetric by using two
        // direct retrievals with equal probabilities.
        let mut b = AndOrBuilder::new("A");
        let root = b.root();
        b.retrieval(root, "d1", 1.0);
        b.retrieval(root, "d2", 1.0);
        let g = b.finish().unwrap();
        let m = model(&g, &[("d1", 0.4), ("d2", 0.4)]);
        let delta = 0.1;
        let runs = 200u64;
        let mut wrong = 0u64;
        for t in 0..runs {
            let mut pib = AndOrPib::new(&g, AndOrStrategy::left_to_right(&g), delta);
            let mut rng = StdRng::seed_from_u64(100 + t);
            for _ in 0..300 {
                let ctx = m.sample(&mut rng);
                pib.observe(&g, &ctx);
                if !pib.climbs().is_empty() {
                    wrong += 1;
                    break;
                }
            }
        }
        let rate = wrong as f64 / runs as f64;
        assert!(rate <= delta, "mistake rate {rate} > δ");
    }

    #[test]
    fn deep_reordering_inside_conjunction_children() {
        // Within goal B two alternatives exist; the cheaper/likelier one
        // should bubble up even though B only matters inside the
        // conjunction.
        let mut b = AndOrBuilder::new("A");
        let root = b.root();
        let gb = b.goal("B");
        b.reduction(root, vec![gb], "r1", 1.0);
        b.retrieval(gb, "dB_slow", 5.0);
        b.retrieval(gb, "dB_fast", 1.0);
        let g = b.finish().unwrap();
        let m = model(&g, &[("dB_slow", 0.5), ("dB_fast", 0.5)]);
        let mut pib = AndOrPib::new(&g, AndOrStrategy::left_to_right(&g), 0.05);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..6000 {
            let ctx = m.sample(&mut rng);
            pib.observe(&g, &ctx);
        }
        assert_eq!(pib.climbs().len(), 1);
        let first = pib.strategy().order(gb)[0];
        assert_eq!(g.arc(first).label, "dB_fast");
    }
}
