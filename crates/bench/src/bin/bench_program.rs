//! Measures the strategy-program compiler and the bit-parallel batch
//! executor against the scalar tree-walk, emitting `BENCH_program.json`.
//!
//! ```text
//! bench_program [--out BENCH_program.json] [--samples N]
//! ```
//!
//! Three execution paths answer the same pre-sampled context stream on
//! the layered-tree workload the tabling experiment (E18) and the
//! parallel harness benchmark draw from:
//!
//! * `scalar tree-walk` — [`cost_into`] walking `Strategy` arc order
//!   with HashMap-free scratch (the seed's hot loop);
//! * `compiled program` — [`program_cost_into`] over the flat
//!   jump-threaded [`StrategyProgram`];
//! * `bit-parallel batch` — [`execute_batch`] over 64-lane
//!   [`ContextBatch`] planes.
//!
//! Total cost sums are asserted bit-identical across all three paths
//! (the lane/index drain order matches the scalar sample order), and a
//! PIB end-to-end section checks the batched learner reaches the same
//! strategy at the same throughput gain. Sampling happens outside the
//! timed region: this benchmark prices the execution loop itself.

use qpl_core::{Pib, PibConfig};
use qpl_engine::par::sample_rng;
use qpl_graph::batch::{execute_batch, BatchRun, ContextBatch, LANES};
use qpl_graph::context::{cost_into, Context, RunScratch};
use qpl_graph::expected::ContextDistribution;
use qpl_graph::program::{program_cost_into, StrategyProgram};
use qpl_graph::Strategy;
use qpl_workload::generator::{random_retrieval_model, random_tree_with_retrievals, TreeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::num::NonZeroUsize;
use std::time::Instant;

/// Pre-sampled context stream: scalar contexts plus the same stream
/// packed into 64-lane batches (lane `l` of batch `b` is sample
/// `b * LANES + l`, drawn from the identical per-index RNG).
struct Stream {
    contexts: Vec<Context>,
    batches: Vec<ContextBatch>,
}

fn sample_stream(
    g: &qpl_graph::InferenceGraph,
    model: &dyn ContextDistribution,
    seed: u64,
    n: usize,
) -> Stream {
    let mut contexts = Vec::with_capacity(n);
    let mut ctx = Context::all_open(g);
    for i in 0..n {
        let mut rng = sample_rng(seed, i as u64);
        model.sample_into(&mut rng, &mut ctx);
        contexts.push(ctx.clone()); // building the fixture, not the timed loop
    }
    let mut batches = Vec::with_capacity(n.div_ceil(LANES));
    let mut start = 0usize;
    while start < n {
        let lanes = (n - start).min(LANES);
        let mut rngs: Vec<StdRng> =
            (start..start + lanes).map(|i| sample_rng(seed, i as u64)).collect();
        let mut batch = ContextBatch::new(g.arc_count(), lanes);
        model.sample_batch_into(&mut rngs, &mut batch);
        batches.push(batch);
        start += lanes;
    }
    Stream { contexts, batches }
}

/// One workload shape: (contexts/sec, bit-identical sum) per path.
struct ShapeResult {
    retrievals: usize,
    arcs: usize,
    samples: usize,
    walk_cps: f64,
    reuse_cps: f64,
    program_cps: f64,
    batch_cps: f64,
}

fn bench_shape(seed: u64, retrievals: usize, depth: usize, n: usize) -> ShapeResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = TreeParams { max_depth: depth, max_branch: 4, ..Default::default() };
    let g = random_tree_with_retrievals(&mut rng, &params, retrievals, retrievals * 2);
    let model = random_retrieval_model(&mut rng, &g, (0.05, 0.6));
    let theta = Strategy::left_to_right(&g);
    let prog = StrategyProgram::compile(&g, &theta).expect("depth-first tree compiles");
    let stream = sample_stream(&g, &model, seed.wrapping_mul(31), n);

    // Best-of-`REPS` wall time per variant: the repeats defend against
    // scheduler noise on shared machines, and the minimum is the run
    // least polluted by it.
    const REPS: usize = 5;

    // The tree-walk exactly as the repo's Monte-Carlo harness calls it
    // per sample (`cost` allocates its run scratch every call).
    let mut walk_sum = 0.0f64;
    let mut walk_secs = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let mut sum = 0.0f64;
        for ctx in &stream.contexts {
            sum += qpl_graph::context::cost(&g, &theta, ctx);
        }
        walk_secs = walk_secs.min(t0.elapsed().as_secs_f64());
        walk_sum = sum;
    }

    let mut scratch = RunScratch::new(&g);
    let mut scalar_sum = 0.0f64;
    let mut scalar_secs = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let mut sum = 0.0f64;
        for ctx in &stream.contexts {
            sum += cost_into(&g, &theta, ctx, &mut scratch);
        }
        scalar_secs = scalar_secs.min(t0.elapsed().as_secs_f64());
        scalar_sum = sum;
    }

    let mut program_sum = 0.0f64;
    let mut program_secs = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let mut sum = 0.0f64;
        for ctx in &stream.contexts {
            sum += program_cost_into(&prog, ctx, &mut scratch);
        }
        program_secs = program_secs.min(t0.elapsed().as_secs_f64());
        program_sum = sum;
    }

    let mut run = BatchRun::new();
    let mut batch_sum = 0.0f64;
    let mut batch_secs = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let mut sum = 0.0f64;
        for batch in &stream.batches {
            execute_batch(&prog, batch, batch.active_mask(), &mut run);
            for lane in 0..batch.lanes() {
                sum += run.cost(lane);
            }
        }
        batch_secs = batch_secs.min(t0.elapsed().as_secs_f64());
        batch_sum = sum;
    }

    assert_eq!(walk_sum.to_bits(), scalar_sum.to_bits(), "scratch reuse changed the walk");
    assert_eq!(
        program_sum.to_bits(),
        scalar_sum.to_bits(),
        "compiled program diverged from the tree-walk"
    );
    assert_eq!(
        batch_sum.to_bits(),
        scalar_sum.to_bits(),
        "batch executor diverged from the tree-walk"
    );
    println!(
        "retrievals={retrievals} arcs={}: walk {:.0}/s, walk+reuse {:.0}/s, program {:.0}/s, \
         batch {:.0}/s (sums bit-identical)",
        g.arc_count(),
        n as f64 / walk_secs,
        n as f64 / scalar_secs,
        n as f64 / program_secs,
        n as f64 / batch_secs,
    );
    ShapeResult {
        retrievals,
        arcs: g.arc_count(),
        samples: n,
        walk_cps: n as f64 / walk_secs,
        reuse_cps: n as f64 / scalar_secs,
        program_cps: n as f64 / program_secs,
        batch_cps: n as f64 / batch_secs,
    }
}

/// PIB end-to-end: scalar `observe` vs `observe_batch` on the same
/// stream; asserts the learned strategy is identical before reporting
/// throughput.
fn bench_pib(seed: u64, n: usize) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = TreeParams { max_depth: 6, max_branch: 4, ..Default::default() };
    let g = random_tree_with_retrievals(&mut rng, &params, 32, 64);
    let model = random_retrieval_model(&mut rng, &g, (0.05, 0.6));
    let theta = Strategy::left_to_right(&g);
    let stream = sample_stream(&g, &model, seed.wrapping_mul(17), n);

    let mut scalar = Pib::new(&g, theta.clone(), PibConfig::new(0.1));
    let t0 = Instant::now();
    for ctx in &stream.contexts {
        scalar.observe_quiet(&g, ctx);
    }
    let scalar_secs = t0.elapsed().as_secs_f64();

    let mut batched = Pib::new(&g, theta, PibConfig::new(0.1));
    let t0 = Instant::now();
    for batch in &stream.batches {
        batched.observe_batch(&g, batch);
    }
    let batch_secs = t0.elapsed().as_secs_f64();

    assert_eq!(
        scalar.strategy().arcs(),
        batched.strategy().arcs(),
        "batched PIB learned a different strategy"
    );
    println!(
        "PIB end-to-end: scalar {:.0}/s, batched {:.0}/s (same final strategy)",
        n as f64 / scalar_secs,
        n as f64 / batch_secs,
    );
    (n as f64 / scalar_secs, n as f64 / batch_secs)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(pos) if pos + 1 < args.len() => args[pos + 1].clone(),
        _ => "BENCH_program.json".to_string(),
    };
    let n = match args.iter().position(|a| a == "--samples") {
        Some(pos) if pos + 1 < args.len() => {
            args[pos + 1].parse().expect("--samples takes a count")
        }
        _ => 200_000usize,
    };
    let cores = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);

    let shapes =
        [bench_shape(21, 32, 6, n), bench_shape(22, 128, 8, n), bench_shape(23, 512, 10, n / 4)];
    let shape_rows: Vec<String> = shapes
        .iter()
        .map(|s| {
            format!(
                "    {{\"retrievals\": {}, \"arcs\": {}, \"samples\": {}, \
                 \"tree_walk_per_sec\": {:.0}, \"walk_reuse_per_sec\": {:.0}, \
                 \"program_per_sec\": {:.0}, \"batch_per_sec\": {:.0}, \
                 \"batch_vs_tree_walk\": {:.2}, \"batch_vs_walk_reuse\": {:.2}}}",
                s.retrievals,
                s.arcs,
                s.samples,
                s.walk_cps,
                s.reuse_cps,
                s.program_cps,
                s.batch_cps,
                s.batch_cps / s.walk_cps,
                s.batch_cps / s.reuse_cps
            )
        })
        .collect();

    let (pib_scalar, pib_batch) = bench_pib(24, n / 2);

    let json = format!(
        "{{\n  \"bench\": \"strategy programs + bit-parallel batch execution\",\n  \
         \"cores\": {cores},\n  \
         \"note\": \"tree_walk is the per-sample loop as the MC harness calls it (scratch \
         allocated per call); walk_reuse hoists the scratch; sums asserted bit-identical \
         across all four paths; sampling excluded from timing; best-of-5 reps per variant\",\n  \
         \"execution_throughput\": [\n{}\n  ],\n  \
         \"pib_end_to_end\": {{\"scalar_per_sec\": {pib_scalar:.0}, \
         \"batched_per_sec\": {pib_batch:.0}, \"speedup\": {:.2}}}\n}}\n",
        shape_rows.join(",\n"),
        pib_batch / pib_scalar
    );
    std::fs::write(&out_path, &json).expect("write BENCH_program.json");
    println!("wrote {out_path} (cores={cores})");
}
