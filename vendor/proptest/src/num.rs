//! Per-type `ANY` strategies (`proptest::num::u64::ANY` etc.).

macro_rules! any_module {
    ($($mod:ident : $t:ty),+ $(,)?) => {$(
        /// Full-range strategy for the corresponding primitive type.
        pub mod $mod {
            /// Uniform draw over the type's whole value range.
            pub const ANY: crate::strategy::Any<$t> =
                crate::strategy::Any(core::marker::PhantomData);
        }
    )+};
}

any_module!(
    u8: u8, u16: u16, u32: u32, u64: u64, usize: usize,
    i8: i8, i16: i16, i32: i32, i64: i64, isize: isize,
    bool: bool,
);
