//! Cross-stack agreement: the strategy-driven engine must return the
//! same yes/no answer as both reference evaluators (top-down SLD and
//! bottom-up semi-naive) on randomized knowledge bases, for *every*
//! strategy — strategies change cost, never answers.

use proptest::prelude::*;
use qpl::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_random_kb(
    seed: u64,
    layers: usize,
) -> (SymbolTable, qpl::datalog::RuleBase, Database, String) {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = qpl::workload::KbParams { layers, rules_per_layer: 2, ..Default::default() };
    qpl::workload::random_layered_kb(&mut rng, &params)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_matches_oracles_on_random_kbs(seed in 0u64..5000, layers in 2usize..4) {
        let (mut table, rules, db, root) = build_random_kb(seed, layers);
        let form = parser::parse_query_form(&format!("{root}(b)"), &mut table).unwrap();
        let compiled = compile(&rules, &form, &table, &CompileOptions::default()).unwrap();
        let qp = QueryProcessor::left_to_right(&compiled);
        for c in 0..12 {
            let q = parser::parse_query(&format!("{root}(c{c})"), &mut table).unwrap();
            let got = qp.run(&q, &db).unwrap().answer.is_yes();
            let sld = qpl::datalog::topdown::TopDown::new(&rules, &db).provable(&q).unwrap();
            let bu = qpl::datalog::eval::holds(&rules, &db, &q);
            prop_assert_eq!(got, sld, "engine vs SLD on c{}", c);
            prop_assert_eq!(got, bu, "engine vs bottom-up on c{}", c);
        }
    }

    #[test]
    fn all_strategies_same_answer_different_costs(seed in 0u64..5000) {
        let (mut table, rules, db, root) = build_random_kb(seed, 2);
        let form = parser::parse_query_form(&format!("{root}(b)"), &mut table).unwrap();
        let compiled = compile(&rules, &form, &table, &CompileOptions::default()).unwrap();
        let Some(strategies) = qpl::graph::strategy::enumerate_all(&compiled.graph, 2000) else {
            return Ok(()); // too many to enumerate; skip
        };
        for c in 0..6 {
            let q = parser::parse_query(&format!("{root}(c{c})"), &mut table).unwrap();
            let answers: Vec<bool> = strategies
                .iter()
                .map(|s| {
                    QueryProcessor::new(&compiled, s.clone())
                        .run(&q, &db)
                        .unwrap()
                        .answer
                        .is_yes()
                })
                .collect();
            prop_assert!(
                answers.windows(2).all(|w| w[0] == w[1]),
                "strategies disagree on answer for c{}", c
            );
        }
    }

    /// The engine's Note-2 classification is consistent: executing the
    /// classified context at graph level gives the same cost as would be
    /// observed by a lazy prober, for every strategy.
    #[test]
    fn classification_cost_stable_across_strategies(seed in 0u64..5000) {
        let (mut table, rules, db, root) = build_random_kb(seed, 3);
        let form = parser::parse_query_form(&format!("{root}(b)"), &mut table).unwrap();
        let compiled = compile(&rules, &form, &table, &CompileOptions::default()).unwrap();
        let q = parser::parse_query(&format!("{root}(c1)"), &mut table).unwrap();
        let ctx = classify_context(&compiled, &q, &db).unwrap();
        let Some(strategies) = qpl::graph::strategy::enumerate_all(&compiled.graph, 500) else {
            return Ok(());
        };
        for s in &strategies {
            let direct = qpl::graph::context::cost(&compiled.graph, s, &ctx);
            let via_engine =
                QueryProcessor::new(&compiled, s.clone()).run(&q, &db).unwrap().trace.cost;
            prop_assert!((direct - via_engine).abs() < 1e-12);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tabled solver agrees with plain SLD and the bottom-up minimal
    /// model on random non-recursive KBs — and a single `TableStore`
    /// shared across the whole query sequence changes no answer.
    #[test]
    fn tabled_matches_oracles_on_random_kbs(seed in 0u64..5000, layers in 2usize..4) {
        let (mut table, rules, db, root) = build_random_kb(seed, layers);
        let solver = qpl::datalog::topdown::TopDown::new(&rules, &db);
        let mut store = qpl::datalog::TableStore::new();
        let mut stats = qpl::datalog::RetrievalStats::default();
        for c in 0..12 {
            let q = parser::parse_query(&format!("{root}(c{c})"), &mut table).unwrap();
            let sld = solver.provable(&q).unwrap();
            let bu = qpl::datalog::eval::holds(&rules, &db, &q);
            let tab = solver.provable_tabled(&q).unwrap();
            let shared = solver.solve_tabled_in(&q, &mut store, &mut stats).unwrap().is_some();
            prop_assert_eq!(tab, sld, "tabled vs SLD on c{}", c);
            prop_assert_eq!(tab, bu, "tabled vs bottom-up on c{}", c);
            prop_assert_eq!(shared, tab, "shared-store vs fresh tables on c{}", c);
        }
    }

    /// On recursive reachability programs over seeded edge masks, the
    /// tabled solver agrees with the bottom-up minimal model on every
    /// node-to-node probe (plain SLD also terminates here because the
    /// DAG is acyclic, so it is checked too).
    #[test]
    fn tabled_matches_bottom_up_on_recursive_masks(seed in 0u64..1000) {
        let params = qpl::workload::RecursiveKbParams { layers: 5, width: 2 };
        let mut mask_rng = StdRng::seed_from_u64(seed);
        let (mut table, rules, db, sink_query) =
            qpl::workload::recursive_path_kb(&params, |_, _, _| {
                rand::Rng::gen::<f64>(&mut mask_rng) >= 0.3
            });
        let solver = qpl::datalog::topdown::TopDown::new(&rules, &db);
        let truth = qpl::datalog::eval::MinimalModel::compute(&rules, &db);
        prop_assert!(!solver.provable_tabled(&sink_query).unwrap());
        for l in 1..params.layers {
            for w in 0..params.width {
                let q = parser::parse_query(&format!("path(n0_0, n{l}_{w})"), &mut table).unwrap();
                let tab = solver.provable_tabled(&q).unwrap();
                let sld = solver.provable(&q).unwrap();
                prop_assert_eq!(tab, truth.holds(&q), "tabled vs minimal model at n{}_{}", l, w);
                prop_assert_eq!(tab, sld, "tabled vs SLD at n{}_{}", l, w);
            }
        }
    }
}

#[test]
fn conjunctive_kb_agreement_via_and_or() {
    // Conjunctive bodies run through the and-or (hypergraph) machinery;
    // check its satisficing answer against the bottom-up oracle on a
    // ground query.
    use qpl::graph::hypergraph::{execute, AndOrBuilder, AndOrContext, AndOrStrategy};
    let mut table = SymbolTable::new();
    let program = parser::parse_program(
        "gp(ann, cal) :- parent(ann, bob), parent(bob, cal).\n\
         parent(ann, bob). parent(bob, cal).",
        &mut table,
    )
    .unwrap();
    // Hand-build the and-or tree for gp(ann, cal).
    let mut b = AndOrBuilder::new("gp(ann,cal)");
    let root = b.root();
    let g1 = b.goal("parent(ann,bob)");
    let g2 = b.goal("parent(bob,cal)");
    b.reduction(root, vec![g1, g2], "r", 1.0);
    b.retrieval(g1, "d1", 1.0);
    b.retrieval(g2, "d2", 1.0);
    let g = b.finish().unwrap();
    // Blocked status from the database.
    let d1_holds = {
        let q = parser::parse_query("parent(ann, bob)", &mut table).unwrap();
        qpl::datalog::eval::holds(&program.rules, &program.facts, &q)
    };
    let d2_holds = {
        let q = parser::parse_query("parent(bob, cal)", &mut table).unwrap();
        qpl::datalog::eval::holds(&program.rules, &program.facts, &q)
    };
    let mut ctx = AndOrContext::all_open(&g);
    ctx.set_blocked(g.arc_by_label("d1").unwrap(), !d1_holds);
    ctx.set_blocked(g.arc_by_label("d2").unwrap(), !d2_holds);
    let run = execute(&g, &AndOrStrategy::left_to_right(&g), &ctx);
    let oracle = {
        let q = parser::parse_query("gp(ann, cal)", &mut table).unwrap();
        qpl::datalog::eval::holds(&program.rules, &program.facts, &q)
    };
    assert_eq!(run.proved, oracle);
}
