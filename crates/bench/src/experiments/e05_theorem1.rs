//! E5 — Theorem 1: PIB's lifetime mistake probability is below δ.
//!
//! Paper claim: `Pr[∃j: C[Θ_{j+1}] > C[Θ_j]] ≤ δ`. We run many
//! independent PIB instances on random trees with random retrieval
//! probabilities, track every climb against the *exact* expected costs,
//! and report the fraction of runs containing at least one
//! cost-increasing climb.

use crate::report::{fm, Report};
use qpl_core::{Pib, PibConfig};
use qpl_engine::{par_map_indexed, ParConfig};
use qpl_graph::expected::ContextDistribution;
use qpl_graph::{Context, Strategy};
use qpl_workload::generator::{random_retrieval_model, random_tree_with_retrievals, TreeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E5 and returns the report.
pub fn run(seed: u64) -> Report {
    let mut r = Report::new("E5: Theorem 1 — PIB mistake probability ≤ δ");
    r.note("150 independent runs per δ; random trees (3–6 retrievals), random p ∈ [0.05, 0.95]");
    r.note("a 'mistake' is any climb whose exact C[Θ_{j+1}] > C[Θ_j]");

    let mut rows = Vec::new();
    let mut all_ok = true;
    let cfg = ParConfig::auto();
    for (di, delta) in [0.2, 0.1, 0.05].into_iter().enumerate() {
        let runs = 150u64;
        let horizon = 3_000;
        // Each trial is a pure function of its index t (per-trial seeds),
        // so the runs fan out across workers; aggregation stays in t
        // order, making the report identical to the old serial loop.
        let per_run: Vec<(bool, u64)> = par_map_indexed(runs as usize, &cfg, |ti| {
            let t = ti as u64;
            let mut gen_rng = StdRng::seed_from_u64(seed + 100 * (di as u64) + t);
            let g = random_tree_with_retrievals(&mut gen_rng, &TreeParams::default(), 3, 6);
            let truth = random_retrieval_model(&mut gen_rng, &g, (0.05, 0.95));
            let mut pib = Pib::new(&g, Strategy::left_to_right(&g), PibConfig::new(delta));
            let mut prev_cost = truth.expected_cost(&g, pib.strategy());
            let mut climbs = pib.history().len();
            let mut run_climbs = 0u64;
            let mut made_mistake = false;
            let mut rng = StdRng::seed_from_u64(seed + 55_000 + 100 * (di as u64) + t);
            // One Context buffer per trial: `sample_into` consumes the
            // same randomness as `sample`, so the stream is unchanged.
            let mut ctx = Context::all_open(&g);
            for _ in 0..horizon {
                truth.sample_into(&mut rng, &mut ctx);
                pib.observe(&g, &ctx);
                if pib.history().len() > climbs {
                    climbs = pib.history().len();
                    run_climbs += 1;
                    let c = truth.expected_cost(&g, pib.strategy());
                    if c > prev_cost + 1e-12 {
                        made_mistake = true;
                    }
                    prev_cost = c;
                }
            }
            (made_mistake, run_climbs)
        });
        let mistake_runs = per_run.iter().filter(|(m, _)| *m).count() as u64;
        let total_climbs: u64 = per_run.iter().map(|(_, c)| *c).sum();
        let rate = mistake_runs as f64 / runs as f64;
        if rate > delta {
            all_ok = false;
        }
        rows.push(vec![
            fm(delta, 2),
            runs.to_string(),
            total_climbs.to_string(),
            fm(rate, 4),
            format!("≤ {}", fm(delta, 2)),
        ]);
    }
    r.table(
        "lifetime mistake rate vs δ",
        &["δ", "runs", "total climbs", "mistake-run rate", "bound"],
        rows,
    );
    r.set_verdict(if all_ok {
        "REPRODUCED (mistake probability within δ for every setting)"
    } else {
        "MISMATCH (mistake rate exceeded δ)"
    });
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn e5_reproduces() {
        let r = super::run(5050);
        assert!(r.verdict.starts_with("REPRODUCED"), "{r}");
    }
}
