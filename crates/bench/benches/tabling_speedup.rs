//! Bench: tabled top-down evaluation vs plain SLD on the layered-DAG
//! reachability workload, plus the cross-context cache's warm path.
//!
//! Plain SLD re-proves every shared path suffix once per derivation
//! path (`width^layers` of them); tabling proves each subgoal once, and
//! the cross-context cache makes repeat samples of a seen context class
//! skip even that. Three measurements:
//!
//! * `plain_sld` — the seed's depth-bounded solver, exhaustive failure;
//! * `tabled_fresh` — `solve_tabled`, fresh tables per query;
//! * `tabled_cached_warm` — `solve_tabled_in` against pre-warmed tables,
//!   the steady state of a Monte-Carlo loop over few context classes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpl_datalog::table::TableStore;
use qpl_datalog::topdown::RetrievalStats;
use qpl_datalog::TopDown;
use qpl_workload::generator::{recursive_path_kb, RecursiveKbParams};

fn bench_tabling(c: &mut Criterion) {
    let mut group = c.benchmark_group("tabling_speedup");
    for layers in [8usize, 11] {
        let params = RecursiveKbParams { layers, width: 2 };
        let (_, rules, db, sink_query) = recursive_path_kb(&params, |_, _, _| true);
        let solver = TopDown::new(&rules, &db);

        group.bench_with_input(BenchmarkId::new("plain_sld", layers), &layers, |b, _| {
            b.iter(|| {
                let mut stats = RetrievalStats::default();
                assert!(solver
                    .solve_with_stats(&sink_query, &mut stats)
                    .expect("within depth bound")
                    .is_none());
                stats.retrievals
            })
        });

        group.bench_with_input(BenchmarkId::new("tabled_fresh", layers), &layers, |b, _| {
            b.iter(|| assert!(solver.solve_tabled(&sink_query).unwrap().is_none()))
        });

        group.bench_with_input(BenchmarkId::new("tabled_cached_warm", layers), &layers, |b, _| {
            let mut store = TableStore::new();
            let mut stats = RetrievalStats::default();
            // Warm the tables once; the measured loop is the steady state
            // of a sampling run whose context class has been seen before.
            assert!(solver.solve_tabled_in(&sink_query, &mut store, &mut stats).unwrap().is_none());
            b.iter(|| {
                let mut stats = RetrievalStats::default();
                assert!(solver
                    .solve_tabled_in(&sink_query, &mut store, &mut stats)
                    .unwrap()
                    .is_none());
                stats.tabled_answers_reused
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tabling);
criterion_main!(benches);
