//! Error type for the Datalog substrate.

use std::fmt;

/// Errors produced while constructing or evaluating Datalog programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogError {
    /// A predicate was used with two different arities.
    ArityMismatch {
        /// Predicate name.
        predicate: String,
        /// Arity seen first.
        expected: usize,
        /// Conflicting arity.
        found: usize,
    },
    /// A fact contained a variable.
    NonGroundFact(String),
    /// A rule head contains a variable that does not occur in the body
    /// (violates range restriction / safety).
    UnsafeRule {
        /// Rendered rule text.
        rule: String,
        /// The offending variable name.
        variable: String,
    },
    /// Parse error with a 1-based line number and message.
    Parse {
        /// Line of the offending input.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// Top-down evaluation exceeded its depth bound (likely recursion).
    DepthExceeded(usize),
    /// A query form referred to an unknown predicate.
    UnknownPredicate(String),
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ArityMismatch { predicate, expected, found } => write!(
                f,
                "predicate `{predicate}` used with arity {found}, but was declared with arity {expected}"
            ),
            Self::NonGroundFact(s) => write!(f, "fact `{s}` contains variables"),
            Self::UnsafeRule { rule, variable } => write!(
                f,
                "rule `{rule}` is unsafe: head variable `{variable}` does not occur in the body"
            ),
            Self::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            Self::DepthExceeded(d) => {
                write!(f, "top-down evaluation exceeded depth bound {d} (recursive rule base?)")
            }
            Self::UnknownPredicate(p) => write!(f, "unknown predicate `{p}`"),
        }
    }
}

impl std::error::Error for DatalogError {}
