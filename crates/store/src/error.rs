//! Typed store errors. Disk failures must degrade a serving process
//! gracefully (shed writes, keep reads) — so nothing in this crate
//! panics on I/O; every fallible path funnels into [`StoreError`].

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// The operating system refused an I/O operation (full disk,
    /// missing directory, permission change under a live process, ...).
    Io { op: &'static str, path: PathBuf, source: io::Error },
    /// On-disk bytes passed framing checks but decoded to nonsense —
    /// this is a bug or deliberate tampering, never a torn write
    /// (torn writes are caught by CRC framing and dropped silently).
    Corrupt { path: PathBuf, detail: String },
}

impl StoreError {
    pub(crate) fn io(op: &'static str, path: &Path, source: io::Error) -> Self {
        StoreError::Io { op, path: path.to_path_buf(), source }
    }

    pub(crate) fn corrupt(path: &Path, detail: impl Into<String>) -> Self {
        StoreError::Corrupt { path: path.to_path_buf(), detail: detail.into() }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, source } => {
                write!(f, "store i/o: {op} {}: {source}", path.display())
            }
            StoreError::Corrupt { path, detail } => {
                write!(f, "store corrupt: {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Corrupt { .. } => None,
        }
    }
}
