//! Concrete generators. `StdRng` is xoshiro256++ — small, fast, and
//! statistically solid; it stands in for the real crate's ChaCha12-based
//! `StdRng` (streams differ, determinism and quality do not).

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator (xoshiro256++).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn step(&mut self) -> u64 {
        let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro must not start from the all-zero state.
        if s.iter().all(|&w| w == 0) {
            let mut sm = 0x9E37_79B9_7F4A_7C15u64;
            for w in &mut s {
                *w = crate::splitmix64(&mut sm);
            }
        }
        Self { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.step().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.step().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}
