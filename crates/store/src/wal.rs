//! Segmented append-only write-ahead log.
//!
//! On disk a WAL is a directory of segment files named
//! `wal-<base_seq>.seg` (base_seq zero-padded so lexicographic order is
//! replay order). Each segment is:
//!
//! ```text
//! +----------------+-----------------+------- ... -------+
//! | magic QPLWAL1\n | base_seq (u64)  | frame | frame | … |
//! +----------------+-----------------+------- ... -------+
//!
//! frame := | payload_len u32 | seq u64 | crc32 u32 | payload … |
//!          crc32 is over seq‖payload, so a frame torn anywhere —
//!          including a stale length prefix pointing into garbage —
//!          fails verification.
//! ```
//!
//! Sequence numbers are global, strictly increasing by one, and never
//! reset (checkpoint truncation starts a fresh segment at the next
//! seq). Replay stops at the first invalid frame — short header, bogus
//! length, CRC mismatch, or seq discontinuity — and *repairs* the log
//! by truncating the torn segment to its valid prefix and deleting any
//! later segments, so a recovered process appends from a clean tail.

use crate::codec::crc32;
use crate::error::StoreError;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

pub(crate) const SEGMENT_MAGIC: &[u8; 8] = b"QPLWAL1\n";
const SEGMENT_HEADER: u64 = 16;
const FRAME_HEADER: usize = 16;
/// A single record larger than this is rejected at append time and
/// treated as corruption at replay time (a torn length prefix could
/// otherwise claim gigabytes).
pub const MAX_PAYLOAD: usize = 64 << 20;

/// When appends are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every appended record. Slowest, loses nothing.
    EveryRecord,
    /// fsync once per [`Wal::commit`] barrier (qpl-serve calls it once
    /// per control batch — group commit across a plane). A crash loses
    /// at most the records acked since... nothing: acks are sent after
    /// the commit barrier, so acked records are never lost.
    EveryBatch,
    /// Never fsync; the OS flushes when it pleases. Fastest, loses the
    /// page-cache tail on power failure (not on process crash).
    Off,
}

impl std::str::FromStr for FsyncPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "record" => Ok(FsyncPolicy::EveryRecord),
            "batch" => Ok(FsyncPolicy::EveryBatch),
            "off" => Ok(FsyncPolicy::Off),
            other => Err(format!("unknown fsync policy {other:?} (record|batch|off)")),
        }
    }
}

/// Everything replay recovered from disk, in append order.
pub(crate) struct WalReplay {
    /// `(seq, payload)` for every frame on the longest valid prefix.
    pub frames: Vec<(u64, Vec<u8>)>,
    /// True when an invalid suffix (torn tail, corrupt byte, lost
    /// segment) was detected and repaired away.
    pub torn_tail: bool,
}

#[derive(Debug)]
pub(crate) struct Wal {
    dir: PathBuf,
    policy: FsyncPolicy,
    segment_bytes: u64,
    /// Paths of live segments, oldest first; the last one is open.
    seg_paths: Vec<PathBuf>,
    file: File,
    seg_len: u64,
    /// Total bytes across the sealed (non-open) segments.
    sealed_bytes: u64,
    next_seq: u64,
    dirty: bool,
}

fn segment_path(dir: &Path, base_seq: u64) -> PathBuf {
    dir.join(format!("wal-{base_seq:020}.seg"))
}

fn dir_sync(dir: &Path) {
    // Directory fsync makes renames/creates durable on Linux; other
    // platforms (or exotic filesystems) may refuse — best effort only,
    // the data files themselves are always synced per policy.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

fn create_segment(dir: &Path, base_seq: u64) -> Result<(File, PathBuf), StoreError> {
    let path = segment_path(dir, base_seq);
    let mut file = OpenOptions::new()
        .create_new(true)
        .write(true)
        .open(&path)
        .map_err(|e| StoreError::io("create segment", &path, e))?;
    let mut header = [0u8; SEGMENT_HEADER as usize];
    header[..8].copy_from_slice(SEGMENT_MAGIC);
    header[8..].copy_from_slice(&base_seq.to_le_bytes());
    file.write_all(&header).map_err(|e| StoreError::io("write segment header", &path, e))?;
    dir_sync(dir);
    Ok((file, path))
}

/// Scans one segment's bytes. Returns the valid frames, the byte length
/// of the valid prefix, and whether the segment was clean end to end.
/// `expect_seq` is the seq the first frame must carry.
fn scan_segment(bytes: &[u8], expect_seq: u64) -> (Vec<(u64, Vec<u8>)>, u64, bool) {
    let mut frames = Vec::new();
    let mut offset = SEGMENT_HEADER as usize;
    let mut seq = expect_seq;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        if rest.len() < FRAME_HEADER {
            return (frames, offset as u64, false); // torn frame header
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        if len > MAX_PAYLOAD {
            return (frames, offset as u64, false); // corrupt length
        }
        let frame_seq = u64::from_le_bytes([
            rest[4], rest[5], rest[6], rest[7], rest[8], rest[9], rest[10], rest[11],
        ]);
        let crc = u32::from_le_bytes([rest[12], rest[13], rest[14], rest[15]]);
        if rest.len() < FRAME_HEADER + len {
            return (frames, offset as u64, false); // torn payload
        }
        let payload = &rest[FRAME_HEADER..FRAME_HEADER + len];
        let mut check = frame_seq.to_le_bytes().to_vec();
        check.extend_from_slice(payload);
        if crc32(&check) != crc || frame_seq != seq {
            return (frames, offset as u64, false); // corrupt or out of order
        }
        frames.push((frame_seq, payload.to_vec()));
        seq += 1;
        offset += FRAME_HEADER + len;
    }
    (frames, offset as u64, true)
}

impl Wal {
    /// Opens (or creates) the log in `dir`, replaying and repairing as
    /// described in the module docs. `min_next_seq` is the first seq
    /// not covered by a snapshot (`through_seq + 1`): if the surviving
    /// frames end below it — e.g. a crash landed between snapshot
    /// rename and WAL truncation — the covered segments are discarded
    /// and the log restarts there.
    pub fn open(
        dir: &Path,
        policy: FsyncPolicy,
        segment_bytes: u64,
        min_next_seq: u64,
    ) -> Result<(Self, WalReplay), StoreError> {
        let mut entries: Vec<(u64, PathBuf)> = Vec::new();
        let listing = fs::read_dir(dir).map_err(|e| StoreError::io("list wal dir", dir, e))?;
        for entry in listing {
            let entry = entry.map_err(|e| StoreError::io("list wal dir", dir, e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(base) = name
                .strip_prefix("wal-")
                .and_then(|s| s.strip_suffix(".seg"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                entries.push((base, entry.path()));
            }
        }
        entries.sort();

        let mut frames = Vec::new();
        let mut torn_tail = false;
        // Segments that survive repair: (path, base_seq, byte length).
        let mut kept: Vec<(PathBuf, u64)> = Vec::new();
        let mut expect: Option<u64> = None;
        for (base, path) in entries {
            if torn_tail {
                // Everything past the first tear is unreachable state.
                fs::remove_file(&path).map_err(|e| StoreError::io("remove segment", &path, e))?;
                continue;
            }
            let bytes = fs::read(&path).map_err(|e| StoreError::io("read segment", &path, e))?;
            let header_ok = bytes.len() >= SEGMENT_HEADER as usize
                && &bytes[..8] == SEGMENT_MAGIC
                && u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) == base
                && expect.unwrap_or(base) == base;
            if !header_ok {
                torn_tail = true;
                fs::remove_file(&path).map_err(|e| StoreError::io("remove segment", &path, e))?;
                continue;
            }
            let (seg_frames, valid_len, clean) = scan_segment(&bytes, base);
            expect = Some(base + seg_frames.len() as u64);
            frames.extend(seg_frames);
            if !clean {
                torn_tail = true;
                let f = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| StoreError::io("open segment for repair", &path, e))?;
                f.set_len(valid_len).map_err(|e| StoreError::io("truncate segment", &path, e))?;
                f.sync_all().map_err(|e| StoreError::io("sync repaired segment", &path, e))?;
                kept.push((path, valid_len));
            } else {
                kept.push((path, valid_len));
            }
        }
        if torn_tail {
            dir_sync(dir);
        }

        let recovered_next = expect.unwrap_or(min_next_seq);
        if recovered_next < min_next_seq {
            // Everything on disk predates the snapshot; drop it and
            // restart the log where the snapshot's coverage ends.
            for (path, _) in kept.drain(..) {
                fs::remove_file(&path).map_err(|e| StoreError::io("remove segment", &path, e))?;
            }
            frames.clear();
            dir_sync(dir);
        }
        let next_seq = recovered_next.max(min_next_seq);

        let (file, seg_paths, seg_len, sealed_bytes) = if let Some((last, last_len)) = kept.pop() {
            let file = OpenOptions::new()
                .append(true)
                .open(&last)
                .map_err(|e| StoreError::io("open segment for append", &last, e))?;
            let sealed: u64 = kept.iter().map(|(_, len)| len).sum();
            let mut paths: Vec<PathBuf> = kept.into_iter().map(|(p, _)| p).collect();
            paths.push(last);
            (file, paths, last_len, sealed)
        } else {
            let (file, path) = create_segment(dir, next_seq)?;
            (file, vec![path], SEGMENT_HEADER, 0)
        };

        let wal = Wal {
            dir: dir.to_path_buf(),
            policy,
            segment_bytes,
            seg_paths,
            file,
            seg_len,
            sealed_bytes,
            next_seq,
            dirty: false,
        };
        Ok((wal, WalReplay { frames, torn_tail }))
    }

    fn current_path(&self) -> &Path {
        self.seg_paths.last().expect("wal always has an open segment")
    }

    fn rotate(&mut self) -> Result<(), StoreError> {
        if self.policy != FsyncPolicy::Off {
            let path = self.current_path().to_path_buf();
            self.file.sync_data().map_err(|e| StoreError::io("sync segment", &path, e))?;
        }
        self.dirty = false;
        let (file, path) = create_segment(&self.dir, self.next_seq)?;
        self.sealed_bytes += self.seg_len;
        self.seg_len = SEGMENT_HEADER;
        self.file = file;
        self.seg_paths.push(path);
        Ok(())
    }

    /// Appends one record, rotating segments as needed; returns the
    /// record's sequence number. With `FsyncPolicy::EveryRecord` the
    /// record is stable when this returns; otherwise stability waits
    /// for [`commit`](Self::commit) (or the OS, under `Off`).
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        if payload.len() > MAX_PAYLOAD {
            return Err(StoreError::corrupt(
                self.current_path(),
                format!("record of {} bytes exceeds MAX_PAYLOAD", payload.len()),
            ));
        }
        let frame_len = FRAME_HEADER as u64 + payload.len() as u64;
        if self.seg_len > SEGMENT_HEADER && self.seg_len + frame_len > self.segment_bytes {
            self.rotate()?;
        }
        let seq = self.next_seq;
        let mut check = seq.to_le_bytes().to_vec();
        check.extend_from_slice(payload);
        let crc = crc32(&check);
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(&crc.to_le_bytes());
        frame.extend_from_slice(payload);
        let path = self.current_path().to_path_buf();
        self.file.write_all(&frame).map_err(|e| StoreError::io("append record", &path, e))?;
        self.seg_len += frame_len;
        self.next_seq += 1;
        self.dirty = true;
        if self.policy == FsyncPolicy::EveryRecord {
            self.file.sync_data().map_err(|e| StoreError::io("sync record", &path, e))?;
            self.dirty = false;
        }
        Ok(seq)
    }

    /// Group-commit barrier: forces everything appended since the last
    /// barrier to stable storage (no-op under `Off`, or when clean).
    pub fn commit(&mut self) -> Result<(), StoreError> {
        if self.dirty && self.policy != FsyncPolicy::Off {
            let path = self.current_path().to_path_buf();
            self.file.sync_data().map_err(|e| StoreError::io("sync batch", &path, e))?;
        }
        self.dirty = false;
        Ok(())
    }

    /// Drops every segment (their records are covered by a snapshot)
    /// and starts a fresh one at the current seq. Deletion is
    /// oldest-first so a crash mid-truncation leaves a contiguous
    /// suffix that the next open still replays correctly.
    pub fn truncate_all(&mut self) -> Result<u64, StoreError> {
        let removed = self.seg_paths.len() as u64;
        for path in std::mem::take(&mut self.seg_paths) {
            fs::remove_file(&path).map_err(|e| StoreError::io("remove segment", &path, e))?;
        }
        let (file, path) = create_segment(&self.dir, self.next_seq)?;
        self.file = file;
        self.seg_paths = vec![path];
        self.seg_len = SEGMENT_HEADER;
        self.sealed_bytes = 0;
        self.dirty = false;
        Ok(removed)
    }

    pub fn wal_bytes(&self) -> u64 {
        self.sealed_bytes + self.seg_len
    }

    pub fn segments(&self) -> u64 {
        self.seg_paths.len() as u64
    }

    /// Seq the next appended record will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("qpl-wal-{tag}-{}", std::process::id()))
            .join(format!("{:?}", std::thread::current().id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_reopen_replays_in_order() {
        let dir = tmpdir("basic");
        let (mut wal, replay) = Wal::open(&dir, FsyncPolicy::EveryBatch, 1 << 20, 1).unwrap();
        assert!(replay.frames.is_empty());
        for i in 0..10u8 {
            wal.append(&[i, i, i]).unwrap();
        }
        wal.commit().unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&dir, FsyncPolicy::EveryBatch, 1 << 20, 1).unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(replay.frames.len(), 10);
        for (i, (seq, payload)) in replay.frames.iter().enumerate() {
            assert_eq!(*seq, 1 + i as u64);
            assert_eq!(payload, &vec![i as u8; 3]);
        }
        let _ = fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn rotation_splits_segments_and_replays_across_them() {
        let dir = tmpdir("rotate");
        // Tiny segments force a rotation every append.
        let (mut wal, _) = Wal::open(&dir, FsyncPolicy::Off, 24, 1).unwrap();
        for i in 0..5u8 {
            wal.append(&[i; 8]).unwrap();
        }
        assert!(wal.segments() >= 4, "tiny segment_bytes should rotate, got {}", wal.segments());
        drop(wal);
        let (wal, replay) = Wal::open(&dir, FsyncPolicy::Off, 24, 1).unwrap();
        assert_eq!(replay.frames.len(), 5);
        assert_eq!(wal.next_seq(), 6);
        let _ = fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn torn_tail_is_dropped_and_repaired() {
        let dir = tmpdir("torn");
        let (mut wal, _) = Wal::open(&dir, FsyncPolicy::EveryBatch, 1 << 20, 1).unwrap();
        for i in 0..4u8 {
            wal.append(&[i; 16]).unwrap();
        }
        wal.commit().unwrap();
        drop(wal);
        let seg = segment_path(&dir, 1);
        let len = fs::metadata(&seg).unwrap().len();
        // Tear the last record in half.
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 10).unwrap();
        drop(f);
        let (wal, replay) = Wal::open(&dir, FsyncPolicy::EveryBatch, 1 << 20, 1).unwrap();
        assert!(replay.torn_tail);
        assert_eq!(replay.frames.len(), 3, "longest valid prefix is the first three");
        assert_eq!(wal.next_seq(), 4, "append resumes after the last valid record");
        drop(wal);
        // The repair truncated the file: a further reopen is clean.
        let (_, replay) = Wal::open(&dir, FsyncPolicy::EveryBatch, 1 << 20, 1).unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(replay.frames.len(), 3);
        let _ = fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn corrupt_byte_invalidates_the_suffix_only() {
        let dir = tmpdir("corrupt");
        let (mut wal, _) = Wal::open(&dir, FsyncPolicy::EveryBatch, 1 << 20, 1).unwrap();
        for i in 0..4u8 {
            wal.append(&[i; 16]).unwrap();
        }
        wal.commit().unwrap();
        drop(wal);
        let seg = segment_path(&dir, 1);
        let mut bytes = fs::read(&seg).unwrap();
        // Flip a payload byte inside the second record.
        let off = 16 + 32 + 16 + 5;
        bytes[off] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();
        let (_, replay) = Wal::open(&dir, FsyncPolicy::EveryBatch, 1 << 20, 1).unwrap();
        assert!(replay.torn_tail);
        assert_eq!(replay.frames.len(), 1, "only the record before the corruption survives");
        let _ = fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn truncate_all_resets_bytes_but_not_seqs() {
        let dir = tmpdir("truncate");
        let (mut wal, _) = Wal::open(&dir, FsyncPolicy::EveryBatch, 1 << 20, 1).unwrap();
        for i in 0..6u8 {
            wal.append(&[i]).unwrap();
        }
        wal.commit().unwrap();
        let next = wal.next_seq();
        wal.truncate_all().unwrap();
        assert_eq!(wal.segments(), 1);
        assert_eq!(wal.next_seq(), next, "seqs keep counting across truncation");
        let seq = wal.append(b"after").unwrap();
        assert_eq!(seq, next);
        wal.commit().unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&dir, FsyncPolicy::EveryBatch, 1 << 20, 1).unwrap();
        assert_eq!(replay.frames.len(), 1);
        assert_eq!(replay.frames[0].0, next);
        let _ = fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn snapshot_covered_segments_are_discarded_on_open() {
        let dir = tmpdir("covered");
        let (mut wal, _) = Wal::open(&dir, FsyncPolicy::EveryBatch, 1 << 20, 1).unwrap();
        for i in 0..3u8 {
            wal.append(&[i]).unwrap();
        }
        wal.commit().unwrap();
        drop(wal);
        // A snapshot covering through seq 10 supersedes everything here.
        let (wal, replay) = Wal::open(&dir, FsyncPolicy::EveryBatch, 1 << 20, 11).unwrap();
        assert!(replay.frames.is_empty());
        assert_eq!(wal.next_seq(), 11);
        let _ = fs::remove_dir_all(dir.parent().unwrap());
    }
}
