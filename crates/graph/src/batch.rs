//! Bit-parallel batched context execution, width-generic over the plane
//! word count.
//!
//! A [`ContextBatch`] stores up to [`MAX_LANES`] sampled contexts in
//! structure-of-arrays form: one `[u64; W]` *blocked-bitplane block per
//! arc* (arc-major, `W` words per arc), bit `l mod 64` of word `l / 64`
//! giving lane `l`'s blocked status for that arc. The plane width `W` is
//! one of {1, 2, 4, 8} — 64, 128, 256, or 512 lanes — and is always the
//! smallest width that fits the occupied lane count, so existing 64-lane
//! callers get the exact single-`u64` layout they had before.
//!
//! [`execute_batch`] runs a compiled [`StrategyProgram`] over all lanes
//! at once: each instruction ANDs the alive mask with the
//! traversed-plane of its source's parent arc (the bit-parallel form of
//! the scalar `reached[from]` check), pays its cost to every attempting
//! lane, and splits the attempt mask into traversed/blocked planes with
//! three bitwise ops per word. Lanes retire from `alive` the moment they
//! succeed. The hot loop is monomorphized per width (`match width`
//! dispatch to a `const W: usize` inner), so every mask op, lane
//! restart, and dense cost add is a straight-line loop over `W` words
//! the compiler can unroll and auto-vectorize.
//!
//! Because lanes diverge, the batch executor cannot jump-thread the way
//! the scalar program does — it visits every instruction — but an
//! instruction whose attempt mask is zero costs `W` loads and ANDs, so
//! the per-lane amortized work is still far below one tree-walk, and
//! wider planes amortize the per-instruction dispatch over more lanes.
//!
//! ## Determinism contract
//!
//! Batch results are bit-identical to `lanes` scalar program runs,
//! lane-for-lane, at every width: per-lane cost accumulators add the
//! same `f64`s in the same (instruction) order the scalar executor
//! would, outcomes and reconstructed event sequences
//! ([`BatchRun::events_into`]) match exactly, and
//! [`BatchRun::completion_into`] reproduces
//! [`crate::pessimistic_completion`] in plane form. Lanes are
//! independent accumulators, so plane width is a layout choice, not a
//! semantic one — a 512-lane batch drains byte-identically to eight
//! 64-lane batches. Combined with the engine's fixed 64-sample blocks
//! (`DEFAULT_BLOCK`), batched learners make byte-identical decisions at
//! every worker count and every plane width.
//!
//! An `active` input mask ([`LaneMask`]) supports mid-batch restarts:
//! when a learner climbs to a new strategy halfway through draining a
//! batch, the remaining lanes re-run under the new program with the
//! drained lanes masked out.

use crate::context::{ArcOutcome, Context, RunOutcome};
use crate::error::GraphError;
use crate::graph::{ArcId, ArcKind, InferenceGraph};
use crate::program::{StrategyProgram, NO_INDEX};

/// Number of context lanes in one plane word — the width-1 batch size,
/// and the engine's deterministic sampling block size.
pub const LANES: usize = 64;

/// Maximum plane width in words. Widths are powers of two in
/// `1..=MAX_WIDTH` so lane → (word, bit) splits are shift/mask ops and
/// partially-filled tails always land in the last word.
pub const MAX_WIDTH: usize = 8;

/// Maximum lanes in one batch: [`MAX_WIDTH`] words of [`LANES`] lanes.
pub const MAX_LANES: usize = LANES * MAX_WIDTH;

/// The smallest supported plane width (in words) that fits `lanes`
/// lanes: 1, 2, 4, or 8.
///
/// # Panics
/// Invariant assert: panics if `lanes` exceeds [`MAX_LANES`].
pub fn width_for_lanes(lanes: usize) -> usize {
    assert!(lanes <= MAX_LANES, "at most {MAX_LANES} lanes per batch");
    let words = lanes.div_ceil(LANES).max(1);
    words.next_power_of_two()
}

/// Splits a lane index into its (plane word, bit) coordinates.
#[inline]
fn lane_word_bit(lane: usize) -> (usize, u64) {
    (lane / LANES, 1u64 << (lane % LANES))
}

/// A set of lanes, up to [`MAX_LANES`] wide — the mask currency of the
/// batch executor (active lanes, succeeded lanes, mid-batch restarts).
///
/// Stored as a fixed `[u64; MAX_WIDTH]`; words beyond a batch's plane
/// width are simply ignored by the executor (it ANDs with the batch's
/// [`ContextBatch::active_mask`]), so `ALL` means "every lane the batch
/// has" at any width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneMask {
    words: [u64; MAX_WIDTH],
}

impl LaneMask {
    /// No lanes selected.
    pub const NONE: Self = Self { words: [0; MAX_WIDTH] };

    /// Every lane selected (clipped to occupancy by the executor).
    pub const ALL: Self = Self { words: [!0; MAX_WIDTH] };

    /// A mask from its low (first) word only — the width-1 shape every
    /// pre-widening `u64` mask had. Lanes 64.. are unselected.
    pub const fn low(word: u64) -> Self {
        let mut words = [0; MAX_WIDTH];
        words[0] = word;
        Self { words }
    }

    /// Word `w` of the mask.
    pub fn word(&self, w: usize) -> u64 {
        self.words[w]
    }

    /// Whether lane `lane` is selected.
    pub fn test(&self, lane: usize) -> bool {
        let (w, bit) = lane_word_bit(lane);
        self.words[w] & bit != 0
    }

    /// Selects lane `lane`.
    pub fn set(&mut self, lane: usize) {
        let (w, bit) = lane_word_bit(lane);
        self.words[w] |= bit;
    }

    /// Number of selected lanes.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Whether no lane is selected.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

impl std::ops::BitAnd for LaneMask {
    type Output = Self;
    fn bitand(mut self, rhs: Self) -> Self {
        for (a, b) in self.words.iter_mut().zip(rhs.words) {
            *a &= b;
        }
        self
    }
}

impl std::ops::BitOr for LaneMask {
    type Output = Self;
    fn bitor(mut self, rhs: Self) -> Self {
        for (a, b) in self.words.iter_mut().zip(rhs.words) {
            *a |= b;
        }
        self
    }
}

impl std::ops::Not for LaneMask {
    type Output = Self;
    fn not(mut self) -> Self {
        for w in &mut self.words {
            *w = !*w;
        }
        self
    }
}

/// Mask selecting the first `lanes` lanes of a `width`-word plane — the
/// one place the "shift by 64 overflows" edge is handled, shared by
/// every width. Full words are `!0`; a partial tail is `(1 << rem) - 1`;
/// `lanes == width * 64` never shifts at all.
///
/// # Panics
/// Invariant assert: panics if `width` exceeds [`MAX_WIDTH`] or `lanes`
/// exceeds `width * LANES`.
pub fn tail_mask(width: usize, lanes: usize) -> LaneMask {
    assert!(width <= MAX_WIDTH, "plane width {width} exceeds {MAX_WIDTH}");
    assert!(lanes <= width * LANES, "{lanes} lanes exceed a {width}-word plane");
    let mut words = [0u64; MAX_WIDTH];
    let full = lanes / LANES;
    for w in words.iter_mut().take(full) {
        *w = !0;
    }
    let rem = lanes % LANES;
    if rem != 0 {
        words[full] = (1u64 << rem) - 1;
    }
    LaneMask { words }
}

/// Mask selecting lanes `from..lanes` — the shape of a mid-batch
/// restart, with already-drained lanes masked out.
///
/// # Panics
/// Debug-panics unless `from ≤ lanes ≤ MAX_LANES`.
pub fn lanes_from(from: usize, lanes: usize) -> LaneMask {
    debug_assert!(from <= lanes && lanes <= MAX_LANES);
    tail_mask(MAX_WIDTH, lanes.min(MAX_LANES)) & !tail_mask(MAX_WIDTH, from.min(lanes))
}

/// Up to [`MAX_LANES`] contexts in structure-of-arrays form: one
/// `[u64; width]` blocked-bitplane block per arc (arc-major), bit
/// `l % 64` of word `l / 64` = lane `l`'s status. The width is always
/// [`width_for_lanes`] of the occupied lane count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextBatch {
    planes: Vec<u64>,
    width: usize,
    lanes: usize,
}

impl ContextBatch {
    /// An all-open batch of `lanes` contexts over `arc_count` arcs.
    ///
    /// # Panics
    /// Invariant assert: panics if `lanes` exceeds [`MAX_LANES`].
    /// Internal hot paths size batches from [`LANES`]/[`MAX_LANES`]
    /// themselves; code handling untrusted lane counts (a serving front
    /// door) should use [`try_new`](Self::try_new).
    pub fn new(arc_count: usize, lanes: usize) -> Self {
        let width = width_for_lanes(lanes);
        Self { planes: vec![0; arc_count * width], width, lanes }
    }

    /// Fallible [`new`](Self::new): rejects `lanes > MAX_LANES` with a
    /// typed error instead of panicking.
    ///
    /// # Errors
    /// [`GraphError::BatchShape`] if `lanes` exceeds [`MAX_LANES`].
    pub fn try_new(arc_count: usize, lanes: usize) -> Result<Self, GraphError> {
        if lanes > MAX_LANES {
            return Err(GraphError::BatchShape(format!(
                "{lanes} lanes exceed the {MAX_LANES} maximum"
            )));
        }
        Ok(Self::new(arc_count, lanes))
    }

    /// Clears and resizes this batch in place (buffer-reuse counterpart
    /// of [`new`](Self::new)).
    ///
    /// # Panics
    /// Invariant assert: panics if `lanes` exceeds [`MAX_LANES`] (see
    /// [`new`](Self::new); use [`try_reset`](Self::try_reset) on
    /// untrusted input).
    pub fn reset(&mut self, arc_count: usize, lanes: usize) {
        let width = width_for_lanes(lanes);
        self.planes.clear();
        self.planes.resize(arc_count * width, 0);
        self.width = width;
        self.lanes = lanes;
    }

    /// Fallible [`reset`](Self::reset).
    ///
    /// # Errors
    /// [`GraphError::BatchShape`] if `lanes` exceeds [`MAX_LANES`]; the
    /// batch is left untouched on error.
    pub fn try_reset(&mut self, arc_count: usize, lanes: usize) -> Result<(), GraphError> {
        if lanes > MAX_LANES {
            return Err(GraphError::BatchShape(format!(
                "{lanes} lanes exceed the {MAX_LANES} maximum"
            )));
        }
        self.reset(arc_count, lanes);
        Ok(())
    }

    /// Number of arcs each lane covers.
    pub fn arc_count(&self) -> usize {
        self.planes.len() / self.width
    }

    /// Number of occupied lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Plane width in words ∈ {1, 2, 4, 8} — 64 × width lane capacity.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Lane capacity of the current plane width.
    pub fn lane_capacity(&self) -> usize {
        self.width * LANES
    }

    /// Mask with one bit set per occupied lane.
    pub fn active_mask(&self) -> LaneMask {
        tail_mask(self.width, self.lanes)
    }

    /// The blocked-bitplane block of `a`: `width` words.
    pub fn plane(&self, a: ArcId) -> &[u64] {
        let i = a.index() * self.width;
        &self.planes[i..i + self.width]
    }

    /// Whether `a` is blocked in lane `lane`.
    pub fn is_blocked(&self, lane: usize, a: ArcId) -> bool {
        debug_assert!(lane < self.lanes);
        let (w, bit) = lane_word_bit(lane);
        self.planes[a.index() * self.width + w] & bit != 0
    }

    /// Sets the blocked status of `a` in lane `lane`.
    pub fn set_blocked(&mut self, lane: usize, a: ArcId, blocked: bool) {
        debug_assert!(lane < self.lanes);
        let (w, bit) = lane_word_bit(lane);
        write_bit(&mut self.planes[a.index() * self.width + w], bit, blocked);
    }

    /// Copies a scalar context into lane `lane`.
    ///
    /// The lane's (word, bit) coordinates are hoisted out of the per-arc
    /// loop, which is then a branch-free masked write per arc — the same
    /// word-indexed path [`set_blocked`](Self::set_blocked) uses (both
    /// go through one shared bit-write helper, micro-asserted against
    /// the branchy form).
    ///
    /// # Panics
    /// Invariant assert: panics if the context's arc count differs from
    /// the batch's — both must come from the same graph, which internal
    /// callers guarantee by construction. Use
    /// [`try_set_lane`](Self::try_set_lane) on untrusted input.
    pub fn set_lane(&mut self, lane: usize, ctx: &Context) {
        assert_eq!(
            ctx.arc_count(),
            self.planes.len() / self.width,
            "context/batch arc-count mismatch"
        );
        debug_assert!(lane < self.lanes);
        let (word, bit) = lane_word_bit(lane);
        for (plane, &blocked) in
            self.planes.iter_mut().skip(word).step_by(self.width).zip(&ctx.blocked)
        {
            write_bit(plane, bit, blocked);
        }
    }

    /// Fallible [`set_lane`](Self::set_lane).
    ///
    /// # Errors
    /// [`GraphError::BatchShape`] if `lane` is not an occupied lane or
    /// the context's arc count differs from the batch's.
    pub fn try_set_lane(&mut self, lane: usize, ctx: &Context) -> Result<(), GraphError> {
        if lane >= self.lanes {
            return Err(GraphError::BatchShape(format!(
                "lane {lane} outside the {} occupied lanes",
                self.lanes
            )));
        }
        if ctx.arc_count() != self.arc_count() {
            return Err(GraphError::BatchShape(format!(
                "context covers {} arcs but the batch covers {}",
                ctx.arc_count(),
                self.arc_count()
            )));
        }
        self.set_lane(lane, ctx);
        Ok(())
    }

    /// Copies lane `lane` out into a scalar context (resizing it to fit).
    pub fn extract_lane(&self, lane: usize, out: &mut Context) {
        debug_assert!(lane < self.lanes);
        let (word, bit) = lane_word_bit(lane);
        out.blocked.clear();
        out.blocked.extend(self.planes.iter().skip(word).step_by(self.width).map(|p| p & bit != 0));
    }
}

/// Writes one lane's bit into a plane word without branching: clear the
/// bit, then OR it back in iff `blocked`. Micro-asserted equal to the
/// branchy `if blocked { |= } else { &= ! }` form it replaced.
#[inline]
fn write_bit(plane: &mut u64, bit: u64, blocked: bool) {
    let next = (*plane & !bit) | ((blocked as u64).wrapping_neg() & bit);
    debug_assert_eq!(next, if blocked { *plane | bit } else { *plane & !bit });
    *plane = next;
}

/// Result planes of one batched program execution: per-arc attempted /
/// traversed masks, per-lane cost accumulators, and terminal outcomes.
/// Sized to the executed batch's plane width on every
/// [`execute_batch`].
#[derive(Debug, Clone)]
pub struct BatchRun {
    attempted: Vec<u64>,
    traversed: Vec<u64>,
    width: usize,
    cost: Vec<f64>,
    success_arc: Vec<u32>,
    succeeded: LaneMask,
    active_in: LaneMask,
}

impl BatchRun {
    /// An empty result buffer, reusable across executions (of any
    /// width).
    pub fn new() -> Self {
        Self {
            attempted: Vec::new(),
            traversed: Vec::new(),
            width: 1,
            cost: Vec::new(),
            success_arc: Vec::new(),
            succeeded: LaneMask::NONE,
            active_in: LaneMask::NONE,
        }
    }

    fn begin(&mut self, arc_count: usize, width: usize, active: LaneMask) {
        self.width = width;
        self.attempted.clear();
        self.attempted.resize(arc_count * width, 0);
        self.traversed.clear();
        self.traversed.resize(arc_count * width, 0);
        self.cost.clear();
        self.cost.resize(width * LANES, 0.0);
        self.success_arc.clear();
        self.success_arc.resize(width * LANES, NO_INDEX);
        self.succeeded = LaneMask::NONE;
        self.active_in = active;
    }

    /// Plane width (words) of the executed batch.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Lane capacity of the executed width (`width * 64`) — the stride
    /// of per-lane accessors like [`cost`](Self::cost).
    pub fn lane_capacity(&self) -> usize {
        self.width * LANES
    }

    /// The lanes this run actually executed (input mask ∧ occupancy).
    pub fn active_in(&self) -> LaneMask {
        self.active_in
    }

    /// Mask of lanes whose run succeeded.
    pub fn succeeded_mask(&self) -> LaneMask {
        self.succeeded
    }

    /// Attempted-plane block of `a` (bit `l % 64` of word `l / 64` =
    /// lane `l` paid the arc's cost).
    pub fn attempted_plane(&self, a: ArcId) -> &[u64] {
        let i = a.index() * self.width;
        &self.attempted[i..i + self.width]
    }

    /// Traversed-plane block of `a`.
    pub fn traversed_plane(&self, a: ArcId) -> &[u64] {
        let i = a.index() * self.width;
        &self.traversed[i..i + self.width]
    }

    /// Lane `lane`'s total run cost.
    pub fn cost(&self, lane: usize) -> f64 {
        self.cost[lane]
    }

    /// Lane `lane`'s terminal outcome.
    pub fn outcome(&self, lane: usize) -> RunOutcome {
        if self.succeeded.test(lane) {
            RunOutcome::Succeeded(ArcId(self.success_arc[lane]))
        } else {
            RunOutcome::Exhausted
        }
    }

    /// Reconstructs lane `lane`'s scalar event sequence (identical to
    /// what the scalar executor would have pushed) into `out`.
    pub fn events_into(
        &self,
        p: &StrategyProgram,
        lane: usize,
        out: &mut Vec<(ArcId, ArcOutcome)>,
    ) {
        out.clear();
        let (word, bit) = lane_word_bit(lane);
        for i in p.instrs() {
            let a = i.arc as usize * self.width + word;
            if self.attempted[a] & bit != 0 {
                let outcome = if self.traversed[a] & bit != 0 {
                    ArcOutcome::Traversed
                } else {
                    ArcOutcome::Blocked
                };
                out.push((ArcId(i.arc), outcome));
            }
        }
    }

    /// Whether lane `lane` attempted `a` during the run, and with what
    /// outcome — the plane-form, O(1) equivalent of a linear search over
    /// the lane's event list.
    pub fn outcome_in(&self, lane: usize, a: ArcId) -> Option<ArcOutcome> {
        let (word, bit) = lane_word_bit(lane);
        let i = a.index() * self.width + word;
        if self.attempted[i] & bit == 0 {
            None
        } else if self.traversed[i] & bit != 0 {
            Some(ArcOutcome::Traversed)
        } else {
            Some(ArcOutcome::Blocked)
        }
    }

    /// Writes the pessimistic completion (Section 5.2 / `delta_tilde`'s
    /// input) of every lane into `out` in plane form, matching
    /// [`crate::pessimistic_completion`] lane-for-lane: a retrieval is
    /// blocked unless observed traversed (`!traversed`), a reduction is
    /// open unless observed blocked (`attempted ∧ ¬traversed`). The
    /// formulas cover unattempted arcs automatically. `out` is resized
    /// to this run's full lane capacity (same width).
    pub fn completion_into(&self, g: &InferenceGraph, out: &mut ContextBatch) {
        let w = self.width;
        assert_eq!(g.arc_count() * w, self.attempted.len(), "run/graph arc-count mismatch");
        out.reset(g.arc_count(), w * LANES);
        for a in g.arc_ids() {
            let i = a.index() * w;
            match g.arc(a).kind {
                ArcKind::Retrieval => {
                    for word in 0..w {
                        out.planes[i + word] = !self.traversed[i + word];
                    }
                }
                ArcKind::Reduction => {
                    for word in 0..w {
                        out.planes[i + word] = self.attempted[i + word] & !self.traversed[i + word];
                    }
                }
            }
        }
    }
}

impl Default for BatchRun {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs a compiled program over every lane of `batch` selected by
/// `active`, filling `run`. Returns the mask of lanes that succeeded.
///
/// Per-lane results are bit-identical to scalar
/// [`crate::program::execute_program_into`] runs on the extracted
/// contexts at every plane width: each lane's cost adds the same
/// instruction costs in the same order (the outer loop is instruction
/// order, matching the scalar program counter), and the
/// attempted/traversed planes encode the same event sequences.
///
/// # Panics
/// Invariant assert: panics if `batch` was built for a different graph
/// than `p`. Both always derive from the same `InferenceGraph` in
/// internal callers; front doors validating untrusted shapes should use
/// [`try_execute_batch`].
pub fn execute_batch(
    p: &StrategyProgram,
    batch: &ContextBatch,
    active: LaneMask,
    run: &mut BatchRun,
) -> LaneMask {
    assert_eq!(batch.arc_count(), p.arc_count(), "batch built for a different graph");
    match batch.width {
        1 => execute_batch_w::<1>(p, batch, active, run),
        2 => execute_batch_w::<2>(p, batch, active, run),
        4 => execute_batch_w::<4>(p, batch, active, run),
        8 => execute_batch_w::<8>(p, batch, active, run),
        w => unreachable!("plane width {w} is not one of 1/2/4/8"),
    }
}

/// Width-monomorphized executor core: every plane op is a fixed `W`-word
/// loop (unrollable, auto-vectorizable), and the per-word cost add keeps
/// the exact dense/sparse split the width-1 path had — so `W = 1` is
/// instruction-for-instruction the pre-widening executor.
fn execute_batch_w<const W: usize>(
    p: &StrategyProgram,
    batch: &ContextBatch,
    active: LaneMask,
    run: &mut BatchRun,
) -> LaneMask {
    run.begin(p.arc_count(), W, active & batch.active_mask());
    let mut alive = [0u64; W];
    for (w, word) in alive.iter_mut().enumerate() {
        *word = run.active_in.word(w);
    }
    for i in p.instrs() {
        // Reach mask: lanes whose source node is reached. The root is
        // always reached; any other node is reached iff its unique
        // parent arc was traversed (tree invariant — same argument that
        // justifies scalar jump-threading). An untouched parent plane is
        // zero, which correctly reads as "not reached".
        let mut attempt = [0u64; W];
        let mut any = 0u64;
        if i.parent_arc == NO_INDEX {
            for w in 0..W {
                attempt[w] = alive[w];
                any |= attempt[w];
            }
        } else {
            let parent = i.parent_arc as usize * W;
            for w in 0..W {
                attempt[w] = alive[w] & run.traversed[parent + w];
                any |= attempt[w];
            }
        }
        if any == 0 {
            continue;
        }
        let a = i.arc as usize * W;
        for (w, &aw) in attempt.iter().enumerate() {
            let trav = aw & !batch.planes[a + w];
            run.attempted[a + w] = aw;
            run.traversed[a + w] = trav;
        }
        // Pay the arc cost per attempting lane. Scalar equivalence only
        // needs each lane's own *instruction* order to match, which the
        // outer loop guarantees — lanes are independent accumulators, so
        // the iteration scheme across lanes within one instruction is
        // free. Dense words take a branch-free select the compiler can
        // vectorize: non-attempting lanes add +0.0, which is exact on
        // these accumulators (they start at +0.0 and finite-sum to -0.0
        // never), so per-lane bits are untouched. Sparse words keep the
        // bit loop to avoid touching all 64 accumulators.
        let cost_bits = i.cost.to_bits();
        for (w, &aw) in attempt.iter().enumerate() {
            if aw == 0 {
                continue;
            }
            let costs = &mut run.cost[w * LANES..(w + 1) * LANES];
            if aw.count_ones() >= 16 {
                for (lane, c) in costs.iter_mut().enumerate() {
                    let keep = ((aw >> lane) & 1).wrapping_neg();
                    *c += f64::from_bits(cost_bits & keep);
                }
            } else {
                let mut m = aw;
                while m != 0 {
                    let lane = m.trailing_zeros() as usize;
                    costs[lane] += i.cost;
                    m &= m - 1;
                }
            }
        }
        if i.success {
            let mut any_alive = 0u64;
            for (w, alive_w) in alive.iter_mut().enumerate() {
                let trav = run.traversed[a + w];
                if trav != 0 {
                    let mut s = trav;
                    while s != 0 {
                        let lane = s.trailing_zeros() as usize;
                        run.success_arc[w * LANES + lane] = i.arc;
                        s &= s - 1;
                    }
                    run.succeeded.words[w] |= trav;
                    *alive_w &= !trav;
                }
                any_alive |= *alive_w;
            }
            if any_alive == 0 {
                break;
            }
        }
    }
    run.succeeded
}

/// Fallible [`execute_batch`]: validates the batch/program arc counts
/// instead of asserting.
///
/// # Errors
/// [`GraphError::BatchShape`] if `batch` was built for a different
/// graph than `p`; `run` is left in its previous state.
pub fn try_execute_batch(
    p: &StrategyProgram,
    batch: &ContextBatch,
    active: LaneMask,
    run: &mut BatchRun,
) -> Result<LaneMask, GraphError> {
    if batch.arc_count() != p.arc_count() {
        return Err(GraphError::BatchShape(format!(
            "batch covers {} arcs but the program covers {}",
            batch.arc_count(),
            p.arc_count()
        )));
    }
    Ok(execute_batch(p, batch, active, run))
}

/// [`execute_batch`] plus `graph.batch.*` telemetry: executions, lanes
/// run, lanes succeeded/exhausted, and the plane width executed.
pub fn execute_batch_observed(
    p: &StrategyProgram,
    batch: &ContextBatch,
    active: LaneMask,
    run: &mut BatchRun,
    sink: &mut dyn qpl_obs::MetricsSink,
) -> LaneMask {
    let succeeded = execute_batch(p, batch, active, run);
    sink.counter("graph.batch.executions", 1);
    sink.counter("graph.batch.lanes", u64::from(run.active_in.count_ones()));
    sink.counter("graph.batch.succeeded", u64::from(succeeded.count_ones()));
    sink.counter(
        "graph.batch.exhausted",
        u64::from(run.active_in.count_ones() - succeeded.count_ones()),
    );
    sink.value("graph.batch.width", batch.width() as f64);
    succeeded
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{execute_into, RunScratch};
    use crate::pessimistic::pessimistic_completion_into;
    use crate::program::{execute_program_into, StrategyProgram};
    use crate::strategy::Strategy;
    use crate::testgen::{lcg_context, lcg_strategy, lcg_tree};

    fn fill_batch(g: &InferenceGraph, seed: u64, lanes: usize) -> (ContextBatch, Vec<Context>) {
        let mut batch = ContextBatch::new(g.arc_count(), lanes);
        let mut ctxs = Vec::with_capacity(lanes);
        for lane in 0..lanes {
            let ctx = lcg_context(g, seed ^ (lane as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            batch.set_lane(lane, &ctx);
            ctxs.push(ctx);
        }
        (batch, ctxs)
    }

    #[test]
    fn width_for_lanes_picks_the_smallest_power_of_two() {
        for (lanes, width) in [
            (0, 1),
            (1, 1),
            (63, 1),
            (64, 1),
            (65, 2),
            (128, 2),
            (129, 4),
            (256, 4),
            (257, 8),
            (511, 8),
            (512, 8),
        ] {
            assert_eq!(width_for_lanes(lanes), width, "lanes {lanes}");
        }
    }

    #[test]
    fn tail_mask_handles_every_word_boundary() {
        assert_eq!(tail_mask(1, 0), LaneMask::NONE);
        assert_eq!(tail_mask(8, 0), LaneMask::NONE);
        assert_eq!(tail_mask(1, 63), LaneMask::low((1u64 << 63) - 1));
        assert_eq!(tail_mask(1, 64), LaneMask::low(!0));
        assert_eq!(tail_mask(8, 64).word(0), !0);
        assert_eq!(tail_mask(8, 64).word(1), 0);
        let m65 = tail_mask(2, 65);
        assert_eq!((m65.word(0), m65.word(1)), (!0, 1));
        let m511 = tail_mask(8, 511);
        assert!((0..7).all(|w| m511.word(w) == !0));
        assert_eq!(m511.word(7), (1u64 << 63) - 1);
        assert_eq!(tail_mask(8, 512), LaneMask::ALL);
        assert_eq!(tail_mask(8, 512).count_ones(), 512);
        assert_eq!(tail_mask(8, 511).count_ones(), 511);
    }

    #[test]
    #[should_panic(expected = "lanes exceed")]
    fn tail_mask_rejects_lanes_past_the_width() {
        let _ = tail_mask(1, 65);
    }

    #[test]
    fn fallible_variants_reject_bad_shapes_without_panicking() {
        let (g, _) = lcg_tree(4);
        assert!(ContextBatch::try_new(g.arc_count(), MAX_LANES + 1).is_err());
        let mut batch = ContextBatch::try_new(g.arc_count(), 8).unwrap();
        assert!(batch.try_reset(g.arc_count(), MAX_LANES + 3).is_err());
        assert_eq!(batch.lanes(), 8, "failed reset must leave the batch untouched");
        let ctx = lcg_context(&g, 1);
        assert!(batch.try_set_lane(9, &ctx).is_err(), "unoccupied lane");
        let (g2, _) = lcg_tree(900);
        assert_ne!(g2.arc_count(), g.arc_count(), "test needs distinct shapes");
        let foreign = Context::all_open(&g2);
        assert!(batch.try_set_lane(0, &foreign).is_err(), "foreign context");
        batch.try_set_lane(0, &ctx).unwrap();
        assert_eq!(batch.is_blocked(0, ArcId(0)), ctx.is_blocked(ArcId(0)));

        let s = Strategy::left_to_right(&g);
        let p = StrategyProgram::compile(&g, &s).unwrap();
        let mut run = BatchRun::new();
        let foreign_batch = ContextBatch::new(g2.arc_count(), 8);
        assert!(try_execute_batch(&p, &foreign_batch, LaneMask::ALL, &mut run).is_err());
        let ok = try_execute_batch(&p, &batch, LaneMask::ALL, &mut run).unwrap();
        let mut direct = BatchRun::new();
        assert_eq!(ok, execute_batch(&p, &batch, LaneMask::ALL, &mut direct));
    }

    #[test]
    fn lanes_from_selects_the_undrained_suffix() {
        assert_eq!(lanes_from(0, 64), LaneMask::low(!0));
        assert_eq!(lanes_from(0, 5), LaneMask::low(0b11111));
        assert_eq!(lanes_from(3, 5), LaneMask::low(0b11000));
        assert_eq!(lanes_from(5, 5), LaneMask::NONE);
        assert_eq!(lanes_from(64, 64), LaneMask::NONE);
        assert_eq!(lanes_from(1, 64), LaneMask::low(!1));
        // Wider shapes: drain across a word boundary.
        let m = lanes_from(70, 130);
        assert_eq!(m.word(0), 0);
        assert_eq!(m.word(1), !((1u64 << 6) - 1));
        assert_eq!(m.word(2), 0b11);
        assert_eq!(lanes_from(512, 512), LaneMask::NONE);
        assert_eq!(lanes_from(0, 512).count_ones(), 512);
    }

    #[test]
    fn lane_roundtrip_preserves_contexts_at_every_width() {
        let (g, _) = lcg_tree(7);
        for lanes in [LANES, 130, 512] {
            let (batch, ctxs) = fill_batch(&g, 3, lanes);
            assert_eq!(batch.width(), width_for_lanes(lanes));
            let mut out = Context::all_open(&g);
            for (lane, ctx) in ctxs.iter().enumerate() {
                batch.extract_lane(lane, &mut out);
                assert_eq!(&out, ctx, "lane {lane}");
                for a in g.arc_ids() {
                    assert_eq!(batch.is_blocked(lane, a), ctx.is_blocked(a));
                }
            }
        }
    }

    #[test]
    fn batch_matches_scalar_runs_lane_for_lane() {
        let mut events = Vec::new();
        for seed in 0..40u64 {
            let (g, _) = lcg_tree(seed);
            let s = lcg_strategy(&g, seed.wrapping_add(17));
            let p = StrategyProgram::compile(&g, &s).unwrap();
            // Rotate the widths across seeds to cover 64..512 lanes.
            let lanes = [64, 128, 256, 512][(seed % 4) as usize];
            let (batch, ctxs) = fill_batch(&g, seed, lanes);
            let mut run = BatchRun::new();
            execute_batch(&p, &batch, LaneMask::ALL, &mut run);
            let mut scratch = RunScratch::new(&g);
            for (lane, ctx) in ctxs.iter().enumerate() {
                let scalar = execute_program_into(&p, ctx, &mut scratch);
                assert_eq!(run.outcome(lane), scalar, "seed {seed} lane {lane}");
                assert_eq!(
                    run.cost(lane).to_bits(),
                    scratch.cost().to_bits(),
                    "seed {seed} lane {lane}"
                );
                run.events_into(&p, lane, &mut events);
                assert_eq!(events.as_slice(), scratch.events(), "seed {seed} lane {lane}");
                for a in g.arc_ids() {
                    assert_eq!(
                        run.outcome_in(lane, a),
                        scratch.events().iter().find(|(x, _)| *x == a).map(|(_, o)| *o)
                    );
                }
            }
        }
    }

    #[test]
    fn batch_matches_interpreter_not_just_program() {
        // Closes the loop against the original interpreter, not only the
        // scalar program executor.
        for seed in 0..20u64 {
            let (g, _) = lcg_tree(seed);
            let s = lcg_strategy(&g, seed);
            let p = StrategyProgram::compile(&g, &s).unwrap();
            let (batch, ctxs) = fill_batch(&g, seed ^ 0xABCD, 64);
            let mut run = BatchRun::new();
            execute_batch(&p, &batch, LaneMask::ALL, &mut run);
            let mut scratch = RunScratch::new(&g);
            for (lane, ctx) in ctxs.iter().enumerate() {
                let outcome = execute_into(&g, &s, ctx, &mut scratch);
                assert_eq!(run.outcome(lane), outcome);
                assert_eq!(run.cost(lane).to_bits(), scratch.cost().to_bits());
            }
        }
    }

    #[test]
    fn partial_batches_and_active_masks_respected() {
        let (g, _) = lcg_tree(11);
        let s = Strategy::left_to_right(&g);
        let p = StrategyProgram::compile(&g, &s).unwrap();
        let lanes = 23;
        let (batch, _) = fill_batch(&g, 5, lanes);
        assert_eq!(batch.active_mask(), LaneMask::low((1u64 << lanes) - 1));
        let mut run = BatchRun::new();
        // Request more lanes than occupied: clipped to occupancy.
        execute_batch(&p, &batch, LaneMask::ALL, &mut run);
        assert_eq!(run.active_in(), LaneMask::low((1u64 << lanes) - 1));
        // Restrict to a sub-mask (mid-batch restart shape): masked-out
        // lanes stay untouched — zero cost, exhausted outcome.
        let sub = LaneMask::low(0b1010_1010);
        let mut sub_run = BatchRun::new();
        execute_batch(&p, &batch, sub, &mut sub_run);
        assert_eq!(sub_run.active_in(), sub);
        for lane in 0..lanes {
            if sub.test(lane) {
                assert_eq!(sub_run.cost(lane).to_bits(), run.cost(lane).to_bits());
                assert_eq!(sub_run.outcome(lane), run.outcome(lane));
            } else {
                assert_eq!(sub_run.cost(lane), 0.0);
                assert_eq!(sub_run.outcome(lane), RunOutcome::Exhausted);
            }
        }
    }

    #[test]
    fn completion_matches_pessimistic_completion_per_lane() {
        let mut completed = ContextBatch::new(0, 0);
        for seed in 0..30u64 {
            let (g, _) = lcg_tree(seed);
            let s = lcg_strategy(&g, seed ^ 0xF00D);
            let p = StrategyProgram::compile(&g, &s).unwrap();
            let lanes = [64, 192, 512][(seed % 3) as usize];
            let (batch, ctxs) = fill_batch(&g, seed, lanes);
            let mut run = BatchRun::new();
            execute_batch(&p, &batch, LaneMask::ALL, &mut run);
            run.completion_into(&g, &mut completed);
            assert_eq!(completed.width(), batch.width(), "completion keeps the width");
            let mut scratch = RunScratch::new(&g);
            let mut scalar_completed = Context::all_open(&g);
            let mut lane_completed = Context::all_open(&g);
            for (lane, ctx) in ctxs.iter().enumerate() {
                execute_into(&g, &s, ctx, &mut scratch);
                pessimistic_completion_into(&g, scratch.events(), &mut scalar_completed);
                completed.extract_lane(lane, &mut lane_completed);
                assert_eq!(lane_completed, scalar_completed, "seed {seed} lane {lane}");
            }
        }
    }

    #[test]
    fn observed_variant_emits_batch_counters() {
        let (g, _) = lcg_tree(2);
        let s = Strategy::left_to_right(&g);
        let p = StrategyProgram::compile(&g, &s).unwrap();
        let (batch, _) = fill_batch(&g, 9, 64);
        let mut run = BatchRun::new();
        let mut sink = qpl_obs::MemorySink::new();
        let succeeded = execute_batch_observed(&p, &batch, LaneMask::ALL, &mut run, &mut sink);
        assert_eq!(sink.counter_total("graph.batch.executions"), 1);
        assert_eq!(sink.counter_total("graph.batch.lanes"), 64);
        assert_eq!(sink.counter_total("graph.batch.succeeded"), u64::from(succeeded.count_ones()));
        assert_eq!(
            sink.counter_total("graph.batch.succeeded")
                + sink.counter_total("graph.batch.exhausted"),
            64
        );
    }

    proptest::proptest! {
        /// 64-lane batch execution is bit-identical to 64 scalar runs on
        /// random trees × strategies × contexts × active masks.
        #[test]
        fn batch_bitwise_matches_scalar(
            seed in 0u64..2_000,
            strat_seed in 0u64..64,
            ctx_seed in 0u64..1_000,
            active in 0u64..=u64::MAX,
        ) {
            let (g, _) = lcg_tree(seed);
            let s = lcg_strategy(&g, strat_seed);
            let p = StrategyProgram::compile(&g, &s).unwrap();
            let (batch, ctxs) = fill_batch(&g, ctx_seed, LANES);
            let mut run = BatchRun::new();
            execute_batch(&p, &batch, LaneMask::low(active), &mut run);
            let mut scratch = RunScratch::new(&g);
            let mut events = Vec::new();
            for (lane, ctx) in ctxs.iter().enumerate() {
                if active & (1 << lane) == 0 {
                    proptest::prop_assert_eq!(run.cost(lane), 0.0);
                    continue;
                }
                let scalar = execute_program_into(&p, ctx, &mut scratch);
                proptest::prop_assert_eq!(run.outcome(lane), scalar);
                proptest::prop_assert_eq!(run.cost(lane).to_bits(), scratch.cost().to_bits());
                run.events_into(&p, lane, &mut events);
                proptest::prop_assert_eq!(events.as_slice(), scratch.events());
            }
        }
    }
}
