//! The case runner: configuration, failure type, and the deterministic
//! per-case RNG handed to strategies.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Runner configuration (`ProptestConfig` upstream).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed case (the only variant this shim distinguishes).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property did not hold; payload is the formatted assertion.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: String) -> Self {
        Self::Fail(msg)
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// Deterministic per-case generator handed to [`Strategy`](crate::strategy::Strategy).
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name keeps cases stable across runs and
        // independent across tests.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self(StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9E37)))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.0.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runs `f` for each case with a deterministic RNG; panics (test failure)
/// on the first case whose result is `Err`.
pub fn run_cases(
    config: &Config,
    test_name: &str,
    mut f: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    for case in 0..config.cases {
        let mut rng = TestRng::for_case(test_name, case);
        if let Err(e) = f(&mut rng) {
            panic!("proptest case {case}/{} for `{test_name}` failed: {e}", config.cases);
        }
    }
}
