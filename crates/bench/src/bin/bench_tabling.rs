//! Measures tabled evaluation and the cross-context answer cache on the
//! layered-DAG reachability workload, emitting `BENCH_tabling.json`.
//!
//! ```text
//! bench_tabling [--out BENCH_tabling.json]
//! ```
//!
//! Three solver configurations answer the same exhaustive-failure query
//! `path(n0_0, sink)`:
//!
//! * `plain` — the seed's depth-bounded SLD solver (re-proves each
//!   shared path suffix once per derivation path, `width^layers` total);
//! * `tabled` — fresh tables per query (each subgoal proved once);
//! * `cached` — warm tables reused across queries, the steady state of a
//!   Monte-Carlo loop whose samples revisit few context classes.
//!
//! The speedups reported are algorithmic, so they do not depend on core
//! count — but the count is recorded anyway, for honesty about the
//! machine the numbers came from.

use qpl_datalog::eval::EvalScratch;
use qpl_datalog::magic::rewrite;
use qpl_datalog::table::TableStore;
use qpl_datalog::topdown::RetrievalStats;
use qpl_datalog::{eval, Adornment, Fact, QueryForm, TopDown};
use qpl_engine::{CrossContextCache, MagicRunner};
use qpl_workload::generator::{recursive_path_kb, source_reachability_query, RecursiveKbParams};
use std::num::NonZeroUsize;
use std::time::Instant;

/// Rounds of single-fact churn in the update scenario.
const CHURN_ROUNDS: usize = 100;
/// The one context class this bench exercises (the cache keys entries
/// by context fingerprint; any fixed value works for a single class).
const CHURN_FP: u64 = 0x51;

/// Measurements from one churn run (see [`churn_run`]).
struct ChurnStats {
    kb_facts: usize,
    warm_hits: u64,
    invalidations: u64,
    retrievals: u64,
    tables_maintained: u64,
    per_round_us: f64,
}

/// Replays `CHURN_ROUNDS` single-fact deltas against a warm
/// cross-context cache, re-running the exhaustive-failure query after
/// each, and reports how often the cached tables stayed warm.
///
/// The KB is the layered reachability shape padded with `annot/1`
/// facts (outside `path`'s reachability footprint) so that one churned
/// fact per round is ~1% of the fact set. Most rounds insert or
/// retract one annotation; every 25th inserts a fresh `edge` fact that
/// cannot reach the query's source, exercising semi-naive
/// re-saturation without changing any answer.
///
/// With `selective`, each delta is followed by
/// [`CrossContextCache::maintain`], which repairs entries whose
/// footprint intersects the delta and re-stamps the rest — so the next
/// lookup hits warm. Without it, the entry's generation stamp goes
/// stale and `tables_for` clears it wholesale, exactly what every
/// pre-delta revision of this cache did on any database change.
fn churn_run(selective: bool) -> ChurnStats {
    let params = RecursiveKbParams { layers: 12, width: 2 };
    let (mut table, rules, mut db, sink_query) = recursive_path_kb(&params, |_, _, _| true);
    let annot = table.intern("annot");
    let edge = table.intern("edge");
    for i in 0..56 {
        let c = table.intern(&format!("meta{i}"));
        db.insert(Fact::new(annot, vec![c])).expect("annot fact inserts");
    }
    let kb_facts = db.len();

    let mut cache = CrossContextCache::new();
    let mut stats = RetrievalStats::default();
    {
        let solver = TopDown::new(&rules, &db);
        let store = cache.tables_for(&db, CHURN_FP);
        assert!(solver.solve_tabled_in(&sink_query, store, &mut stats).unwrap().is_none());
    }
    let base = cache.stats();
    let retrievals_before = stats.retrievals;

    let (edge_delta, annot_delta, no_delta) = ([edge], [annot], []);
    let t0 = Instant::now();
    for round in 0..CHURN_ROUNDS {
        let pre = db.generation();
        let (inserted, retracted) = if round % 25 == 24 {
            let aux = table.intern(&format!("aux{round}"));
            let sink = table.intern("sink");
            db.insert(Fact::new(edge, vec![aux, sink])).expect("edge fact inserts");
            (&edge_delta[..], &no_delta[..])
        } else if round % 2 == 0 {
            let c = table.intern(&format!("u{round}"));
            db.insert(Fact::new(annot, vec![c])).expect("annot fact inserts");
            (&annot_delta[..], &no_delta[..])
        } else {
            let c = table.intern(&format!("u{}", round - 1));
            db.retract(Fact::new(annot, vec![c])).expect("annot fact retracts");
            (&no_delta[..], &annot_delta[..])
        };
        let solver = TopDown::new(&rules, &db);
        if selective {
            cache
                .maintain(&db, &rules, pre, inserted, retracted, &mut stats)
                .expect("maintenance stays within the depth bound");
        }
        let store = cache.tables_for(&db, CHURN_FP);
        assert!(
            solver.solve_tabled_in(&sink_query, store, &mut stats).unwrap().is_none(),
            "churn outside the source's reach must not change the outcome"
        );
    }
    let per_round_us = t0.elapsed().as_micros() as f64 / CHURN_ROUNDS as f64;

    let after = cache.stats();
    ChurnStats {
        kb_facts,
        warm_hits: after.hits - base.hits,
        invalidations: after.invalidations - base.invalidations,
        retrievals: stats.retrievals - retrievals_before,
        tables_maintained: cache.tables_maintained(),
        per_round_us,
    }
}

/// The conservative fresh-evaluation speedup floor the magic-set
/// scenario must hold (CI gate; measured values run far higher).
const MAGIC_SPEEDUP_FLOOR: f64 = 5.0;

/// Measurements from the magic-set scenario (see [`magic_run`]).
struct MagicStats {
    layers: usize,
    width: usize,
    full_us: f64,
    magic_fresh_us: f64,
    magic_warm_us: f64,
    full_derived: usize,
    magic_derived: usize,
    answers: usize,
    speedup: f64,
}

/// Binding-aware evaluation on the bound-source reachability query
/// `path(n0_0, W)`: unrewritten semi-naive must saturate the all-pairs
/// closure, magic-rewritten semi-naive only derives paths out of
/// `n0_0`. The arc mask keeps column 0 an isolated chain (the query's
/// demand cone) while the remaining columns stay densely
/// cross-connected — the closure the binding makes irrelevant. Fresh
/// evaluation is timed for both; the warm row replays the same query
/// through [`MagicRunner`]'s footprint-scoped answer cache.
fn magic_run() -> MagicStats {
    let params = RecursiveKbParams { layers: 14, width: 6 };
    let (mut table, rules, db, _) =
        recursive_path_kb(&params, |_, i, j| i == j || (i > 0 && j > 0));
    let query = source_reachability_query(&mut table);
    let form = QueryForm { predicate: query.predicate, adornment: Adornment::of_atom(&query) };
    let program = rewrite(&rules, &form, &mut table);

    let reps = 5usize;
    let t0 = Instant::now();
    let mut full_answers = Vec::new();
    for _ in 0..reps {
        full_answers = eval::answers(&rules, &db, &query);
    }
    let full_us = t0.elapsed().as_micros() as f64 / reps as f64;
    let full_derived = eval::seminaive(&rules, &db).len() - db.len();

    let mut scratch = EvalScratch::new();
    let t0 = Instant::now();
    let mut magic = program.evaluate_into(&db, &query, &mut scratch);
    for _ in 1..reps {
        magic = program.evaluate_into(&db, &query, &mut scratch);
    }
    let magic_fresh_us = t0.elapsed().as_micros() as f64 / reps as f64;

    assert_eq!(magic.answers, full_answers, "magic must be answer-set-identical");
    assert!(
        magic.derived < full_derived,
        "magic must derive strictly fewer facts: {} vs {}",
        magic.derived,
        full_derived
    );

    let mut runner = MagicRunner::new(&rules, &form, &mut table);
    assert!(!runner.run_magic(&db, &query).cache_hit);
    let warm_reps = reps * 50;
    let t0 = Instant::now();
    for _ in 0..warm_reps {
        assert!(runner.run_magic(&db, &query).cache_hit);
    }
    let magic_warm_us = t0.elapsed().as_micros() as f64 / warm_reps as f64;

    MagicStats {
        layers: params.layers,
        width: params.width,
        full_us,
        magic_fresh_us,
        magic_warm_us,
        full_derived,
        magic_derived: magic.derived,
        answers: magic.answers.len(),
        speedup: full_us / magic_fresh_us.max(1e-9),
    }
}

fn magic_json(s: &MagicStats) -> String {
    format!(
        "{{\n    \"workload\": \"layers={} width={} reachability (column 0 an isolated \
         chain, columns 1+ densely cross-connected), bound-source query path(n0_0, W)\",\n    \
         \"unrewritten_us\": {:.1},\n    \"magic_fresh_us\": {:.1},\n    \
         \"magic_warm_us\": {:.2},\n    \"unrewritten_derived\": {},\n    \
         \"magic_derived\": {},\n    \"answers\": {},\n    \
         \"fresh_speedup\": {:.1},\n    \"floor\": {MAGIC_SPEEDUP_FLOOR}\n  }}",
        s.layers,
        s.width,
        s.full_us,
        s.magic_fresh_us,
        s.magic_warm_us,
        s.full_derived,
        s.magic_derived,
        s.answers,
        s.speedup,
    )
}

fn churn_json(s: &ChurnStats) -> String {
    format!(
        "{{\"warm_hits\": {}, \"invalidations\": {}, \"retrievals\": {}, \
         \"tables_maintained\": {}, \"per_round_us\": {:.2}}}",
        s.warm_hits, s.invalidations, s.retrievals, s.tables_maintained, s.per_round_us
    )
}

fn main() {
    let out_path = {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match args.iter().position(|a| a == "--out") {
            Some(pos) if pos + 1 < args.len() => args[pos + 1].clone(),
            _ => "BENCH_tabling.json".to_string(),
        }
    };
    let cores = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);

    let mut rows = Vec::new();
    for layers in [8usize, 11, 14] {
        let params = RecursiveKbParams { layers, width: 2 };
        let (_, rules, db, sink_query) = recursive_path_kb(&params, |_, _, _| true);
        let solver = TopDown::new(&rules, &db);

        // Calibrate repetitions so each variant runs long enough to time.
        let reps = match layers {
            8 => 200usize,
            11 => 40,
            _ => 5,
        };

        let mut plain_stats = RetrievalStats::default();
        let t0 = Instant::now();
        for _ in 0..reps {
            assert!(solver
                .solve_with_stats(&sink_query, &mut plain_stats)
                .expect("within depth bound")
                .is_none());
        }
        let plain_us = t0.elapsed().as_micros() as f64 / reps as f64;

        let t0 = Instant::now();
        for _ in 0..reps {
            assert!(solver.solve_tabled(&sink_query).unwrap().is_none());
        }
        let tabled_us = t0.elapsed().as_micros() as f64 / reps as f64;

        let mut store = TableStore::new();
        let mut stats = RetrievalStats::default();
        assert!(solver.solve_tabled_in(&sink_query, &mut store, &mut stats).unwrap().is_none());
        let warm_reps = reps * 50;
        let t0 = Instant::now();
        for _ in 0..warm_reps {
            let mut stats = RetrievalStats::default();
            assert!(solver.solve_tabled_in(&sink_query, &mut store, &mut stats).unwrap().is_none());
        }
        let cached_us = t0.elapsed().as_micros() as f64 / warm_reps as f64;

        let retr = plain_stats.retrievals / reps as u64;
        let tabled_speedup = plain_us / tabled_us.max(1e-9);
        let cached_speedup = plain_us / cached_us.max(1e-9);
        println!(
            "layers={layers}: plain {plain_us:.1} µs ({retr} retrievals), tabled {tabled_us:.1} µs \
             ({tabled_speedup:.1}x), cached-warm {cached_us:.2} µs ({cached_speedup:.0}x)"
        );
        rows.push(format!(
            "    {{\"layers\": {layers}, \"width\": 2, \"plain_us\": {plain_us:.1}, \
             \"plain_retrievals\": {retr}, \"tabled_fresh_us\": {tabled_us:.1}, \
             \"tabled_speedup\": {tabled_speedup:.1}, \"cached_warm_us\": {cached_us:.2}, \
             \"cached_speedup\": {cached_speedup:.1}}}"
        ));
    }

    // Update-churn scenario: live single-fact deltas against a warm
    // cache, selective (footprint-scoped maintenance) vs wholesale
    // (generation-stamp clearing) invalidation.
    let selective = churn_run(true);
    let wholesale = churn_run(false);
    let advantage = selective.warm_hits as f64 / (wholesale.warm_hits.max(1)) as f64;
    println!(
        "churn ({CHURN_ROUNDS} rounds, 1 fact/round of {}): selective {} warm hits \
         ({} invalidations, {} retrievals, {:.2} µs/round), wholesale {} warm hits \
         ({} invalidations, {} retrievals, {:.2} µs/round) — {advantage:.0}x warm-hit advantage",
        selective.kb_facts,
        selective.warm_hits,
        selective.invalidations,
        selective.retrievals,
        selective.per_round_us,
        wholesale.warm_hits,
        wholesale.invalidations,
        wholesale.retrievals,
        wholesale.per_round_us,
    );
    assert!(
        advantage >= 10.0,
        "selective invalidation must hold at least a 10x warm-hit advantage \
         over wholesale under 1% churn (got {advantage:.1}x)"
    );

    // Magic-set scenario: bound-source query against bottom-up
    // evaluation — binding-aware rewriting vs full saturation.
    let magic = magic_run();
    println!(
        "magic (layers={} width={}): unrewritten {:.1} µs ({} derived), magic fresh {:.1} µs \
         ({} derived), magic warm {:.2} µs — {:.1}x fresh speedup",
        magic.layers,
        magic.width,
        magic.full_us,
        magic.full_derived,
        magic.magic_fresh_us,
        magic.magic_derived,
        magic.magic_warm_us,
        magic.speedup,
    );
    assert!(
        magic.speedup >= MAGIC_SPEEDUP_FLOOR,
        "magic rewriting must hold at least a {MAGIC_SPEEDUP_FLOOR}x fresh-evaluation \
         speedup on the bound-source query (got {:.1}x)",
        magic.speedup
    );

    let json = format!(
        "{{\n  \"bench\": \"tabled top-down evaluation + cross-context answer cache\",\n  \
         \"cores\": {cores},\n  \
         \"workload\": \"layered-DAG reachability, exhaustive-failure query path(n0_0, sink)\",\n  \
         \"note\": \"speedups are algorithmic (plain SLD work grows like 2^layers, tabled stays \
         polynomial, warm cache skips re-proof entirely), so they hold at any core count\",\n  \
         \"tabling\": [\n{}\n  ],\n  \
         \"update_churn\": {{\n    \
         \"workload\": \"layers=12 width=2 reachability + annot/1 padding, 1 fact \
         churned per round (~1%), every 25th round an insert inside the path \
         footprint\",\n    \
         \"rounds\": {CHURN_ROUNDS},\n    \"kb_facts\": {},\n    \
         \"selective\": {},\n    \"wholesale\": {},\n    \
         \"warm_hit_advantage\": {advantage:.1}\n  }},\n  \
         \"magic_speedup\": {}\n}}\n",
        rows.join(",\n"),
        selective.kb_facts,
        churn_json(&selective),
        churn_json(&wholesale),
        magic_json(&magic),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_tabling.json");
    println!("wrote {out_path} (cores={cores})");
}
