//! Property tests for sharded serving: N shared-nothing engine
//! replicas, arbitrary steering assignments and plane boundaries,
//! bit-identical results.
//!
//! * **Replica invariance** — partitioning an arbitrary query stream
//!   across 1..=4 replicas running the executor-shard hot path (pool
//!   classification, plane assembly, bit-parallel execution) yields,
//!   for every query, the same rendered answer, the same cost to the
//!   f64 bit, and the same arc-by-arc outcome event sequence as a
//!   single executor and as direct scalar [`QueryProcessor::run`] —
//!   regardless of which shard a query steers to or where its plane
//!   boundaries fall.
//! * **Steering purity** — [`steer_shard`] is deterministic and in
//!   range; [`fallback_shard`] exists iff there is a peer shard and
//!   always picks the least-loaded non-home shard (lowest index on
//!   ties).
//! * **Sharded accounting** — composing N bounded batchers with the
//!   server's home-then-fallback admission policy, every job is served
//!   exactly once by some shard or refused after its offers decline:
//!   answered + overloaded == sent, with per-shard decline counts
//!   explained exactly by fallbacks and refusals.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use proptest::{collection, num};
use qpl_datalog::parser::parse_query;
use qpl_datalog::SymbolTable;
use qpl_engine::qp::{classify_context_into, BatchScratch, QueryAnswer, QueryProcessor};
use qpl_graph::batch::LANES;
use qpl_graph::{ArcId, ArcOutcome};
use qpl_serve::{
    fallback_shard, plane_width_for_depth, steer_shard, Batcher, LaneWeight, ServeEngine,
};

/// Query pool over the Figure-1 KB: known and unknown constants, so
/// planes mix `yes` and `no` lanes.
const POOL: [&str; 6] = [
    "instructor(russ)",
    "instructor(manolis)",
    "instructor(fred)",
    "instructor(alice)",
    "instructor(bob)",
    "instructor(eve)",
];

/// What one lane produces, in comparable form: rendered answer, cost
/// bit pattern, and the scalar-order arc event sequence.
type LaneRecord = (String, u64, Vec<(ArcId, ArcOutcome)>);

fn render(answer: &QueryAnswer, table: &SymbolTable) -> String {
    match answer {
        QueryAnswer::Yes(atom) => format!("yes {}", atom.display(table)),
        QueryAnswer::No => "no".to_string(),
    }
}

/// Runs `texts` in order through one replica's batch hot path — the
/// same pool-classify / assemble / `run_classified_batch` sequence an
/// executor shard performs — cutting planes at the (cycled) sizes in
/// `caps`. Returns one record per query, in input order.
fn replica_records(eng: &mut ServeEngine, texts: &[&str], caps: &[usize]) -> Vec<LaneRecord> {
    let qp = QueryProcessor::left_to_right(&eng.compiled);
    let mut scratch = BatchScratch::new(&eng.compiled.graph);
    let mut records = Vec::with_capacity(texts.len());
    let mut atoms = Vec::new();
    let mut out = Vec::new();
    let mut ev = Vec::new();
    let mut idx = 0usize;
    let mut cap_i = 0usize;
    while idx < texts.len() {
        let cap = caps[cap_i % caps.len()].clamp(1, LANES);
        cap_i += 1;
        let chunk = &texts[idx..(idx + cap).min(texts.len())];
        idx += chunk.len();
        atoms.clear();
        for (lane, text) in chunk.iter().enumerate() {
            let atom = parse_query(text, &mut eng.table).expect("pool queries parse");
            classify_context_into(
                &eng.compiled,
                &atom,
                &eng.db,
                scratch.pool_context(&eng.compiled.graph, lane),
            )
            .expect("pool queries match the compiled form");
            atoms.push(atom);
        }
        scratch.assemble_pool_plane(eng.compiled.graph.arc_count(), chunk.len());
        out.clear();
        let (batch, run, scalar) = scratch.plane_parts_mut();
        qp.run_classified_batch(&atoms, &eng.db, batch, run, scalar, &mut out)
            .expect("plane is assembled against this replica's graph");
        let p = qp.program().expect("left-to-right strategies lower to a program");
        for (lane, (answer, cost)) in out.iter().enumerate() {
            run.events_into(p, lane, &mut ev);
            records.push((render(answer, &eng.table), cost.to_bits(), ev.clone()));
        }
    }
    records
}

/// Ground truth: each query through the scalar interpreter, one at a
/// time, on its own replica.
fn scalar_records(eng: &mut ServeEngine, texts: &[&str]) -> Vec<LaneRecord> {
    let qp = QueryProcessor::left_to_right(&eng.compiled);
    let mut records = Vec::with_capacity(texts.len());
    for text in texts {
        let atom = parse_query(text, &mut eng.table).expect("pool queries parse");
        let run = qp.run(&atom, &eng.db).expect("pool queries run");
        records.push((render(&run.answer, &eng.table), run.trace.cost.to_bits(), run.trace.events));
    }
    records
}

/// A queued job with lane weight only — stands in for a wire request in
/// the admission simulation.
#[derive(Debug)]
struct J {
    id: usize,
    lanes: usize,
}

impl LaneWeight for J {
    fn lanes(&self) -> usize {
        self.lanes
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sharded_execution_is_bit_identical_to_single_executor_and_scalar(
        picks in collection::vec((0usize..POOL.len(), 0usize..8), 1..96),
        shards in 1usize..=4,
        single_caps in collection::vec(1usize..=LANES, 1..4),
        shard_caps in collection::vec(1usize..=LANES, 1..4),
    ) {
        let base = ServeEngine::figure1();
        let texts: Vec<&str> = picks.iter().map(|&(q, _)| POOL[q]).collect();

        // Ground truth and the single-executor batch path agree first.
        let scalar = scalar_records(&mut base.clone(), &texts);
        let single = replica_records(&mut base.clone(), &texts, &single_caps);
        prop_assert_eq!(
            &single, &scalar,
            "single-executor batch path is bit-identical to scalar runs"
        );

        // Steer every query to an arbitrary shard, keeping per-shard
        // arrival order, and run each shard on its own replica.
        let mut per_shard: Vec<Vec<&str>> = vec![Vec::new(); shards];
        let mut origin: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for (i, &(q, raw)) in picks.iter().enumerate() {
            let s = raw % shards;
            per_shard[s].push(POOL[q]);
            origin[s].push(i);
        }
        let mut merged: Vec<Option<LaneRecord>> = vec![None; picks.len()];
        for s in 0..shards {
            let recs = replica_records(&mut base.clone(), &per_shard[s], &shard_caps);
            prop_assert_eq!(recs.len(), per_shard[s].len());
            for (j, rec) in recs.into_iter().enumerate() {
                merged[origin[s][j]] = Some(rec);
            }
        }
        for (i, rec) in merged.into_iter().enumerate() {
            prop_assert_eq!(
                rec.as_ref(), Some(&scalar[i]),
                "query {} on its shard matches the scalar answer, cost bits, and events", i
            );
        }
    }

    #[test]
    fn steer_shard_is_deterministic_and_in_range(
        salt in num::u64::ANY,
        shards in 1usize..=16,
    ) {
        let text = format!("instructor(c{salt})");
        let s = steer_shard(&text, shards);
        prop_assert!(s < shards, "steering stays in range");
        prop_assert_eq!(s, steer_shard(&text, shards), "steering is deterministic");
        prop_assert_eq!(steer_shard(&text, 1), 0, "one shard takes everything");
    }

    #[test]
    fn fallback_shard_picks_the_least_loaded_peer(
        depths in collection::vec(0usize..512, 1..16),
        home_raw in 0usize..16,
    ) {
        let home = home_raw % depths.len();
        match fallback_shard(&depths, home) {
            None => prop_assert_eq!(depths.len(), 1, "no fallback iff there is no peer"),
            Some(s) => {
                prop_assert!(s != home && s < depths.len());
                for (i, &d) in depths.iter().enumerate() {
                    if i != home {
                        prop_assert!(
                            depths[s] < d || (depths[s] == d && s <= i),
                            "fallback is least-loaded (lowest index on ties)"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn steered_admission_serves_or_refuses_every_job_exactly_once(
        jobs in collection::vec((1usize..=3, num::u64::ANY, 0u64..4), 1..64),
        shards in 1usize..=4,
        cap in 4usize..48,
        wait_ms in 1u64..8,
    ) {
        let wait = Duration::from_millis(wait_ms);
        let mut now = Instant::now();
        let mut batchers: Vec<Batcher<J>> = (0..shards).map(|_| Batcher::new(cap)).collect();
        let mut plane = Vec::new();
        let mut fates: BTreeMap<usize, &'static str> = BTreeMap::new();
        let record = |fates: &mut BTreeMap<usize, &'static str>, id: usize, fate| {
            prop_assert!(
                fates.insert(id, fate).is_none(),
                "job {id} got two fates — double-served or double-refused"
            );
            Ok(())
        };
        let mut refused = 0u64;
        let mut fallbacks = 0u64;

        for (id, &(w, salt, gap_ms)) in jobs.iter().enumerate() {
            now += Duration::from_millis(gap_ms);
            // Executors cut every plane due before this arrival.
            for b in batchers.iter_mut() {
                while b.ready(now, wait) {
                    let cap = plane_width_for_depth(b.lanes_queued()) * LANES;
                    b.cut_plane(cap, &mut plane);
                    for (j, _) in plane.drain(..) {
                        record(&mut fates, j.id, "served")?;
                    }
                }
            }
            // The server's admission policy: home offer, then one
            // fallback offer to the least-loaded peer, then refusal.
            let home = steer_shard(&format!("job-{salt}"), shards);
            match batchers[home].offer(J { id, lanes: w }, now) {
                Ok(()) => {}
                Err(job) => {
                    let depths: Vec<usize> =
                        batchers.iter().map(Batcher::lanes_queued).collect();
                    let fate = match fallback_shard(&depths, home) {
                        Some(fb) => batchers[fb].offer(job, now).map(|()| fallbacks += 1),
                        None => Err(job),
                    };
                    if fate.is_err() {
                        refused += 1;
                        record(&mut fates, id, "refused")?;
                    }
                }
            }
        }
        // Drain: what every shard does on shutdown.
        for b in batchers.iter_mut() {
            while !b.is_empty() {
                let cap = plane_width_for_depth(b.lanes_queued()) * LANES;
                b.cut_plane(cap, &mut plane);
                for (j, _) in plane.drain(..) {
                    record(&mut fates, j.id, "served")?;
                }
            }
        }

        prop_assert_eq!(fates.len(), jobs.len(), "every job has exactly one fate");
        let served: u64 = batchers.iter().map(Batcher::admitted_count).sum();
        prop_assert_eq!(served + refused, jobs.len() as u64, "answered + overloaded == sent");
        let declines: u64 = batchers.iter().map(Batcher::shed_count).sum();
        let fallback_declines = if shards > 1 { refused } else { 0 };
        prop_assert_eq!(
            declines, fallbacks + refused + fallback_declines,
            "every decline is a counted fallback or part of a refusal"
        );
    }
}
