//! Value-generation strategies. A [`Strategy`] deterministically maps a
//! [`TestRng`](crate::test_runner::TestRng) stream to values; there is no
//! shrinking in this shim.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )+};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Full-range strategy used by `num::<int>::ANY`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(pub(crate) core::marker::PhantomData<T>);

macro_rules! impl_any_strategy {
    ($($t:ty => $conv:expr),+ $(,)?) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let raw = rng.next_u64();
                #[allow(clippy::redundant_closure_call)]
                ($conv)(raw)
            }
        }
    )+};
}

impl_any_strategy!(
    u8 => |r| r as u8, u16 => |r| r as u16, u32 => |r| r as u32,
    u64 => |r| r, usize => |r| r as usize,
    i8 => |r| r as i8, i16 => |r| r as i16, i32 => |r| r as i32,
    i64 => |r| r as i64, isize => |r| r as isize,
    bool => |r| r & 1 == 1,
);
