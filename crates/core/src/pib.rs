//! PIB — the anytime hill-climbing learner (Section 3.2, Figure 3).
//!
//! PIB generalizes PIB₁ in two ways: it considers a whole *set* of
//! transformations `T(Θ)` simultaneously (splitting the error budget
//! over the `k = |T(Θ)|` candidates, Equation 5), and it tests
//! *sequentially* — after every context — shrinking the per-test budget
//! as `δᵢ = 6δ/(π²·i²)` so the total false-positive probability over the
//! unbounded run stays below `δ` (Theorem 1).
//!
//! The acceptance test is the paper's Equation 6: climb from `Θⱼ` to
//! `Θ' ∈ T(Θⱼ)` as soon as
//!
//! ```text
//! Δ̃[Θⱼ, Θ', S]  ≥  Λ[Θⱼ, Θ'] · sqrt((|S|/2) · ln(i²π²/(6δ)))
//! ```
//!
//! where `i` counts every test performed so far (incremented by
//! `|T(Θⱼ)|` per observed context) and `S` resets after each climb.

use crate::delta::{delta_tilde_with, DeltaScratch};
use crate::transform::{SiblingSwap, TransformationSet};
use qpl_graph::batch::{execute_batch, lanes_from, BatchRun, ContextBatch};
use qpl_graph::context::{execute_into, Context, RunScratch, Trace};
use qpl_graph::graph::{ArcId, InferenceGraph};
use qpl_graph::program::StrategyProgram;
use qpl_graph::strategy::Strategy;
use qpl_graph::GraphError;
use qpl_obs::{MetricsSink, NoopSink};
use qpl_stats::{PairedDifference, SequentialSchedule};

/// Configuration for a PIB run.
#[derive(Debug, Clone)]
pub struct PibConfig {
    /// Total mistake budget `δ` (Theorem 1).
    pub delta: f64,
    /// Perform the Equation 6 test only every `test_every` contexts
    /// (the paper notes Theorem 1 "continues to hold if we … perform
    /// this test less frequently"). Default 1.
    pub test_every: u64,
}

impl PibConfig {
    /// Standard configuration testing after every context.
    pub fn new(delta: f64) -> Self {
        Self { delta, test_every: 1 }
    }

    /// Test after every `n` contexts instead.
    pub fn with_test_every(mut self, n: u64) -> Self {
        self.test_every = n.max(1);
        self
    }
}

/// One candidate neighbour's accumulator.
#[derive(Debug, Clone)]
struct Candidate {
    swap: SiblingSwap,
    strategy: Strategy,
    acc: PairedDifference,
}

/// Compiled programs for the current strategy and its whole candidate
/// neighbourhood, reused across batches until a climb replaces them.
#[derive(Debug, Clone)]
struct CompiledSet {
    current: StrategyProgram,
    candidates: Vec<StrategyProgram>,
}

/// A record of one hill-climbing step.
#[derive(Debug, Clone)]
pub struct ClimbRecord {
    /// The transformation taken.
    pub swap: SiblingSwap,
    /// Samples observed at the current strategy before climbing.
    pub samples: u64,
    /// Accumulated evidence `Δ̃[Θⱼ, Θ', S]` at the moment of the climb.
    pub evidence: f64,
    /// Global test counter `i` at the climb.
    pub test_index: u64,
}

/// One climb from [`PibState::history`], in plain-data form.
#[derive(Debug, Clone, PartialEq)]
pub struct ClimbState {
    /// First arc of the sibling swap taken.
    pub r1: u32,
    /// Second arc of the sibling swap taken.
    pub r2: u32,
    /// Samples observed at the strategy before climbing.
    pub samples: u64,
    /// Accumulated Equation-6 evidence at the climb.
    pub evidence: f64,
    /// Global test counter `i` at the climb.
    pub test_index: u64,
}

/// One candidate accumulator from [`PibState::candidates`]: the swap's
/// arc pair plus the exact bits of its running Chernoff evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateState {
    /// First arc of the candidate sibling swap.
    pub r1: u32,
    /// Second arc of the candidate sibling swap.
    pub r2: u32,
    /// Running paired-difference sum `Δ̃` (exact bits).
    pub sum: f64,
    /// Samples accumulated in the sum.
    pub count: u64,
}

/// A plain-data export of the learner, sufficient to reconstruct it
/// bit-identically on the same graph via [`Pib::restore`]. This is the
/// durability boundary: everything here is integers, floats, and arc
/// indices — no graph handles, no compiled programs (those are
/// recomputed), no scratch buffers.
#[derive(Debug, Clone, PartialEq)]
pub struct PibState {
    /// Total mistake budget `δ`.
    pub delta: f64,
    /// Test cadence (contexts per Equation-6 test).
    pub test_every: u64,
    /// Arc order of the current strategy.
    pub strategy_arcs: Vec<u32>,
    /// Samples accumulated at the current strategy (`|S|`).
    pub samples_here: u64,
    /// Contexts observed in total.
    pub contexts_seen: u64,
    /// Global test counter `i` — restoring it keeps the Theorem-1
    /// error budget spending exactly where it was.
    pub tests_used: u64,
    /// Climbs taken so far.
    pub history: Vec<ClimbState>,
    /// Per-candidate accumulators at the current strategy.
    pub candidates: Vec<CandidateState>,
}

/// The anytime PIB learner.
#[derive(Debug, Clone)]
pub struct Pib {
    config: PibConfig,
    transforms: TransformationSet,
    current: Strategy,
    candidates: Vec<Candidate>,
    schedule: SequentialSchedule,
    samples_here: u64,
    contexts_seen: u64,
    history: Vec<ClimbRecord>,
    /// Reusable execution + Δ̃ buffers: the per-context path (run the
    /// current strategy, probe every candidate against the pessimistic
    /// completion) allocates nothing after warm-up.
    run_scratch: RunScratch,
    delta_scratch: DeltaScratch,
    /// Batched-path program memo, keyed by `current`'s fingerprint (the
    /// candidate set is a pure function of `current`). `Some((fp, None))`
    /// records that the compiler rejected this neighbourhood, so the
    /// batched path falls straight back to the interpreter.
    compiled: Option<(u64, Option<CompiledSet>)>,
}

impl Pib {
    /// Creates a PIB learner over all sibling swaps of `g`.
    ///
    /// # Panics
    /// Panics if `δ ∉ (0, 1)` (via the schedule).
    pub fn new(g: &InferenceGraph, initial: Strategy, config: PibConfig) -> Self {
        Self::with_transforms(g, initial, TransformationSet::all_sibling_swaps(g), config)
    }

    /// Creates a PIB learner with an explicit transformation vocabulary.
    pub fn with_transforms(
        g: &InferenceGraph,
        initial: Strategy,
        transforms: TransformationSet,
        config: PibConfig,
    ) -> Self {
        let schedule = SequentialSchedule::new(config.delta);
        let mut pib = Self {
            config,
            transforms,
            current: initial,
            candidates: Vec::new(),
            schedule,
            samples_here: 0,
            contexts_seen: 0,
            history: Vec::new(),
            run_scratch: RunScratch::new(g),
            delta_scratch: DeltaScratch::new(g),
            compiled: None,
        };
        pib.rebuild_candidates(g);
        pib
    }

    fn rebuild_candidates(&mut self, g: &InferenceGraph) {
        self.candidates = self
            .transforms
            .neighbors(g, &self.current)
            .into_iter()
            .map(|(swap, strategy)| Candidate {
                swap,
                strategy,
                acc: PairedDifference::new(swap.lambda(g)),
            })
            .collect();
        self.samples_here = 0;
    }

    /// The strategy currently in use — valid to read at *any* time
    /// (PIB is an anytime algorithm).
    pub fn strategy(&self) -> &Strategy {
        &self.current
    }

    /// Strategies climbed through so far.
    pub fn history(&self) -> &[ClimbRecord] {
        &self.history
    }

    /// Contexts observed in total.
    pub fn contexts_seen(&self) -> u64 {
        self.contexts_seen
    }

    /// Samples accumulated at the current strategy (`|S|`).
    pub fn samples_at_current(&self) -> u64 {
        self.samples_here
    }

    /// Global test counter `i`.
    pub fn tests_performed(&self) -> u64 {
        self.schedule.tests_used()
    }

    /// Adopts an externally learned strategy — e.g. one published by a
    /// peer shard in a sharded serving deployment. The strategy becomes
    /// current and the candidate neighbourhood restarts, exactly as
    /// after a local climb; the sequential test schedule keeps
    /// advancing, so the Theorem-1 mistake budget δ continues to hold
    /// across adoptions (the adopted strategy carries its *publisher's*
    /// Equation-6 evidence, not fresh local evidence, and no
    /// [`ClimbRecord`] is appended here). A no-op when `strategy` is
    /// already current (same fingerprint).
    pub fn adopt(&mut self, g: &InferenceGraph, strategy: Strategy) {
        if strategy.fingerprint() == self.current.fingerprint() {
            return;
        }
        self.current = strategy;
        self.compiled = None;
        self.rebuild_candidates(g);
    }

    /// Exports the learner's statistical state for persistence. The
    /// export is pure data (see [`PibState`]); feeding it back through
    /// [`restore`](Self::restore) on the same graph yields a learner
    /// whose future climbs are bit-identical to this one's.
    pub fn export_state(&self) -> PibState {
        PibState {
            delta: self.config.delta,
            test_every: self.config.test_every,
            strategy_arcs: self.current.arcs().iter().map(|a| a.0).collect(),
            samples_here: self.samples_here,
            contexts_seen: self.contexts_seen,
            tests_used: self.schedule.tests_used(),
            history: self
                .history
                .iter()
                .map(|c| ClimbState {
                    r1: c.swap.r1.0,
                    r2: c.swap.r2.0,
                    samples: c.samples,
                    evidence: c.evidence,
                    test_index: c.test_index,
                })
                .collect(),
            candidates: self
                .candidates
                .iter()
                .map(|c| CandidateState {
                    r1: c.swap.r1.0,
                    r2: c.swap.r2.0,
                    sum: c.acc.sum(),
                    count: c.acc.count(),
                })
                .collect(),
        }
    }

    /// Reconstructs a learner from an exported [`PibState`] over the
    /// sibling-swap vocabulary of `g` (the vocabulary [`Pib::new`]
    /// uses). The restored learner's strategy, schedule position,
    /// history, and per-candidate Chernoff evidence match the exporter
    /// bit for bit, so a warm restart continues testing exactly where
    /// the crashed process stopped — no relearning, no δ over-spend.
    ///
    /// # Errors
    /// [`GraphError`] when the state does not fit `g`: unknown arcs, an
    /// invalid strategy order, or candidates missing from the current
    /// strategy's neighbourhood (all symptoms of restoring against a
    /// different graph than the one exported from).
    pub fn restore(g: &InferenceGraph, state: &PibState) -> Result<Self, GraphError> {
        let arc = |raw: u32| -> Result<ArcId, GraphError> {
            if (raw as usize) < g.arc_count() {
                Ok(ArcId(raw))
            } else {
                Err(GraphError::InvalidStrategy(format!(
                    "restored arc {raw} out of range for a graph with {} arcs",
                    g.arc_count()
                )))
            }
        };
        let arcs = state.strategy_arcs.iter().map(|&a| arc(a)).collect::<Result<Vec<_>, _>>()?;
        let strategy = Strategy::from_arcs(g, arcs)?;
        let config = PibConfig { delta: state.delta, test_every: state.test_every.max(1) };
        let mut pib =
            Self::with_transforms(g, strategy, TransformationSet::all_sibling_swaps(g), config);
        pib.schedule = SequentialSchedule::restore(state.delta, state.tests_used);
        pib.samples_here = state.samples_here;
        pib.contexts_seen = state.contexts_seen;
        pib.history = state
            .history
            .iter()
            .map(|c| {
                Ok(ClimbRecord {
                    swap: SiblingSwap::new(g, arc(c.r1)?, arc(c.r2)?)?,
                    samples: c.samples,
                    evidence: c.evidence,
                    test_index: c.test_index,
                })
            })
            .collect::<Result<Vec<_>, GraphError>>()?;
        for cs in &state.candidates {
            let (r1, r2) = (arc(cs.r1)?, arc(cs.r2)?);
            let cand =
                pib.candidates.iter_mut().find(|c| c.swap.r1 == r1 && c.swap.r2 == r2).ok_or_else(
                    || {
                        GraphError::InapplicableTransform(format!(
                            "restored candidate swap ({}, {}) is not in the current \
                         strategy's neighbourhood",
                            cs.r1, cs.r2
                        ))
                    },
                )?;
            cand.acc = PairedDifference::restore(cand.acc.range(), cs.sum, cs.count);
        }
        Ok(pib)
    }

    /// Observes one context: runs the current strategy, updates every
    /// candidate's statistics, and climbs if Equation 6 fires. Returns
    /// the trace of the executed query.
    pub fn observe(&mut self, g: &InferenceGraph, ctx: &Context) -> Trace {
        self.observe_quiet(g, ctx);
        self.run_scratch.to_trace()
    }

    /// [`observe`](Self::observe) with learning-loop telemetry: one
    /// `core.pib.candidate` event per Equation 6 evaluation (Δ̃ sum,
    /// Chernoff threshold, accept/reject verdict) plus context/test/climb
    /// counters. With a [`NoopSink`] this is identical to `observe`.
    pub fn observe_with(
        &mut self,
        g: &InferenceGraph,
        ctx: &Context,
        sink: &mut dyn MetricsSink,
    ) -> Trace {
        self.observe_quiet_with(g, ctx, sink);
        self.run_scratch.to_trace()
    }

    /// [`observe`](Self::observe) without materializing the trace — the
    /// fully allocation-free per-context path. The run's results remain
    /// readable until the next observation.
    pub fn observe_quiet(&mut self, g: &InferenceGraph, ctx: &Context) {
        self.observe_quiet_with(g, ctx, &mut NoopSink);
    }

    /// [`observe_quiet`](Self::observe_quiet) with telemetry (see
    /// [`observe_with`](Self::observe_with)).
    pub fn observe_quiet_with(
        &mut self,
        g: &InferenceGraph,
        ctx: &Context,
        sink: &mut dyn MetricsSink,
    ) {
        execute_into(g, &self.current, ctx, &mut self.run_scratch);
        self.contexts_seen += 1;
        self.samples_here += 1;
        let cost = self.run_scratch.cost();
        sink.counter("core.pib.contexts", 1);
        if sink.enabled() {
            sink.value("core.pib.run_cost", cost);
        }
        for cand in &mut self.candidates {
            cand.acc.record(delta_tilde_with(
                g,
                cost,
                self.run_scratch.events(),
                &cand.strategy,
                &mut self.delta_scratch,
            ));
        }
        if self.contexts_seen.is_multiple_of(self.config.test_every) {
            self.test_and_climb(g, sink);
        }
    }

    /// Observes a whole [`ContextBatch`] through the bit-parallel
    /// executor: statistics, test schedule, and climbs are byte-identical
    /// to calling [`observe_quiet`](Self::observe_quiet) on each lane in
    /// order, but the current strategy and every candidate run as
    /// compiled programs over all lanes at once. A mid-batch climb
    /// recompiles and re-runs the undrained lanes under the new
    /// neighbourhood; strategies the compiler rejects fall back to the
    /// scalar interpreter lane by lane.
    pub fn observe_batch(&mut self, g: &InferenceGraph, batch: &ContextBatch) {
        self.observe_batch_with(g, batch, &mut NoopSink);
    }

    /// [`observe_batch`](Self::observe_batch) with telemetry (see
    /// [`observe_with`](Self::observe_with)). Unlike the scalar paths the
    /// run scratch holds no meaningful results afterwards.
    pub fn observe_batch_with(
        &mut self,
        g: &InferenceGraph,
        batch: &ContextBatch,
        sink: &mut dyn MetricsSink,
    ) {
        let lanes = batch.lanes();
        let mut lane = 0usize;
        let mut run = BatchRun::new();
        let mut cand_run = BatchRun::new();
        let mut completed = ContextBatch::new(0, 0);
        // Candidate-major cost matrix strided by the batch's lane
        // capacity (plane width × 64), refilled after every
        // (re)compilation.
        let stride = batch.lane_capacity();
        let mut cand_costs: Vec<f64> = Vec::new();
        while lane < lanes {
            // Memo hit: the neighbourhood only changes on a climb, so
            // most batches reuse the previous batch's programs outright.
            let fp = self.current.fingerprint();
            let set = match self.compiled.take() {
                Some((key, set)) if key == fp => set,
                _ => StrategyProgram::compile(g, &self.current).ok().and_then(|cur| {
                    self.candidates
                        .iter()
                        .map(|c| StrategyProgram::compile(g, &c.strategy).ok())
                        .collect::<Option<Vec<_>>>()
                        .map(|cands| CompiledSet { current: cur, candidates: cands })
                }),
            };
            let Some(set) = set else {
                self.compiled = Some((fp, None));
                // Interpreter fallback: drain the remaining lanes the
                // scalar way (handles every valid strategy).
                let mut ctx = Context::all_open(g);
                while lane < lanes {
                    batch.extract_lane(lane, &mut ctx);
                    self.observe_quiet_with(g, &ctx, sink);
                    lane += 1;
                }
                return;
            };
            let active = lanes_from(lane, lanes);
            execute_batch(&set.current, batch, active, &mut run);
            run.completion_into(g, &mut completed);
            cand_costs.clear();
            for cp in &set.candidates {
                execute_batch(cp, &completed, active, &mut cand_run);
                cand_costs.extend((0..stride).map(|l| cand_run.cost(l)));
            }
            let climbs_before = self.history.len();
            while lane < lanes {
                let cost = run.cost(lane);
                self.contexts_seen += 1;
                self.samples_here += 1;
                sink.counter("core.pib.contexts", 1);
                if sink.enabled() {
                    sink.value("core.pib.run_cost", cost);
                }
                for (ci, cand) in self.candidates.iter_mut().enumerate() {
                    // Bit-identical to `delta_tilde_with`: the batched
                    // run cost and the candidate's cost against the
                    // pessimistic-completion plane both match their
                    // scalar counterparts exactly.
                    cand.acc.record(cost - cand_costs[ci * stride + lane]);
                }
                lane += 1;
                if self.contexts_seen.is_multiple_of(self.config.test_every) {
                    self.test_and_climb(g, sink);
                    if self.history.len() > climbs_before {
                        // Programs and cost matrix are stale: recompile
                        // and re-run the undrained suffix.
                        break;
                    }
                }
            }
            // Keyed by the pre-drain fingerprint: after a climb the key
            // mismatches and the next iteration recompiles.
            self.compiled = Some((fp, Some(set)));
        }
    }

    /// Ingests an externally produced trace of the current strategy
    /// (e.g. from the Datalog-backed engine), updating statistics and
    /// possibly climbing.
    pub fn absorb(&mut self, g: &InferenceGraph, trace: &Trace) {
        self.absorb_with(g, trace, &mut NoopSink);
    }

    /// [`absorb`](Self::absorb) with telemetry (see
    /// [`observe_with`](Self::observe_with)).
    pub fn absorb_with(&mut self, g: &InferenceGraph, trace: &Trace, sink: &mut dyn MetricsSink) {
        self.contexts_seen += 1;
        self.samples_here += 1;
        sink.counter("core.pib.contexts", 1);
        if sink.enabled() {
            sink.value("core.pib.run_cost", trace.cost);
        }
        for cand in &mut self.candidates {
            cand.acc.record(delta_tilde_with(
                g,
                trace.cost,
                &trace.events,
                &cand.strategy,
                &mut self.delta_scratch,
            ));
        }
        if self.contexts_seen.is_multiple_of(self.config.test_every) {
            self.test_and_climb(g, sink);
        }
    }

    /// Figure 3's acceptance test: `i ← i + |T(Θⱼ)|`, then climb to the
    /// first candidate satisfying Equation 6.
    fn test_and_climb(&mut self, g: &InferenceGraph, sink: &mut dyn MetricsSink) {
        if self.candidates.is_empty() {
            return;
        }
        let delta_i = self.schedule.advance(self.candidates.len() as u64);
        sink.counter("core.pib.tests", self.candidates.len() as u64);
        if sink.enabled() {
            for (idx, c) in self.candidates.iter().enumerate() {
                let accept = c.acc.certifies_improvement(delta_i);
                sink.event(
                    "core.pib.candidate",
                    &[
                        ("candidate", idx as f64),
                        ("samples", self.samples_here as f64),
                        ("delta_sum", c.acc.sum()),
                        ("threshold", c.acc.threshold(delta_i)),
                        ("accept", f64::from(u8::from(accept))),
                    ],
                );
            }
        }
        let winner = self
            .candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| c.acc.certifies_improvement(delta_i))
            .max_by(|(_, a), (_, b)| {
                let ra = a.acc.sum() - a.acc.threshold(delta_i);
                let rb = b.acc.sum() - b.acc.threshold(delta_i);
                ra.partial_cmp(&rb).expect("finite statistics")
            })
            .map(|(i, _)| i);
        if let Some(idx) = winner {
            // rebuild_candidates replaces the whole vector, so the winner
            // can be moved out instead of cloning its strategy.
            let cand = self.candidates.swap_remove(idx);
            sink.counter("core.pib.climbs", 1);
            if sink.enabled() {
                sink.event(
                    "core.pib.climb",
                    &[
                        ("samples", self.samples_here as f64),
                        ("evidence", cand.acc.sum()),
                        ("test_index", self.schedule.tests_used() as f64),
                    ],
                );
            }
            self.history.push(ClimbRecord {
                swap: cand.swap,
                samples: self.samples_here,
                evidence: cand.acc.sum(),
                test_index: self.schedule.tests_used(),
            });
            self.current = cand.strategy;
            self.rebuild_candidates(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpl_graph::expected::{ContextDistribution, IndependentModel};
    use qpl_graph::graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn g_a() -> InferenceGraph {
        let mut b = GraphBuilder::new("instructor(κ)");
        let root = b.root();
        let (_, prof) = b.reduction(root, "R_p", 1.0, "prof(κ)");
        b.retrieval(prof, "D_p", 1.0);
        let (_, grad) = b.reduction(root, "R_g", 1.0, "grad(κ)");
        b.retrieval(grad, "D_g", 1.0);
        b.finish().unwrap()
    }

    fn g_b() -> InferenceGraph {
        let mut b = GraphBuilder::new("G(κ)");
        let root = b.root();
        let (_, a) = b.reduction(root, "R_ga", 1.0, "A(κ)");
        b.retrieval(a, "D_a", 1.0);
        let (_, s) = b.reduction(root, "R_gs", 1.0, "S(κ)");
        let (_, bb) = b.reduction(s, "R_sb", 1.0, "B(κ)");
        b.retrieval(bb, "D_b", 1.0);
        let (_, t) = b.reduction(s, "R_st", 1.0, "T(κ)");
        let (_, c) = b.reduction(t, "R_tc", 1.0, "C(κ)");
        b.retrieval(c, "D_c", 1.0);
        let (_, d) = b.reduction(t, "R_td", 1.0, "D(κ)");
        b.retrieval(d, "D_d", 1.0);
        b.finish().unwrap()
    }

    #[test]
    fn climbs_to_better_strategy_on_g_a() {
        let g = g_a();
        let model = IndependentModel::from_retrieval_probs(&g, &[0.05, 0.8]).unwrap();
        let mut pib = Pib::new(&g, Strategy::left_to_right(&g), PibConfig::new(0.05));
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..4000 {
            pib.observe(&g, &model.sample(&mut rng));
        }
        assert_eq!(pib.history().len(), 1, "exactly one climb available");
        let c_now = model.expected_cost(&g, pib.strategy());
        let c_init = model.expected_cost(&g, &Strategy::left_to_right(&g));
        assert!(c_now < c_init, "{c_now} < {c_init}");
    }

    #[test]
    fn every_climb_is_an_improvement_on_g_b() {
        // Random-ish probabilities where the left-to-right strategy is
        // far from optimal; every recorded climb must strictly lower the
        // true expected cost (this is Theorem 1 in action — with δ=0.05
        // a mistake is possible but this seed must be mistake-free).
        let g = g_b();
        let model = IndependentModel::from_retrieval_probs(&g, &[0.02, 0.05, 0.1, 0.9]).unwrap();
        let mut pib = Pib::new(&g, Strategy::left_to_right(&g), PibConfig::new(0.05));
        let mut rng = StdRng::seed_from_u64(5);
        let mut costs = vec![model.expected_cost(&g, pib.strategy())];
        let mut climbs_seen = 0;
        for _ in 0..30_000 {
            pib.observe(&g, &model.sample(&mut rng));
            if pib.history().len() > climbs_seen {
                climbs_seen = pib.history().len();
                costs.push(model.expected_cost(&g, pib.strategy()));
            }
        }
        assert!(climbs_seen >= 1, "no climbs happened");
        for w in costs.windows(2) {
            assert!(w[1] < w[0] + 1e-12, "climb raised cost: {costs:?}");
        }
    }

    #[test]
    fn adopt_swaps_strategy_and_restarts_candidates_without_a_climb_record() {
        let g = g_a();
        let model = IndependentModel::from_retrieval_probs(&g, &[0.5, 0.5]).unwrap();
        let mut pib = Pib::new(&g, Strategy::left_to_right(&g), PibConfig::new(0.05));
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            pib.observe(&g, &model.sample(&mut rng));
        }
        assert_eq!(pib.samples_at_current(), 10);

        // Adopting the current strategy again is a no-op: no reset.
        pib.adopt(&g, pib.strategy().clone());
        assert_eq!(pib.samples_at_current(), 10);

        // Adopting a different strategy (a neighbour, as a peer shard
        // would publish) restarts the neighbourhood but records no
        // local climb and keeps the global test counter.
        let peer = pib.candidates[0].strategy.clone();
        assert_ne!(peer.fingerprint(), pib.strategy().fingerprint());
        let tests_before = pib.tests_performed();
        pib.adopt(&g, peer.clone());
        assert_eq!(pib.strategy().fingerprint(), peer.fingerprint());
        assert_eq!(pib.samples_at_current(), 0, "candidate statistics restart");
        assert!(pib.history().is_empty(), "adoption is not a local climb");
        assert_eq!(pib.tests_performed(), tests_before, "schedule keeps advancing, never resets");

        // The learner keeps functioning on the adopted strategy.
        for _ in 0..10 {
            pib.observe(&g, &model.sample(&mut rng));
        }
        assert_eq!(pib.samples_at_current(), 10);
    }

    #[test]
    fn anytime_property_strategy_always_valid() {
        let g = g_b();
        let model = IndependentModel::from_retrieval_probs(&g, &[0.3, 0.3, 0.3, 0.3]).unwrap();
        let mut pib = Pib::new(&g, Strategy::left_to_right(&g), PibConfig::new(0.1));
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..500 {
            pib.observe(&g, &model.sample(&mut rng));
            // The current strategy must always be executable.
            let ctx = model.sample(&mut rng);
            let _ = qpl_graph::context::execute(&g, pib.strategy(), &ctx);
        }
    }

    #[test]
    fn statistics_reset_after_climb() {
        let g = g_a();
        let model = IndependentModel::from_retrieval_probs(&g, &[0.05, 0.9]).unwrap();
        let mut pib = Pib::new(&g, Strategy::left_to_right(&g), PibConfig::new(0.1));
        let mut rng = StdRng::seed_from_u64(7);
        while pib.history().is_empty() {
            pib.observe(&g, &model.sample(&mut rng));
            assert!(pib.contexts_seen() < 10_000, "never climbed");
        }
        assert!(pib.samples_at_current() < pib.contexts_seen());
    }

    #[test]
    fn test_counter_charges_per_candidate() {
        let g = g_b(); // 3 sibling swaps
        let model = IndependentModel::from_retrieval_probs(&g, &[0.5; 4]).unwrap();
        let mut pib = Pib::new(&g, Strategy::left_to_right(&g), PibConfig::new(0.1));
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..10 {
            pib.observe(&g, &model.sample(&mut rng));
        }
        assert_eq!(pib.tests_performed(), 30, "10 contexts × 3 candidates");
    }

    #[test]
    fn batched_testing_also_works() {
        let g = g_a();
        let model = IndependentModel::from_retrieval_probs(&g, &[0.05, 0.9]).unwrap();
        let mut pib =
            Pib::new(&g, Strategy::left_to_right(&g), PibConfig::new(0.05).with_test_every(25));
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..4000 {
            pib.observe(&g, &model.sample(&mut rng));
        }
        assert_eq!(pib.history().len(), 1);
        // Far fewer tests were charged.
        assert!(pib.tests_performed() < 4000);
    }

    #[test]
    fn no_climb_when_already_optimal() {
        let g = g_a();
        // prof-first already optimal.
        let model = IndependentModel::from_retrieval_probs(&g, &[0.9, 0.05]).unwrap();
        let mut pib = Pib::new(&g, Strategy::left_to_right(&g), PibConfig::new(0.05));
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..5000 {
            pib.observe(&g, &model.sample(&mut rng));
        }
        assert!(pib.history().is_empty());
    }

    #[test]
    fn theorem1_mistake_rate_bounded() {
        // Equal-cost neighbourhood: any climb is (marginally) a mistake.
        // Over many independent runs the climb frequency must stay ≤ δ.
        let g = g_a();
        let model = IndependentModel::from_retrieval_probs(&g, &[0.4, 0.4]).unwrap();
        let delta = 0.1;
        let runs = 300;
        let mut mistakes = 0;
        for t in 0..runs {
            let mut pib = Pib::new(&g, Strategy::left_to_right(&g), PibConfig::new(delta));
            let mut rng = StdRng::seed_from_u64(5000 + t);
            for _ in 0..400 {
                pib.observe(&g, &model.sample(&mut rng));
                if !pib.history().is_empty() {
                    mistakes += 1;
                    break;
                }
            }
        }
        let rate = mistakes as f64 / runs as f64;
        assert!(rate <= delta, "mistake rate {rate} exceeds δ={delta}");
    }

    #[test]
    fn observed_run_matches_plain_run_and_reports_candidates() {
        // The sink observes, never steers: an instrumented run must take
        // the same climbs at the same contexts as the plain one, and the
        // acceptance events must expose Equation 6's ingredients.
        let g = g_a();
        let model = IndependentModel::from_retrieval_probs(&g, &[0.05, 0.8]).unwrap();
        let mut plain = Pib::new(&g, Strategy::left_to_right(&g), PibConfig::new(0.05));
        let mut observed = Pib::new(&g, Strategy::left_to_right(&g), PibConfig::new(0.05));
        let mut sink = qpl_obs::MemorySink::new();
        let mut rng_a = StdRng::seed_from_u64(4);
        let mut rng_b = StdRng::seed_from_u64(4);
        for _ in 0..1500 {
            plain.observe(&g, &model.sample(&mut rng_a));
            observed.observe_with(&g, &model.sample(&mut rng_b), &mut sink);
        }
        assert_eq!(plain.history().len(), observed.history().len());
        assert_eq!(plain.strategy().arcs(), observed.strategy().arcs());
        assert_eq!(sink.counter_total("core.pib.contexts"), 1500);
        assert_eq!(sink.counter_total("core.pib.climbs"), observed.history().len() as u64);
        // At least one acceptance event fired, carrying Δ̃ sum + threshold.
        let accepted = sink
            .events_named("core.pib.candidate")
            .find(|e| e.field("accept") == Some(1.0))
            .expect("a candidate was accepted");
        assert!(accepted.field("delta_sum").unwrap() >= accepted.field("threshold").unwrap());
        let rejected = sink
            .events_named("core.pib.candidate")
            .find(|e| e.field("accept") == Some(0.0))
            .expect("some candidate was rejected at some test");
        assert!(rejected.field("threshold").is_some());
    }

    /// Chunks a scalar context stream into batches of up to 64 lanes
    /// (the last one partial), as the engine's fixed-block harness does.
    fn batches_of(g: &InferenceGraph, ctxs: &[Context]) -> Vec<ContextBatch> {
        batches_of_lanes(g, ctxs, qpl_graph::batch::LANES)
    }

    /// [`batches_of`] with a caller-chosen plane size — widths 2/4/8
    /// pack 128/256/512 lanes per batch.
    fn batches_of_lanes(g: &InferenceGraph, ctxs: &[Context], lanes: usize) -> Vec<ContextBatch> {
        ctxs.chunks(lanes)
            .map(|chunk| {
                let mut b = ContextBatch::new(g.arc_count(), chunk.len());
                for (lane, ctx) in chunk.iter().enumerate() {
                    b.set_lane(lane, ctx);
                }
                b
            })
            .collect()
    }

    #[test]
    fn batched_observation_matches_scalar_byte_for_byte() {
        // The acceptance bar for the bit-parallel path: same climbs at
        // the same contexts, same accumulated evidence to the bit, at
        // several test cadences (test_every=1 exercises mid-batch
        // climbs + re-runs), every plane width (64/128/256/512 lanes),
        // and with a partial final batch (e.g. 1000 = 15×64 + 40 lanes,
        // or 512 + 488 at width 8).
        let g = g_b();
        let model = IndependentModel::from_retrieval_probs(&g, &[0.02, 0.05, 0.1, 0.9]).unwrap();
        for (test_every, plane_lanes) in
            [(1u64, 64usize), (7, 64), (25, 64), (1, 128), (7, 256), (1, 512), (25, 512)]
        {
            let mut rng = StdRng::seed_from_u64(5);
            let ctxs: Vec<Context> = (0..1000).map(|_| model.sample(&mut rng)).collect();
            let cfg = PibConfig::new(0.05).with_test_every(test_every);
            let mut scalar = Pib::new(&g, Strategy::left_to_right(&g), cfg.clone());
            let mut batched = Pib::new(&g, Strategy::left_to_right(&g), cfg);
            for ctx in &ctxs {
                scalar.observe_quiet(&g, ctx);
            }
            for batch in batches_of_lanes(&g, &ctxs, plane_lanes) {
                batched.observe_batch(&g, &batch);
            }
            assert_eq!(scalar.contexts_seen(), batched.contexts_seen());
            assert_eq!(scalar.samples_at_current(), batched.samples_at_current());
            assert_eq!(scalar.tests_performed(), batched.tests_performed());
            assert_eq!(scalar.strategy().arcs(), batched.strategy().arcs());
            assert_eq!(scalar.history().len(), batched.history().len());
            assert!(!scalar.history().is_empty(), "the case must actually climb");
            for (a, b) in scalar.history().iter().zip(batched.history()) {
                assert_eq!(a.swap, b.swap);
                assert_eq!(a.samples, b.samples);
                assert_eq!(a.evidence.to_bits(), b.evidence.to_bits());
                assert_eq!(a.test_index, b.test_index);
            }
            // The in-flight candidate statistics agree bitwise too.
            assert_eq!(scalar.candidates.len(), batched.candidates.len());
            for (a, b) in scalar.candidates.iter().zip(&batched.candidates) {
                assert_eq!(a.swap, b.swap);
                assert_eq!(a.acc.count(), b.acc.count());
                assert_eq!(a.acc.sum().to_bits(), b.acc.sum().to_bits());
            }
        }
    }

    #[test]
    fn batched_observation_matches_scalar_telemetry() {
        let g = g_a();
        let model = IndependentModel::from_retrieval_probs(&g, &[0.05, 0.8]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let ctxs: Vec<Context> = (0..1500).map(|_| model.sample(&mut rng)).collect();
        let mut scalar = Pib::new(&g, Strategy::left_to_right(&g), PibConfig::new(0.05));
        let mut batched = Pib::new(&g, Strategy::left_to_right(&g), PibConfig::new(0.05));
        let mut sink_s = qpl_obs::MemorySink::new();
        let mut sink_b = qpl_obs::MemorySink::new();
        for ctx in &ctxs {
            scalar.observe_with(&g, ctx, &mut sink_s);
        }
        for batch in batches_of(&g, &ctxs) {
            batched.observe_batch_with(&g, &batch, &mut sink_b);
        }
        assert_eq!(scalar.strategy().arcs(), batched.strategy().arcs());
        for name in ["core.pib.contexts", "core.pib.tests", "core.pib.climbs"] {
            assert_eq!(sink_s.counter_total(name), sink_b.counter_total(name), "{name}");
        }
        let (s_stats, b_stats) =
            (sink_s.value_stats("core.pib.run_cost"), sink_b.value_stats("core.pib.run_cost"));
        assert_eq!(s_stats, b_stats, "per-lane run costs observed identically");
        assert_eq!(
            sink_s.events_named("core.pib.candidate").count(),
            sink_b.events_named("core.pib.candidate").count()
        );
    }

    #[test]
    fn export_restore_round_trips_and_future_climbs_are_bit_identical() {
        // Freeze a learner mid-stream, resurrect it from the plain-data
        // export, and drive both over the identical remaining stream:
        // every climb, every accumulator bit, every test budget must
        // match — this is the durability contract warm restart rests on.
        let g = g_b();
        let model = IndependentModel::from_retrieval_probs(&g, &[0.02, 0.05, 0.1, 0.9]).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let stream: Vec<Context> = (0..30_000).map(|_| model.sample(&mut rng)).collect();
        let (warmup, rest) = stream.split_at(1_234);

        let mut live = Pib::new(&g, Strategy::left_to_right(&g), PibConfig::new(0.05));
        for ctx in warmup {
            live.observe_quiet(&g, ctx);
        }
        let state = live.export_state();
        let mut restored = Pib::restore(&g, &state).expect("state fits the graph");

        // The restored learner equals the live one right away...
        assert_eq!(restored.strategy().arcs(), live.strategy().arcs());
        assert_eq!(restored.contexts_seen(), live.contexts_seen());
        assert_eq!(restored.samples_at_current(), live.samples_at_current());
        assert_eq!(restored.tests_performed(), live.tests_performed());
        assert_eq!(restored.export_state(), state, "export∘restore is the identity");

        // ...and stays bit-identical through the rest of the stream.
        for ctx in rest {
            live.observe_quiet(&g, ctx);
            restored.observe_quiet(&g, ctx);
        }
        assert!(!live.history().is_empty(), "the scenario must climb");
        assert_eq!(live.history().len(), restored.history().len());
        for (a, b) in live.history().iter().zip(restored.history()) {
            assert_eq!(a.swap, b.swap);
            assert_eq!(a.samples, b.samples);
            assert_eq!(a.evidence.to_bits(), b.evidence.to_bits());
            assert_eq!(a.test_index, b.test_index);
        }
        assert_eq!(live.strategy().arcs(), restored.strategy().arcs());
        for (a, b) in live.candidates.iter().zip(&restored.candidates) {
            assert_eq!(a.swap, b.swap);
            assert_eq!(a.acc.sum().to_bits(), b.acc.sum().to_bits());
            assert_eq!(a.acc.count(), b.acc.count());
        }
    }

    #[test]
    fn restore_rejects_state_from_a_different_graph() {
        let g = g_b();
        let model = IndependentModel::from_retrieval_probs(&g, &[0.5; 4]).unwrap();
        let mut pib = Pib::new(&g, Strategy::left_to_right(&g), PibConfig::new(0.1));
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..50 {
            pib.observe_quiet(&g, &model.sample(&mut rng));
        }
        let state = pib.export_state();
        // g_a has fewer arcs: the strategy order cannot fit.
        assert!(Pib::restore(&g_a(), &state).is_err());
    }

    #[test]
    fn multi_climb_trajectory_reaches_good_strategy() {
        // Strongly skewed probabilities: the optimal DFS strategy needs
        // several swaps from left-to-right. PIB should get close.
        let g = g_b();
        let model = IndependentModel::from_retrieval_probs(&g, &[0.01, 0.02, 0.03, 0.95]).unwrap();
        let mut pib = Pib::new(&g, Strategy::left_to_right(&g), PibConfig::new(0.05));
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..60_000 {
            pib.observe(&g, &model.sample(&mut rng));
        }
        assert!(pib.history().len() >= 2, "expected several climbs, got {:?}", pib.history().len());
        // Compare against the best DFS strategy.
        let best = qpl_graph::strategy::enumerate_dfs(&g, 1000)
            .unwrap()
            .into_iter()
            .map(|s| {
                let c = model.expected_cost(&g, &s);
                (s, c)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .unwrap();
        let c_pib = model.expected_cost(&g, pib.strategy());
        assert!(c_pib <= best.1 + 0.5, "PIB ended at {c_pib}, best DFS is {}", best.1);
    }
}
