//! E13 — Section 3.2's sequential-test schedule `δᵢ = δ·6/(π²·i²)`.
//!
//! Paper claims: spending the error budget as `Σᵢ δᵢ = δ` keeps the
//! lifetime false-positive probability of an *unbounded* series of tests
//! below `δ`, whereas re-using a fixed δ per test lets errors accumulate
//! (`k·δ` after `k` tests, "which is unacceptably high"). We measure
//! both policies on a zero-mean stream.

use crate::report::{fm, Report};
use qpl_stats::{chernoff, SequentialSchedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs E13 and returns the report.
pub fn run(seed: u64) -> Report {
    let mut r = Report::new("E13: sequential testing — δᵢ = 6δ/(π²·i²)");

    // Analytic: partial sums approach δ.
    let delta = 0.1;
    let s = SequentialSchedule::new(delta);
    let mut rows = Vec::new();
    for k in [1u64, 10, 100, 10_000] {
        let partial: f64 = (1..=k).map(|i| s.budget_for(i)).sum();
        rows.push(vec![k.to_string(), format!("{:.6}", s.budget_for(k)), fm(partial, 6)]);
    }
    r.table("budget schedule at δ = 0.1 (Σᵢ δᵢ → δ)", &["test i", "δᵢ", "Σ₁..ᵢ δⱼ"], rows);

    // Empirical: repeated testing of a true-null (zero-mean ±1 stream).
    // Fixed-δ per test accumulates false positives; the schedule stays
    // below δ for the whole run.
    let runs = 1000u64;
    let horizon = 2_000u64;
    let mut fp_schedule = 0u64;
    let mut fp_fixed = 0u64;
    for t in 0..runs {
        let mut rng = StdRng::seed_from_u64(seed + t);
        let mut sum = 0.0f64;
        let mut schedule = SequentialSchedule::new(delta);
        let mut tripped_schedule = false;
        let mut tripped_fixed = false;
        for n in 1..=horizon {
            sum += if rng.gen::<bool>() { 1.0 } else { -1.0 };
            let d_i = schedule.next_budget();
            if !tripped_schedule && sum > chernoff::sum_threshold(n, d_i, 2.0) {
                tripped_schedule = true;
            }
            if !tripped_fixed && sum > chernoff::sum_threshold(n, delta, 2.0) {
                tripped_fixed = true;
            }
        }
        if tripped_schedule {
            fp_schedule += 1;
        }
        if tripped_fixed {
            fp_fixed += 1;
        }
    }
    let rate_schedule = fp_schedule as f64 / runs as f64;
    let rate_fixed = fp_fixed as f64 / runs as f64;
    r.table(
        format!("lifetime false positives over {horizon} sequential tests ({runs} runs)").as_str(),
        &["policy", "false-positive rate", "bound"],
        vec![
            vec!["δᵢ schedule".into(), fm(rate_schedule, 4), format!("≤ {delta}")],
            vec!["fixed δ every test".into(), fm(rate_fixed, 4), "unbounded (k·δ)".into()],
        ],
    );
    r.note("the fixed policy's rate exceeding δ is exactly the failure the paper guards against");

    let ok = rate_schedule <= delta && rate_fixed > rate_schedule;
    r.set_verdict(if ok {
        "REPRODUCED (schedule bounds lifetime error; naive reuse does not)"
    } else {
        "MISMATCH"
    });
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn e13_reproduces() {
        let r = super::run(1313);
        assert!(r.verdict.starts_with("REPRODUCED"), "{r}");
    }
}
