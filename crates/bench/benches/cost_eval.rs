//! Bench: per-context cost `c(Θ, I)` and exact expected cost `C[Θ]`.
//!
//! Covers E1's evaluation primitives at paper scale (G_A, G_B) and at
//! larger random-tree scales, showing the exact expected-cost recursion
//! stays polynomial while Monte-Carlo alternatives would need thousands
//! of samples per evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpl_graph::context::{cost, Context};
use qpl_graph::expected::ContextDistribution;
use qpl_graph::Strategy;
use qpl_workload::generator::{random_retrieval_model, random_tree_with_retrievals, TreeParams};
use qpl_workload::{figure2, university};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_context_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("context_cost");
    let u = university();
    let g_a = u.graph().clone();
    let ctx = Context::with_blocked(&g_a, &[u.d_p()]);
    group.bench_function("g_a", |b| {
        b.iter(|| cost(&g_a, &u.prof_first, std::hint::black_box(&ctx)))
    });

    let (g_b, theta) = figure2();
    let ctx_b = Context::with_blocked(
        &g_b,
        &[g_b.arc_by_label("D_a").unwrap(), g_b.arc_by_label("D_b").unwrap()],
    );
    group.bench_function("g_b", |b| b.iter(|| cost(&g_b, &theta, std::hint::black_box(&ctx_b))));

    for retrievals in [16usize, 64, 256] {
        let mut rng = StdRng::seed_from_u64(1);
        let params = TreeParams { max_depth: 6, max_branch: 4, ..Default::default() };
        let g = random_tree_with_retrievals(&mut rng, &params, retrievals, retrievals * 2);
        let model = random_retrieval_model(&mut rng, &g, (0.05, 0.5));
        let s = Strategy::left_to_right(&g);
        let ctx = model.sample(&mut rng);
        group.bench_with_input(BenchmarkId::new("random_tree", retrievals), &retrievals, |b, _| {
            b.iter(|| cost(&g, &s, std::hint::black_box(&ctx)))
        });
    }
    group.finish();
}

fn bench_expected_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("expected_cost_exact");
    for retrievals in [8usize, 16, 32] {
        let mut rng = StdRng::seed_from_u64(2);
        let params = TreeParams { max_depth: 5, max_branch: 3, ..Default::default() };
        let g = random_tree_with_retrievals(&mut rng, &params, retrievals, retrievals * 2);
        let model = random_retrieval_model(&mut rng, &g, (0.05, 0.95));
        let s = Strategy::left_to_right(&g);
        group.bench_with_input(BenchmarkId::from_parameter(retrievals), &retrievals, |b, _| {
            b.iter(|| model.expected_cost(&g, std::hint::black_box(&s)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_context_cost, bench_expected_cost);
criterion_main!(benches);
