//! Magic-set rewriting with sideways information passing (SIP).
//!
//! The bottom-up evaluators in [`eval`](crate::eval) saturate the whole
//! minimal model no matter what the query asks, while the paper's
//! strategies only ever need the part of the model reachable from the
//! query's bound constants. This module closes that gap: given a rule
//! base and a query form `q^α` (the same [`Adornment`] the tabled
//! top-down solver keys its call patterns with), it produces a rewritten
//! program whose semi-naive fixpoint derives only query-relevant facts.
//!
//! The rewrite is the textbook transformation, specialised to one query
//! form:
//!
//! 1. **Adorn.** Starting from `q^α`, propagate adornments through rule
//!    bodies. Within each rule the body is reordered by a greedy SIP:
//!    the next literal is the one with the most arguments already bound
//!    (constants, head-bound variables, or variables bound by earlier
//!    literals), ties broken by source order. Each intensional predicate
//!    `p` reached with adornment `β` gets an adorned copy `p__β`.
//! 2. **Magic rules.** For each adorned rule and each intensional body
//!    literal `p^β` with at least one bound position, emit a magic rule
//!    deriving `magic__p__β(bound args)` from the head's magic literal
//!    plus the SIP prefix — the "demand" propagation. A demand with no
//!    preconditions (all its bound args are constants) becomes a static
//!    seed fact instead of a rule.
//! 3. **Guard + bridge.** Each adorned rule is guarded by its head's
//!    magic literal, so it only fires for demanded bindings; a bridge
//!    rule `p__β(…) :- magic__p__β(…), p(…)` imports extensional facts
//!    of predicates that also have rules.
//! 4. **Seed.** At evaluation time the query's bound constants become
//!    one magic seed fact, and [`eval::seminaive`](crate::eval::seminaive)
//!    runs the rewritten rules to fixpoint.
//!
//! All-free query forms (and queries on purely extensional predicates)
//! degrade to a no-op: the original rules are evaluated unchanged, since
//! there is no binding to pass sideways.

use crate::adornment::{Adornment, Binding, QueryForm};
use crate::database::Database;
use crate::eval::{seminaive_into, EvalScratch};
use crate::rule::{Rule, RuleBase};
use crate::symbol::{Symbol, SymbolTable};
use crate::term::{Atom, Fact, Term, Var};
use crate::unify::Substitution;
use std::collections::{HashMap, HashSet, VecDeque};

/// A magic-rewritten program for one query form, reusable across any
/// number of concrete queries of that form (only the seed fact changes).
#[derive(Debug, Clone)]
pub struct MagicProgram {
    /// The query form the program was specialised to.
    pub form: QueryForm,
    /// Rewritten rules: guarded adorned rules + magic rules + bridges —
    /// or a verbatim copy of the input when the rewrite is a no-op.
    pub rules: RuleBase,
    /// The adorned predicate the query is asked against (`q__α`), equal
    /// to the original predicate when the rewrite is a no-op.
    pub query_predicate: Symbol,
    /// The magic predicate seeded with the query's bound constants
    /// (`None` when the rewrite is a no-op).
    pub seed_predicate: Option<Symbol>,
    /// Unconditional demands discovered at rewrite time (ground magic
    /// facts with no preconditions); inserted alongside the query seed.
    pub static_seeds: Vec<Fact>,
    /// Rules in the rewritten program (equals the input size on no-op).
    pub rules_generated: usize,
}

/// One magic-rewritten evaluation: answers plus derivation accounting.
#[derive(Debug, Clone)]
pub struct MagicEval {
    /// Ground instances of the query, stated over the *original*
    /// predicate, sorted and deduplicated (same order as
    /// [`eval::answers`](crate::eval::answers)).
    pub answers: Vec<Atom>,
    /// Facts derived by the fixpoint — everything beyond the EDB and
    /// the seeds: adorned, magic, and bridged facts alike.
    pub derived: usize,
}

/// Worklist state shared by the adornment pass.
struct Rewriter<'a> {
    rules: &'a RuleBase,
    table: &'a mut SymbolTable,
    /// `p^β → p__β` for every adorned intensional predicate reached.
    adorned: HashMap<(Symbol, Adornment), Symbol>,
    /// `p^β → magic__p__β` for adornments with at least one bound slot.
    magic: HashMap<(Symbol, Adornment), Symbol>,
    queue: VecDeque<(Symbol, Adornment)>,
    static_seeds: Vec<Fact>,
    out: RuleBase,
}

impl Rewriter<'_> {
    /// Interns (once) and returns the adorned copy of `p^ad`, enqueuing
    /// the pair for rule generation on first sight.
    fn adorned_symbol(&mut self, p: Symbol, ad: &Adornment) -> Symbol {
        if let Some(&s) = self.adorned.get(&(p, ad.clone())) {
            return s;
        }
        let name = format!("{}__{}", self.table.name(p), ad);
        let s = self.table.intern(&name);
        self.adorned.insert((p, ad.clone()), s);
        self.queue.push_back((p, ad.clone()));
        s
    }

    /// Interns (once) and returns the magic predicate of `p^ad`.
    fn magic_symbol(&mut self, p: Symbol, ad: &Adornment) -> Symbol {
        if let Some(&s) = self.magic.get(&(p, ad.clone())) {
            return s;
        }
        let name = format!("magic__{}__{}", self.table.name(p), ad);
        let s = self.table.intern(&name);
        self.magic.insert((p, ad.clone()), s);
        s
    }

    /// The head's magic guard literal: `magic__p__ad(head args at bound
    /// positions)`. `None` when the adornment binds nothing.
    fn head_guard(&mut self, head: &Atom, ad: &Adornment) -> Option<Atom> {
        if ad.0.iter().all(|b| *b == Binding::Free) {
            return None;
        }
        let m = self.magic_symbol(head.predicate, ad);
        Some(Atom::new(m, bound_args(head, ad)))
    }

    /// Records the demand for `lit^beta` made by a rule whose rewritten
    /// prefix (guard included) is `prefix`: a magic rule, or a static
    /// seed when the demand has no preconditions.
    fn demand(&mut self, lit: &Atom, beta: &Adornment, prefix: &[Atom]) {
        let m = self.magic_symbol(lit.predicate, beta);
        let head = Atom::new(m, bound_args(lit, beta));
        if prefix.is_empty() {
            // No guard and no earlier literals: every bound arg is a
            // constant (nothing else could have bound a variable), so
            // the demand is one ground fact known at rewrite time.
            let seed = head.to_fact().expect("precondition-free demand is ground");
            self.static_seeds.push(seed);
            return;
        }
        let rule = Rule::new(head, prefix.to_vec()).expect("magic rule is range-restricted");
        self.out.add(rule);
    }

    /// Rewrites every rule for `p^ad`: SIP-orders the body, renames
    /// intensional literals to their adorned copies, emits the demand
    /// each prefix passes sideways, and guards the result with the
    /// head's magic literal. Also emits the EDB bridge for `p`.
    fn process(&mut self, p: Symbol, ad: Adornment) {
        // Bridge: extensional facts of `p` surface under `p__ad`.
        let fresh: Vec<Term> = (0..ad.arity() as u32).map(|i| Term::Var(Var(i))).collect();
        let plain = Atom::new(p, fresh.clone());
        let bridge_head = Atom::new(self.adorned_symbol(p, &ad), fresh);
        let mut bridge_body: Vec<Atom> = self.head_guard(&plain, &ad).into_iter().collect();
        bridge_body.push(plain);
        self.out.add(Rule::new(bridge_head, bridge_body).expect("bridge rule is range-restricted"));

        let rule_ids: Vec<_> = self.rules.rules_for(p).map(|(id, _)| id).collect();
        for id in rule_ids {
            let rule = self.rules.rule(id).clone();
            let guard = self.head_guard(&rule.head, &ad);
            let mut bound: HashSet<Var> = HashSet::new();
            for (t, b) in rule.head.args.iter().zip(&ad.0) {
                if *b == Binding::Bound {
                    if let Some(v) = t.as_var() {
                        bound.insert(v);
                    }
                }
            }
            let mut new_body: Vec<Atom> = guard.into_iter().collect();
            for i in sip_order(&rule.body, &bound) {
                let lit = &rule.body[i];
                if self.rules.has_rules_for(lit.predicate) {
                    let beta: Adornment = lit
                        .args
                        .iter()
                        .map(|t| match t {
                            Term::Const(_) => Binding::Bound,
                            Term::Var(v) if bound.contains(v) => Binding::Bound,
                            Term::Var(_) => Binding::Free,
                        })
                        .collect();
                    if !beta.0.iter().all(|b| *b == Binding::Free) {
                        self.demand(lit, &beta, &new_body);
                    }
                    new_body.push(Atom::new(
                        self.adorned_symbol(lit.predicate, &beta),
                        lit.args.clone(),
                    ));
                } else {
                    new_body.push(lit.clone());
                }
                for v in lit.variables() {
                    bound.insert(v);
                }
            }
            let new_head = Atom::new(self.adorned_symbol(p, &ad), rule.head.args.clone());
            self.out.add(Rule::new(new_head, new_body).expect("adorned rule is range-restricted"));
        }
    }
}

/// The terms of `atom` at the bound positions of `ad`, in order.
fn bound_args(atom: &Atom, ad: &Adornment) -> Vec<Term> {
    atom.args.iter().zip(&ad.0).filter(|(_, b)| **b == Binding::Bound).map(|(t, _)| *t).collect()
}

/// Greedy SIP ordering: repeatedly pick the unvisited literal with the
/// most bound arguments (constants or variables in `bound`), breaking
/// ties by source position; after picking, its variables become bound.
fn sip_order(body: &[Atom], initially_bound: &HashSet<Var>) -> Vec<usize> {
    let mut bound = initially_bound.clone();
    let mut remaining: Vec<usize> = (0..body.len()).collect();
    let mut order = Vec::with_capacity(body.len());
    while !remaining.is_empty() {
        let best_pos = {
            let score = |i: usize| {
                body[i]
                    .args
                    .iter()
                    .filter(|t| match t {
                        Term::Const(_) => true,
                        Term::Var(v) => bound.contains(v),
                    })
                    .count()
            };
            (0..remaining.len())
                .max_by(|&a, &b| {
                    score(remaining[a])
                        .cmp(&score(remaining[b]))
                        .then(remaining[b].cmp(&remaining[a]))
                })
                .expect("remaining is non-empty")
        };
        let picked = remaining.remove(best_pos);
        for v in body[picked].variables() {
            bound.insert(v);
        }
        order.push(picked);
    }
    order
}

/// Rewrites `rules` for the query form `q^α`. Fresh adorned and magic
/// predicate names are interned into `table` (`p__bf`, `magic__p__bf`).
///
/// All-free forms and forms over predicates without rules return a
/// no-op program: a verbatim rule copy with no seed.
pub fn rewrite(rules: &RuleBase, form: &QueryForm, table: &mut SymbolTable) -> MagicProgram {
    let all_free = form.adornment.0.iter().all(|b| *b == Binding::Free);
    if all_free || !rules.has_rules_for(form.predicate) {
        let mut copy = RuleBase::new();
        for (_, r) in rules.iter() {
            copy.add(r.clone());
        }
        let n = copy.len();
        return MagicProgram {
            form: form.clone(),
            rules: copy,
            query_predicate: form.predicate,
            seed_predicate: None,
            static_seeds: Vec::new(),
            rules_generated: n,
        };
    }

    let mut rw = Rewriter {
        rules,
        table,
        adorned: HashMap::new(),
        magic: HashMap::new(),
        queue: VecDeque::new(),
        static_seeds: Vec::new(),
        out: RuleBase::new(),
    };
    let query_predicate = rw.adorned_symbol(form.predicate, &form.adornment);
    let seed_predicate = rw.magic_symbol(form.predicate, &form.adornment);
    let mut seen: HashSet<(Symbol, Adornment)> = HashSet::new();
    while let Some((p, ad)) = rw.queue.pop_front() {
        if seen.insert((p, ad.clone())) {
            rw.process(p, ad);
        }
    }
    let rules_generated = rw.out.len();
    MagicProgram {
        form: form.clone(),
        rules: rw.out,
        query_predicate,
        seed_predicate: Some(seed_predicate),
        static_seeds: rw.static_seeds,
        rules_generated,
    }
}

impl MagicProgram {
    /// Whether the rewrite was a no-op (all-free form or extensional
    /// query predicate): evaluation then equals plain semi-naive.
    pub fn is_noop(&self) -> bool {
        self.seed_predicate.is_none()
    }

    /// The magic seed fact for a query binding the form's bound
    /// positions to `constants` (`None` for no-op programs).
    pub fn seed(&self, constants: &[Symbol]) -> Option<Fact> {
        self.seed_predicate.map(|m| Fact::new(m, constants.to_vec()))
    }

    /// Evaluates the program for one concrete query of the form.
    ///
    /// # Panics
    /// Panics if `query` does not match the program's form (same
    /// contract as [`QueryForm::bound_constants`]).
    pub fn evaluate(&self, edb: &Database, query: &Atom) -> MagicEval {
        self.evaluate_into(edb, query, &mut EvalScratch::new())
    }

    /// [`MagicProgram::evaluate`] with caller-owned scratch buffers.
    ///
    /// # Panics
    /// Panics if `query` does not match the program's form.
    pub fn evaluate_into(
        &self,
        edb: &Database,
        query: &Atom,
        scratch: &mut EvalScratch,
    ) -> MagicEval {
        let constants = self.form.bound_constants(query);
        let mut seeded = edb.clone();
        if let Some(seed) = self.seed(&constants) {
            seeded.insert(seed).expect("seed arity matches its magic predicate");
        }
        for s in &self.static_seeds {
            seeded.insert(s.clone()).expect("static seed arity is consistent");
        }
        let base = seeded.len();
        let model = seminaive_into(&self.rules, &seeded, scratch);
        let derived = model.len() - base;
        let adorned_query = Atom::new(self.query_predicate, query.args.clone());
        let mut answers: Vec<Atom> = model
            .matches(&adorned_query, &Substitution::new())
            .iter()
            .map(|s| s.apply(query))
            .collect();
        answers.sort_by_key(|a| {
            a.args.iter().map(|t| t.as_const().map(|s| s.index())).collect::<Vec<_>>()
        });
        answers.dedup();
        MagicEval { answers, derived }
    }
}

/// One-shot convenience: adorn from the concrete `query` (constants
/// bound, variables free), rewrite, seed, evaluate, and answer — the
/// binding-aware counterpart of [`eval::answers`](crate::eval::answers).
pub fn magic_answers(
    rules: &RuleBase,
    edb: &Database,
    query: &Atom,
    table: &mut SymbolTable,
) -> Vec<Atom> {
    let form = QueryForm { predicate: query.predicate, adornment: Adornment::of_atom(query) };
    let program = rewrite(rules, &form, table);
    program.evaluate(edb, query).answers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;
    use crate::parser::{parse_program, parse_query, parse_query_form};
    use crate::topdown::TopDown;

    const PATH_KB: &str = "path(X, Y) :- edge(X, Y).\n\
                           path(X, Z) :- edge(X, Y), path(Y, Z).\n\
                           edge(a, b). edge(b, c). edge(c, d). edge(e, a).";

    fn answers_str(answers: &[Atom], t: &SymbolTable) -> Vec<String> {
        answers.iter().map(|a| a.display(t).to_string()).collect()
    }

    #[test]
    fn bound_first_argument_prunes_unreachable_prefix() {
        let mut t = SymbolTable::new();
        let p = parse_program(PATH_KB, &mut t).unwrap();
        let form = parse_query_form("path(b,f)", &mut t).unwrap();
        let program = rewrite(&p.rules, &form, &mut t);
        assert!(!program.is_noop());

        let q = parse_query("path(b, W)", &mut t).unwrap();
        let magic = program.evaluate(&p.facts, &q);
        assert_eq!(answers_str(&magic.answers, &t), vec!["path(b, c)", "path(b, d)"]);

        // The full model derives every path pair (incl. from e and a);
        // magic only derives what the binding b demands.
        let full = eval::seminaive(&p.rules, &p.facts);
        let full_derived = full.len() - p.facts.len();
        assert!(
            magic.derived < full_derived,
            "magic derived {} must be < full {full_derived}",
            magic.derived
        );
    }

    #[test]
    fn answers_match_unrewritten_and_tabled() {
        let mut t = SymbolTable::new();
        let p = parse_program(PATH_KB, &mut t).unwrap();
        for src in ["path(a, W)", "path(e, W)", "path(a, d)", "path(a, e)"] {
            let q = parse_query(src, &mut t).unwrap();
            let magic = magic_answers(&p.rules, &p.facts, &q, &mut t);
            let plain = eval::answers(&p.rules, &p.facts, &q);
            assert_eq!(magic, plain, "query {src}");
            let solver = TopDown::new(&p.rules, &p.facts);
            let tabled = solver.solve_tabled(&q).unwrap();
            assert_eq!(tabled.is_some(), !plain.is_empty(), "query {src}");
        }
    }

    #[test]
    fn fully_free_query_degrades_to_noop() {
        let mut t = SymbolTable::new();
        let p = parse_program(PATH_KB, &mut t).unwrap();
        let form = parse_query_form("path(f,f)", &mut t).unwrap();
        let program = rewrite(&p.rules, &form, &mut t);
        assert!(program.is_noop());
        assert_eq!(program.rules_generated, p.rules.len());
        let q = parse_query("path(U, W)", &mut t).unwrap();
        let magic = program.evaluate(&p.facts, &q);
        let plain = eval::answers(&p.rules, &p.facts, &q);
        assert_eq!(magic.answers, plain);
    }

    #[test]
    fn extensional_query_predicate_is_noop() {
        let mut t = SymbolTable::new();
        let p = parse_program(PATH_KB, &mut t).unwrap();
        let form = parse_query_form("edge(b,f)", &mut t).unwrap();
        let program = rewrite(&p.rules, &form, &mut t);
        assert!(program.is_noop());
        let q = parse_query("edge(a, W)", &mut t).unwrap();
        let magic = program.evaluate(&p.facts, &q);
        assert_eq!(answers_str(&magic.answers, &t), vec!["edge(a, b)"]);
    }

    #[test]
    fn mixed_edb_idb_predicate_uses_bridge() {
        // grad has both a rule and a ground fact: the bridge rule must
        // surface the fact under the adorned predicate.
        let src = "instructor(X) :- grad(X).\n\
                   grad(X) :- enrolled(X).\n\
                   grad(manolis). enrolled(sam).";
        let mut t = SymbolTable::new();
        let p = parse_program(src, &mut t).unwrap();
        for who in ["manolis", "sam", "fred"] {
            let q = parse_query(&format!("instructor({who})"), &mut t).unwrap();
            let magic = magic_answers(&p.rules, &p.facts, &q, &mut t);
            let plain = eval::answers(&p.rules, &p.facts, &q);
            assert_eq!(magic, plain, "instructor({who})");
        }
    }

    #[test]
    fn partially_ground_head_guard() {
        // Section 4.1's grad(fred) :- admitted(fred, Y): the constant in
        // the head participates in the magic guard.
        let src = "grad(fred) :- admitted(fred, Y).\n\
                   admitted(fred, toronto).";
        let mut t = SymbolTable::new();
        let p = parse_program(src, &mut t).unwrap();
        let q_hit = parse_query("grad(fred)", &mut t).unwrap();
        let q_miss = parse_query("grad(russ)", &mut t).unwrap();
        assert_eq!(magic_answers(&p.rules, &p.facts, &q_hit, &mut t).len(), 1);
        assert!(magic_answers(&p.rules, &p.facts, &q_miss, &mut t).is_empty());
    }

    #[test]
    fn sip_reorders_to_follow_bindings() {
        // Body written connection-last: SIP must pull the literal that
        // consumes the bound head variable to the front.
        let src = "reach(X, Z) :- far(Y, Z), near(X, Y).\n\
                   near(a, b). far(b, c). far(q, r).";
        let mut t = SymbolTable::new();
        let p = parse_program(src, &mut t).unwrap();
        let form = parse_query_form("reach(b,f)", &mut t).unwrap();
        let program = rewrite(&p.rules, &form, &mut t);
        let reach_rule = program
            .rules
            .iter()
            .map(|(_, r)| r)
            .find(|r| t.name(r.head.predicate).starts_with("reach__") && r.body.len() == 3)
            .expect("rewritten reach rule exists");
        let names: Vec<&str> = reach_rule.body.iter().map(|a| t.name(a.predicate)).collect();
        assert_eq!(names, vec!["magic__reach__bf", "near", "far"]);
        let q = parse_query("reach(a, W)", &mut t).unwrap();
        let magic = magic_answers(&p.rules, &p.facts, &q, &mut t);
        assert_eq!(answers_str(&magic, &t), vec!["reach(a, c)"]);
    }

    #[test]
    fn all_bound_recursive_query_derives_little() {
        let mut t = SymbolTable::new();
        let p = parse_program(PATH_KB, &mut t).unwrap();
        let q = parse_query("path(a, d)", &mut t).unwrap();
        let form = QueryForm { predicate: q.predicate, adornment: Adornment::of_atom(&q) };
        let program = rewrite(&p.rules, &form, &mut t);
        let magic = program.evaluate(&p.facts, &q);
        assert_eq!(magic.answers.len(), 1);
        let full = eval::seminaive(&p.rules, &p.facts);
        assert!(magic.derived < full.len() - p.facts.len());
    }

    proptest::proptest! {
        /// Random edge sets + random query bindings: magic, plain
        /// semi-naive, and tabled top-down agree on the answer set,
        /// including recursive predicates and all-free queries.
        #[test]
        fn magic_matches_seminaive_and_tabled(
            edges in proptest::collection::vec((0u8..6, 0u8..6), 0..14),
            src_node in 0u8..6,
            dst_node in 0u8..6,
            shape in 0u8..4,
        ) {
            let mut src = String::from(
                "path(X, Y) :- edge(X, Y).\npath(X, Z) :- edge(X, Y), path(Y, Z).\n");
            for (a, b) in &edges {
                src.push_str(&format!("edge(n{a}, n{b}).\n"));
            }
            let mut t = SymbolTable::new();
            let p = parse_program(&src, &mut t).unwrap();
            let query = match shape {
                0 => format!("path(n{src_node}, W)"),
                1 => format!("path(U, n{dst_node})"),
                2 => format!("path(n{src_node}, n{dst_node})"),
                _ => "path(U, W)".to_string(),
            };
            let q = parse_query(&query, &mut t).unwrap();
            let magic = magic_answers(&p.rules, &p.facts, &q, &mut t);
            let plain = eval::answers(&p.rules, &p.facts, &q);
            proptest::prop_assert_eq!(&magic, &plain);
            let solver = TopDown::new(&p.rules, &p.facts);
            let tabled = solver.solve_tabled(&q).unwrap();
            proptest::prop_assert_eq!(tabled.is_some(), !plain.is_empty());
        }

        /// Random non-recursive two-layer rule bases: same three-way
        /// agreement (bound and free query shapes).
        #[test]
        fn magic_matches_on_random_hierarchies(
            facts in proptest::collection::vec((0u8..3, 0u8..5), 1..10),
            mids in proptest::collection::vec((0u8..3, 0u8..3), 1..6),
            query_const in 0u8..5,
            bound_flag in 0u8..2,
        ) {
            // Base predicates b0..b2, mid predicates m0..m2, top `top`.
            let mut src = String::new();
            for (m, b) in &mids {
                src.push_str(&format!("m{m}(X) :- b{b}(X).\n"));
                src.push_str(&format!("top(X) :- m{m}(X).\n"));
            }
            for (pred, c) in &facts {
                src.push_str(&format!("b{pred}(c{c}).\n"));
            }
            let mut t = SymbolTable::new();
            let p = parse_program(&src, &mut t).unwrap();
            let query =
                if bound_flag == 1 { format!("top(c{query_const})") } else { "top(W)".into() };
            let q = parse_query(&query, &mut t).unwrap();
            let magic = magic_answers(&p.rules, &p.facts, &q, &mut t);
            let plain = eval::answers(&p.rules, &p.facts, &q);
            proptest::prop_assert_eq!(&magic, &plain);
            let solver = TopDown::new(&p.rules, &p.facts);
            let tabled = solver.solve_tabled(&q).unwrap();
            proptest::prop_assert_eq!(tabled.is_some(), !plain.is_empty());
        }
    }
}
