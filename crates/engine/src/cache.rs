//! Cross-context answer caching: reuse proof work across Monte-Carlo
//! samples that share a ⟨database, blocked-arc set⟩ pair.
//!
//! The E-experiments draw thousands of i.i.d. contexts, and most draws
//! repeat a context class the run has already seen (Note 2: contexts
//! partition into finitely many blocked-arc classes). Everything proved
//! inside one class against one database state stays valid until either
//! changes, so:
//!
//! * [`CrossContextCache`] keeps one [`TableStore`] of tabled Datalog
//!   answers per context fingerprint, invalidated by the database's
//!   generation counter — a sample landing in a seen class reuses every
//!   subgoal table from previous samples of that class;
//! * [`RunCache`] memoizes whole `⟨query → (answer, cost)⟩` runs of a
//!   fixed-strategy [`QueryProcessor`](crate::qp::QueryProcessor),
//!   invalidated when the database generation *or* the strategy changes.
//!
//! Both caches are deliberately single-database: a generation counter
//! orders the states of one [`Database`] instance but says nothing about
//! a different instance, so callers must use one cache per database (the
//! per-worker scratch of [`batch_fold_scratch`](crate::par::batch_fold_scratch)
//! makes that natural) or key their own map by database identity.
//!
//! Determinism: cached answers are pure functions of ⟨rules, database
//! state, context class⟩, so replacing a recomputation with a cache read
//! never changes a result — only *stats* (hit/miss counts) depend on
//! arrival order, which is why the parallel harness asserts on answers,
//! never on cache stats.

use crate::qp::QueryAnswer;
use qpl_datalog::table::TableStore;
use qpl_datalog::{Database, Symbol};
use qpl_graph::context::Context;
use qpl_graph::strategy::Strategy;
use std::collections::HashMap;

/// Lifetime counters for a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered by a live entry.
    pub hits: u64,
    /// Lookups that had no entry at all.
    pub misses: u64,
    /// Entries dropped because their generation (or strategy) went stale.
    pub invalidations: u64,
}

/// A 64-bit fingerprint of a context class: a SplitMix64-style fold over
/// the blocked arc indices (ascending) and the arc count. Equal contexts
/// always map to equal fingerprints; unequal ones collide with
/// probability ≈ 2⁻⁶⁴. A collision would serve answers from the wrong
/// context class, so the fold covers every blocked index rather than
/// sampling a few — at 2⁻⁶⁴ over at most a few thousand classes per run
/// the risk is far below that of memory corruption.
pub fn context_fingerprint(ctx: &Context) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (ctx.arc_count() as u64);
    let mut mix = |v: u64| {
        let mut z = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h = z ^ (z >> 31);
    };
    for a in ctx.blocked_arcs() {
        mix(a.index() as u64 + 1);
    }
    h
}

/// A 64-bit fingerprint of a strategy: a fold over its arc sequence.
/// Used to invalidate [`RunCache`] entries when PIB swaps strategies.
///
/// The hash now lives on the strategy itself, computed once and cached
/// ([`Strategy::fingerprint`]); this wrapper survives for callers keyed
/// to the old free-function spelling.
pub fn strategy_fingerprint(s: &Strategy) -> u64 {
    s.fingerprint()
}

/// Tabled-answer stores shared across samples: one [`TableStore`] per
/// blocked-arc context class, each validated against the database
/// generation it was filled under.
///
/// # Examples
/// ```
/// use qpl_engine::cache::{context_fingerprint, CrossContextCache};
/// use qpl_datalog::parser::{parse_program, parse_query};
/// use qpl_datalog::topdown::{RetrievalStats, TopDown};
/// use qpl_datalog::SymbolTable;
/// let mut t = SymbolTable::new();
/// let p = parse_program("a(X) :- b(X). b(k).", &mut t).unwrap();
/// let q = parse_query("a(k)", &mut t).unwrap();
/// let solver = TopDown::new(&p.rules, &p.facts);
/// let mut cache = CrossContextCache::new();
/// let mut stats = RetrievalStats::default();
/// // Key by whatever identifies the sample's context class; here one class.
/// let store = cache.tables_for(&p.facts, 0);
/// assert!(solver.solve_tabled_in(&q, store, &mut stats).unwrap().is_some());
/// let store = cache.tables_for(&p.facts, 0); // warm: same tables back
/// assert!(!store.is_empty());
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CrossContextCache {
    entries: HashMap<u64, (u64, TableStore)>,
    stats: CacheStats,
}

impl CrossContextCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of context classes with a live table store.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no class has been seen yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime hit/miss/invalidation counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Emit the lifetime counters (plus the live class count) into a
    /// [`MetricsSink`](qpl_obs::MetricsSink) under
    /// `engine.cross_context_cache.*`. Hit/miss splits are
    /// arrival-order-dependent under the parallel harness (see the
    /// module header), so snapshots comparing them should come from
    /// serial runs.
    pub fn emit_to(&self, sink: &mut dyn qpl_obs::MetricsSink) {
        sink.counter("engine.cross_context_cache.hits", self.stats.hits);
        sink.counter("engine.cross_context_cache.misses", self.stats.misses);
        sink.counter("engine.cross_context_cache.invalidations", self.stats.invalidations);
        sink.counter("engine.cross_context_cache.classes", self.entries.len() as u64);
    }

    /// Drops every entry (stats survive).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The table store for the context class `context_fp` (as computed by
    /// [`context_fingerprint`]), valid for `db`'s current state. A store
    /// filled under an older generation is cleared before being returned;
    /// a fresh one is created on first sight of the class.
    ///
    /// All calls must pass the same `Database` instance for the cache's
    /// lifetime — the generation counter cannot tell two instances apart.
    pub fn tables_for(&mut self, db: &Database, context_fp: u64) -> &mut TableStore {
        let generation = db.generation();
        if let Some((stored_gen, store)) = self.entries.get_mut(&context_fp) {
            if *stored_gen == generation {
                self.stats.hits += 1;
            } else {
                store.clear();
                *stored_gen = generation;
                self.stats.invalidations += 1;
            }
        } else {
            self.entries.insert(context_fp, (generation, TableStore::new()));
            self.stats.misses += 1;
        }
        &mut self.entries.get_mut(&context_fp).expect("entry just ensured").1
    }
}

/// Whole-run memoization for a fixed-strategy query processor: maps the
/// query's bound constants to its `(answer, cost)` pair, valid for one
/// ⟨database generation, strategy⟩ pair at a time.
///
/// Used by `QueryProcessor::run_cost_cached`; see there for the wiring.
#[derive(Debug, Clone, Default)]
pub struct RunCache {
    /// `(database generation, strategy fingerprint)` the map is valid
    /// for; `None` until the first run.
    validity: Option<(u64, u64)>,
    map: HashMap<Vec<Symbol>, (QueryAnswer, f64)>,
    stats: CacheStats,
}

impl RunCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lifetime hit/miss/invalidation counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Emit the lifetime counters (plus the live entry count) into a
    /// [`MetricsSink`](qpl_obs::MetricsSink) under `engine.run_cache.*`.
    pub fn emit_to(&self, sink: &mut dyn qpl_obs::MetricsSink) {
        sink.counter("engine.run_cache.hits", self.stats.hits);
        sink.counter("engine.run_cache.misses", self.stats.misses);
        sink.counter("engine.run_cache.invalidations", self.stats.invalidations);
        sink.counter("engine.run_cache.entries", self.map.len() as u64);
    }

    /// Number of memoized runs currently valid.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no run is currently memoized.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops memoized runs if the database generation or strategy
    /// changed since they were recorded.
    pub fn revalidate(&mut self, generation: u64, strategy_fp: u64) {
        if self.validity != Some((generation, strategy_fp)) {
            if !self.map.is_empty() {
                self.map.clear();
                self.stats.invalidations += 1;
            }
            self.validity = Some((generation, strategy_fp));
        }
    }

    /// The memoized run for a query with these bound constants, if any.
    /// Call [`revalidate`](Self::revalidate) first.
    pub fn get(&mut self, key: &[Symbol]) -> Option<&(QueryAnswer, f64)> {
        let found = self.map.get(key);
        if found.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        found
    }

    /// Records a run under the current validity window.
    pub fn insert(&mut self, key: Vec<Symbol>, answer: QueryAnswer, cost: f64) {
        self.map.insert(key, (answer, cost));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpl_datalog::parser::{parse_program, parse_query};
    use qpl_datalog::topdown::{RetrievalStats, TopDown};
    use qpl_datalog::{Fact, SymbolTable};
    use qpl_graph::context::Context;
    use qpl_graph::graph::GraphBuilder;
    use qpl_graph::ArcId;

    fn small_graph() -> qpl_graph::graph::InferenceGraph {
        let mut b = GraphBuilder::new("q(κ)");
        let root = b.root();
        let (_, n1) = b.reduction(root, "R1", 1.0, "p1(κ)");
        b.retrieval(n1, "D1", 1.0);
        let (_, n2) = b.reduction(root, "R2", 1.0, "p2(κ)");
        b.retrieval(n2, "D2", 1.0);
        b.finish().unwrap()
    }

    #[test]
    fn context_fingerprint_separates_classes() {
        let g = small_graph();
        let open = Context::all_open(&g);
        let b0 = Context::with_blocked(&g, &[ArcId(0)]);
        let b1 = Context::with_blocked(&g, &[ArcId(1)]);
        let b01 = Context::with_blocked(&g, &[ArcId(0), ArcId(1)]);
        let fps = [&open, &b0, &b1, &b01].map(context_fingerprint);
        for i in 0..fps.len() {
            for j in 0..i {
                assert_ne!(fps[i], fps[j], "classes {i} and {j} collide");
            }
        }
        // Deterministic: same class, same fingerprint.
        assert_eq!(context_fingerprint(&b0), context_fingerprint(&b0.clone()));
    }

    #[test]
    fn tables_survive_within_generation_and_die_across() {
        let mut t = SymbolTable::new();
        let p = parse_program(
            "path(X, Y) :- edge(X, Y). path(X, Z) :- edge(X, Y), path(Y, Z).\n\
             edge(a, b). edge(b, c).",
            &mut t,
        )
        .unwrap();
        let mut db = p.facts.clone();
        let solver_src = p.rules;
        let q = parse_query("path(a, c)", &mut t).unwrap();
        let mut cache = CrossContextCache::new();
        let fp = 7u64;

        // Fill under generation g0.
        {
            let solver = TopDown::new(&solver_src, &db);
            let mut stats = RetrievalStats::default();
            let store = cache.tables_for(&db, fp);
            assert!(solver.solve_tabled_in(&q, store, &mut stats).unwrap().is_some());
            assert!(stats.table_misses > 0);
        }
        assert_eq!(cache.stats().misses, 1);

        // Same generation: warm tables, zero database work.
        {
            let solver = TopDown::new(&solver_src, &db);
            let mut stats = RetrievalStats::default();
            let store = cache.tables_for(&db, fp);
            assert!(solver.solve_tabled_in(&q, store, &mut stats).unwrap().is_some());
            assert_eq!(stats.retrievals, 0);
            assert_eq!(stats.table_misses, 0);
        }
        assert_eq!(cache.stats().hits, 1);

        // Mutate the database: the entry must be invalidated, and the
        // new fact must be visible (a stale table would hide edge(c,d)).
        let edge = t.lookup("edge").unwrap();
        let (c, d) = (t.lookup("c").unwrap(), t.intern("d"));
        db.insert(Fact::new(edge, vec![c, d])).unwrap();
        {
            let solver = TopDown::new(&solver_src, &db);
            let mut stats = RetrievalStats::default();
            let q2 = parse_query("path(a, d)", &mut t).unwrap();
            let store = cache.tables_for(&db, fp);
            assert!(solver.solve_tabled_in(&q2, store, &mut stats).unwrap().is_some());
            assert!(stats.table_misses > 0, "tables rebuilt after invalidation");
        }
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn distinct_fingerprints_get_distinct_stores() {
        let mut t = SymbolTable::new();
        let p = parse_program("p(a).", &mut t).unwrap();
        let mut cache = CrossContextCache::new();
        cache.tables_for(&p.facts, 1);
        cache.tables_for(&p.facts, 2);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn strategy_fingerprint_is_stable_and_order_sensitive() {
        let g = small_graph();
        let strategies = qpl_graph::strategy::enumerate_all(&g, 100).unwrap();
        assert!(strategies.len() > 1);
        for (i, a) in strategies.iter().enumerate() {
            // Clones carry the cached value; recomputation agrees.
            assert_eq!(strategy_fingerprint(a), strategy_fingerprint(&a.clone()));
            for b in &strategies[..i] {
                assert_ne!(
                    strategy_fingerprint(a),
                    strategy_fingerprint(b),
                    "distinct arc orders must not collide here"
                );
            }
        }
    }

    #[test]
    fn run_cache_invalidates_on_strategy_change() {
        let mut rc = RunCache::new();
        let dummy = QueryAnswer::No;
        rc.revalidate(0, 111);
        assert!(rc.get(&[]).is_none());
        rc.insert(vec![], dummy.clone(), 2.0);
        rc.revalidate(0, 111);
        assert!(rc.get(&[]).is_some(), "same window: still valid");
        rc.revalidate(0, 222); // strategy swapped
        assert!(rc.get(&[]).is_none(), "strategy change dropped the memo");
        rc.insert(vec![], dummy, 3.0);
        rc.revalidate(1, 222); // database mutated
        assert!(rc.get(&[]).is_none(), "generation change dropped the memo");
        assert_eq!(rc.stats().invalidations, 2);
    }
}
