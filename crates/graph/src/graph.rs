//! Inference graphs `G = ⟨N, A, S, f⟩` (Section 2.1).
//!
//! Nodes correspond to atomic goals, directed arcs to rule reductions or
//! database retrievals, `S ⊆ N` are success nodes, and `f : A → ℝ⁺`
//! assigns each arc a positive cost. The paper works chiefly with
//! *tree-shaped* graphs (`AOT`: a unique arc path from the root to every
//! retrieval); this module represents general simple graphs and
//! classifies them.

use crate::error::GraphError;
use std::fmt;

/// Identifier of a node within its [`InferenceGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of an arc within its [`InferenceGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArcId(pub u32);

impl ArcId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ArcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// What traversing an arc means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArcKind {
    /// A rule reduction: replaces the goal at `from` with the subgoal at
    /// `to` (the paper's `R` arcs).
    Reduction,
    /// An attempted database retrieval (the paper's `D` arcs); its target
    /// is a success node.
    Retrieval,
}

/// Per-node payload.
#[derive(Debug, Clone)]
pub struct NodeData {
    /// Human-readable goal label (e.g. `instructor(κ)`).
    pub label: String,
    /// Whether reaching this node means the derivation has succeeded
    /// (membership in the paper's `S`).
    pub is_success: bool,
}

/// Per-arc payload.
#[derive(Debug, Clone)]
pub struct ArcData {
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// Reduction or retrieval.
    pub kind: ArcKind,
    /// Human-readable label (e.g. `R_p`, `D_g`).
    pub label: String,
    /// Traversal/attempt cost `f(a) > 0`. Paid whether or not the arc
    /// turns out to be blocked (an attempted retrieval costs the probe).
    pub cost: f64,
}

/// An inference graph with a designated root (the query-form goal).
///
/// Built via [`GraphBuilder`]; immutable afterwards, so derived tables
/// (parents, subtree costs) are computed once.
#[derive(Debug, Clone)]
pub struct InferenceGraph {
    nodes: Vec<NodeData>,
    arcs: Vec<ArcData>,
    root: NodeId,
    /// Outgoing arcs per node, in construction (left-to-right) order.
    children: Vec<Vec<ArcId>>,
    /// Incoming arcs per node.
    parents: Vec<Vec<ArcId>>,
}

impl InferenceGraph {
    /// The root node (the queried goal).
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// Node payload.
    ///
    /// # Panics
    /// Panics on a foreign id.
    pub fn node(&self, n: NodeId) -> &NodeData {
        &self.nodes[n.index()]
    }

    /// Arc payload.
    ///
    /// # Panics
    /// Panics on a foreign id.
    pub fn arc(&self, a: ArcId) -> &ArcData {
        &self.arcs[a.index()]
    }

    /// All arc ids.
    pub fn arc_ids(&self) -> impl Iterator<Item = ArcId> {
        (0..self.arcs.len() as u32).map(ArcId)
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Outgoing arcs of `n` in left-to-right construction order.
    pub fn children(&self, n: NodeId) -> &[ArcId] {
        &self.children[n.index()]
    }

    /// Incoming arcs of `n`.
    pub fn parents(&self, n: NodeId) -> &[ArcId] {
        &self.parents[n.index()]
    }

    /// The unique incoming arc of `n` in a tree; `None` for the root.
    ///
    /// # Panics
    /// Panics if `n` has several parents (non-tree graph).
    pub fn parent_arc(&self, n: NodeId) -> Option<ArcId> {
        match self.parents[n.index()].as_slice() {
            [] => None,
            [a] => Some(*a),
            _ => panic!("node {n:?} has multiple parents; graph is not a tree"),
        }
    }

    /// Retrieval arcs in id order.
    pub fn retrievals(&self) -> impl Iterator<Item = ArcId> + '_ {
        self.arc_ids().filter(|&a| self.arc(a).kind == ArcKind::Retrieval)
    }

    /// Looks an arc up by label (test/diagnostic convenience).
    pub fn arc_by_label(&self, label: &str) -> Option<ArcId> {
        self.arc_ids().find(|&a| self.arc(a).label == label)
    }

    /// Whether the graph is tree shaped (the paper's `AOT` class):
    /// every node except the root has exactly one incoming arc, the root
    /// has none, and every node is reachable from the root.
    pub fn is_tree(&self) -> bool {
        if !self.parents[self.root.index()].is_empty() {
            return false;
        }
        for n in self.node_ids() {
            if n != self.root && self.parents[n.index()].len() != 1 {
                return false;
            }
        }
        // Reachability: |arcs| == |nodes| - 1 plus single-parent property
        // implies a tree rooted at `root` when all nodes are reachable.
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![self.root];
        seen[self.root.index()] = true;
        while let Some(v) = stack.pop() {
            for &a in self.children(v) {
                let t = self.arc(a).to;
                if !seen[t.index()] {
                    seen[t.index()] = true;
                    stack.push(t);
                }
            }
        }
        seen.into_iter().all(|s| s)
    }

    /// Arcs of the subtree rooted at (and including) `a`, preorder.
    ///
    /// Only meaningful on trees.
    pub fn subtree_arcs(&self, a: ArcId) -> Vec<ArcId> {
        let mut out = Vec::new();
        let mut stack = vec![a];
        while let Some(x) = stack.pop() {
            out.push(x);
            let to = self.arc(x).to;
            // Reverse so preorder matches left-to-right child order.
            for &c in self.children(to).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// `f*(a)`: the summed cost of `a` and every arc below it (Note 5).
    pub fn f_star(&self, a: ArcId) -> f64 {
        self.subtree_arcs(a).iter().map(|&x| self.arc(x).cost).sum()
    }

    /// Total cost of all arcs.
    pub fn total_cost(&self) -> f64 {
        self.arcs.iter().map(|a| a.cost).sum()
    }

    /// `Π(e)`: the arcs from the root down to, but not including, `e`
    /// (Definition 1). Only meaningful on trees.
    pub fn root_path(&self, e: ArcId) -> Vec<ArcId> {
        let mut rev = Vec::new();
        let mut node = self.arc(e).from;
        while let Some(p) = self.parent_arc(node) {
            rev.push(p);
            node = self.arc(p).from;
        }
        rev.reverse();
        rev
    }

    /// `F¬(a)`: the total cost of the arcs on paths *other than* the
    /// paths through `a` (Note 5) — i.e. everything outside
    /// `Π(a) ∪ subtree(a)`. Only meaningful on trees.
    pub fn f_not(&self, a: ArcId) -> f64 {
        let own: f64 =
            self.root_path(a).iter().map(|&x| self.arc(x).cost).sum::<f64>() + self.f_star(a);
        self.total_cost() - own
    }

    /// Depth of an arc (number of arcs above it; root children have 0).
    pub fn depth(&self, a: ArcId) -> usize {
        self.root_path(a).len()
    }

    /// Sibling arcs of `a` (sharing `a`'s source node), excluding `a`.
    pub fn siblings(&self, a: ArcId) -> Vec<ArcId> {
        self.children(self.arc(a).from).iter().copied().filter(|&x| x != a).collect()
    }

    /// Validates structural invariants (positive costs, retrieval arcs
    /// point at success leaves, every leaf is a success node, tree shape
    /// if `require_tree`).
    pub fn validate(&self, require_tree: bool) -> Result<(), GraphError> {
        for (i, a) in self.arcs.iter().enumerate() {
            if a.cost.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || !a.cost.is_finite()
            {
                return Err(GraphError::NonPositiveCost(a.label.clone()));
            }
            if a.kind == ArcKind::Retrieval {
                let target = &self.nodes[a.to.index()];
                if !target.is_success {
                    return Err(GraphError::DeadLeaf(format!(
                        "retrieval `{}` (arc {i}) does not reach a success node",
                        a.label
                    )));
                }
            }
        }
        for n in self.node_ids() {
            let data = self.node(n);
            if self.children(n).is_empty() && !data.is_success {
                return Err(GraphError::DeadLeaf(format!(
                    "leaf `{}` is not a success node; its subtree can never succeed",
                    data.label
                )));
            }
        }
        if require_tree && !self.is_tree() {
            return Err(GraphError::NotTree("a node has several parents or is unreachable".into()));
        }
        Ok(())
    }

    /// Renders the tree as an indented outline (diagnostics).
    pub fn outline(&self) -> String {
        let mut out = String::new();
        fn rec(g: &InferenceGraph, n: NodeId, depth: usize, out: &mut String) {
            for &a in g.children(n) {
                let arc = g.arc(a);
                let kind = match arc.kind {
                    ArcKind::Reduction => "R",
                    ArcKind::Retrieval => "D",
                };
                out.push_str(&"  ".repeat(depth));
                out.push_str(&format!(
                    "{} [{}] cost={} -> {}\n",
                    arc.label,
                    kind,
                    arc.cost,
                    g.node(arc.to).label
                ));
                rec(g, arc.to, depth + 1, out);
            }
        }
        out.push_str(&format!("{}\n", self.node(self.root).label));
        rec(self, self.root, 1, &mut out);
        out
    }
}

/// Incremental builder for [`InferenceGraph`].
///
/// # Examples
/// ```
/// use qpl_graph::{GraphBuilder, ArcKind};
/// // Figure 1's G_A: instructor --R_p--> prof --D_p--> ⊞
/// //                            --R_g--> grad --D_g--> ⊞
/// let mut b = GraphBuilder::new("instructor(κ)");
/// let root = b.root();
/// let (_, prof) = b.reduction(root, "R_p", 1.0, "prof(κ)");
/// b.retrieval(prof, "D_p", 1.0);
/// let (_, grad) = b.reduction(root, "R_g", 1.0, "grad(κ)");
/// b.retrieval(grad, "D_g", 1.0);
/// let g = b.finish().unwrap();
/// assert_eq!(g.arc_count(), 4);
/// assert!(g.is_tree());
/// assert_eq!(g.f_star(g.arc_by_label("R_p").unwrap()), 2.0);
/// assert_eq!(g.f_not(g.arc_by_label("D_g").unwrap()), 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    nodes: Vec<NodeData>,
    arcs: Vec<ArcData>,
    children: Vec<Vec<ArcId>>,
    parents: Vec<Vec<ArcId>>,
    require_tree: bool,
}

impl GraphBuilder {
    /// Starts a graph whose root goal is labelled `root_label`.
    pub fn new(root_label: &str) -> Self {
        Self {
            nodes: vec![NodeData { label: root_label.into(), is_success: false }],
            arcs: Vec::new(),
            children: vec![Vec::new()],
            parents: vec![Vec::new()],
            require_tree: true,
        }
    }

    /// Allows non-tree (DAG) graphs; [`finish`](Self::finish) will then
    /// skip the tree check. Used for the NP-hardness demonstration.
    pub fn allow_dag(mut self) -> Self {
        self.require_tree = false;
        self
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    fn add_node(&mut self, label: &str, is_success: bool) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("node overflow"));
        self.nodes.push(NodeData { label: label.into(), is_success });
        self.children.push(Vec::new());
        self.parents.push(Vec::new());
        id
    }

    fn add_arc(
        &mut self,
        from: NodeId,
        to: NodeId,
        kind: ArcKind,
        label: &str,
        cost: f64,
    ) -> ArcId {
        let id = ArcId(u32::try_from(self.arcs.len()).expect("arc overflow"));
        self.arcs.push(ArcData { from, to, kind, label: label.into(), cost });
        self.children[from.index()].push(id);
        self.parents[to.index()].push(id);
        id
    }

    /// Adds a rule-reduction arc from `from` to a fresh subgoal node.
    /// Returns `(arc, subgoal node)`.
    pub fn reduction(
        &mut self,
        from: NodeId,
        label: &str,
        cost: f64,
        goal_label: &str,
    ) -> (ArcId, NodeId) {
        let node = self.add_node(goal_label, false);
        let arc = self.add_arc(from, node, ArcKind::Reduction, label, cost);
        (arc, node)
    }

    /// Adds a reduction arc to an *existing* node (requires
    /// [`allow_dag`](Self::allow_dag) to pass validation if this creates
    /// a second parent).
    pub fn reduction_to(&mut self, from: NodeId, to: NodeId, label: &str, cost: f64) -> ArcId {
        self.add_arc(from, to, ArcKind::Reduction, label, cost)
    }

    /// Adds a retrieval arc from `from` to a fresh success node.
    pub fn retrieval(&mut self, from: NodeId, label: &str, cost: f64) -> ArcId {
        let node = self.add_node(&format!("⊞{label}"), true);
        self.add_arc(from, node, ArcKind::Retrieval, label, cost)
    }

    /// Finalizes and validates the graph.
    ///
    /// # Errors
    /// Any [`GraphError`] from [`InferenceGraph::validate`].
    pub fn finish(self) -> Result<InferenceGraph, GraphError> {
        let g = InferenceGraph {
            nodes: self.nodes,
            arcs: self.arcs,
            root: NodeId(0),
            children: self.children,
            parents: self.parents,
        };
        g.validate(self.require_tree)?;
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 1's G_A with unit costs.
    pub(crate) fn g_a() -> InferenceGraph {
        let mut b = GraphBuilder::new("instructor(κ)");
        let root = b.root();
        let (_, prof) = b.reduction(root, "R_p", 1.0, "prof(κ)");
        b.retrieval(prof, "D_p", 1.0);
        let (_, grad) = b.reduction(root, "R_g", 1.0, "grad(κ)");
        b.retrieval(grad, "D_g", 1.0);
        b.finish().unwrap()
    }

    /// Figure 2's G_B with unit costs.
    pub(crate) fn g_b() -> InferenceGraph {
        let mut b = GraphBuilder::new("G(κ)");
        let root = b.root();
        let (_, a) = b.reduction(root, "R_ga", 1.0, "A(κ)");
        b.retrieval(a, "D_a", 1.0);
        let (_, s) = b.reduction(root, "R_gs", 1.0, "S(κ)");
        let (_, bb) = b.reduction(s, "R_sb", 1.0, "B(κ)");
        b.retrieval(bb, "D_b", 1.0);
        let (_, t) = b.reduction(s, "R_st", 1.0, "T(κ)");
        let (_, c) = b.reduction(t, "R_tc", 1.0, "C(κ)");
        b.retrieval(c, "D_c", 1.0);
        let (_, d) = b.reduction(t, "R_td", 1.0, "D(κ)");
        b.retrieval(d, "D_d", 1.0);
        b.finish().unwrap()
    }

    #[test]
    fn g_a_structure() {
        let g = g_a();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.arc_count(), 4);
        assert!(g.is_tree());
        assert_eq!(g.retrievals().count(), 2);
    }

    #[test]
    fn f_star_matches_note_5() {
        let g = g_a();
        let rp = g.arc_by_label("R_p").unwrap();
        let rg = g.arc_by_label("R_g").unwrap();
        let dp = g.arc_by_label("D_p").unwrap();
        assert_eq!(g.f_star(rp), 2.0, "f*(R_p) = f(R_p) + f(D_p)");
        assert_eq!(g.f_star(rg), 2.0);
        assert_eq!(g.f_star(dp), 1.0);
    }

    #[test]
    fn f_not_matches_note_5() {
        let g = g_a();
        let dg = g.arc_by_label("D_g").unwrap();
        let dp = g.arc_by_label("D_p").unwrap();
        assert_eq!(g.f_not(dg), 2.0, "F¬[D_g] = f(R_p) + f(D_p)");
        assert_eq!(g.f_not(dp), 2.0);
    }

    #[test]
    fn g_b_structure_and_costs() {
        let g = g_b();
        assert_eq!(g.arc_count(), 10);
        assert!(g.is_tree());
        let rst = g.arc_by_label("R_st").unwrap();
        assert_eq!(g.f_star(rst), 5.0, "R_st + R_tc + D_c + R_td + D_d");
        let rtc = g.arc_by_label("R_tc").unwrap();
        // F¬[R_tc]: everything outside Π(R_tc)={R_gs,R_st} and subtree {R_tc,D_c}:
        // R_ga, D_a, R_sb, D_b, R_td, D_d = 6.
        assert_eq!(g.f_not(rtc), 6.0);
    }

    #[test]
    fn root_path_is_ordered_from_root() {
        let g = g_b();
        let dc = g.arc_by_label("D_c").unwrap();
        let labels: Vec<&str> = g.root_path(dc).iter().map(|&a| g.arc(a).label.as_str()).collect();
        assert_eq!(labels, ["R_gs", "R_st", "R_tc"]);
        assert_eq!(g.depth(dc), 3);
    }

    #[test]
    fn siblings_exclude_self() {
        let g = g_b();
        let rsb = g.arc_by_label("R_sb").unwrap();
        let sib = g.siblings(rsb);
        assert_eq!(sib.len(), 1);
        assert_eq!(g.arc(sib[0]).label, "R_st");
    }

    #[test]
    fn subtree_arcs_preorder() {
        let g = g_b();
        let rgs = g.arc_by_label("R_gs").unwrap();
        let labels: Vec<&str> =
            g.subtree_arcs(rgs).iter().map(|&a| g.arc(a).label.as_str()).collect();
        assert_eq!(labels, ["R_gs", "R_sb", "D_b", "R_st", "R_tc", "D_c", "R_td", "D_d"]);
    }

    #[test]
    fn dead_leaf_rejected() {
        let mut b = GraphBuilder::new("root");
        let root = b.root();
        b.reduction(root, "R", 1.0, "dangling");
        assert!(matches!(b.finish(), Err(GraphError::DeadLeaf(_))));
    }

    #[test]
    fn non_positive_cost_rejected() {
        let mut b = GraphBuilder::new("root");
        let root = b.root();
        b.retrieval(root, "D", 0.0);
        assert!(matches!(b.finish(), Err(GraphError::NonPositiveCost(_))));
    }

    #[test]
    fn dag_rejected_unless_allowed() {
        // The Note 5 non-tree example: { A :- B. B :- C. A :- C. }
        let build = |allow: bool| {
            let mut b = GraphBuilder::new("A");
            if allow {
                b = b.allow_dag();
            }
            let root = b.root();
            let (_, nb) = b.reduction(root, "R_ab", 1.0, "B");
            let (_, nc) = b.reduction(nb, "R_bc", 1.0, "C");
            b.retrieval(nc, "D_c", 1.0);
            b.reduction_to(root, nc, "R_ac", 1.0);
            b.finish()
        };
        assert!(matches!(build(false), Err(GraphError::NotTree(_))));
        let g = build(true).unwrap();
        assert!(!g.is_tree());
    }

    #[test]
    fn outline_is_readable() {
        let g = g_a();
        let o = g.outline();
        assert!(o.contains("R_p"));
        assert!(o.contains("D_g"));
        assert!(o.starts_with("instructor"));
    }

    #[test]
    fn total_cost_sums_arcs() {
        assert_eq!(g_b().total_cost(), 10.0);
    }
}
