//! E4 — Section 3.2 / Figure 2: the G_B example and PIB's hill-climb.
//!
//! Paper claims: the Δ̃ under-estimates for `Θ_ABCD` in context `I_c`
//! (first success at `D_c`, `D_d` unexplored) are
//! `Δ̃[Θ_ABCD, Θ_ABDC, I_c] = −f*(R_td)` and the paper's Λ values are
//! `Λ[Θ_ABCD, Θ_ABDC] = f*(R_tc)+f*(R_td)`,
//! `Λ[Θ_ABCD, Θ_ACDB] = f*(R_sb)+f*(R_st)`. A full PIB run on `G_B`
//! climbs through strategies of strictly decreasing expected cost.

use crate::report::{fm, Report};
use qpl_core::delta::delta_tilde;
use qpl_core::{Pib, PibConfig, SiblingSwap};
use qpl_graph::context::{execute, Context};
use qpl_graph::expected::{ContextDistribution, IndependentModel};
use qpl_workload::figure2;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E4 and returns the report.
pub fn run(seed: u64) -> Report {
    let (g, theta_abcd) = figure2();
    let by = |l: &str| g.arc_by_label(l).expect("paper labels present");

    let mut r = Report::new("E4: Figure 2 (G_B) — Δ̃ under-estimates and PIB hill-climbing");
    r.note("Θ_ABCD = ⟨R_ga D_a R_gs R_sb D_b R_st R_tc D_c R_td D_d⟩ (Equation 4)");

    // Δ̃ analysis in I_c.
    let i_c = Context::with_blocked(&g, &[by("D_a"), by("D_b")]);
    let trace = execute(&g, &theta_abcd, &i_c);
    let swap_dc = SiblingSwap::new(&g, by("R_tc"), by("R_td")).expect("siblings");
    let theta_abdc = swap_dc.apply(&g, &theta_abcd).expect("applies");
    let swap_b_t = SiblingSwap::new(&g, by("R_sb"), by("R_st")).expect("siblings");
    let theta_acdb = swap_b_t.apply(&g, &theta_abcd).expect("applies");

    let tilde_abdc = delta_tilde(&g, &trace, &theta_abdc);
    let tilde_acdb = delta_tilde(&g, &trace, &theta_acdb);
    r.table(
        "Δ̃ in I_c (D_a, D_b blocked; first success D_c; D_d unexplored)",
        &["quantity", "paper", "measured"],
        vec![
            vec!["Δ̃[Θ_ABCD, Θ_ABDC, I_c]".into(), "−f*(R_td) = −2".into(), fm(tilde_abdc, 0)],
            vec!["Δ̃[Θ_ABCD, Θ_ACDB, I_c]".into(), "(not stated)".into(), fm(tilde_acdb, 0)],
        ],
    );
    r.table(
        "range bounds Λ",
        &["pair", "paper", "measured"],
        vec![
            vec![
                "Λ[Θ_ABCD, Θ_ABDC]".into(),
                "f*(R_tc)+f*(R_td) = 4".into(),
                fm(swap_dc.lambda(&g), 0),
            ],
            vec![
                "Λ[Θ_ABCD, Θ_ACDB]".into(),
                "f*(R_sb)+f*(R_st) = 7".into(),
                fm(swap_b_t.lambda(&g), 0),
            ],
        ],
    );

    // Full PIB hill-climb: the motivating scenario "D_a, D_b, D_c all
    // fail, but D_d succeeds" as a distribution.
    let truth =
        IndependentModel::from_retrieval_probs(&g, &[0.05, 0.05, 0.05, 0.85]).expect("valid");
    let mut pib = Pib::new(&g, theta_abcd.clone(), PibConfig::new(0.05));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trajectory = vec![(0u64, truth.expected_cost(&g, pib.strategy()))];
    let mut climbs = 0;
    for _ in 0..80_000 {
        pib.observe(&g, &truth.sample(&mut rng));
        if pib.history().len() > climbs {
            climbs = pib.history().len();
            trajectory.push((pib.contexts_seen(), truth.expected_cost(&g, pib.strategy())));
        }
    }
    let rows: Vec<Vec<String>> = trajectory
        .iter()
        .enumerate()
        .map(|(j, (n, c))| vec![format!("Θ_{j}"), n.to_string(), fm(*c, 4)])
        .collect();
    r.table(
        "PIB trajectory under p = ⟨0.05, 0.05, 0.05, 0.85⟩ (D_d usually succeeds)",
        &["strategy", "contexts seen", "C[Θ] (exact)"],
        rows,
    );
    let (_, c_opt) =
        qpl_core::brute_force_optimal(&g, &truth, 1_000_000).expect("G_B is enumerable");
    r.note(format!("global optimum over all path-form strategies: {}", fm(c_opt, 4)));

    let monotone = trajectory.windows(2).all(|w| w[1].1 < w[0].1 + 1e-12);
    let ok = (tilde_abdc + 2.0).abs() < 1e-9
        && (swap_dc.lambda(&g) - 4.0).abs() < 1e-9
        && (swap_b_t.lambda(&g) - 7.0).abs() < 1e-9
        && climbs >= 1
        && monotone;
    r.set_verdict(if ok {
        "REPRODUCED (Δ̃ and Λ match; every PIB climb lowered the true expected cost)"
    } else {
        "MISMATCH"
    });
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn e4_reproduces() {
        let r = super::run(4242);
        assert!(r.verdict.starts_with("REPRODUCED"), "{r}");
    }
}
