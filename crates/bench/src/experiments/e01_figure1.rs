//! E1 — Section 2 / Figure 1: the worked expected-cost example.
//!
//! Paper claims (with the erratum documented in DESIGN.md):
//! * `c(Θ₁, I₁) = 4`, `c(Θ₂, I₁) = 2`, `c(Θ₁, I₂) = 2`, `c(Θ₂, I₂) = 4`;
//! * under the 60/15/25 query mix the expected costs are 2.8 and 3.7 —
//!   the paper attaches 3.7 to Θ₁ and 2.8 to Θ₂ but its own later
//!   statements (the PAO example) pin Θ₁ = prof-first, whose cost under
//!   this mix is 2.8.

use crate::report::{fm, Report};
use qpl_engine::{QueryProcessor, RunCache};
use qpl_graph::context::{cost, RunScratch};
use qpl_graph::expected::ContextDistribution;
use qpl_graph::Context;
use qpl_workload::university;

/// Runs E1 and returns the report.
pub fn run() -> Report {
    let mut u = university();
    let g = u.graph().clone();
    let (dp, dg) = (u.d_p(), u.d_g());
    let i1 = Context::with_blocked(&g, &[dp]); // instructor(manolis)
    let i2 = Context::with_blocked(&g, &[dg]); // instructor(russ)

    let mut r = Report::new("E1: Figure 1 / Section 2 — per-context and expected costs");
    r.note("Θ₁ = ⟨R_p D_p R_g D_g⟩ (prof-first), Θ₂ = ⟨R_g D_g R_p D_p⟩ (grad-first)");
    r.note("I₁ = ⟨instructor(manolis), DB₁⟩, I₂ = ⟨instructor(russ), DB₁⟩, unit arc costs");

    let rows = vec![
        vec!["c(Θ₁, I₁)".into(), "4".into(), fm(cost(&g, &u.prof_first, &i1), 0)],
        vec!["c(Θ₂, I₁)".into(), "2".into(), fm(cost(&g, &u.grad_first, &i1), 0)],
        vec!["c(Θ₁, I₂)".into(), "2".into(), fm(cost(&g, &u.prof_first, &i2), 0)],
        vec!["c(Θ₂, I₂)".into(), "4".into(), fm(cost(&g, &u.grad_first, &i2), 0)],
    ];
    r.table("per-context costs (Section 2.1)", &["quantity", "paper", "measured"], rows);

    let dist = u.section2_distribution();
    let c1 = dist.expected_cost(&g, &u.prof_first);
    let c2 = dist.expected_cost(&g, &u.grad_first);
    r.table(
        "expected costs under 60% russ / 15% manolis / 25% fred",
        &["strategy", "paper (erratum-corrected)", "measured (exact)"],
        vec![
            vec!["Θ₁ prof-first".into(), "2.8".into(), fm(c1, 4)],
            vec!["Θ₂ grad-first".into(), "3.7".into(), fm(c2, 4)],
        ],
    );

    // Same numbers through the real Datalog engine (Note 2 equivalence).
    let queries = u.section2_queries();
    let qp1 = QueryProcessor::new(&u.compiled, u.prof_first.clone());
    let qp2 = QueryProcessor::new(&u.compiled, u.grad_first.clone());
    let engine_cost = |qp: &QueryProcessor<'_>| -> f64 {
        queries
            .iter()
            .map(|(q, w)| w * qp.run(q, &u.db1).expect("paper queries valid").trace.cost)
            .sum()
    };
    let e1 = engine_cost(&qp1);
    let e2 = engine_cost(&qp2);
    r.table(
        "same, via the Datalog-backed query processor",
        &["strategy", "graph-level", "engine-level"],
        vec![
            vec!["Θ₁ prof-first".into(), fm(c1, 4), fm(e1, 4)],
            vec!["Θ₂ grad-first".into(), fm(c2, 4), fm(e2, 4)],
        ],
    );

    // Same numbers once more through the run cache: the second pass over
    // the mix must be answered entirely from the memo, at identical cost.
    let cached_cost = |qp: &QueryProcessor<'_>| -> (f64, f64, u64) {
        let mut cache = RunCache::new();
        let mut scratch = RunScratch::new(&u.compiled.graph);
        let mut pass = || -> f64 {
            queries
                .iter()
                .map(|(q, w)| {
                    w * qp
                        .run_cost_cached(q, &u.db1, &mut cache, &mut scratch)
                        .expect("paper queries valid")
                        .1
                })
                .sum()
        };
        let cold = pass();
        let warm = pass();
        (cold, warm, cache.stats().hits)
    };
    let (cold1, warm1, hits1) = cached_cost(&qp1);
    let (cold2, warm2, hits2) = cached_cost(&qp2);
    r.table(
        "same, replayed through the cross-context run cache",
        &["strategy", "cold pass", "warm pass", "warm hits"],
        vec![
            vec!["Θ₁ prof-first".into(), fm(cold1, 4), fm(warm1, 4), hits1.to_string()],
            vec!["Θ₂ grad-first".into(), fm(cold2, 4), fm(warm2, 4), hits2.to_string()],
        ],
    );

    let ok = (c1 - 2.8).abs() < 1e-9
        && (c2 - 3.7).abs() < 1e-9
        && (e1 - c1).abs() < 1e-9
        && (e2 - c2).abs() < 1e-9
        && (cold1 - e1).abs() < 1e-9
        && (warm1 - e1).abs() < 1e-9
        && (cold2 - e2).abs() < 1e-9
        && (warm2 - e2).abs() < 1e-9
        && hits1 == queries.len() as u64
        && hits2 == queries.len() as u64;
    r.set_verdict(if ok {
        "REPRODUCED (values 2.8/3.7 as in the paper; strategy labels per the erratum in DESIGN.md)"
    } else {
        "MISMATCH"
    });
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn e1_reproduces() {
        let r = super::run();
        assert!(r.verdict.starts_with("REPRODUCED"), "{r}");
    }
}
