//! E8 — Theorem 3: aiming at possibly-unreachable experiments.
//!
//! Paper claims: (a) the Section-4.1 rule `grad(fred) :- admitted(fred, X)`
//! makes the `admitted` retrieval unreachable for non-fred queries, so a
//! fixed sampler starves; (b) Equation 8's attempt counts `m'(e)` suffice
//! — each *attempt to reach* `e` either samples `e` or refines `ρ̂(e)`;
//! (c) footnote 11: `m'(e)`'s leading asymptotic term is
//! `2(nF¬/ε)²·ln(4n/δ)`, matching Equation 7 up to the log factor.

use crate::report::{fm, Report};
use qpl_core::{Pao, PaoConfig};
use qpl_engine::classify_context;
use qpl_graph::expected::ContextDistribution;
use qpl_graph::IndependentModel;
use qpl_stats::sample::{theorem3_asymptotic, theorem3_attempts};
use qpl_workload::paper::reachability;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs E8 and returns the report.
pub fn run(seed: u64) -> Report {
    let mut r = Report::new("E8: Theorem 3 — attempting to reach guarded experiments");

    // (a) The guarded arc in the compiled Section-4.1 KB.
    let (mut table, cg, db) = reachability();
    let g = cg.graph.clone();
    let guarded_reduction = g
        .arc_ids()
        .find(|&a| {
            matches!(cg.binding(a),
                qpl_graph::compile::ArcBinding::Reduction { guards, .. } if !guards.is_empty())
        })
        .expect("guarded rule compiles to a guarded arc");
    let admitted_retrieval = g
        .retrievals()
        .find(|&a| g.arc(a).label.contains("admitted"))
        .expect("admitted retrieval exists");

    // Query mix: mostly non-fred, occasionally fred.
    let names = ["russ", "manolis", "fred", "nobody"];
    let weights = [0.45, 0.35, 0.10, 0.10];
    let queries: Vec<(qpl_datalog::Atom, f64)> = names
        .iter()
        .zip(weights)
        .map(|(n, w)| {
            (
                qpl_datalog::parser::parse_query(&format!("instructor({n})"), &mut table)
                    .expect("query parses"),
                w,
            )
        })
        .collect();

    // Build contexts and measure reachability of the admitted retrieval.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pao = Pao::with_experiments(
        &g,
        PaoConfig::theorem3(2.0, 0.1).with_sample_cap(400),
        vec![guarded_reduction, admitted_retrieval],
    )
    .expect("tree graph");
    let mut draws = 0u64;
    while !pao.done() {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut pick = 0usize;
        for (i, (_, w)) in queries.iter().enumerate() {
            acc += w;
            if u < acc {
                pick = i;
                break;
            }
        }
        let ctx = classify_context(&cg, &queries[pick].0, &db).expect("valid query");
        pao.observe(&g, &ctx);
        draws += 1;
        assert!(draws < 500_000, "sampling failed to terminate");
    }
    let s_guard = pao.stats().iter().find(|s| s.arc == guarded_reduction).expect("tracked");
    let s_adm = pao.stats().iter().find(|s| s.arc == admitted_retrieval).expect("tracked");
    r.table(
        "guarded-arc statistics (10% of queries are about fred)",
        &["experiment", "attempts", "reached (k)", "ρ̂", "p̂"],
        vec![
            vec![
                "grad(fred):-admitted reduction".into(),
                s_guard.attempts.to_string(),
                s_guard.reached.to_string(),
                fm(s_guard.rho_hat(), 3),
                fm(s_guard.p_hat(), 2),
            ],
            vec![
                "admitted(fred, _) retrieval".into(),
                s_adm.attempts.to_string(),
                s_adm.reached.to_string(),
                fm(s_adm.rho_hat(), 3),
                fm(s_adm.p_hat(), 2),
            ],
        ],
    );
    r.note(format!("total contexts drawn: {draws}; sampling terminated despite ρ ≈ 0.10"));

    // (c) Footnote 11's asymptotic convergence.
    let mut rows = Vec::new();
    let (f_not, delta_p) = (2.0, 0.1);
    for &eps in &[1.0, 0.1, 0.01, 0.001] {
        let exact = theorem3_attempts(f_not, eps, delta_p, 4) as f64;
        let asym = theorem3_asymptotic(f_not, eps, delta_p, 4);
        rows.push(vec![format!("{eps}"), fm(exact, 0), fm(asym, 0), fm(exact / asym, 4)]);
    }
    r.table(
        "footnote 11: Equation 8 vs its asymptotic (F¬ = 2, δ = 0.1, n = 4)",
        &["ε", "m'(e) exact", "asymptotic", "ratio → 1"],
        rows,
    );

    // Theorem-3 guarantee with an always-blocked experiment on a
    // synthetic model (the extreme ρ = 0 case).
    let (_, c_before) = {
        let mut truth = IndependentModel::uniform(&g, 1.0).expect("valid");
        // Non-fred queries dominate: estimate effective probabilities.
        for a in g.retrievals() {
            truth.set_prob(a, 0.4).expect("valid");
        }
        truth.set_prob(guarded_reduction, 0.0).expect("valid");
        let s = qpl_graph::Strategy::left_to_right(&g);
        (s.clone(), truth.expected_cost(&g, &s))
    };
    r.note(format!(
        "ρ(admitted) = 0 extreme: Υ is insensitive to p̂(admitted) (left-to-right cost {})",
        fm(c_before, 3)
    ));

    let ok = s_adm.reached < s_adm.attempts && s_guard.rho_hat() > 0.9 // guard reached whenever aimed
        && s_adm.rho_hat() < 0.3
        && (theorem3_attempts(2.0, 0.001, 0.1, 4) as f64
            / theorem3_asymptotic(2.0, 0.001, 0.1, 4)
            - 1.0)
            .abs()
            < 0.01;
    r.set_verdict(if ok {
        "REPRODUCED (guarded experiment sampled via attempts; asymptotic confirmed)"
    } else {
        "MISMATCH"
    });
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn e8_reproduces() {
        let r = super::run(808);
        assert!(r.verdict.starts_with("REPRODUCED"), "{r}");
    }
}
