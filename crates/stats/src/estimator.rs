//! Counter-based estimators.
//!
//! Section 5.1 of the paper stresses that PIB and PAO are "unobtrusive":
//! the only state they maintain is "one or two counters per retrieval".
//! These types are those counters.
//!
//! * [`BernoulliEstimator`] — attempts/successes of a single retrieval or
//!   probabilistic experiment; yields the frequency estimate `p̂ᵢ`
//!   (defaulting to the paper's `0.5` when no trials were reached,
//!   per Theorem 3).
//! * [`PairedDifference`] — the running sum `Δ̃[Θ, Θ', S]` of
//!   (under-estimated) paired cost differences, with the range `Λ` needed
//!   by Equation 5/6.
//! * [`RangedMean`] — a generic bounded-range mean estimator with
//!   Hoeffding confidence radii.

use crate::chernoff;

/// Success-frequency counter for one probabilistic experiment.
///
/// # Examples
/// ```
/// use qpl_stats::BernoulliEstimator;
/// let mut e = BernoulliEstimator::new();
/// for _ in 0..18 { e.record(true); }
/// for _ in 0..12 { e.record(false); }
/// assert_eq!(e.trials(), 30);
/// assert!((e.estimate() - 0.6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BernoulliEstimator {
    trials: u64,
    successes: u64,
}

impl BernoulliEstimator {
    /// Fresh counter with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counter pre-loaded with `successes` out of `trials`.
    ///
    /// # Panics
    /// Panics if `successes > trials`.
    pub fn from_counts(trials: u64, successes: u64) -> Self {
        assert!(successes <= trials, "successes cannot exceed trials");
        Self { trials, successes }
    }

    /// Records one trial.
    pub fn record(&mut self, success: bool) {
        self.trials += 1;
        if success {
            self.successes += 1;
        }
    }

    /// Total trials observed (`k(eᵢ)` in Theorem 3).
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Total successes observed (`n(eᵢ)` in Theorem 3).
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Frequency estimate `p̂ = successes/trials`, or the paper's default
    /// `0.5` when no trial has been observed (Theorem 3: "`p̂ᵢ = 0.5` if
    /// `k(eᵢ) = 0`").
    pub fn estimate(&self) -> f64 {
        if self.trials == 0 {
            0.5
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// One-sided Hoeffding radius at confidence `1 − δ`:
    /// `|p̂ − p| ≤ radius` with probability `≥ 1 − 2δ` (two-sided by
    /// union bound). Returns `1.0` (vacuous) when no trials exist.
    pub fn radius(&self, delta: f64) -> f64 {
        if self.trials == 0 {
            1.0
        } else {
            chernoff::confidence_radius(self.trials, delta, 1.0).min(1.0)
        }
    }

    /// Merges another counter into this one (used when parallel oracles
    /// shard the sample stream).
    pub fn merge(&mut self, other: &Self) {
        self.trials += other.trials;
        self.successes += other.successes;
    }
}

/// Running total of paired cost differences `Σᵢ Δ̃ᵢ` for one candidate
/// transformation, together with the per-sample range `Λ`.
///
/// PIB's Equation 6 accepts the candidate when
/// `sum ≥ Λ·sqrt((|S|/2)·ln(1/δᵢ))`.
#[derive(Debug, Clone, Copy)]
pub struct PairedDifference {
    sum: f64,
    count: u64,
    range: f64,
}

impl PairedDifference {
    /// Creates an accumulator whose per-sample differences lie in an
    /// interval of width `range` (= the paper's `Λ[Θ,Θ']`).
    ///
    /// # Panics
    /// Panics if `range` is not positive and finite.
    pub fn new(range: f64) -> Self {
        assert!(range > 0.0 && range.is_finite(), "range must be positive and finite");
        Self { sum: 0.0, count: 0, range }
    }

    /// Rebuilds an accumulator from persisted state — used by the
    /// durability layer to restore Chernoff bookkeeping across a
    /// restart. `sum` must be the exact bits of a previously exported
    /// [`sum`](Self::sum) so thresholds reproduce bit-identically.
    ///
    /// # Panics
    /// Panics if `range` is invalid (as [`new`](Self::new)), if `sum`
    /// is non-finite, or if the pair is inconsistent (`count == 0`
    /// with a nonzero sum, or `|sum|` exceeding `count · range`).
    pub fn restore(range: f64, sum: f64, count: u64) -> Self {
        let mut acc = Self::new(range);
        assert!(sum.is_finite(), "restored sum must be finite");
        assert!(
            sum.abs() <= count as f64 * range + 1e-6,
            "restored sum {sum} inconsistent with {count} samples of range {range}"
        );
        acc.sum = sum;
        acc.count = count;
        acc
    }

    /// Adds one paired difference observation.
    ///
    /// # Panics
    /// In debug builds, panics if `|d|` exceeds the declared range (the
    /// Hoeffding bound would be invalid).
    pub fn record(&mut self, d: f64) {
        debug_assert!(
            d.abs() <= self.range + 1e-9,
            "difference {d} exceeds declared range {}",
            self.range
        );
        self.sum += d;
        self.count += 1;
    }

    /// Running sum `Δ̃[Θ, Θ', S]`.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Number of samples `|S|`.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Declared range `Λ`.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// The paper's Equation 2/5/6 acceptance threshold at per-test budget
    /// `δ`: `Λ·sqrt((|S|/2)·ln(1/δ))`. Infinite when no samples exist, so
    /// an empty accumulator never accepts.
    pub fn threshold(&self, delta: f64) -> f64 {
        if self.count == 0 {
            f64::INFINITY
        } else {
            chernoff::sum_threshold(self.count, delta, self.range)
        }
    }

    /// Whether the accumulated evidence certifies (at budget `δ`) that the
    /// true mean difference is positive.
    pub fn certifies_improvement(&self, delta: f64) -> bool {
        self.sum > self.threshold(delta)
    }

    /// Resets the accumulator (PIB restarts statistics after each climb;
    /// Figure 3's `S ← {}` at label L1).
    pub fn reset(&mut self) {
        self.sum = 0.0;
        self.count = 0;
    }

    /// Absorbs a partial accumulator produced over a disjoint shard of the
    /// sample stream (the parallel harness merges per-block partials in
    /// block order, so `a.merge(&b)` must mean "b's samples came after
    /// a's": it appends b's sum to a's).
    ///
    /// # Panics
    /// Panics if the two accumulators declare different ranges `Λ` —
    /// their Hoeffding thresholds would be incomparable.
    pub fn merge(&mut self, other: &Self) {
        assert!(
            self.range == other.range,
            "cannot merge PairedDifference accumulators with ranges {} and {}",
            self.range,
            other.range
        );
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// Generic mean estimator for observations confined to `[lo, hi]`.
#[derive(Debug, Clone, Copy)]
pub struct RangedMean {
    sum: f64,
    count: u64,
    lo: f64,
    hi: f64,
}

impl RangedMean {
    /// Creates an estimator for values in `[lo, hi]`.
    ///
    /// # Panics
    /// Panics unless `lo < hi` and both are finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "need finite lo < hi");
        Self { sum: 0.0, count: 0, lo, hi }
    }

    /// Records an observation, clamping tiny numeric overshoot.
    ///
    /// # Panics
    /// In debug builds, panics if the value is far outside the range.
    pub fn record(&mut self, v: f64) {
        debug_assert!(
            v >= self.lo - 1e-9 && v <= self.hi + 1e-9,
            "value {v} outside [{}, {}]",
            self.lo,
            self.hi
        );
        self.sum += v.clamp(self.lo, self.hi);
        self.count += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; `None` before any observation.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Hoeffding radius at one-sided confidence `1 − δ`.
    pub fn radius(&self, delta: f64) -> f64 {
        if self.count == 0 {
            f64::INFINITY
        } else {
            chernoff::confidence_radius(self.count, delta, self.hi - self.lo)
        }
    }

    /// Absorbs a partial estimator built over a disjoint shard of the
    /// sample stream (sum and count add; see
    /// [`PairedDifference::merge`] for the ordering contract).
    ///
    /// # Panics
    /// Panics if the two estimators declare different ranges.
    pub fn merge(&mut self, other: &Self) {
        assert!(
            self.lo == other.lo && self.hi == other.hi,
            "cannot merge RangedMean estimators over different ranges"
        );
        self.sum += other.sum;
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_default_is_half() {
        assert_eq!(BernoulliEstimator::new().estimate(), 0.5);
    }

    #[test]
    fn bernoulli_counts() {
        let mut e = BernoulliEstimator::new();
        e.record(true);
        e.record(false);
        e.record(true);
        assert_eq!(e.trials(), 3);
        assert_eq!(e.successes(), 2);
        assert!((e.estimate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bernoulli_merge_adds() {
        let mut a = BernoulliEstimator::from_counts(10, 4);
        let b = BernoulliEstimator::from_counts(20, 16);
        a.merge(&b);
        assert_eq!(a.trials(), 30);
        assert_eq!(a.successes(), 20);
    }

    #[test]
    #[should_panic(expected = "successes")]
    fn bernoulli_rejects_inconsistent_counts() {
        BernoulliEstimator::from_counts(3, 5);
    }

    #[test]
    fn bernoulli_radius_shrinks() {
        let small = BernoulliEstimator::from_counts(10, 5).radius(0.05);
        let large = BernoulliEstimator::from_counts(1000, 500).radius(0.05);
        assert!(large < small);
        assert_eq!(BernoulliEstimator::new().radius(0.05), 1.0);
    }

    #[test]
    fn paired_difference_threshold_matches_eq2() {
        let mut pd = PairedDifference::new(4.0);
        for _ in 0..100 {
            pd.record(1.0);
        }
        let t = pd.threshold(0.05);
        assert!((t - chernoff::sum_threshold(100, 0.05, 4.0)).abs() < 1e-12);
        assert!(pd.certifies_improvement(0.05), "sum 100 ≫ threshold {t}");
    }

    #[test]
    fn paired_difference_empty_never_certifies() {
        let pd = PairedDifference::new(1.0);
        assert!(!pd.certifies_improvement(0.5));
        assert_eq!(pd.threshold(0.5), f64::INFINITY);
    }

    #[test]
    fn paired_difference_reset_clears() {
        let mut pd = PairedDifference::new(2.0);
        pd.record(1.5);
        pd.reset();
        assert_eq!(pd.count(), 0);
        assert_eq!(pd.sum(), 0.0);
    }

    #[test]
    fn negative_evidence_never_certifies() {
        let mut pd = PairedDifference::new(1.0);
        for _ in 0..10_000 {
            pd.record(-0.5);
        }
        assert!(!pd.certifies_improvement(0.5));
    }

    #[test]
    fn ranged_mean_basic() {
        let mut m = RangedMean::new(0.0, 10.0);
        assert_eq!(m.mean(), None);
        m.record(2.0);
        m.record(4.0);
        assert_eq!(m.mean(), Some(3.0));
        assert!(m.radius(0.1).is_finite());
    }

    #[test]
    fn ranged_mean_clamps_overshoot() {
        let mut m = RangedMean::new(0.0, 1.0);
        m.record(1.0 + 1e-12);
        assert!(m.mean().unwrap() <= 1.0);
    }

    #[test]
    fn paired_difference_restore_reproduces_thresholds_bitwise() {
        let mut live = PairedDifference::new(4.0);
        for d in [0.5, -1.0, 2.0, 1.5, -0.25] {
            live.record(d);
        }
        let restored = PairedDifference::restore(live.range(), live.sum(), live.count());
        assert_eq!(restored.sum().to_bits(), live.sum().to_bits());
        assert_eq!(restored.count(), live.count());
        assert_eq!(restored.threshold(0.05).to_bits(), live.threshold(0.05).to_bits());
        assert_eq!(restored.certifies_improvement(0.05), live.certifies_improvement(0.05));
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn paired_difference_restore_rejects_impossible_state() {
        PairedDifference::restore(1.0, 50.0, 3);
    }

    #[test]
    fn paired_difference_merge_matches_serial_fold() {
        let observations = [0.5, -1.0, 2.0, 1.5, -0.25, 3.0, 0.0, -2.5];
        let mut serial = PairedDifference::new(4.0);
        for d in observations {
            serial.record(d);
        }
        let mut a = PairedDifference::new(4.0);
        let mut b = PairedDifference::new(4.0);
        for d in &observations[..3] {
            a.record(*d);
        }
        for d in &observations[3..] {
            b.record(*d);
        }
        a.merge(&b);
        assert_eq!(a.count(), serial.count());
        assert_eq!(a.sum().to_bits(), serial.sum().to_bits());
    }

    #[test]
    #[should_panic(expected = "ranges")]
    fn paired_difference_merge_rejects_mismatched_range() {
        let mut a = PairedDifference::new(1.0);
        a.merge(&PairedDifference::new(2.0));
    }

    #[test]
    fn ranged_mean_merge_adds() {
        let mut a = RangedMean::new(0.0, 10.0);
        let mut b = RangedMean::new(0.0, 10.0);
        a.record(2.0);
        b.record(4.0);
        b.record(6.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), Some(4.0));
    }

    #[test]
    #[should_panic(expected = "different ranges")]
    fn ranged_mean_merge_rejects_mismatched_range() {
        let mut a = RangedMean::new(0.0, 1.0);
        a.merge(&RangedMean::new(0.0, 2.0));
    }
}
