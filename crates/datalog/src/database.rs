//! The extensional database: per-predicate relations of ground facts.
//!
//! The paper's cost model charges one "attempted retrieval" per database
//! probe; the probe itself is the ground-membership test
//! [`Database::contains`]. Pattern matching (for free-argument query
//! forms and for the bottom-up oracle) uses per-column hash indexes.

use crate::error::DatalogError;
use crate::symbol::{Symbol, SymbolTable};
use crate::term::{Atom, Fact, Term};
use crate::unify::Substitution;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide source of [`Database`] instance ids. Starts at 1 so the
/// id 0 can serve as an "unstamped" sentinel in cache validity keys.
static NEXT_INSTANCE_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_instance_id() -> u64 {
    NEXT_INSTANCE_ID.fetch_add(1, Ordering::Relaxed)
}

/// What a successful [`Database::insert`] or [`Database::retract`] did.
///
/// The delta names the touched predicate so callers can invalidate (or
/// incrementally maintain) caches selectively: only cached state whose
/// dependency footprint contains [`Delta::predicate`] can be stale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delta {
    /// The predicate the operation targeted.
    pub predicate: Symbol,
    /// Whether a fact was added or removed.
    pub op: DeltaOp,
    /// `true` iff the database actually changed (the fact was new on
    /// insert / present on retract). When `false` no generation advanced
    /// and no cache needs to move.
    pub changed: bool,
}

/// The direction of a [`Delta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOp {
    /// A fact was (or would have been) added.
    Insert,
    /// A fact was (or would have been) removed.
    Retract,
}

/// A single predicate's stored rows plus per-column indexes.
///
/// Retraction tombstones the row (`live[id] = false`) and removes its id
/// from every posting list, so `select` never revisits dead rows and the
/// lists stay ascending (the binary-search intersection invariant).
/// Re-inserting a retracted row appends a fresh id; dead slots are never
/// reused, keeping surviving row ids stable.
#[derive(Debug, Clone, Default)]
struct Relation {
    arity: usize,
    rows: Vec<Box<[Symbol]>>,
    /// `live[id]` = row `id` has not been retracted.
    live: Vec<bool>,
    live_count: usize,
    /// Hash of every live row for O(1) membership.
    set: HashSet<Box<[Symbol]>>,
    /// `index[col][symbol]` = live row ids having `symbol` at `col`.
    index: Vec<HashMap<Symbol, Vec<usize>>>,
}

impl Relation {
    fn new(arity: usize) -> Self {
        Self {
            arity,
            rows: Vec::new(),
            live: Vec::new(),
            live_count: 0,
            set: HashSet::new(),
            index: vec![HashMap::new(); arity],
        }
    }

    fn insert(&mut self, row: Box<[Symbol]>) -> bool {
        if self.set.contains(&row) {
            return false;
        }
        let id = self.rows.len();
        for (col, &s) in row.iter().enumerate() {
            self.index[col].entry(s).or_default().push(id);
        }
        self.set.insert(row.clone());
        self.rows.push(row);
        self.live.push(true);
        self.live_count += 1;
        true
    }

    fn remove(&mut self, row: &[Symbol]) -> bool {
        if !self.set.remove(row) {
            return false;
        }
        // Locate the live row id. Arity ≥ 1 rows are found through the
        // first column's posting list; arity-0 relations have at most one
        // live row, found by scanning the (tiny) live mask.
        let id = if let Some(&first) = row.first() {
            *self.index[0]
                .get(&first)
                .into_iter()
                .flatten()
                .find(|&&id| *self.rows[id] == *row)
                .expect("row in set has a posting-list entry")
        } else {
            (0..self.rows.len()).find(|&id| self.live[id]).expect("row in set is live")
        };
        debug_assert!(self.live[id]);
        self.live[id] = false;
        self.live_count -= 1;
        for (col, s) in row.iter().enumerate() {
            if let Some(list) = self.index[col].get_mut(s) {
                if let Ok(pos) = list.binary_search(&id) {
                    list.remove(pos);
                }
                if list.is_empty() {
                    self.index[col].remove(s);
                }
            }
        }
        true
    }

    fn contains(&self, row: &[Symbol]) -> bool {
        self.set.contains(row)
    }

    /// Rows matching a pattern (Some = must equal, None = free), in
    /// ascending row-id (insertion) order.
    ///
    /// Every bound column contributes its posting list and the lists are
    /// intersected (driving from the shortest), so no residual per-row
    /// filter is needed; a pattern with no bound column falls back to a
    /// full scan. Posting lists are ascending by construction (rows are
    /// appended with increasing ids), which both makes the intersection a
    /// binary-search probe and keeps the output order deterministic.
    fn select<'a>(
        &'a self,
        pattern: &[Option<Symbol>],
    ) -> Box<dyn Iterator<Item = &'a [Symbol]> + 'a> {
        debug_assert_eq!(pattern.len(), self.arity);
        let mut lists: Vec<&[usize]> = Vec::new();
        for (col, p) in pattern.iter().enumerate() {
            if let Some(sym) = p {
                lists.push(self.index[col].get(sym).map(Vec::as_slice).unwrap_or(&[]));
            }
        }
        if lists.is_empty() {
            // All columns free: every live row matches.
            return Box::new(
                self.rows
                    .iter()
                    .zip(self.live.iter())
                    .filter(|(_, &alive)| alive)
                    .map(|(r, _)| &**r),
            );
        }
        lists.sort_by_key(|l| l.len());
        let (shortest, rest) = lists.split_first().expect("at least one bound column");
        let rest = rest.to_vec();
        Box::new(
            shortest
                .iter()
                .copied()
                .filter(move |id| rest.iter().all(|l| l.binary_search(id).is_ok()))
                .map(move |i| &*self.rows[i]),
        )
    }
}

/// A database of ground atomic facts (the paper's `DB`).
///
/// # Examples
/// ```
/// use qpl_datalog::{Database, Fact, SymbolTable};
/// let mut t = SymbolTable::new();
/// let mut db = Database::new();
/// let prof = t.intern("prof");
/// let russ = t.intern("russ");
/// db.insert(Fact::new(prof, vec![russ])).unwrap();
/// assert!(db.contains(prof, &[russ]));
/// assert_eq!(db.fact_count(prof), 1);
/// ```
#[derive(Debug)]
pub struct Database {
    relations: HashMap<Symbol, Relation>,
    total: usize,
    /// Bumped on every successful insert or retract; lets caches detect
    /// that this database instance has changed without diffing contents.
    generation: u64,
    /// `pred_gen[p]` = value of `generation` when predicate `p` last
    /// changed. Stamps are drawn from the single monotone counter, so the
    /// max stamp over any predicate set moves iff one of them changed.
    pred_gen: HashMap<Symbol, u64>,
    /// Process-unique id distinguishing this instance from every other
    /// `Database` in the process (including clones of it).
    instance_id: u64,
}

impl Default for Database {
    fn default() -> Self {
        Self {
            relations: HashMap::new(),
            total: 0,
            generation: 0,
            pred_gen: HashMap::new(),
            instance_id: fresh_instance_id(),
        }
    }
}

impl Clone for Database {
    /// Clones the contents but assigns a **fresh instance id**: the clone
    /// is a new database that may immediately diverge from the original,
    /// so cache entries stamped with the original's identity must not
    /// validate against it (and vice versa).
    fn clone(&self) -> Self {
        Self {
            relations: self.relations.clone(),
            total: self.total,
            generation: self.generation,
            pred_gen: self.pred_gen.clone(),
            instance_id: fresh_instance_id(),
        }
    }
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a fact; the returned [`Delta`] has `changed == true` iff
    /// the fact was new.
    ///
    /// # Errors
    /// Returns [`DatalogError::ArityMismatch`] if the predicate was
    /// previously stored with a different arity.
    pub fn insert(&mut self, fact: Fact) -> Result<Delta, DatalogError> {
        let predicate = fact.predicate;
        let rel = self.relations.entry(predicate).or_insert_with(|| Relation::new(fact.arity()));
        if rel.arity != fact.arity() {
            return Err(DatalogError::ArityMismatch {
                predicate: format!("{}", predicate),
                expected: rel.arity,
                found: fact.arity(),
            });
        }
        let added = rel.insert(fact.args.into_boxed_slice());
        if added {
            self.total += 1;
            self.generation += 1;
            self.pred_gen.insert(predicate, self.generation);
        }
        Ok(Delta { predicate, op: DeltaOp::Insert, changed: added })
    }

    /// Removes a fact; the returned [`Delta`] has `changed == true` iff
    /// the fact was present. Retracting from an unknown predicate is a
    /// no-op (`changed == false`), not an error.
    ///
    /// # Errors
    /// Returns [`DatalogError::ArityMismatch`] if the predicate is stored
    /// with a different arity (the fact could never have been inserted,
    /// so the retract is almost certainly a caller bug).
    pub fn retract(&mut self, fact: Fact) -> Result<Delta, DatalogError> {
        let predicate = fact.predicate;
        let Some(rel) = self.relations.get_mut(&predicate) else {
            return Ok(Delta { predicate, op: DeltaOp::Retract, changed: false });
        };
        if rel.arity != fact.arity() {
            return Err(DatalogError::ArityMismatch {
                predicate: format!("{}", predicate),
                expected: rel.arity,
                found: fact.arity(),
            });
        }
        let removed = rel.remove(&fact.args);
        if removed {
            self.total -= 1;
            self.generation += 1;
            self.pred_gen.insert(predicate, self.generation);
        }
        Ok(Delta { predicate, op: DeltaOp::Retract, changed: removed })
    }

    /// Monotone change counter: advances exactly when a fact is added or
    /// retracted. Two reads returning the same value bracket a window in
    /// which this instance's contents were unchanged, so answers memoized
    /// against it (e.g. `qpl-engine`'s cross-context tables) are still
    /// valid. The counter says nothing about *other* `Database` instances
    /// — cache keys must carry [`Database::instance_id`] alongside it.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Generation stamp of the last change touching `predicate` (0 if it
    /// never changed). Stamps come from the shared monotone counter, so
    /// they are comparable across predicates.
    pub fn predicate_generation(&self, predicate: Symbol) -> u64 {
        self.pred_gen.get(&predicate).copied().unwrap_or(0)
    }

    /// Joint generation of a dependency footprint: the max stamp over
    /// `predicates`. Because stamps share one strictly increasing
    /// counter, this value advances iff a fact of some footprint
    /// predicate was inserted or retracted — changes elsewhere leave it
    /// fixed, which is exactly the selective-invalidation test caches
    /// need.
    pub fn footprint_generation<'a>(
        &self,
        predicates: impl IntoIterator<Item = &'a Symbol>,
    ) -> u64 {
        predicates.into_iter().map(|&p| self.predicate_generation(p)).max().unwrap_or(0)
    }

    /// Process-unique identity of this instance. Two databases (even a
    /// clone and its original, even at equal generations) never share an
    /// id, so folding it into cache validity keys prevents cross-instance
    /// aliasing.
    pub fn instance_id(&self) -> u64 {
        self.instance_id
    }

    /// Iterates over every predicate's generation stamp (for
    /// serialization; pair order is unspecified).
    pub fn predicate_generations(&self) -> impl Iterator<Item = (Symbol, u64)> + '_ {
        self.pred_gen.iter().map(|(&p, &g)| (p, g))
    }

    /// Overwrites the generation counter and per-predicate stamps with
    /// persisted values — the durability layer's recovery hook. After a
    /// restart, facts are reloaded through [`insert`](Self::insert)
    /// (which advances the counters as if the KB were built fresh);
    /// calling this afterwards re-aligns all stamps with the process
    /// that wrote the snapshot, so footprint-scoped cache validity
    /// behaves identically across the restart.
    ///
    /// The instance id is deliberately *not* restorable: it is process-
    /// unique by contract, and caches stamped by the dead process are
    /// gone with it.
    ///
    /// # Panics
    /// Panics if any stamp exceeds `generation` — such a state could
    /// never have been produced by the single monotone counter.
    pub fn restore_generations(
        &mut self,
        generation: u64,
        pred_gens: impl IntoIterator<Item = (Symbol, u64)>,
    ) {
        let pred_gen: HashMap<Symbol, u64> = pred_gens.into_iter().collect();
        for (&p, &g) in &pred_gen {
            assert!(
                g <= generation,
                "stamp {g} for predicate {p} exceeds restored generation {generation}"
            );
        }
        self.generation = generation;
        self.pred_gen = pred_gen;
    }

    /// Ground membership probe — the paper's attempted retrieval.
    pub fn contains(&self, predicate: Symbol, args: &[Symbol]) -> bool {
        self.relations.get(&predicate).is_some_and(|r| r.arity == args.len() && r.contains(args))
    }

    /// Ground membership probe on an atom; `false` if non-ground.
    pub fn contains_atom(&self, atom: &Atom) -> bool {
        match atom.to_fact() {
            Some(f) => self.contains(f.predicate, &f.args),
            None => false,
        }
    }

    /// Number of stored facts for `predicate` (the statistic used by the
    /// \[Smi89\]-style baseline of Section 2).
    pub fn fact_count(&self, predicate: Symbol) -> usize {
        self.relations.get(&predicate).map_or(0, |r| r.live_count)
    }

    /// Total stored facts.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Declared arity of `predicate`, if it has any facts.
    pub fn arity(&self, predicate: Symbol) -> Option<usize> {
        self.relations.get(&predicate).map(|r| r.arity)
    }

    /// All substitutions `σ` (extending `base`) such that `σ(atom)` is a
    /// stored fact. The workhorse of the bottom-up oracle and of
    /// free-argument retrievals.
    pub fn matches(&self, atom: &Atom, base: &Substitution) -> Vec<Substitution> {
        let Some(rel) = self.relations.get(&atom.predicate) else {
            return Vec::new();
        };
        if rel.arity != atom.arity() {
            return Vec::new();
        }
        // Resolve the atom under the base substitution into a pattern.
        let resolved: Vec<Term> = atom.args.iter().map(|&t| base.resolve(t)).collect();
        let pattern: Vec<Option<Symbol>> = resolved.iter().map(|t| t.as_const()).collect();
        let mut out = Vec::new();
        'rows: for row in rel.select(&pattern) {
            let mut sub = base.clone();
            for (&term, &sym) in resolved.iter().zip(row.iter()) {
                match term {
                    Term::Const(c) => {
                        if c != sym {
                            continue 'rows;
                        }
                    }
                    Term::Var(v) => {
                        // Repeated variables must bind consistently.
                        match sub.resolve(Term::Var(v)) {
                            Term::Const(c) if c != sym => continue 'rows,
                            Term::Const(_) => {}
                            Term::Var(w) => sub.bind(w, Term::Const(sym)),
                        }
                    }
                }
            }
            out.push(sub);
        }
        out
    }

    /// Iterates over all live facts (for display/serialization).
    pub fn facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.relations.iter().flat_map(|(&p, rel)| {
            rel.rows
                .iter()
                .zip(rel.live.iter())
                .filter(|(_, &alive)| alive)
                .map(move |(row, _)| Fact::new(p, row.to_vec()))
        })
    }

    /// Renders all facts, sorted, for test snapshots.
    pub fn dump(&self, table: &SymbolTable) -> Vec<String> {
        let mut out: Vec<String> = self.facts().map(|f| f.display(table).to_string()).collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Var;

    fn setup() -> (SymbolTable, Database) {
        (SymbolTable::new(), Database::new())
    }

    #[test]
    fn insert_and_probe() {
        let (mut t, mut db) = setup();
        let p = t.intern("prof");
        let (r, m) = (t.intern("russ"), t.intern("manolis"));
        assert!(db.insert(Fact::new(p, vec![r])).unwrap().changed);
        assert!(!db.insert(Fact::new(p, vec![r])).unwrap().changed, "duplicate insert is a no-op");
        assert!(db.contains(p, &[r]));
        assert!(!db.contains(p, &[m]));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let (mut t, mut db) = setup();
        let p = t.intern("p");
        let a = t.intern("a");
        db.insert(Fact::new(p, vec![a])).unwrap();
        let err = db.insert(Fact::new(p, vec![a, a])).unwrap_err();
        assert!(matches!(err, DatalogError::ArityMismatch { expected: 1, found: 2, .. }));
    }

    #[test]
    fn probe_with_wrong_arity_is_false() {
        let (mut t, mut db) = setup();
        let p = t.intern("p");
        let a = t.intern("a");
        db.insert(Fact::new(p, vec![a])).unwrap();
        assert!(!db.contains(p, &[a, a]));
        assert!(!db.contains(p, &[]));
    }

    #[test]
    fn matches_binds_free_variables() {
        let (mut t, mut db) = setup();
        let e = t.intern("edge");
        let (a, b, c) = (t.intern("a"), t.intern("b"), t.intern("c"));
        db.insert(Fact::new(e, vec![a, b])).unwrap();
        db.insert(Fact::new(e, vec![a, c])).unwrap();
        db.insert(Fact::new(e, vec![b, c])).unwrap();
        // edge(a, X)?
        let atom = Atom::new(e, vec![Term::Const(a), Term::Var(Var(0))]);
        let subs = db.matches(&atom, &Substitution::new());
        let mut bound: Vec<Symbol> =
            subs.iter().map(|s| s.resolve(Term::Var(Var(0))).as_const().unwrap()).collect();
        bound.sort();
        assert_eq!(bound, vec![b, c]);
    }

    #[test]
    fn matches_respects_repeated_variables() {
        let (mut t, mut db) = setup();
        let e = t.intern("edge");
        let (a, b) = (t.intern("a"), t.intern("b"));
        db.insert(Fact::new(e, vec![a, a])).unwrap();
        db.insert(Fact::new(e, vec![a, b])).unwrap();
        // edge(X, X)?
        let atom = Atom::new(e, vec![Term::Var(Var(0)), Term::Var(Var(0))]);
        let subs = db.matches(&atom, &Substitution::new());
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].resolve(Term::Var(Var(0))), Term::Const(a));
    }

    #[test]
    fn matches_respects_base_substitution() {
        let (mut t, mut db) = setup();
        let e = t.intern("edge");
        let (a, b) = (t.intern("a"), t.intern("b"));
        db.insert(Fact::new(e, vec![a, b])).unwrap();
        db.insert(Fact::new(e, vec![b, a])).unwrap();
        let mut base = Substitution::new();
        base.bind(Var(0), Term::Const(a));
        let atom = Atom::new(e, vec![Term::Var(Var(0)), Term::Var(Var(1))]);
        let subs = db.matches(&atom, &base);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].resolve(Term::Var(Var(1))), Term::Const(b));
    }

    #[test]
    fn fact_count_matches_paper_db2_statistics() {
        // DB₂ of Section 2: 2000 prof facts, 500 grad facts.
        let (mut t, mut db) = setup();
        let (prof, grad) = (t.intern("prof"), t.intern("grad"));
        for i in 0..2000 {
            let c = t.intern(&format!("p{i}"));
            db.insert(Fact::new(prof, vec![c])).unwrap();
        }
        for i in 0..500 {
            let c = t.intern(&format!("g{i}"));
            db.insert(Fact::new(grad, vec![c])).unwrap();
        }
        assert_eq!(db.fact_count(prof), 2000);
        assert_eq!(db.fact_count(grad), 500);
        assert_eq!(db.len(), 2500);
    }

    #[test]
    fn matches_unknown_predicate_is_empty() {
        let (mut t, db) = setup();
        let p = t.intern("nothing");
        let atom = Atom::new(p, vec![Term::Var(Var(0))]);
        assert!(db.matches(&atom, &Substitution::new()).is_empty());
    }

    #[test]
    fn select_intersects_all_bound_columns() {
        // A row matching the first bound column but not the second must
        // be excluded by the index intersection itself (no residual
        // filter exists any more to catch it).
        let (mut t, mut db) = setup();
        let r = t.intern("r");
        let (a, b, c) = (t.intern("a"), t.intern("b"), t.intern("c"));
        db.insert(Fact::new(r, vec![a, b, a])).unwrap();
        db.insert(Fact::new(r, vec![a, c, b])).unwrap();
        db.insert(Fact::new(r, vec![b, c, a])).unwrap();
        db.insert(Fact::new(r, vec![a, c, a])).unwrap();
        // r(a, c, X)?  — bound columns 0 and 1.
        let atom = Atom::new(r, vec![Term::Const(a), Term::Const(c), Term::Var(Var(0))]);
        let subs = db.matches(&atom, &Substitution::new());
        let bound: Vec<Symbol> =
            subs.iter().map(|s| s.resolve(Term::Var(Var(0))).as_const().unwrap()).collect();
        assert_eq!(bound, vec![b, a], "insertion order preserved");
    }

    #[test]
    fn select_all_free_is_full_scan() {
        let (mut t, mut db) = setup();
        let e = t.intern("edge");
        let (a, b) = (t.intern("a"), t.intern("b"));
        db.insert(Fact::new(e, vec![a, b])).unwrap();
        db.insert(Fact::new(e, vec![b, a])).unwrap();
        let atom = Atom::new(e, vec![Term::Var(Var(0)), Term::Var(Var(1))]);
        assert_eq!(db.matches(&atom, &Substitution::new()).len(), 2);
    }

    #[test]
    fn select_bound_to_absent_symbol_is_empty() {
        let (mut t, mut db) = setup();
        let e = t.intern("edge");
        let (a, b, z) = (t.intern("a"), t.intern("b"), t.intern("z"));
        db.insert(Fact::new(e, vec![a, b])).unwrap();
        let atom = Atom::new(e, vec![Term::Const(z), Term::Var(Var(0))]);
        assert!(db.matches(&atom, &Substitution::new()).is_empty());
    }

    #[test]
    fn generation_advances_only_on_new_facts() {
        let (mut t, mut db) = setup();
        let p = t.intern("p");
        let a = t.intern("a");
        assert_eq!(db.generation(), 0);
        db.insert(Fact::new(p, vec![a])).unwrap();
        assert_eq!(db.generation(), 1);
        db.insert(Fact::new(p, vec![a])).unwrap(); // duplicate: no-op
        assert_eq!(db.generation(), 1);
        let b = t.intern("b");
        db.insert(Fact::new(p, vec![b])).unwrap();
        assert_eq!(db.generation(), 2);
    }

    #[test]
    fn retract_removes_and_reports_delta() {
        let (mut t, mut db) = setup();
        let e = t.intern("edge");
        let (a, b, c) = (t.intern("a"), t.intern("b"), t.intern("c"));
        db.insert(Fact::new(e, vec![a, b])).unwrap();
        db.insert(Fact::new(e, vec![a, c])).unwrap();
        let d = db.retract(Fact::new(e, vec![a, b])).unwrap();
        assert_eq!(d, Delta { predicate: e, op: DeltaOp::Retract, changed: true });
        assert!(!db.contains(e, &[a, b]));
        assert!(db.contains(e, &[a, c]));
        assert_eq!(db.fact_count(e), 1);
        assert_eq!(db.len(), 1);
        // Retracting again (or from an unknown predicate) is a no-op.
        assert!(!db.retract(Fact::new(e, vec![a, b])).unwrap().changed);
        let q = t.intern("ghost");
        assert!(!db.retract(Fact::new(q, vec![a])).unwrap().changed);
    }

    #[test]
    fn retract_updates_indexes_and_full_scan() {
        let (mut t, mut db) = setup();
        let e = t.intern("edge");
        let (a, b, c) = (t.intern("a"), t.intern("b"), t.intern("c"));
        db.insert(Fact::new(e, vec![a, b])).unwrap();
        db.insert(Fact::new(e, vec![a, c])).unwrap();
        db.insert(Fact::new(e, vec![b, c])).unwrap();
        db.retract(Fact::new(e, vec![a, c])).unwrap();
        // Indexed path: edge(a, X) must not surface the dead row.
        let atom = Atom::new(e, vec![Term::Const(a), Term::Var(Var(0))]);
        let subs = db.matches(&atom, &Substitution::new());
        let bound: Vec<Symbol> =
            subs.iter().map(|s| s.resolve(Term::Var(Var(0))).as_const().unwrap()).collect();
        assert_eq!(bound, vec![b]);
        // Full-scan path: edge(X, Y) skips the tombstone too.
        let all = Atom::new(e, vec![Term::Var(Var(0)), Term::Var(Var(1))]);
        assert_eq!(db.matches(&all, &Substitution::new()).len(), 2);
        assert_eq!(db.dump(&t), vec!["edge(a, b)", "edge(b, c)"]);
        // Re-insertion after retraction works and is visible again.
        assert!(db.insert(Fact::new(e, vec![a, c])).unwrap().changed);
        assert!(db.contains(e, &[a, c]));
        assert_eq!(db.matches(&all, &Substitution::new()).len(), 3);
    }

    #[test]
    fn retract_zero_arity_fact() {
        let (mut t, mut db) = setup();
        let halt = t.intern("halt");
        db.insert(Fact::new(halt, vec![])).unwrap();
        assert!(db.contains(halt, &[]));
        assert!(db.retract(Fact::new(halt, vec![])).unwrap().changed);
        assert!(!db.contains(halt, &[]));
        assert_eq!(db.fact_count(halt), 0);
        assert!(db.insert(Fact::new(halt, vec![])).unwrap().changed);
        assert!(db.contains(halt, &[]));
    }

    #[test]
    fn retract_arity_mismatch_rejected() {
        let (mut t, mut db) = setup();
        let p = t.intern("p");
        let a = t.intern("a");
        db.insert(Fact::new(p, vec![a])).unwrap();
        let err = db.retract(Fact::new(p, vec![a, a])).unwrap_err();
        assert!(matches!(err, DatalogError::ArityMismatch { expected: 1, found: 2, .. }));
    }

    #[test]
    fn per_predicate_generations_stamp_only_touched_predicates() {
        let (mut t, mut db) = setup();
        let (p, q) = (t.intern("p"), t.intern("q"));
        let a = t.intern("a");
        assert_eq!(db.predicate_generation(p), 0);
        db.insert(Fact::new(p, vec![a])).unwrap();
        assert_eq!(db.predicate_generation(p), 1);
        assert_eq!(db.predicate_generation(q), 0);
        db.insert(Fact::new(q, vec![a])).unwrap();
        assert_eq!(db.predicate_generation(q), 2);
        assert_eq!(db.predicate_generation(p), 1, "p untouched by q's insert");
        // Retraction stamps too.
        db.retract(Fact::new(p, vec![a])).unwrap();
        assert_eq!(db.predicate_generation(p), 3);
        assert_eq!(db.generation(), 3);
        // Footprint generations: max over the footprint's stamps.
        assert_eq!(db.footprint_generation(&[p]), 3);
        assert_eq!(db.footprint_generation(&[q]), 2);
        assert_eq!(db.footprint_generation(&[p, q]), 3);
        assert_eq!(db.footprint_generation(&[]), 0);
    }

    #[test]
    fn restore_generations_realigns_stamps_after_a_rebuild() {
        // Simulate recovery: a live database accumulates history, its
        // facts + stamps are exported, a fresh database reloads the
        // facts (getting compacted counters), and restore_generations
        // re-aligns every stamp with the original.
        let (mut t, mut live) = setup();
        let (p, q) = (t.intern("p"), t.intern("q"));
        let (a, b) = (t.intern("a"), t.intern("b"));
        live.insert(Fact::new(p, vec![a])).unwrap();
        live.insert(Fact::new(q, vec![a])).unwrap();
        live.insert(Fact::new(p, vec![b])).unwrap();
        live.retract(Fact::new(p, vec![a])).unwrap(); // generation 4
        assert_eq!(live.generation(), 4);

        let mut recovered = Database::new();
        // Reload the surviving facts (sorted dump order, as recovery does).
        recovered.insert(Fact::new(p, vec![b])).unwrap();
        recovered.insert(Fact::new(q, vec![a])).unwrap();
        assert_ne!(recovered.generation(), live.generation(), "rebuild compacts the counter");
        recovered.restore_generations(live.generation(), live.predicate_generations());
        assert_eq!(recovered.generation(), live.generation());
        assert_eq!(recovered.predicate_generation(p), live.predicate_generation(p));
        assert_eq!(recovered.predicate_generation(q), live.predicate_generation(q));
        assert_eq!(recovered.footprint_generation(&[p, q]), live.footprint_generation(&[p, q]));
        // Post-restore mutations keep the monotone contract.
        recovered.insert(Fact::new(p, vec![a])).unwrap();
        assert_eq!(recovered.generation(), 5);
        assert_eq!(recovered.predicate_generation(p), 5);
    }

    #[test]
    #[should_panic(expected = "exceeds restored generation")]
    fn restore_generations_rejects_impossible_stamps() {
        let (mut t, mut db) = setup();
        let p = t.intern("p");
        db.restore_generations(1, vec![(p, 2)]);
    }

    #[test]
    fn instance_ids_are_unique_even_across_clones() {
        let (mut t, mut db) = setup();
        let p = t.intern("p");
        let a = t.intern("a");
        db.insert(Fact::new(p, vec![a])).unwrap();
        let other = Database::new();
        assert_ne!(db.instance_id(), other.instance_id());
        let twin = db.clone();
        assert_ne!(db.instance_id(), twin.instance_id(), "clones may diverge");
        assert_eq!(twin.generation(), db.generation());
        assert!(twin.contains(p, &[a]));
    }

    #[test]
    fn dump_is_sorted_and_readable() {
        let (mut t, mut db) = setup();
        let p = t.intern("p");
        let (b, a) = (t.intern("b"), t.intern("a"));
        db.insert(Fact::new(p, vec![b])).unwrap();
        db.insert(Fact::new(p, vec![a])).unwrap();
        assert_eq!(db.dump(&t), vec!["p(a)", "p(b)"]);
    }
}
