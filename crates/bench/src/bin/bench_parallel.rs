//! Measures the parallel sampling harness and the incremental
//! expected-cost evaluator, emitting `BENCH_parallel.json`.
//!
//! ```text
//! bench_parallel [--out BENCH_parallel.json]
//! ```
//!
//! The JSON records the machine's core count honestly: Monte-Carlo
//! scaling across worker counts only shows wall-clock gains when the
//! hardware has the cores, but the determinism contract (identical sums
//! for every worker count) is asserted here regardless.

use qpl_core::TransformationSet;
use qpl_engine::par::{batch_fold, sample_rng, ParConfig};
use qpl_graph::context::cost;
use qpl_graph::expected::ContextDistribution;
use qpl_graph::{CostEvaluator, Strategy};
use qpl_workload::generator::{random_retrieval_model, random_tree_with_retrievals, TreeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::num::NonZeroUsize;
use std::time::Instant;

fn mc_fold(
    n: usize,
    workers: usize,
    g: &qpl_graph::InferenceGraph,
    model: &qpl_graph::IndependentModel,
    theta: &Strategy,
) -> (f64, u64) {
    let cfg = ParConfig { workers, block: ParConfig::DEFAULT_BLOCK };
    batch_fold(
        n,
        &cfg,
        || (0.0f64, 0u64),
        |acc, i| {
            let mut r = sample_rng(7, i as u64);
            let ctx = model.sample(&mut r);
            acc.0 += cost(g, theta, &ctx);
            acc.1 += 1;
        },
        |a, p| {
            a.0 += p.0;
            a.1 += p.1;
        },
    )
}

fn main() {
    let out_path = {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match args.iter().position(|a| a == "--out") {
            Some(pos) if pos + 1 < args.len() => args[pos + 1].clone(),
            _ => "BENCH_parallel.json".to_string(),
        }
    };
    let cores = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);

    // Monte-Carlo throughput across worker counts.
    let mut rng = StdRng::seed_from_u64(11);
    let params = TreeParams { max_depth: 6, max_branch: 4, ..Default::default() };
    let g = random_tree_with_retrievals(&mut rng, &params, 32, 64);
    let model = random_retrieval_model(&mut rng, &g, (0.05, 0.6));
    let theta = Strategy::left_to_right(&g);
    let n = 100_000usize;
    let (ref_sum, ref_count) = mc_fold(n, 1, &g, &model, &theta);
    assert_eq!(ref_count, n as u64);
    let mut measured: Vec<(usize, f64)> = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let (sum, count) = mc_fold(n, workers, &g, &model, &theta);
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(count, n as u64);
        assert_eq!(
            sum.to_bits(),
            ref_sum.to_bits(),
            "worker-count invariance violated at W={workers}"
        );
        let cps = n as f64 / secs;
        println!("W={workers}: {cps:.0} contexts/sec (sum bit-identical to W=1)");
        measured.push((workers, cps));
    }
    let w1_cps = measured[0].1;
    let throughput_rows: Vec<String> = measured
        .iter()
        .map(|&(workers, cps)| {
            format!(
                "    {{\"workers\": {workers}, \"contexts_per_sec\": {cps:.0}, \
                 \"speedup_vs_w1\": {:.3}}}",
                cps / w1_cps
            )
        })
        .collect();

    // Per-candidate C[Θ] latency: full recompute vs incremental.
    let mut candidate_rows = Vec::new();
    for retrievals in [16usize, 64] {
        let mut rng = StdRng::seed_from_u64(12);
        let params = TreeParams { max_depth: 7, max_branch: 3, ..Default::default() };
        let g = random_tree_with_retrievals(&mut rng, &params, retrievals, retrievals * 2);
        let model = random_retrieval_model(&mut rng, &g, (0.05, 0.6));
        let theta = Strategy::left_to_right(&g);
        let depth = g.arc_ids().map(|a| g.root_path(a).len() + 1).max().unwrap_or(0);
        let neighbors = TransformationSet::all_sibling_swaps(&g).neighbors(&g, &theta);
        let ev = CostEvaluator::new(&g, &model, &theta).expect("depth-first tree strategy");
        let reps = 2_000usize;

        let t0 = Instant::now();
        let mut acc_full = 0.0f64;
        for i in 0..reps {
            let (_, cand) = &neighbors[i % neighbors.len()];
            acc_full += model.expected_cost(&g, cand);
        }
        let full_ns = t0.elapsed().as_nanos() as f64 / reps as f64;

        let t0 = Instant::now();
        let mut acc_inc = 0.0f64;
        for i in 0..reps {
            let (swap, _) = &neighbors[i % neighbors.len()];
            acc_inc += ev.expected_cost_after_swap(swap.r1, swap.r2).expect("sibling swap");
        }
        let inc_ns = t0.elapsed().as_nanos() as f64 / reps as f64;
        assert!(
            (acc_full - acc_inc).abs() < 1e-6 * reps as f64,
            "incremental and full scores diverged"
        );
        let speedup = full_ns / inc_ns;
        println!(
            "retrievals={retrievals} depth={depth}: full {full_ns:.0} ns, \
             after_swap {inc_ns:.0} ns, speedup {speedup:.1}x"
        );
        candidate_rows.push(format!(
            "    {{\"retrievals\": {retrievals}, \"tree_depth\": {depth}, \
             \"candidates\": {}, \"full_recompute_ns\": {full_ns:.0}, \
             \"after_swap_ns\": {inc_ns:.0}, \"speedup\": {speedup:.2}}}",
            neighbors.len()
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"parallel sampling harness + incremental expected cost\",\n  \
         \"cores\": {cores},\n  \
         \"note\": \"MC wall-clock speedup requires physical cores; determinism (bit-identical \
         sums across worker counts) is asserted on every run regardless\",\n  \
         \"mc_samples\": {n},\n  \"mc_throughput\": [\n{}\n  ],\n  \
         \"per_candidate_expected_cost\": [\n{}\n  ]\n}}\n",
        throughput_rows.join(",\n"),
        candidate_rows.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write BENCH_parallel.json");
    println!("wrote {out_path} (cores={cores})");
}
