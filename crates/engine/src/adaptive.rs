//! The adaptive query processor `QP^A` (Section 4.1).
//!
//! A fixed strategy cannot gather statistics for retrievals it never
//! reaches (if `D_p` always succeeds, `Θ₁` never tries `D_g`), so PAO
//! samples through an *adaptive* processor that re-aims its strategy on
//! every context: it always begins with the experiment whose remaining
//! sample counter is largest, following the root path `Π(e)` straight to
//! it (Definition 1: "attempting to reach `e`").
//!
//! Two sampling modes mirror the two theorems:
//!
//! * [`SamplingMode::Retrievals`] (Theorem 2) — targets are the
//!   retrieval arcs, counters from Equation 7's `m(dᵢ)`;
//! * [`SamplingMode::Experiments`] (Theorem 3) — targets are *all*
//!   probabilistic experiments (blockable reductions included), counters
//!   from Equation 8's `m'(eᵢ)`, and "attempted to reach" counts even
//!   runs that got blocked partway down `Π(e)`.

use qpl_graph::batch::{execute_batch, lanes_from, BatchRun, ContextBatch};
use qpl_graph::context::{execute_into, ArcOutcome, Context, RunScratch, Trace};
use qpl_graph::graph::{ArcId, ArcKind, InferenceGraph, NodeId};
use qpl_graph::program::StrategyProgram;
use qpl_graph::strategy::Strategy;
use qpl_stats::BernoulliEstimator;
use std::collections::HashMap;

/// Which arcs the adaptive processor is collecting statistics for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingMode {
    /// Theorem 2: sample every retrieval arc.
    Retrievals,
    /// Theorem 3: sample an explicit set of experiments (any arcs).
    Experiments,
}

/// Per-target sampling state.
#[derive(Debug, Clone, Copy)]
pub struct AimStat {
    /// The target arc.
    pub arc: ArcId,
    /// Required attempts (`m(dᵢ)` or `m'(eᵢ)`).
    pub needed: u64,
    /// Runs that attempted to reach the target (Definition 1).
    pub attempts: u64,
    /// Runs that actually reached (attempted) the target — `k(eᵢ)`.
    pub reached: u64,
    /// Runs in which the target was open — `n(eᵢ)`.
    pub successes: u64,
}

impl AimStat {
    /// Success-frequency estimate `p̂ = n/k`, defaulting to the paper's
    /// `0.5` when the target was never reached.
    pub fn p_hat(&self) -> f64 {
        BernoulliEstimator::from_counts(self.reached, self.successes).estimate()
    }

    /// Reachability estimate `ρ̂ = k/m` (1.0 when nothing attempted yet,
    /// matching `ρ ≤ 1`).
    pub fn rho_hat(&self) -> f64 {
        if self.attempts == 0 {
            1.0
        } else {
            self.reached as f64 / self.attempts as f64
        }
    }

    /// Whether this target has its required attempts.
    pub fn done(&self) -> bool {
        self.attempts >= self.needed
    }
}

/// The adaptive query processor: aims, executes, and keeps counters.
#[derive(Debug, Clone)]
pub struct AdaptiveQp {
    mode: SamplingMode,
    stats: Vec<AimStat>,
    runs: u64,
    /// Aiming strategies are fixed per target; building (and
    /// re-validating) one per observed context would dominate the
    /// sampling loop, so they are memoized here.
    aim_cache: HashMap<ArcId, Strategy>,
    /// Compiled aiming programs, memoized alongside the strategies: the
    /// batched path re-aims (and would otherwise recompile) every time a
    /// target's counter fills mid-batch.
    aim_programs: HashMap<ArcId, StrategyProgram>,
    /// Root paths `Π(e)`, parallel to `stats`, filled on first use:
    /// `absorb_events` consults the path of every unreached target on
    /// every run, and `root_path` allocates a fresh `Vec` per call —
    /// millions of allocations over a PAO sampling phase without this.
    path_cache: Vec<Option<Vec<ArcId>>>,
}

impl AdaptiveQp {
    /// Theorem-2 mode: one counter per retrieval, with the required
    /// sample counts in [`InferenceGraph::retrievals`] order.
    ///
    /// # Panics
    /// Panics if `needed` has the wrong length.
    pub fn for_retrievals(g: &InferenceGraph, needed: &[u64]) -> Self {
        let retrievals: Vec<ArcId> = g.retrievals().collect();
        assert_eq!(retrievals.len(), needed.len(), "one sample count per retrieval");
        Self {
            mode: SamplingMode::Retrievals,
            stats: retrievals
                .iter()
                .zip(needed)
                .map(|(&arc, &n)| AimStat { arc, needed: n, attempts: 0, reached: 0, successes: 0 })
                .collect(),
            runs: 0,
            aim_cache: HashMap::new(),
            aim_programs: HashMap::new(),
            path_cache: vec![None; needed.len()],
        }
    }

    /// Theorem-3 mode: explicit `(experiment, required attempts)` pairs.
    pub fn for_experiments(targets: Vec<(ArcId, u64)>) -> Self {
        let stats: Vec<AimStat> = targets
            .into_iter()
            .map(|(arc, n)| AimStat { arc, needed: n, attempts: 0, reached: 0, successes: 0 })
            .collect();
        let path_cache = vec![None; stats.len()];
        Self {
            mode: SamplingMode::Experiments,
            stats,
            runs: 0,
            aim_cache: HashMap::new(),
            aim_programs: HashMap::new(),
            path_cache,
        }
    }

    /// The sampling mode.
    pub fn mode(&self) -> SamplingMode {
        self.mode
    }

    /// Current per-target statistics.
    pub fn stats(&self) -> &[AimStat] {
        &self.stats
    }

    /// Total contexts processed.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Whether every counter is satisfied ("the sampling phase is over
    /// when all counters fall below 0").
    pub fn done(&self) -> bool {
        self.stats.iter().all(AimStat::done)
    }

    /// Emit the processor's memo and sampling state into a
    /// [`MetricsSink`](qpl_obs::MetricsSink): `engine.adaptive.*`
    /// counters for runs processed and memo occupancy (aiming strategies
    /// built, root paths cached), plus one `engine.adaptive.target`
    /// event per target with its allocation (`needed`), progress
    /// (`attempts`/`reached`/`successes`), and the `p_hat`/`rho_hat`
    /// estimates the learner will hand to `Υ_AOT`.
    pub fn emit_to(&self, sink: &mut dyn qpl_obs::MetricsSink) {
        sink.counter("engine.adaptive.runs", self.runs);
        sink.counter("engine.adaptive.aim_strategies_memoized", self.aim_cache.len() as u64);
        sink.counter(
            "engine.adaptive.root_paths_cached",
            self.path_cache.iter().filter(|p| p.is_some()).count() as u64,
        );
        sink.counter(
            "engine.adaptive.targets_done",
            self.stats.iter().filter(|s| s.done()).count() as u64,
        );
        if sink.enabled() {
            for s in &self.stats {
                sink.event(
                    "engine.adaptive.target",
                    &[
                        ("arc", f64::from(s.arc.0)),
                        ("needed", s.needed as f64),
                        ("attempts", s.attempts as f64),
                        ("reached", s.reached as f64),
                        ("successes", s.successes as f64),
                        ("p_hat", s.p_hat()),
                        ("rho_hat", s.rho_hat()),
                    ],
                );
            }
        }
    }

    /// The target the next run should aim at: the one with the largest
    /// remaining counter ("always begin with the retrieval whose current
    /// counter value is largest").
    pub fn next_target(&self) -> Option<ArcId> {
        self.stats.iter().filter(|s| !s.done()).max_by_key(|s| s.needed - s.attempts).map(|s| s.arc)
    }

    /// Builds the aiming strategy for `target`: the first path goes
    /// straight down `Π(target)` to the target (continuing to the
    /// nearest retrieval if the target is a reduction); the remaining
    /// arcs follow in depth-first order.
    pub fn aiming_strategy(g: &InferenceGraph, target: ArcId) -> Strategy {
        let mut first: Vec<ArcId> = g.root_path(target);
        first.push(target);
        // If the target is a reduction, continue to a retrieval so the
        // first segment is a legal path.
        let mut tail = target;
        while g.arc(tail).kind == ArcKind::Reduction {
            let next = g.children(g.arc(tail).to)[0];
            first.push(next);
            tail = next;
        }
        let in_first: Vec<bool> = {
            let mut v = vec![false; g.arc_count()];
            for &a in &first {
                v[a.index()] = true;
            }
            v
        };
        let mut arcs = first.clone();
        fn complete(g: &InferenceGraph, n: NodeId, in_first: &[bool], out: &mut Vec<ArcId>) {
            for &c in g.children(n) {
                if !in_first[c.index()] {
                    out.push(c);
                }
                complete(g, g.arc(c).to, in_first, out);
            }
        }
        complete(g, g.root(), &in_first, &mut arcs);
        // Deduplicate while preserving order (children of first-path arcs
        // were visited by `complete` as well).
        let mut seen = vec![false; g.arc_count()];
        arcs.retain(|a| {
            let new = !seen[a.index()];
            seen[a.index()] = true;
            new
        });
        Strategy::from_arcs(g, arcs).expect("aiming construction yields a valid strategy")
    }

    /// Processes one context: aims at the neediest target, executes, and
    /// updates every target's counters from the trace (Definition 1).
    /// Returns the trace, or `None` if sampling is already complete.
    pub fn observe(&mut self, g: &InferenceGraph, ctx: &Context) -> Option<Trace> {
        let mut scratch = RunScratch::new(g);
        if self.observe_into(g, ctx, &mut scratch) {
            Some(scratch.to_trace())
        } else {
            None
        }
    }

    /// [`observe`](Self::observe) into reusable buffers — the sampling
    /// loops of PAO run this millions of times, so the execution writes
    /// into `scratch` instead of allocating a [`Trace`]. Returns `false`
    /// if sampling is already complete (scratch left untouched).
    pub fn observe_into(
        &mut self,
        g: &InferenceGraph,
        ctx: &Context,
        scratch: &mut RunScratch,
    ) -> bool {
        let Some(target) = self.next_target() else {
            return false;
        };
        let strategy =
            self.aim_cache.entry(target).or_insert_with(|| Self::aiming_strategy(g, target));
        execute_into(g, strategy, ctx, scratch);
        self.absorb_events(g, scratch.events());
        true
    }

    /// Feeds a whole [`ContextBatch`] through the adaptive processor:
    /// the current aiming strategy runs as a compiled program over every
    /// undrained lane at once, then the lanes absorb in order through
    /// the plane-form counter update ([`absorb_batch_lane`]
    /// (Self::absorb_batch_lane)) — byte-identical statistics to feeding
    /// the lanes to [`observe`](Self::observe) one at a time. Whenever a
    /// counter fills and the aim changes mid-batch, the remaining lanes
    /// re-run under the new target's program. Returns the number of
    /// lanes consumed: sampling can complete mid-batch, in which case
    /// the rest of the batch is untouched (exactly as a scalar driver
    /// would stop feeding once `observe` returns `None`).
    pub fn observe_batch(&mut self, g: &InferenceGraph, batch: &ContextBatch) -> u64 {
        let lanes = batch.lanes();
        let mut lane = 0usize;
        let mut consumed = 0u64;
        let mut run = BatchRun::new();
        while lane < lanes {
            let Some(target) = self.next_target() else { break };
            if !self.aim_programs.contains_key(&target) {
                let strategy = self
                    .aim_cache
                    .entry(target)
                    .or_insert_with(|| Self::aiming_strategy(g, target));
                match StrategyProgram::compile(g, strategy) {
                    Ok(p) => {
                        self.aim_programs.insert(target, p);
                    }
                    Err(_) => {
                        // Non-tree graph: no aiming strategy compiles, so
                        // drain everything through the interpreter.
                        let mut ctx = Context::all_open(g);
                        let mut scratch = RunScratch::new(g);
                        while lane < lanes {
                            batch.extract_lane(lane, &mut ctx);
                            if !self.observe_into(g, &ctx, &mut scratch) {
                                break;
                            }
                            lane += 1;
                            consumed += 1;
                        }
                        return consumed;
                    }
                }
            }
            let prog = &self.aim_programs[&target];
            execute_batch(prog, batch, lanes_from(lane, lanes), &mut run);
            while lane < lanes {
                self.absorb_batch_lane(g, &run, lane);
                lane += 1;
                consumed += 1;
                if self.next_target() != Some(target) {
                    // Re-aim: the undrained suffix re-runs under the new
                    // target's program (or sampling is complete).
                    break;
                }
            }
        }
        consumed
    }

    /// Updates counters from an arbitrary trace. For each target `e`:
    /// the run *attempted to reach* `e` iff it either attempted `e`
    /// itself, or followed `Π(e)` until some arc of it came up blocked.
    pub fn absorb(&mut self, g: &InferenceGraph, trace: &Trace) {
        self.absorb_events(g, &trace.events);
    }

    /// [`absorb`](Self::absorb) from the raw event slice — shared by the
    /// owned-trace path and the scratch path.
    pub fn absorb_events(&mut self, g: &InferenceGraph, events: &[(ArcId, ArcOutcome)]) {
        fn outcome_in(events: &[(ArcId, ArcOutcome)], arc: ArcId) -> Option<ArcOutcome> {
            events.iter().find(|&&(a, _)| a == arc).map(|&(_, o)| o)
        }
        self.runs += 1;
        for idx in 0..self.stats.len() {
            let arc = self.stats[idx].arc;
            match outcome_in(events, arc) {
                Some(outcome) => {
                    let stat = &mut self.stats[idx];
                    stat.attempts += 1;
                    stat.reached += 1;
                    if outcome == ArcOutcome::Traversed {
                        stat.successes += 1;
                    }
                }
                None => {
                    // Did the run follow Π(e) maximally and get blocked?
                    let path =
                        self.path_cache[idx].get_or_insert_with(|| g.root_path(arc)).as_slice();
                    let mut blocked_on_path = false;
                    for &b in path {
                        match outcome_in(events, b) {
                            Some(ArcOutcome::Traversed) => continue,
                            Some(ArcOutcome::Blocked) => {
                                blocked_on_path = true;
                                break;
                            }
                            None => break, // run went elsewhere: not an attempt
                        }
                    }
                    if blocked_on_path {
                        self.stats[idx].attempts += 1;
                    }
                }
            }
        }
    }

    /// Updates counters from lane `lane` of a batched run — the
    /// plane-form twin of [`absorb_events`](Self::absorb_events):
    /// [`BatchRun::outcome_in`] answers the same attempted/traversed
    /// queries in O(1) that the scalar path answers by scanning the
    /// event list, so the Definition-1 bookkeeping (including the
    /// blocked-on-`Π(e)` walk) is identical.
    pub fn absorb_batch_lane(&mut self, g: &InferenceGraph, run: &BatchRun, lane: usize) {
        self.runs += 1;
        for idx in 0..self.stats.len() {
            let arc = self.stats[idx].arc;
            match run.outcome_in(lane, arc) {
                Some(outcome) => {
                    let stat = &mut self.stats[idx];
                    stat.attempts += 1;
                    stat.reached += 1;
                    if outcome == ArcOutcome::Traversed {
                        stat.successes += 1;
                    }
                }
                None => {
                    // Did the run follow Π(e) maximally and get blocked?
                    let path =
                        self.path_cache[idx].get_or_insert_with(|| g.root_path(arc)).as_slice();
                    let mut blocked_on_path = false;
                    for &b in path {
                        match run.outcome_in(lane, b) {
                            Some(ArcOutcome::Traversed) => continue,
                            Some(ArcOutcome::Blocked) => {
                                blocked_on_path = true;
                                break;
                            }
                            None => break, // run went elsewhere: not an attempt
                        }
                    }
                    if blocked_on_path {
                        self.stats[idx].attempts += 1;
                    }
                }
            }
        }
    }

    /// The estimated success-probability vector `p̂` for the targets, in
    /// target order (handed to `Υ`).
    pub fn p_hat(&self) -> Vec<f64> {
        self.stats.iter().map(AimStat::p_hat).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpl_graph::expected::{ContextDistribution, IndependentModel};
    use qpl_graph::graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn g_a() -> InferenceGraph {
        let mut b = GraphBuilder::new("instructor(κ)");
        let root = b.root();
        let (_, prof) = b.reduction(root, "R_p", 1.0, "prof(κ)");
        b.retrieval(prof, "D_p", 1.0);
        let (_, grad) = b.reduction(root, "R_g", 1.0, "grad(κ)");
        b.retrieval(grad, "D_g", 1.0);
        b.finish().unwrap()
    }

    fn g_b() -> InferenceGraph {
        let mut b = GraphBuilder::new("G(κ)");
        let root = b.root();
        let (_, a) = b.reduction(root, "R_ga", 1.0, "A(κ)");
        b.retrieval(a, "D_a", 1.0);
        let (_, s) = b.reduction(root, "R_gs", 1.0, "S(κ)");
        let (_, bb) = b.reduction(s, "R_sb", 1.0, "B(κ)");
        b.retrieval(bb, "D_b", 1.0);
        let (_, t) = b.reduction(s, "R_st", 1.0, "T(κ)");
        let (_, c) = b.reduction(t, "R_tc", 1.0, "C(κ)");
        b.retrieval(c, "D_c", 1.0);
        let (_, d) = b.reduction(t, "R_td", 1.0, "D(κ)");
        b.retrieval(d, "D_d", 1.0);
        b.finish().unwrap()
    }

    #[test]
    fn aiming_strategy_leads_with_target() {
        let g = g_b();
        let dd = g.arc_by_label("D_d").unwrap();
        let s = AdaptiveQp::aiming_strategy(&g, dd);
        let labels: Vec<&str> = s.arcs().iter().map(|&a| g.arc(a).label.as_str()).collect();
        assert_eq!(&labels[..4], ["R_gs", "R_st", "R_td", "D_d"]);
        assert_eq!(labels.len(), 10, "strategy still covers all arcs");
    }

    #[test]
    fn aiming_at_reduction_extends_to_retrieval() {
        let g = g_b();
        let rst = g.arc_by_label("R_st").unwrap();
        let s = AdaptiveQp::aiming_strategy(&g, rst);
        let labels: Vec<&str> = s.arcs().iter().map(|&a| g.arc(a).label.as_str()).collect();
        assert_eq!(&labels[..4], ["R_gs", "R_st", "R_tc", "D_c"]);
    }

    #[test]
    fn fixed_strategy_starves_but_adaptive_does_not() {
        // D_p always succeeds: a fixed prof-first strategy never samples
        // D_g; the adaptive processor still gets its 20 samples.
        let g = g_a();
        let model = IndependentModel::from_retrieval_probs(&g, &[1.0, 0.5]).unwrap();
        let mut qp = AdaptiveQp::for_retrievals(&g, &[30, 20]);
        let mut rng = StdRng::seed_from_u64(0);
        while !qp.done() {
            let ctx = model.sample(&mut rng);
            qp.observe(&g, &ctx);
        }
        let dg_stat = qp.stats().iter().find(|s| g.arc(s.arc).label == "D_g").unwrap();
        assert!(dg_stat.reached >= 20, "adaptive sampling reached D_g {} times", dg_stat.reached);
    }

    #[test]
    fn paper_sample_sharing_example() {
        // Section 4.1: with ⟨m_p, m_g⟩ = ⟨30, 20⟩, if 18 of the 30 D_p
        // probes succeed, 12 D_g samples come for free and only 8 more
        // runs are needed. Simulate a deterministic alternation.
        let g = g_a();
        let mut qp = AdaptiveQp::for_retrievals(&g, &[30, 20]);
        let dp = g.arc_by_label("D_p").unwrap();
        let aim_p = AdaptiveQp::aiming_strategy(&g, dp);
        // 30 contexts aimed at D_p ("QP^A may use Θ₁ for the first 30
        // contexts"); 18 succeed, 12 fail and fall through to D_g.
        for i in 0..30 {
            let ctx = if i < 18 {
                Context::with_blocked(&g, &[])
            } else {
                Context::with_blocked(&g, &[dp])
            };
            let trace = qpl_graph::context::execute(&g, &aim_p, &ctx);
            qp.absorb(&g, &trace);
        }
        let stats = qp.stats();
        let sp = stats.iter().find(|s| g.arc(s.arc).label == "D_p").unwrap();
        let sg = stats.iter().find(|s| g.arc(s.arc).label == "D_g").unwrap();
        assert_eq!(sp.attempts, 30);
        assert_eq!(sp.successes, 18);
        assert_eq!(sg.reached, 12, "free D_g samples from failed D_p probes");
        // Only 20 − 12 = 8 more contexts needed, and PAO aims at D_g now.
        assert_eq!(qp.next_target(), Some(g.arc_by_label("D_g").unwrap()));
        for _ in 0..8 {
            qp.observe(&g, &Context::with_blocked(&g, &[dp]));
        }
        assert!(qp.done());
        assert_eq!(qp.runs(), 38);
    }

    #[test]
    fn p_hat_matches_paper_fractions() {
        // Section 4's worked numbers: D_p succeeds 18 of its 30 trials,
        // D_g 10 of its 20, giving p̂ = ⟨18/30, 10/20⟩. Drive the QP^A
        // with explicit aiming so the counts come out exactly.
        let g = g_a();
        let mut qp = AdaptiveQp::for_retrievals(&g, &[30, 20]);
        let dp = g.arc_by_label("D_p").unwrap();
        let dg = g.arc_by_label("D_g").unwrap();
        let aim_p = AdaptiveQp::aiming_strategy(&g, dp);
        let aim_g = AdaptiveQp::aiming_strategy(&g, dg);
        // Phase 1: 30 runs aimed at D_p; 18 succeed. Of the 12 failures
        // (which fall through to D_g), 6 find D_g open.
        for i in 0..30u32 {
            let mut blocked = Vec::new();
            if i >= 18 {
                blocked.push(dp);
            }
            if !(18..24).contains(&i) {
                blocked.push(dg);
            }
            let trace =
                qpl_graph::context::execute(&g, &aim_p, &Context::with_blocked(&g, &blocked));
            qp.absorb(&g, &trace);
        }
        let sp = *qp.stats().iter().find(|s| s.arc == dp).unwrap();
        assert_eq!((sp.attempts, sp.reached, sp.successes), (30, 30, 18));
        assert!((sp.p_hat() - 0.6).abs() < 1e-12, "p̂_p = 18/30");
        let sg = *qp.stats().iter().find(|s| s.arc == dg).unwrap();
        assert_eq!((sg.reached, sg.successes), (12, 6), "free D_g samples");
        // Phase 2: 8 runs aimed at D_g (stopping at its success so D_p
        // gets no extra trials); 4 of them find D_g open.
        for i in 0..8u32 {
            let blocked = if i < 4 { vec![] } else { vec![dg, dp] };
            let trace =
                qpl_graph::context::execute(&g, &aim_g, &Context::with_blocked(&g, &blocked));
            qp.absorb(&g, &trace);
        }
        let sg = *qp.stats().iter().find(|s| s.arc == dg).unwrap();
        assert_eq!((sg.reached, sg.successes), (20, 10));
        assert!((sg.p_hat() - 0.5).abs() < 1e-12, "p̂_g = 10/20");
        assert!(qp.stats().iter().find(|s| s.arc == dg).unwrap().done());
    }

    #[test]
    fn unreached_target_defaults_to_half() {
        let stat = AimStat { arc: ArcId(0), needed: 10, attempts: 10, reached: 0, successes: 0 };
        assert_eq!(stat.p_hat(), 0.5);
        assert_eq!(stat.rho_hat(), 0.0);
    }

    #[test]
    fn blocked_path_counts_as_attempt_in_experiment_mode() {
        // Target D_c with R_st blockable: a run blocked at R_st counts as
        // an attempt (Definition 1) but not a reach.
        let g = g_b();
        let dc = g.arc_by_label("D_c").unwrap();
        let rst = g.arc_by_label("R_st").unwrap();
        let mut qp = AdaptiveQp::for_experiments(vec![(dc, 5)]);
        let ctx = Context::with_blocked(
            &g,
            &[
                rst,
                g.arc_by_label("D_a").unwrap(),
                g.arc_by_label("D_b").unwrap(),
                g.arc_by_label("D_d").unwrap(),
            ],
        );
        qp.observe(&g, &ctx);
        let s = &qp.stats()[0];
        assert_eq!(s.attempts, 1);
        assert_eq!(s.reached, 0);
        assert_eq!(s.rho_hat(), 0.0);
    }

    #[test]
    fn incidental_attempts_credited_to_other_targets() {
        // Aiming at D_d also observes R_gs/R_st on its path; a sibling
        // target sharing the path prefix gets credited when blocked.
        let g = g_b();
        let dd = g.arc_by_label("D_d").unwrap();
        let dc = g.arc_by_label("D_c").unwrap();
        let mut qp = AdaptiveQp::for_experiments(vec![(dd, 10), (dc, 1)]);
        // All open: run aims at D_d, first path R_gs R_st R_td D_d succeeds.
        // D_c's path (R_gs R_st R_tc) was followed through R_st but R_tc
        // was never attempted and never blocked → no credit for D_c.
        qp.observe(&g, &Context::all_open(&g));
        let sc = qp.stats().iter().find(|s| s.arc == dc).unwrap();
        assert_eq!(sc.attempts, 0);
        // Now R_st blocked: the D_d-aimed run is blocked on D_c's path
        // too → both get an attempt.
        let rst = g.arc_by_label("R_st").unwrap();
        let all_blocked: Vec<ArcId> =
            vec![rst, g.arc_by_label("D_a").unwrap(), g.arc_by_label("D_b").unwrap()];
        qp.observe(&g, &Context::with_blocked(&g, &all_blocked));
        let sc = qp.stats().iter().find(|s| s.arc == dc).unwrap();
        let sd = qp.stats().iter().find(|s| s.arc == dd).unwrap();
        assert_eq!(sc.attempts, 1, "blocked on shared path prefix");
        assert_eq!(sd.attempts, 2);
    }

    #[test]
    fn observe_returns_none_when_done() {
        let g = g_a();
        let mut qp = AdaptiveQp::for_retrievals(&g, &[0, 0]);
        assert!(qp.done());
        assert!(qp.observe(&g, &Context::all_open(&g)).is_none());
    }

    #[test]
    fn emit_to_reports_memo_and_per_target_allocation() {
        let g = g_a();
        let mut qp = AdaptiveQp::for_retrievals(&g, &[30, 20]);
        let dp = g.arc_by_label("D_p").unwrap();
        for i in 0..30 {
            let ctx = if i < 18 {
                Context::with_blocked(&g, &[])
            } else {
                Context::with_blocked(&g, &[dp])
            };
            qp.observe(&g, &ctx);
        }
        let mut sink = qpl_obs::MemorySink::new();
        qp.emit_to(&mut sink);
        assert_eq!(sink.counter_total("engine.adaptive.runs"), 30);
        assert!(sink.counter_total("engine.adaptive.aim_strategies_memoized") >= 1);
        let targets: Vec<_> = sink.events_named("engine.adaptive.target").collect();
        assert_eq!(targets.len(), 2, "one event per target retrieval");
        let dp_event = targets
            .iter()
            .find(|e| e.field("arc") == Some(f64::from(dp.0)))
            .expect("D_p target event");
        assert_eq!(dp_event.field("needed"), Some(30.0));
        let reached = dp_event.field("reached").unwrap();
        let successes = dp_event.field("successes").unwrap();
        assert!(reached > 0.0 && successes <= reached);
        assert_eq!(dp_event.field("p_hat"), Some(successes / reached));
    }

    #[test]
    fn batched_observation_matches_scalar_byte_for_byte() {
        // Identical counter trajectories at every batch boundary, with
        // counters filling (and the aim re-targeting) mid-batch, plus a
        // mid-batch sampling-complete cut on the final batch.
        let g = g_b();
        let model = IndependentModel::from_retrieval_probs(&g, &[0.25, 0.5, 0.75, 0.4]).unwrap();
        for lanes in [64usize, 256, 512] {
            let mut scalar = AdaptiveQp::for_retrievals(&g, &[150, 90, 75, 120]);
            let mut batched = AdaptiveQp::for_retrievals(&g, &[150, 90, 75, 120]);
            let mut rng = StdRng::seed_from_u64(99);
            let mut consumed_total = 0u64;
            let mut guard = 0u32;
            while !batched.done() {
                let mut b = qpl_graph::batch::ContextBatch::new(g.arc_count(), lanes);
                let mut ctxs = Vec::with_capacity(lanes);
                for lane in 0..lanes {
                    let ctx = model.sample(&mut rng);
                    b.set_lane(lane, &ctx);
                    ctxs.push(ctx);
                }
                let consumed = batched.observe_batch(&g, &b);
                consumed_total += consumed;
                for ctx in ctxs.iter().take(consumed as usize) {
                    assert!(scalar.observe(&g, ctx).is_some());
                }
                assert_eq!(scalar.runs(), batched.runs(), "plane of {lanes} lanes");
                assert_eq!(scalar.done(), batched.done());
                assert_eq!(scalar.next_target(), batched.next_target());
                for (a, b) in scalar.stats().iter().zip(batched.stats()) {
                    assert_eq!(
                        (a.arc, a.attempts, a.reached, a.successes),
                        (b.arc, b.attempts, b.reached, b.successes)
                    );
                }
                guard += 1;
                assert!(guard < 10_000, "sampling failed to terminate");
            }
            assert_eq!(consumed_total, batched.runs());
            // Once done, a batch consumes nothing.
            let b = qpl_graph::batch::ContextBatch::new(g.arc_count(), 64);
            assert_eq!(batched.observe_batch(&g, &b), 0);
            assert!(scalar.observe(&g, &Context::all_open(&g)).is_none());
        }
    }

    #[test]
    fn estimates_converge_to_truth() {
        let g = g_b();
        let truth = [0.25, 0.5, 0.75, 0.4];
        let model = IndependentModel::from_retrieval_probs(&g, &truth).unwrap();
        let mut qp = AdaptiveQp::for_retrievals(&g, &[4000, 4000, 4000, 4000]);
        let mut rng = StdRng::seed_from_u64(99);
        while !qp.done() {
            let ctx = model.sample(&mut rng);
            qp.observe(&g, &ctx);
        }
        for (stat, &p) in qp.stats().iter().zip(&truth) {
            assert!(
                (stat.p_hat() - p).abs() < 0.04,
                "{}: p̂={} vs p={p}",
                g.arc(stat.arc).label,
                stat.p_hat()
            );
        }
    }
}
