//! Top-down SLD resolution with satisficing semantics.
//!
//! This is the *reference semantics* for the paper's query processor: a
//! query is reduced through rules to attempted retrievals, depth-first,
//! returning as soon as one derivation succeeds ("satisficing search",
//! \[SK75\]). The strategy-parameterized engine in `qpl-engine` must agree
//! with this solver on the yes/no answer for every context — only the
//! order of exploration (and hence the cost) differs.
//!
//! A depth bound guards against recursive rule bases; exceeding it is an
//! error rather than a silent wrong answer.

use crate::database::Database;
use crate::error::DatalogError;
use crate::rule::RuleBase;
use crate::term::Atom;
use crate::unify::{rename_apart, unify_atoms, Substitution};

/// Statistics from one satisficing top-down run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Attempted database retrievals (ground membership probes plus
    /// pattern matches).
    pub retrievals: u64,
    /// Rule reductions applied.
    pub reductions: u64,
}

/// A satisficing SLD solver over a rule base and database.
#[derive(Debug, Clone)]
pub struct TopDown<'a> {
    rules: &'a RuleBase,
    db: &'a Database,
    depth_limit: usize,
}

impl<'a> TopDown<'a> {
    /// Default resolution depth bound.
    pub const DEFAULT_DEPTH: usize = 256;

    /// Creates a solver with the default depth bound.
    pub fn new(rules: &'a RuleBase, db: &'a Database) -> Self {
        Self { rules, db, depth_limit: Self::DEFAULT_DEPTH }
    }

    /// Overrides the depth bound.
    pub fn with_depth_limit(mut self, limit: usize) -> Self {
        self.depth_limit = limit;
        self
    }

    /// Finds the first solution to `query`, if any, returning the
    /// satisfying substitution.
    ///
    /// # Errors
    /// [`DatalogError::DepthExceeded`] if resolution exceeds the bound.
    pub fn solve(&self, query: &Atom) -> Result<Option<Substitution>, DatalogError> {
        let mut stats = SolveStats::default();
        self.solve_with_stats(query, &mut stats)
    }

    /// Like [`solve`](Self::solve) but also accumulates work statistics.
    pub fn solve_with_stats(
        &self,
        query: &Atom,
        stats: &mut SolveStats,
    ) -> Result<Option<Substitution>, DatalogError> {
        let goals = vec![query.clone()];
        self.prove(&goals, Substitution::new(), 0, query.variables().len() as u32 + 64, stats)
    }

    /// Whether any derivation of `query` exists.
    pub fn provable(&self, query: &Atom) -> Result<bool, DatalogError> {
        Ok(self.solve(query)?.is_some())
    }

    fn prove(
        &self,
        goals: &[Atom],
        sub: Substitution,
        depth: usize,
        var_offset: u32,
        stats: &mut SolveStats,
    ) -> Result<Option<Substitution>, DatalogError> {
        if depth > self.depth_limit {
            return Err(DatalogError::DepthExceeded(self.depth_limit));
        }
        let Some((goal, rest)) = goals.split_first() else {
            return Ok(Some(sub));
        };
        let resolved = sub.apply(goal);

        // 1. Try direct retrieval from the database.
        stats.retrievals += 1;
        for ext in self.db.matches(&resolved, &sub) {
            if let Some(found) = self.prove(rest, ext, depth + 1, var_offset, stats)? {
                return Ok(Some(found));
            }
        }

        // 2. Try each rule whose head unifies with the goal.
        for (_, rule) in self.rules.rules_for(resolved.predicate) {
            let head = rename_apart(&rule.head, var_offset);
            let Some(ext) = unify_atoms(&resolved, &head, &sub) else {
                continue;
            };
            stats.reductions += 1;
            let mut new_goals: Vec<Atom> =
                rule.body.iter().map(|b| rename_apart(b, var_offset)).collect();
            new_goals.extend_from_slice(rest);
            let next_offset = var_offset + rule.var_span();
            if let Some(found) = self.prove(&new_goals, ext, depth + 1, next_offset, stats)? {
                return Ok(Some(found));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;
    use crate::parser::{parse_program, parse_query};
    use crate::symbol::SymbolTable;

    fn ask(src: &str, query: &str) -> bool {
        let mut t = SymbolTable::new();
        let p = parse_program(src, &mut t).unwrap();
        let q = parse_query(query, &mut t).unwrap();
        TopDown::new(&p.rules, &p.facts).provable(&q).unwrap()
    }

    #[test]
    fn figure1_contexts() {
        let kb = "instructor(X) :- prof(X). instructor(X) :- grad(X).\n\
                  prof(russ). grad(manolis).";
        assert!(ask(kb, "instructor(russ)"));
        assert!(ask(kb, "instructor(manolis)"));
        assert!(!ask(kb, "instructor(fred)"));
    }

    #[test]
    fn direct_fact_retrieval() {
        assert!(ask("p(a).", "p(a)"));
        assert!(!ask("p(a).", "p(b)"));
    }

    #[test]
    fn conjunctive_goal_ordering() {
        let kb = "gp(X, Z) :- parent(X, Y), parent(Y, Z).\n\
                  parent(ann, bob). parent(bob, cal).";
        assert!(ask(kb, "gp(ann, cal)"));
        assert!(!ask(kb, "gp(ann, bob)"));
        assert!(ask(kb, "gp(ann, X)"));
    }

    #[test]
    fn chained_rules() {
        let kb = "a(X) :- b(X). b(X) :- c(X). c(k).";
        assert!(ask(kb, "a(k)"));
        assert!(!ask(kb, "a(j)"));
    }

    #[test]
    fn recursion_hits_depth_bound() {
        let mut t = SymbolTable::new();
        let p = parse_program("p(X) :- p(X). seed(a).", &mut t).unwrap();
        let q = parse_query("p(a)", &mut t).unwrap();
        let err = TopDown::new(&p.rules, &p.facts).with_depth_limit(32).provable(&q);
        assert!(matches!(err, Err(DatalogError::DepthExceeded(32))));
    }

    #[test]
    fn recursive_but_provable_succeeds_before_bound() {
        // Left-recursion avoided: path(X,Y) :- edge(X,Y). path(X,Z) :- edge(X,Y), path(Y,Z).
        let kb = "path(X, Y) :- edge(X, Y).\n\
                  path(X, Z) :- edge(X, Y), path(Y, Z).\n\
                  edge(a, b). edge(b, c).";
        assert!(ask(kb, "path(a, c)"));
    }

    #[test]
    fn solve_returns_bindings() {
        let mut t = SymbolTable::new();
        let p = parse_program("instructor(X) :- prof(X). prof(russ).", &mut t).unwrap();
        let q = parse_query("instructor(W)", &mut t).unwrap();
        let sub = TopDown::new(&p.rules, &p.facts).solve(&q).unwrap().unwrap();
        let bound = sub.apply(&q);
        assert_eq!(bound.display(&t).to_string(), "instructor(russ)");
    }

    #[test]
    fn stats_count_work() {
        let mut t = SymbolTable::new();
        let p = parse_program(
            "instructor(X) :- prof(X). instructor(X) :- grad(X). grad(manolis).",
            &mut t,
        )
        .unwrap();
        let q = parse_query("instructor(manolis)", &mut t).unwrap();
        let mut stats = SolveStats::default();
        let found = TopDown::new(&p.rules, &p.facts).solve_with_stats(&q, &mut stats).unwrap();
        assert!(found.is_some());
        // Must have tried the prof branch (reduction + retrieval) before grad.
        assert!(stats.reductions >= 2);
        assert!(stats.retrievals >= 2);
    }

    proptest::proptest! {
        /// Top-down agrees with the bottom-up oracle on random
        /// non-recursive layered KBs.
        #[test]
        fn agrees_with_bottom_up(
            rules in proptest::collection::vec((0u8..3, 0u8..3), 1..6),
            facts in proptest::collection::vec((0u8..3, 0u8..4), 0..6),
            qx in 0u8..4,
        ) {
            // Layered predicates l0, l1, l2, l3: rule (i, j) is
            // l{i}(X) :- l{i+1}(X) with variation j ignored (dedup ok);
            // facts live at layer 3 over constants c0..c3.
            let mut src = String::new();
            for (i, _) in &rules {
                src.push_str(&format!("l{}(X) :- l{}(X).\n", i, i + 1));
            }
            for (layer, c) in &facts {
                src.push_str(&format!("l{}(c{}).\n", layer + 1, c));
            }
            let mut t = SymbolTable::new();
            let p = parse_program(&src, &mut t).unwrap();
            let q = parse_query(&format!("l0(c{qx})"), &mut t).unwrap();
            let td = TopDown::new(&p.rules, &p.facts).provable(&q).unwrap();
            let bu = eval::holds(&p.rules, &p.facts, &q);
            proptest::prop_assert_eq!(td, bu);
        }
    }
}
