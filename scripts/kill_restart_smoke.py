#!/usr/bin/env python3
"""Kill-restart smoke for the qpl-store durability path.

Lifecycle: start qpl-serve with --data-dir, churn updates, checkpoint,
SIGKILL, restart on the same directory, then assert

  * the store block reports a recovery (snapshot present, not degraded),
  * the adopted strategy fingerprint is bit-identical to pre-kill,
  * probe answers and witnesses are bit-identical to pre-kill,
  * the recovered server still clears a sustained-qps floor (default
    10k) on pipelined 64-query batches.

Usage: kill_restart_smoke.py <path-to-qpl_serve> [--assert-qps N]
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time

PROBES = [f"instructor({w})" for w in
          ("russ", "manolis", "fred", "ada", "bob", "eve", "zoe", "kim")]


def start(binary, data_dir):
    proc = subprocess.Popen(
        [binary, "--addr", "127.0.0.1:0", "--shape", "figure1",
         "--shards", "2", "--adapt", "0.2", "--fsync", "batch",
         "--data-dir", data_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    banner = proc.stdout.readline()
    marker = "listening on "
    assert marker in banner, f"unexpected banner: {banner!r}"
    addr = banner.split(marker)[1].split()[0]
    host, port = addr.rsplit(":", 1)
    # Leave proc.stdout open: closing it would EPIPE the server's own
    # later prints.
    return proc, (host, int(port))


def rpc(f, req):
    f.write(json.dumps(req) + "\n")
    f.flush()
    line = f.readline()
    assert line, f"connection closed on {req}"
    resp = json.loads(line)
    assert resp.get("kind") != "error", f"{req} -> {resp}"
    return resp


def connect(addr):
    s = socket.create_connection(addr, timeout=10)
    return s, s.makefile("rw")


def probe_answers(f):
    resp = rpc(f, {"kind": "batch", "qs": PROBES})
    return [(r.get("answer"), r.get("witness")) for r in resp["results"]]


def shard0_fp(stats):
    return stats["shards"][0]["strategy_fp"]


def measure_qps(addr, rounds, floor):
    qs = PROBES * 8  # 64 lanes
    req = (json.dumps({"kind": "batch", "qs": qs}) + "\n").encode()
    s, f = connect(addr)
    t0 = time.monotonic()
    s.sendall(req * rounds)
    for _ in range(rounds):
        line = f.readline()
        resp = json.loads(line)
        assert resp["kind"] == "answers" and len(resp["results"]) == 64, resp
    secs = time.monotonic() - t0
    s.close()
    qps = rounds * 64 / secs
    print(f"recovered server: {rounds * 64} queries in {secs:.3f}s = {qps:,.0f} qps")
    assert qps >= floor, f"qps {qps:,.0f} below the {floor:,} floor"


def main():
    binary = sys.argv[1]
    floor = 10_000
    if "--assert-qps" in sys.argv:
        floor = int(sys.argv[sys.argv.index("--assert-qps") + 1])
    data_dir = tempfile.mkdtemp(prefix="qpl-kill-restart-")

    proc, addr = start(binary, data_dir)
    try:
        s, f = connect(addr)
        rpc(f, {"kind": "update", "insert": ["prof(ada)", "grad(bob)"]})
        # Enough adaptive traffic for the learner to move, then a
        # checkpoint followed by more journaled churn so recovery
        # exercises both the snapshot and the WAL tail.
        for _ in range(20):
            rpc(f, {"kind": "batch", "qs": PROBES})
        ck = rpc(f, {"kind": "checkpoint"})
        assert ck["kind"] == "checkpointed" and ck["through_seq"] >= 1, ck
        rpc(f, {"kind": "update", "insert": ["grad(zoe)"], "retract": ["grad(bob)"]})
        for _ in range(5):
            rpc(f, {"kind": "batch", "qs": PROBES})
        before = probe_answers(f)
        fp_before = shard0_fp(rpc(f, {"kind": "stats"}))
        s.close()
    finally:
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait()

    proc, addr = start(binary, data_dir)
    try:
        s, f = connect(addr)
        stats = rpc(f, {"kind": "stats"})
        store = stats["store"]
        for key in ("wal_bytes", "segments", "records_appended",
                    "records_replayed", "last_checkpoint_unix_secs",
                    "snapshot_bytes"):
            assert isinstance(store[key], int), (key, store)
        assert store["degraded"] is False, store
        assert store["records_replayed"] >= 1, store
        assert shard0_fp(stats) == fp_before, \
            f"strategy fp changed: {shard0_fp(stats)} != {fp_before}"
        after = probe_answers(f)
        assert after == before, f"answers diverged:\n{before}\n{after}"
        s.close()
        print("kill-restart: answers and strategy fingerprint bit-identical")
        measure_qps(addr, rounds=100, floor=floor)
        s, f = connect(addr)
        rpc(f, {"kind": "shutdown"})
        s.close()
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
    print("kill-restart smoke OK")


if __name__ == "__main__":
    main()
