//! Compiling a Datalog rule base + query form into an inference graph.
//!
//! The paper treats the inference graph as given; building it from the
//! rule base is the mechanical step this module supplies. For a query
//! form `q^α` the compiler unfolds the (non-recursive) rule base into a
//! tree of adorned subgoals:
//!
//! * each node is a goal *pattern* over the query's bound constants
//!   ([`PatternTerm`]: a reference to a bound query argument, a fixed
//!   constant from a rule, or a free position);
//! * each rule whose head can unify with a node's pattern contributes a
//!   **reduction arc**, carrying the *guards* under which the
//!   unification actually succeeds at run time (e.g. the paper's
//!   `grad(fred) :- admitted(fred, X)` rule yields a guard "query
//!   argument 0 = fred" — the arc is blocked for every other constant);
//! * each node whose predicate is extensional contributes a **retrieval
//!   arc**, carrying the pattern the engine will probe against the
//!   database.
//!
//! The result pairs the structural [`InferenceGraph`] with per-arc
//! [`ArcBinding`]s; `qpl-engine` uses the bindings to turn a concrete
//! `⟨query, Database⟩` context into blocked-arc statuses (Note 2).

use crate::error::GraphError;
use crate::graph::{ArcId, GraphBuilder, InferenceGraph, NodeId};
use qpl_datalog::{QueryForm, RuleBase, RuleId, Symbol, SymbolTable, Term};
use std::collections::HashMap;

/// One position of a goal pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternTerm {
    /// The `i`-th *bound* argument of the incoming query.
    QueryArg(usize),
    /// A fixed constant introduced by some rule.
    Const(Symbol),
    /// An unconstrained position (existential).
    Free,
}

/// A runtime condition on the incoming query's bound constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Guard {
    /// Bound argument `i` must equal the constant.
    ArgEqConst(usize, Symbol),
    /// Bound arguments `i` and `j` must be equal.
    ArgEqArg(usize, usize),
}

/// How the engine decides an arc's blocked status in a context.
#[derive(Debug, Clone, PartialEq)]
pub enum ArcBinding {
    /// Rule reduction: blocked iff any guard fails.
    Reduction {
        /// The applied rule.
        rule: RuleId,
        /// Conditions on the query's bound constants.
        guards: Vec<Guard>,
    },
    /// Database retrieval: blocked iff no fact matches the instantiated
    /// pattern (after checking the same guards).
    Retrieval {
        /// Probed predicate.
        predicate: Symbol,
        /// Argument pattern to instantiate with the query's constants.
        pattern: Vec<PatternTerm>,
        /// Conditions inherited from the reductions above.
        guards: Vec<Guard>,
    },
}

/// A compiled inference graph: structure plus per-arc runtime bindings.
#[derive(Debug, Clone)]
pub struct CompiledGraph {
    /// The structural graph (costs, tree shape, strategies).
    pub graph: InferenceGraph,
    /// Binding for each arc, indexed by [`ArcId`].
    pub bindings: Vec<ArcBinding>,
    /// The query form the graph answers.
    pub form: QueryForm,
}

impl CompiledGraph {
    /// The binding of `a`.
    pub fn binding(&self, a: ArcId) -> &ArcBinding {
        &self.bindings[a.index()]
    }
}

/// Cost assigner signature: `(is_retrieval, predicate name) → f(a)`.
pub type CostAssigner<'a> = Box<dyn Fn(bool, &str) -> f64 + 'a>;

/// Compilation options.
pub struct CompileOptions<'a> {
    /// Predicates that should receive retrieval arcs even though rules
    /// also define them (a predicate can be both stored and derived).
    pub also_retrieve: Vec<Symbol>,
    /// Maximum unfolding depth (defense in depth on top of the
    /// recursion check).
    pub max_depth: usize,
    /// Cost assigner: `(is_retrieval, predicate name) → f(a) > 0`.
    pub cost: CostAssigner<'a>,
}

impl Default for CompileOptions<'_> {
    fn default() -> Self {
        Self { also_retrieve: Vec::new(), max_depth: 64, cost: Box::new(|_, _| 1.0) }
    }
}

/// Compiles `rules` for `form` into an inference graph with bindings.
///
/// # Errors
/// [`GraphError::Compile`] if the rule base is recursive, a rule body is
/// conjunctive (use the [`hypergraph`](crate::hypergraph) compiler), the
/// unfolding exceeds `max_depth`, or the tree has a dead subtree (a goal
/// with neither rules nor a retrieval).
pub fn compile(
    rules: &RuleBase,
    form: &QueryForm,
    table: &SymbolTable,
    options: &CompileOptions<'_>,
) -> Result<CompiledGraph, GraphError> {
    if rules.is_recursive() {
        return Err(GraphError::Compile("rule base is recursive".into()));
    }
    // The root pattern: bound positions become QueryArg(k) in order.
    let mut root_pattern = Vec::with_capacity(form.adornment.arity());
    let mut k = 0usize;
    for b in &form.adornment.0 {
        match b {
            qpl_datalog::Binding::Bound => {
                root_pattern.push(PatternTerm::QueryArg(k));
                k += 1;
            }
            qpl_datalog::Binding::Free => root_pattern.push(PatternTerm::Free),
        }
    }

    let mut builder = GraphBuilder::new(&pattern_label(form.predicate, &root_pattern, table));
    let root = builder.root();
    let mut bindings: Vec<ArcBinding> = Vec::new();
    expand(
        rules,
        table,
        options,
        &mut builder,
        &mut bindings,
        root,
        form.predicate,
        &root_pattern,
        &[],
        0,
    )?;
    let graph = builder.finish().map_err(|e| match e {
        GraphError::DeadLeaf(m) => GraphError::Compile(format!(
            "dead subtree: {m} (no rule applies and the predicate is intensional-only)"
        )),
        other => other,
    })?;
    debug_assert_eq!(bindings.len(), graph.arc_count());
    Ok(CompiledGraph { graph, bindings, form: form.clone() })
}

/// Recursively expands one goal node.
#[allow(clippy::too_many_arguments)]
fn expand(
    rules: &RuleBase,
    table: &SymbolTable,
    options: &CompileOptions<'_>,
    builder: &mut GraphBuilder,
    bindings: &mut Vec<ArcBinding>,
    node: NodeId,
    predicate: Symbol,
    pattern: &[PatternTerm],
    inherited_guards: &[Guard],
    depth: usize,
) -> Result<(), GraphError> {
    if depth > options.max_depth {
        return Err(GraphError::Compile(format!("unfolding exceeded depth {}", options.max_depth)));
    }
    let pred_name = table.name(predicate);
    let is_intensional = rules.rules_for(predicate).next().is_some();
    let wants_retrieval = !is_intensional || options.also_retrieve.contains(&predicate);

    if wants_retrieval {
        let label = format!("D[{}]", pattern_label(predicate, pattern, table));
        let cost = (options.cost)(true, pred_name);
        let arc = builder.retrieval(node, &label, cost);
        push_binding(
            bindings,
            arc,
            ArcBinding::Retrieval {
                predicate,
                pattern: pattern.to_vec(),
                guards: inherited_guards.to_vec(),
            },
        );
    }

    for (rule_id, rule) in rules.rules_for(predicate) {
        if rule.body.len() != 1 {
            return Err(GraphError::Compile(format!(
                "rule {} has a conjunctive body ({} literals); the simple-graph compiler \
                 handles disjunctive rules only — see the hypergraph module",
                rule.display(table),
                rule.body.len()
            )));
        }
        // Unify the rule head with the node pattern.
        let Some((var_map, mut guards)) = match_head(&rule.head.args, pattern) else {
            continue; // statically blocked: constants clash outright
        };
        // Child pattern = body atom under the variable map.
        let body = &rule.body[0];
        let child_pattern: Vec<PatternTerm> = body
            .args
            .iter()
            .map(|t| match t {
                Term::Const(c) => PatternTerm::Const(*c),
                Term::Var(v) => var_map.get(v).copied().unwrap_or(PatternTerm::Free),
            })
            .collect();
        let mut all_guards = inherited_guards.to_vec();
        all_guards.append(&mut guards);
        all_guards.sort_by_key(guard_key);
        all_guards.dedup();

        let label = format!("R{}[{}]", rule_id.0, pattern_label(predicate, pattern, table));
        let cost = (options.cost)(false, pred_name);
        let (arc, child) = builder.reduction(
            node,
            &label,
            cost,
            &pattern_label(body.predicate, &child_pattern, table),
        );
        push_binding(
            bindings,
            arc,
            ArcBinding::Reduction { rule: rule_id, guards: all_guards.clone() },
        );
        expand(
            rules,
            table,
            options,
            builder,
            bindings,
            child,
            body.predicate,
            &child_pattern,
            &all_guards,
            depth + 1,
        )?;
    }
    Ok(())
}

fn guard_key(g: &Guard) -> (usize, usize, u32) {
    match *g {
        Guard::ArgEqConst(i, s) => (0, i, s.index() as u32),
        Guard::ArgEqArg(i, j) => (1, i, j as u32),
    }
}

fn push_binding(bindings: &mut Vec<ArcBinding>, arc: ArcId, b: ArcBinding) {
    debug_assert_eq!(bindings.len(), arc.index());
    bindings.push(b);
}

/// Unifies rule-head arguments against a node pattern, producing the
/// rule-variable map and runtime guards; `None` when constants clash
/// statically.
pub(crate) fn match_head(
    head_args: &[Term],
    pattern: &[PatternTerm],
) -> Option<(HashMap<qpl_datalog::Var, PatternTerm>, Vec<Guard>)> {
    if head_args.len() != pattern.len() {
        return None;
    }
    let mut var_map: HashMap<qpl_datalog::Var, PatternTerm> = HashMap::new();
    let mut guards = Vec::new();
    for (t, &p) in head_args.iter().zip(pattern) {
        match *t {
            Term::Const(c) => match p {
                PatternTerm::Const(d) => {
                    if c != d {
                        return None;
                    }
                }
                PatternTerm::QueryArg(i) => guards.push(Guard::ArgEqConst(i, c)),
                PatternTerm::Free => {}
            },
            Term::Var(v) => match var_map.get(&v).copied() {
                None => {
                    var_map.insert(v, p);
                }
                Some(prev) => {
                    let resolved = merge_pattern_terms(prev, p, &mut guards)?;
                    var_map.insert(v, resolved);
                }
            },
        }
    }
    Some((var_map, guards))
}

/// Reconciles two pattern terms a repeated head variable was matched
/// against, emitting guards and returning the *resolved* binding (the
/// more constrained of the two — a `Free` never wins over a bound
/// position, or repeated-variable subgoals would probe unconstrained);
/// `None` on a static clash.
fn merge_pattern_terms(
    a: PatternTerm,
    b: PatternTerm,
    guards: &mut Vec<Guard>,
) -> Option<PatternTerm> {
    use PatternTerm::*;
    match (a, b) {
        (Const(x), Const(y)) => (x == y).then_some(Const(x)),
        (QueryArg(i), Const(c)) | (Const(c), QueryArg(i)) => {
            guards.push(Guard::ArgEqConst(i, c));
            Some(Const(c))
        }
        (QueryArg(i), QueryArg(j)) => {
            if i != j {
                guards.push(Guard::ArgEqArg(i.min(j), i.max(j)));
            }
            Some(QueryArg(i.min(j)))
        }
        // A Free position places no constraint; the bound side wins.
        (Free, x) | (x, Free) => Some(x),
    }
}

/// Renders `pred(κ0, fred, _)`-style labels.
pub(crate) fn pattern_label(
    predicate: Symbol,
    pattern: &[PatternTerm],
    table: &SymbolTable,
) -> String {
    let mut s = table.name(predicate).to_string();
    s.push('(');
    for (i, p) in pattern.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        match p {
            PatternTerm::QueryArg(k) => s.push_str(&format!("κ{k}")),
            PatternTerm::Const(c) => s.push_str(table.name(*c)),
            PatternTerm::Free => s.push('_'),
        }
    }
    s.push(')');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpl_datalog::parser::{parse_program, parse_query_form};

    fn compile_src(kb: &str, form: &str) -> (SymbolTable, CompiledGraph) {
        let mut t = SymbolTable::new();
        let p = parse_program(kb, &mut t).unwrap();
        let qf = parse_query_form(form, &mut t).unwrap();
        let cg = compile(&p.rules, &qf, &t, &CompileOptions::default()).unwrap();
        (t, cg)
    }

    #[test]
    fn figure1_kb_compiles_to_g_a_shape() {
        let (_, cg) = compile_src(
            "instructor(X) :- prof(X). instructor(X) :- grad(X).\n\
             prof(russ). grad(manolis).",
            "instructor(b)",
        );
        let g = &cg.graph;
        assert!(g.is_tree());
        assert_eq!(g.arc_count(), 4);
        assert_eq!(g.retrievals().count(), 2);
        // Two reductions out of the root, each followed by one retrieval.
        assert_eq!(g.children(g.root()).len(), 2);
    }

    #[test]
    fn guarded_rule_produces_guard() {
        // grad(fred) :- admitted(fred, X): the reduction is guarded on
        // query-arg 0 = fred.
        let (t, cg) = compile_src(
            "instructor(X) :- grad(X).\n\
             grad(X) :- enrolled(X).\n\
             grad(fred) :- admitted(fred, Y).\n\
             enrolled(manolis). admitted(fred, toronto).",
            "instructor(b)",
        );
        let fred = t.lookup("fred").unwrap();
        let guarded: Vec<&ArcBinding> = cg
            .bindings
            .iter()
            .filter(|b| matches!(b, ArcBinding::Reduction { guards, .. } if !guards.is_empty()))
            .collect();
        assert_eq!(guarded.len(), 1);
        match guarded[0] {
            ArcBinding::Reduction { guards, .. } => {
                assert_eq!(guards.as_slice(), &[Guard::ArgEqConst(0, fred)]);
            }
            _ => unreachable!(),
        }
        // The retrieval below the guarded rule inherits the guard.
        let inherited = cg.bindings.iter().any(|b| {
            matches!(b, ArcBinding::Retrieval { guards, .. }
                     if guards.contains(&Guard::ArgEqConst(0, fred)))
        });
        assert!(inherited, "guards propagate to descendants");
    }

    #[test]
    fn free_positions_in_retrieval_pattern() {
        let (t, cg) = compile_src(
            "instructor(X) :- grad(X).\n\
             grad(fred) :- admitted(fred, Y).\n\
             grad(zoe).\n\
             admitted(fred, toronto).",
            "instructor(b)",
        );
        let admitted = t.lookup("admitted").unwrap();
        let fred = t.lookup("fred").unwrap();
        let pat = cg.bindings.iter().find_map(|b| match b {
            ArcBinding::Retrieval { predicate, pattern, .. } if *predicate == admitted => {
                Some(pattern.clone())
            }
            _ => None,
        });
        assert_eq!(pat.unwrap(), vec![PatternTerm::Const(fred), PatternTerm::Free]);
    }

    #[test]
    fn static_clash_prunes_rule() {
        // Rule heads p(a) and p(b) under a goal already fixed to p(a):
        // reached via r(X) :- p-with-const chain.
        let (_, cg) = compile_src(
            "q(X) :- p(X).\n\
             p(a) :- s(a).\n\
             p(b) :- u(b).\n\
             s(a). u(b).",
            "q(b)",
        );
        // Both rules survive under pattern p(κ0) (guards, not clashes).
        let reductions =
            cg.bindings.iter().filter(|b| matches!(b, ArcBinding::Reduction { .. })).count();
        assert_eq!(reductions, 3, "q→p plus two guarded p rules");
    }

    #[test]
    fn recursive_rule_base_rejected() {
        let mut t = SymbolTable::new();
        let p = parse_program("p(X) :- q(X). q(X) :- p(X). base(a).", &mut t).unwrap();
        let qf = parse_query_form("p(b)", &mut t).unwrap();
        let err = compile(&p.rules, &qf, &t, &CompileOptions::default());
        assert!(matches!(err, Err(GraphError::Compile(_))));
    }

    #[test]
    fn conjunctive_body_rejected_with_pointer_to_hypergraph() {
        let mut t = SymbolTable::new();
        let p =
            parse_program("gp(X, Z) :- parent(X, Y), parent(Y, Z). parent(a, b).", &mut t).unwrap();
        let qf = parse_query_form("gp(b,b)", &mut t).unwrap();
        match compile(&p.rules, &qf, &t, &CompileOptions::default()) {
            Err(GraphError::Compile(m)) => assert!(m.contains("hypergraph")),
            other => panic!("expected compile error, got {other:?}"),
        }
    }

    #[test]
    fn custom_costs_applied() {
        let mut t = SymbolTable::new();
        let p = parse_program("instructor(X) :- prof(X). prof(russ).", &mut t).unwrap();
        let qf = parse_query_form("instructor(b)", &mut t).unwrap();
        let opts = CompileOptions {
            cost: Box::new(|is_retrieval, _| if is_retrieval { 5.0 } else { 2.0 }),
            ..Default::default()
        };
        let cg = compile(&p.rules, &qf, &t, &opts).unwrap();
        let total = cg.graph.total_cost();
        assert_eq!(total, 7.0);
    }

    #[test]
    fn also_retrieve_adds_arc_for_derived_predicate() {
        let mut t = SymbolTable::new();
        let p = parse_program("instructor(X) :- prof(X). prof(russ). instructor(dean).", &mut t)
            .unwrap();
        let qf = parse_query_form("instructor(b)", &mut t).unwrap();
        let instr = t.lookup("instructor").unwrap();
        let opts = CompileOptions { also_retrieve: vec![instr], ..Default::default() };
        let cg = compile(&p.rules, &qf, &t, &opts).unwrap();
        // Root now has a direct retrieval plus the reduction.
        assert_eq!(cg.graph.children(cg.graph.root()).len(), 2);
        assert_eq!(cg.graph.retrievals().count(), 2);
    }

    #[test]
    fn free_query_form_positions() {
        let (_, cg) = compile_src("knows(X, Y) :- friend(X, Y). friend(ann, bob).", "knows(b,f)");
        let g = &cg.graph;
        assert_eq!(g.arc_count(), 2);
        let retrieval = g.retrievals().next().unwrap();
        match cg.binding(retrieval) {
            ArcBinding::Retrieval { pattern, .. } => {
                assert_eq!(pattern.as_slice(), &[PatternTerm::QueryArg(0), PatternTerm::Free]);
            }
            _ => panic!("expected retrieval"),
        }
    }

    #[test]
    fn dead_subtree_reported() {
        // r has a rule to s, but s has neither rules nor facts mentioned:
        // s is extensional-by-default, so it gets a retrieval arc; to make
        // a dead subtree we need an intensional predicate with no rule
        // match — impossible by construction — so instead check depth cap.
        let mut t = SymbolTable::new();
        let mut src = String::new();
        for i in 0..70 {
            src.push_str(&format!("p{}(X) :- p{}(X).\n", i, i + 1));
        }
        src.push_str("p70(a).\n");
        let p = parse_program(&src, &mut t).unwrap();
        let qf = parse_query_form("p0(b)", &mut t).unwrap();
        let err = compile(&p.rules, &qf, &t, &CompileOptions::default());
        assert!(matches!(err, Err(GraphError::Compile(_))));
    }

    #[test]
    fn repeated_head_var_free_then_bound_resolves_to_bound() {
        // Regression: with form p(f,b), the head p(X, X) matches X first
        // against the Free position, then against QueryArg(0). The body
        // subgoal must probe with the *bound* argument, not a free one —
        // otherwise q(anything) would satisfy p(Y, c) even when q(c)
        // does not hold.
        let (t, cg) = compile_src("p(X, X) :- q(X). q(a).", "p(f,b)");
        let q_pred = t.lookup("q").unwrap();
        let pat = cg
            .bindings
            .iter()
            .find_map(|b| match b {
                ArcBinding::Retrieval { predicate, pattern, .. } if *predicate == q_pred => {
                    Some(pattern.clone())
                }
                _ => None,
            })
            .expect("q retrieval compiled");
        assert_eq!(pat, vec![PatternTerm::QueryArg(0)], "subgoal bound to the query constant");
    }

    #[test]
    fn labels_are_informative() {
        let (_, cg) = compile_src("instructor(X) :- prof(X). prof(russ).", "instructor(b)");
        let g = &cg.graph;
        let labels: Vec<&str> = g.arc_ids().map(|a| g.arc(a).label.as_str()).collect();
        assert!(labels.iter().any(|l| l.contains("instructor(κ0)")), "{labels:?}");
        assert!(labels.iter().any(|l| l.contains("prof(κ0)")), "{labels:?}");
    }
}
