//! End-to-end durability tests: real servers with a `--data-dir`,
//! churned with live updates, checkpointed, killed, and restarted.
//!
//! The headline test spawns the actual `qpl_serve` binary, SIGKILLs it
//! mid-flight (no drain, no destructors), restarts on the same data
//! directory, and demands bit-identical answers and the same adopted
//! strategy fingerprint as the process that never crashed.

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use qpl_serve::wire::JsonValue;
use qpl_serve::{ServeEngine, Server, ServerConfig};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qpl-store-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let reader = BufReader::new(stream.try_clone().expect("clone stream"));
    (stream, reader)
}

fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> JsonValue {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read response");
    JsonValue::parse(&resp).unwrap_or_else(|e| panic!("bad response to {line:?}: {e} ({resp:?})"))
}

/// Queries whose answers the restart must preserve: the Figure-1
/// instructor pool plus the constants churned in by the test.
const PROBES: [&str; 8] = [
    "instructor(russ)",
    "instructor(manolis)",
    "instructor(fred)",
    "instructor(alice)",
    "instructor(bob)",
    "instructor(eve)",
    "instructor(ada)",
    "instructor(zoe)",
];

fn probe_answers(s: &mut TcpStream, r: &mut BufReader<TcpStream>) -> Vec<(String, Option<String>)> {
    PROBES
        .iter()
        .map(|q| {
            let resp = roundtrip(s, r, &format!(r#"{{"kind":"query","q":"{q}"}}"#));
            let result = resp.get("result").expect("answer has result");
            (
                result.get("answer").and_then(JsonValue::as_str).expect("answer kind").to_string(),
                result.get("witness").and_then(JsonValue::as_str).map(str::to_string),
            )
        })
        .collect()
}

fn shard0_strategy_fp(stats: &JsonValue) -> String {
    stats
        .get("shards")
        .and_then(JsonValue::as_array)
        .and_then(|a| a.first())
        .and_then(|sh| sh.get("strategy_fp"))
        .and_then(JsonValue::as_str)
        .expect("shard 0 reports strategy_fp")
        .to_string()
}

/// Spawns the real `qpl_serve` binary and parses its bound address off
/// stdout. The child is SIGKILLed by the caller — no graceful path.
/// The returned reader holds the child's stdout pipe open (dropping it
/// would EPIPE the child's own banner prints).
fn spawn_serve(
    data_dir: &PathBuf,
) -> (Child, std::net::SocketAddr, BufReader<std::process::ChildStdout>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_qpl_serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--shape",
            "figure1",
            "--shards",
            "1",
            "--adapt",
            "0.2",
            "--fsync",
            "batch",
            "--data-dir",
        ])
        .arg(data_dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn qpl_serve");
    let stdout = child.stdout.take().expect("child stdout piped");
    let mut lines = BufReader::new(stdout);
    let mut banner = String::new();
    lines.read_line(&mut banner).expect("read listening banner");
    // "qpl-serve listening on 127.0.0.1:PORT (shape: ..., shards: N)"
    let addr = banner
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("unparsable banner: {banner:?}"));
    (child, addr, lines)
}

/// The satellite's headline: churn → checkpoint → churn → SIGKILL →
/// restart on the same data dir → answers and the adopted strategy
/// fingerprint are bit-identical to the killed process.
#[test]
fn kill_dash_nine_then_restart_preserves_answers_and_strategy() {
    let dir = tmpdir("kill");

    let (mut child, addr, _out) = spawn_serve(&dir);
    let (mut s, mut r) = connect(addr);

    // Churn before the checkpoint: new provable constants.
    let upd = roundtrip(&mut s, &mut r, r#"{"kind":"update","insert":["prof(ada)"]}"#);
    assert_eq!(upd.get("kind").and_then(JsonValue::as_str), Some("updated"), "{upd:?}");

    // Drive the adaptive learner with full-pool batches so a climb (and
    // its journaled fingerprint) can happen before the checkpoint.
    let qs = PROBES.iter().map(|t| format!("\"{t}\"")).collect::<Vec<_>>().join(",");
    let batch = format!(r#"{{"kind":"batch","qs":[{qs}]}}"#);
    for i in 0..15 {
        let resp = roundtrip(&mut s, &mut r, &batch);
        assert_eq!(
            resp.get("kind").and_then(JsonValue::as_str),
            Some("answers"),
            "iteration {i}: child status {:?}",
            child.try_wait()
        );
    }

    let ck = roundtrip(&mut s, &mut r, r#"{"kind":"checkpoint","id":9}"#);
    assert_eq!(ck.get("kind").and_then(JsonValue::as_str), Some("checkpointed"), "{ck:?}");
    assert_eq!(ck.get("id").and_then(JsonValue::as_f64), Some(9.0));
    assert!(ck.get("through_seq").and_then(JsonValue::as_f64).unwrap_or(0.0) >= 1.0);
    assert!(ck.get("snapshot_bytes").and_then(JsonValue::as_f64).unwrap_or(0.0) > 0.0);

    // Churn *after* the checkpoint: these live only in the WAL, so the
    // restart must replay them on top of the snapshot.
    let upd = roundtrip(&mut s, &mut r, r#"{"kind":"update","insert":["prof(zoe)"]}"#);
    assert_eq!(upd.get("kind").and_then(JsonValue::as_str), Some("updated"));
    let upd = roundtrip(&mut s, &mut r, r#"{"kind":"update","retract":["prof(ada)"]}"#);
    assert_eq!(upd.get("kind").and_then(JsonValue::as_str), Some("updated"));
    for _ in 0..5 {
        roundtrip(&mut s, &mut r, &batch);
    }

    let before = probe_answers(&mut s, &mut r);
    assert_eq!(before[6].0, "no", "post-checkpoint retract of prof(ada) applied");
    assert_eq!(before[7].0, "yes", "post-checkpoint insert of prof(zoe) applied");
    let stats = roundtrip(&mut s, &mut r, r#"{"kind":"stats"}"#);
    let fp_before = shard0_strategy_fp(&stats);
    assert_eq!(fp_before.len(), 16, "fingerprint is 16 hex chars");

    // Hard kill: SIGKILL, no drain, no flush, no destructors.
    child.kill().expect("SIGKILL the server");
    child.wait().expect("reap");
    drop(s);

    let (mut child2, addr2, _out2) = spawn_serve(&dir);
    let (mut s2, mut r2) = connect(addr2);

    // Stats first (queries could climb further): the recovered process
    // adopted exactly the fingerprint the killed process was serving.
    let stats2 = roundtrip(&mut s2, &mut r2, r#"{"kind":"stats"}"#);
    assert_eq!(shard0_strategy_fp(&stats2), fp_before, "adopted strategy survives the kill");
    let store = stats2.get("store").expect("durable server reports a store block");
    assert!(
        store.get("records_replayed").and_then(JsonValue::as_f64).unwrap_or(0.0) >= 2.0,
        "the two post-checkpoint updates came back off the WAL: {store:?}"
    );
    assert_eq!(store.get("degraded").and_then(JsonValue::as_bool), Some(false));

    let after = probe_answers(&mut s2, &mut r2);
    assert_eq!(before, after, "every answer and witness is bit-identical after the crash");

    child2.kill().expect("kill restarted server");
    child2.wait().expect("reap");
    let _ = fs::remove_dir_all(&dir);
}

/// In-process warm restart with no checkpoint at all: recovery is pure
/// WAL replay over the engine's built-in KB.
#[test]
fn wal_only_restart_replays_updates_onto_the_seed_kb() {
    let dir = tmpdir("walonly");
    let cfg = || ServerConfig { data_dir: Some(dir.clone()), ..ServerConfig::default() };

    let server = Server::start(ServeEngine::figure1(), cfg()).expect("first start");
    let (mut s, mut r) = connect(server.local_addr());
    let upd = roundtrip(&mut s, &mut r, r#"{"kind":"update","insert":["prof(ada)"]}"#);
    assert_eq!(upd.get("kind").and_then(JsonValue::as_str), Some("updated"));
    drop(s);
    server.shutdown();
    server.join();

    let server = Server::start(ServeEngine::figure1(), cfg()).expect("restart");
    let (mut s, mut r) = connect(server.local_addr());
    let q = roundtrip(&mut s, &mut r, r#"{"kind":"query","q":"instructor(ada)"}"#);
    let result = q.get("result").unwrap();
    assert_eq!(result.get("answer").and_then(JsonValue::as_str), Some("yes"));
    assert_eq!(result.get("witness").and_then(JsonValue::as_str), Some("prof(ada)"));
    let stats = roundtrip(&mut s, &mut r, r#"{"kind":"stats"}"#);
    let store = stats.get("store").expect("store block");
    assert_eq!(store.get("records_replayed").and_then(JsonValue::as_f64), Some(1.0));

    server.shutdown();
    server.join();
    let _ = fs::remove_dir_all(&dir);
}

/// `checkpoint` against a server with no `--data-dir` is a typed
/// in-band refusal, not a panic or a hang.
#[test]
fn checkpoint_without_a_data_dir_is_refused_in_band() {
    let server = Server::start(ServeEngine::figure1(), ServerConfig::default()).expect("starts");
    let (mut s, mut r) = connect(server.local_addr());
    let resp = roundtrip(&mut s, &mut r, r#"{"kind":"checkpoint","id":4}"#);
    assert_eq!(resp.get("kind").and_then(JsonValue::as_str), Some("error"));
    assert_eq!(resp.get("error").and_then(JsonValue::as_str), Some("store_unavailable"));
    assert_eq!(resp.get("id").and_then(JsonValue::as_f64), Some(4.0));
    // And stats carries no store block at all.
    let stats = roundtrip(&mut s, &mut r, r#"{"kind":"stats"}"#);
    assert!(stats.get("store").is_none(), "in-memory server must not report a store block");
    server.shutdown();
    server.join();
}

/// Disk death degrades gracefully: updates are shed with a typed error,
/// reads keep serving, and `stats` flies the degraded flag.
#[test]
fn full_disk_sheds_updates_but_keeps_serving_reads() {
    let dir = tmpdir("degraded");
    // A 1-byte segment threshold forces a segment-file creation on
    // every journaled record; deleting the directory under the server
    // makes the next creation fail like a dead disk.
    let server = Server::start(
        ServeEngine::figure1(),
        ServerConfig { data_dir: Some(dir.clone()), segment_bytes: 1, ..ServerConfig::default() },
    )
    .expect("server starts");
    let (mut s, mut r) = connect(server.local_addr());

    let ok = roundtrip(&mut s, &mut r, r#"{"kind":"update","insert":["prof(ada)"]}"#);
    assert_eq!(ok.get("kind").and_then(JsonValue::as_str), Some("updated"));

    fs::remove_dir_all(&dir).expect("yank the disk");

    let dead = roundtrip(&mut s, &mut r, r#"{"kind":"update","insert":["prof(zoe)"]}"#);
    assert_eq!(dead.get("kind").and_then(JsonValue::as_str), Some("error"), "{dead:?}");
    assert_eq!(dead.get("error").and_then(JsonValue::as_str), Some("store_unavailable"));

    // The shed update must not have applied anywhere.
    let q = roundtrip(&mut s, &mut r, r#"{"kind":"query","q":"instructor(zoe)"}"#);
    assert_eq!(
        q.get("result").and_then(|res| res.get("answer")).and_then(JsonValue::as_str),
        Some("no"),
        "an unjournaled delta never applies"
    );
    // Reads keep working, including ones that predate the failure.
    let q = roundtrip(&mut s, &mut r, r#"{"kind":"query","q":"instructor(ada)"}"#);
    assert_eq!(
        q.get("result").and_then(|res| res.get("answer")).and_then(JsonValue::as_str),
        Some("yes")
    );

    // Checkpoints are refused while degraded; stats flies the flag.
    let ck = roundtrip(&mut s, &mut r, r#"{"kind":"checkpoint"}"#);
    assert_eq!(ck.get("error").and_then(JsonValue::as_str), Some("store_unavailable"));
    let stats = roundtrip(&mut s, &mut r, r#"{"kind":"stats"}"#);
    let store = stats.get("store").expect("store block");
    assert_eq!(store.get("degraded").and_then(JsonValue::as_bool), Some(true));

    server.shutdown();
    server.join();
    let _ = fs::remove_dir_all(&dir);
}

/// The `stats` store block schema, on a healthy durable server.
#[test]
fn stats_store_block_schema_and_strategy_fp() {
    let dir = tmpdir("schema");
    let server = Server::start(
        ServeEngine::figure1(),
        ServerConfig { data_dir: Some(dir.clone()), shards: 2, ..ServerConfig::default() },
    )
    .expect("server starts");
    let (mut s, mut r) = connect(server.local_addr());

    roundtrip(&mut s, &mut r, r#"{"kind":"update","insert":["prof(ada)"]}"#);
    let ck = roundtrip(&mut s, &mut r, r#"{"kind":"checkpoint"}"#);
    assert_eq!(ck.get("kind").and_then(JsonValue::as_str), Some("checkpointed"));

    let stats = roundtrip(&mut s, &mut r, r#"{"kind":"stats"}"#);
    let store = stats.get("store").expect("store block");
    for key in [
        "wal_bytes",
        "segments",
        "records_appended",
        "records_replayed",
        "last_checkpoint_unix_secs",
        "snapshot_bytes",
    ] {
        assert!(store.get(key).and_then(JsonValue::as_f64).is_some(), "store missing {key}");
    }
    assert!(store.get("records_appended").and_then(JsonValue::as_f64).unwrap() >= 1.0);
    assert!(store.get("last_checkpoint_unix_secs").and_then(JsonValue::as_f64).unwrap() > 0.0);
    assert!(store.get("snapshot_bytes").and_then(JsonValue::as_f64).unwrap() > 0.0);
    assert_eq!(store.get("degraded").and_then(JsonValue::as_bool), Some(false));
    // Every shard reports a well-formed strategy fingerprint, and the
    // replicas agree on it.
    let shards = stats.get("shards").and_then(JsonValue::as_array).expect("shards");
    let fps: Vec<&str> = shards
        .iter()
        .map(|sh| sh.get("strategy_fp").and_then(JsonValue::as_str).expect("strategy_fp"))
        .collect();
    for fp in &fps {
        assert_eq!(fp.len(), 16, "fingerprint renders as 16 hex chars: {fp}");
        assert!(fp.chars().all(|c| c.is_ascii_hexdigit()), "hex only: {fp}");
    }
    assert!(fps.windows(2).all(|w| w[0] == w[1]), "replicas agree on the strategy: {fps:?}");
    // The metrics snapshot carries the store counters.
    let counters = stats.get("metrics").and_then(|m| m.get("counters")).expect("counters");
    assert!(counters.get("store.wal.appends").and_then(JsonValue::as_f64).unwrap_or(0.0) >= 1.0);
    assert!(counters.get("store.checkpoints").and_then(JsonValue::as_f64).unwrap_or(0.0) >= 1.0);

    server.shutdown();
    server.join();
    let _ = fs::remove_dir_all(&dir);
}
