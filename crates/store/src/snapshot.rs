//! Checkpoint snapshots: the full KB, the learner's accumulated
//! statistics, and the adopted strategy, written atomically.
//!
//! ```text
//! snapshot.qpl := | magic QPLSNAP1 | version u32 | through_seq u64 |
//!                 | payload_len u32 | crc32 u32 | payload … |
//! ```
//!
//! `through_seq` is the highest WAL seq the snapshot covers; recovery
//! skips replayed records at or below it, which closes the crash
//! window between snapshot rename and WAL truncation (replaying a
//! covered delta would be answer-correct — fact insert/retract is
//! last-op-wins — but would drift the generation stamps away from the
//! never-crashed process).
//!
//! Writes go to `snapshot.qpl.tmp`, fsync, rename into place, fsync
//! the directory: a crash leaves either the old snapshot or the new
//! one, never a torn hybrid. A leftover `.tmp` is ignored and removed
//! at the next open.

use crate::codec::{crc32, CodecError, Dec, Enc};
use crate::error::StoreError;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

const SNAPSHOT_MAGIC: &[u8; 8] = b"QPLSNAP1";
const SNAPSHOT_VERSION: u32 = 1;
const SNAPSHOT_FILE: &str = "snapshot.qpl";
const SNAPSHOT_TMP: &str = "snapshot.qpl.tmp";

/// The adopted strategy: fingerprint plus the arc order that rebuilds
/// its compiled program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrategyState {
    pub fingerprint: u64,
    pub arcs: Vec<u32>,
}

/// One accepted climb from the learner's history.
#[derive(Debug, Clone, PartialEq)]
pub struct ClimbEntry {
    pub r1: u32,
    pub r2: u32,
    pub samples: u64,
    pub evidence: f64,
    pub test_index: u64,
}

/// One candidate transformation's paired-difference accumulator —
/// the Chernoff state that makes a warm restart skip relearning.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateEntry {
    pub r1: u32,
    pub r2: u32,
    pub sum: f64,
    pub count: u64,
}

/// Serialized PIB learner state (mirrors `qpl_core::PibState`; the
/// serving layer maps between them so this crate stays engine-free).
#[derive(Debug, Clone, PartialEq)]
pub struct PibSnapshot {
    pub delta: f64,
    pub test_every: u64,
    pub strategy_arcs: Vec<u32>,
    pub samples_here: u64,
    pub contexts_seen: u64,
    pub tests_used: u64,
    pub history: Vec<ClimbEntry>,
    pub candidates: Vec<CandidateEntry>,
}

/// A full checkpoint: everything a warm restart needs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Ground fact texts, as produced by the KB's sorted dump; they
    /// re-parse through the same path as wire updates.
    pub facts: Vec<String>,
    /// KB generation counter at checkpoint time.
    pub generation: u64,
    /// Per-predicate generation stamps (predicate name, stamp).
    pub pred_gens: Vec<(String, u64)>,
    pub strategy: Option<StrategyState>,
    pub pib: Option<PibSnapshot>,
}

impl Snapshot {
    fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.put_u32(self.facts.len() as u32);
        for f in &self.facts {
            e.put_str(f);
        }
        e.put_u64(self.generation);
        e.put_u32(self.pred_gens.len() as u32);
        for (pred, gen) in &self.pred_gens {
            e.put_str(pred);
            e.put_u64(*gen);
        }
        match &self.strategy {
            None => e.put_u8(0),
            Some(s) => {
                e.put_u8(1);
                e.put_u64(s.fingerprint);
                e.put_u32(s.arcs.len() as u32);
                for a in &s.arcs {
                    e.put_u32(*a);
                }
            }
        }
        match &self.pib {
            None => e.put_u8(0),
            Some(p) => {
                e.put_u8(1);
                e.put_f64(p.delta);
                e.put_u64(p.test_every);
                e.put_u32(p.strategy_arcs.len() as u32);
                for a in &p.strategy_arcs {
                    e.put_u32(*a);
                }
                e.put_u64(p.samples_here);
                e.put_u64(p.contexts_seen);
                e.put_u64(p.tests_used);
                e.put_u32(p.history.len() as u32);
                for h in &p.history {
                    e.put_u32(h.r1);
                    e.put_u32(h.r2);
                    e.put_u64(h.samples);
                    e.put_f64(h.evidence);
                    e.put_u64(h.test_index);
                }
                e.put_u32(p.candidates.len() as u32);
                for c in &p.candidates {
                    e.put_u32(c.r1);
                    e.put_u32(c.r2);
                    e.put_f64(c.sum);
                    e.put_u64(c.count);
                }
            }
        }
        e.into_bytes()
    }

    fn decode(bytes: &[u8]) -> Result<Snapshot, CodecError> {
        let mut d = Dec::new(bytes);
        let n_facts = d.take_u32()? as usize;
        let mut facts = Vec::with_capacity(n_facts.min(1 << 20));
        for _ in 0..n_facts {
            facts.push(d.take_str()?);
        }
        let generation = d.take_u64()?;
        let n_preds = d.take_u32()? as usize;
        let mut pred_gens = Vec::with_capacity(n_preds.min(1 << 16));
        for _ in 0..n_preds {
            let pred = d.take_str()?;
            let gen = d.take_u64()?;
            pred_gens.push((pred, gen));
        }
        let strategy = match d.take_u8()? {
            0 => None,
            1 => {
                let fingerprint = d.take_u64()?;
                let n = d.take_u32()? as usize;
                let mut arcs = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    arcs.push(d.take_u32()?);
                }
                Some(StrategyState { fingerprint, arcs })
            }
            t => return Err(CodecError(format!("bad strategy tag {t}"))),
        };
        let pib = match d.take_u8()? {
            0 => None,
            1 => {
                let delta = d.take_f64()?;
                let test_every = d.take_u64()?;
                let n = d.take_u32()? as usize;
                let mut strategy_arcs = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    strategy_arcs.push(d.take_u32()?);
                }
                let samples_here = d.take_u64()?;
                let contexts_seen = d.take_u64()?;
                let tests_used = d.take_u64()?;
                let n_hist = d.take_u32()? as usize;
                let mut history = Vec::with_capacity(n_hist.min(1 << 16));
                for _ in 0..n_hist {
                    history.push(ClimbEntry {
                        r1: d.take_u32()?,
                        r2: d.take_u32()?,
                        samples: d.take_u64()?,
                        evidence: d.take_f64()?,
                        test_index: d.take_u64()?,
                    });
                }
                let n_cand = d.take_u32()? as usize;
                let mut candidates = Vec::with_capacity(n_cand.min(1 << 16));
                for _ in 0..n_cand {
                    candidates.push(CandidateEntry {
                        r1: d.take_u32()?,
                        r2: d.take_u32()?,
                        sum: d.take_f64()?,
                        count: d.take_u64()?,
                    });
                }
                Some(PibSnapshot {
                    delta,
                    test_every,
                    strategy_arcs,
                    samples_here,
                    contexts_seen,
                    tests_used,
                    history,
                    candidates,
                })
            }
            t => return Err(CodecError(format!("bad pib tag {t}"))),
        };
        if !d.is_empty() {
            return Err(CodecError(format!("{} trailing bytes after snapshot", d.remaining())));
        }
        Ok(Snapshot { facts, generation, pred_gens, strategy, pib })
    }
}

fn dir_sync(dir: &Path) {
    // Best effort, same rationale as the WAL's.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

pub(crate) fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join(SNAPSHOT_FILE)
}

/// Writes `snapshot` atomically; returns the file's byte size.
pub(crate) fn write_atomic(
    dir: &Path,
    snapshot: &Snapshot,
    through_seq: u64,
) -> Result<u64, StoreError> {
    let payload = snapshot.encode();
    let mut bytes = Vec::with_capacity(28 + payload.len());
    bytes.extend_from_slice(SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&through_seq.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);

    let tmp = dir.join(SNAPSHOT_TMP);
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&tmp)
        .map_err(|e| StoreError::io("create snapshot tmp", &tmp, e))?;
    file.write_all(&bytes).map_err(|e| StoreError::io("write snapshot", &tmp, e))?;
    file.sync_all().map_err(|e| StoreError::io("sync snapshot", &tmp, e))?;
    drop(file);
    let dest = snapshot_path(dir);
    fs::rename(&tmp, &dest).map_err(|e| StoreError::io("rename snapshot", &dest, e))?;
    dir_sync(dir);
    Ok(bytes.len() as u64)
}

/// Loads the current snapshot, if any. A leftover tmp from a crashed
/// checkpoint is removed. Returns `(snapshot, through_seq, file_bytes)`.
pub(crate) fn load(dir: &Path) -> Result<Option<(Snapshot, u64, u64)>, StoreError> {
    let tmp = dir.join(SNAPSHOT_TMP);
    if tmp.exists() {
        // The rename never happened; whatever is in the tmp is not a
        // committed checkpoint.
        let _ = fs::remove_file(&tmp);
    }
    let path = snapshot_path(dir);
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::io("read snapshot", &path, e)),
    };
    if bytes.len() < 28 || &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(StoreError::corrupt(&path, "bad magic or short header"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != SNAPSHOT_VERSION {
        return Err(StoreError::corrupt(&path, format!("unsupported version {version}")));
    }
    let through_seq = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let payload_len = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[24..28].try_into().expect("4 bytes"));
    let payload = &bytes[28..];
    if payload.len() != payload_len {
        return Err(StoreError::corrupt(
            &path,
            format!("payload is {} bytes, header claims {payload_len}", payload.len()),
        ));
    }
    if crc32(payload) != crc {
        return Err(StoreError::corrupt(&path, "payload crc mismatch"));
    }
    let snapshot =
        Snapshot::decode(payload).map_err(|e| StoreError::corrupt(&path, e.to_string()))?;
    Ok(Some((snapshot, through_seq, bytes.len() as u64)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("qpl-snap-{tag}-{}", std::process::id()))
            .join(format!("{:?}", std::thread::current().id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Snapshot {
        Snapshot {
            facts: vec!["edge(a, b)".into(), "tick()".into()],
            generation: 42,
            pred_gens: vec![("edge".into(), 42), ("tick".into(), 7)],
            strategy: Some(StrategyState {
                fingerprint: 0xFEED_FACE_CAFE_BEEF,
                arcs: vec![2, 0, 1],
            }),
            pib: Some(PibSnapshot {
                delta: 0.1,
                test_every: 32,
                strategy_arcs: vec![2, 0, 1],
                samples_here: 19,
                contexts_seen: 4031,
                tests_used: 3,
                history: vec![ClimbEntry {
                    r1: 0,
                    r2: 1,
                    samples: 640,
                    evidence: 1.25,
                    test_index: 2,
                }],
                candidates: vec![
                    CandidateEntry { r1: 0, r2: 2, sum: -3.5, count: 19 },
                    CandidateEntry { r1: 1, r2: 2, sum: 0.25, count: 19 },
                ],
            }),
        }
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let dir = tmpdir("roundtrip");
        let snap = sample();
        let bytes = write_atomic(&dir, &snap, 99).unwrap();
        let (loaded, through, size) = load(&dir).unwrap().unwrap();
        assert_eq!(loaded, snap);
        assert_eq!(through, 99);
        assert_eq!(size, bytes);
        // f64 fields came back with identical bits.
        let pib = loaded.pib.unwrap();
        assert_eq!(pib.candidates[0].sum.to_bits(), (-3.5f64).to_bits());
        let _ = fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn missing_snapshot_is_none_and_stale_tmp_is_swept() {
        let dir = tmpdir("missing");
        fs::write(dir.join(SNAPSHOT_TMP), b"half-written garbage").unwrap();
        assert!(load(&dir).unwrap().is_none());
        assert!(!dir.join(SNAPSHOT_TMP).exists());
        let _ = fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn rewrite_replaces_previous_snapshot() {
        let dir = tmpdir("rewrite");
        write_atomic(&dir, &sample(), 10).unwrap();
        let mut newer = sample();
        newer.generation = 100;
        write_atomic(&dir, &newer, 20).unwrap();
        let (loaded, through, _) = load(&dir).unwrap().unwrap();
        assert_eq!(loaded.generation, 100);
        assert_eq!(through, 20);
        let _ = fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn flipped_bit_is_detected_as_corrupt() {
        let dir = tmpdir("flip");
        write_atomic(&dir, &sample(), 5).unwrap();
        let path = snapshot_path(&dir);
        let mut bytes = fs::read(&path).unwrap();
        let mid = 28 + (bytes.len() - 28) / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(load(&dir), Err(StoreError::Corrupt { .. })));
        let _ = fs::remove_dir_all(dir.parent().unwrap());
    }
}
