//! The paper's Figure-1 scenario end to end: the university knowledge
//! base, the Section-2 query distribution, a PIB learner and a PIB₁
//! filter side by side, and a comparison with the fact-count heuristic
//! the paper critiques.
//!
//! ```text
//! cargo run --example university_pib
//! ```

use qpl::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut u = qpl::workload::university();
    let g = u.graph().clone();
    println!("G_A:\n{}", g.outline());

    // Exact Section-2 expected costs.
    let dist = u.section2_distribution();
    println!(
        "C[Θ₁ prof-first] = {:.3}   C[Θ₂ grad-first] = {:.3}",
        dist.expected_cost(&g, &u.prof_first),
        dist.expected_cost(&g, &u.grad_first),
    );

    // The adversarial 'minors' workload: nobody queried is a professor.
    let minors = u.minors_distribution(0.5);
    println!(
        "minors workload: C[Θ₁] = {:.3}   C[Θ₂] = {:.3}",
        minors.expected_cost(&g, &u.prof_first),
        minors.expected_cost(&g, &u.grad_first),
    );

    // What the fact-count heuristic would pick given DB₂'s statistics.
    let db2 = u.db2();
    let smith = SmithHeuristic::strategy(&u.compiled, &db2)?;
    println!("Smith heuristic (2000 prof / 500 grad facts) picks: {}", smith.display(&g));

    // PIB₁: one proposed transformation, filtered statistically.
    let swap = SiblingSwap::new(&g, g.children(g.root())[0], g.children(g.root())[1])?;
    let mut pib1 = Pib1::new(&g, u.prof_first.clone(), swap, 0.05)?;
    let mut rng = StdRng::seed_from_u64(2);
    let mut decided_at = None;
    for i in 1..=20_000u32 {
        pib1.observe(&g, &minors.sample(&mut rng));
        if pib1.decision() == Pib1Decision::Switch {
            decided_at = Some(i);
            break;
        }
    }
    match decided_at {
        Some(i) => println!(
            "PIB₁ approved Θ₁→Θ₂ after {i} minors-queries \
             (evidence {:.1} > threshold {:.1})",
            pib1.accumulated(),
            pib1.threshold()
        ),
        None => println!("PIB₁ kept Θ₁ (insufficient evidence)"),
    }

    // Full PIB on the same stream, starting from the heuristic's pick.
    let mut pib = Pib::new(&g, smith, PibConfig::new(0.05));
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..20_000 {
        pib.observe(&g, &minors.sample(&mut rng));
    }
    println!(
        "PIB, initialized with the heuristic's strategy, converged to: {} \
         (cost {:.3}, {} climb(s))",
        pib.strategy().display(&g),
        minors.expected_cost(&g, pib.strategy()),
        pib.history().len()
    );
    Ok(())
}
