//! Integration tests pinning every worked number in the paper, driven
//! through the public facade (`qpl::prelude`).

use qpl::prelude::*;

#[test]
fn figure1_costs_and_note2_classes() {
    let u = qpl::workload::university();
    let g = u.graph();
    let (dp, dg) = (u.d_p(), u.d_g());

    // c(Θ, I) for the two contexts of Section 2.1.
    let i1 = Context::with_blocked(g, &[dp]);
    let i2 = Context::with_blocked(g, &[dg]);
    assert_eq!(qpl::graph::context::cost(g, &u.prof_first, &i1), 4.0);
    assert_eq!(qpl::graph::context::cost(g, &u.grad_first, &i1), 2.0);
    assert_eq!(qpl::graph::context::cost(g, &u.prof_first, &i2), 2.0);
    assert_eq!(qpl::graph::context::cost(g, &u.grad_first, &i2), 4.0);

    // Note 2: I₁'s open-arc identification {R_p, R_g, D_g}.
    let open: Vec<_> = i1.open_arcs().collect();
    assert_eq!(open.len(), 3);
    assert!(!open.contains(&dp));
}

#[test]
fn section2_expected_costs_with_erratum() {
    let u = qpl::workload::university();
    let dist = u.section2_distribution();
    let c1 = dist.expected_cost(u.graph(), &u.prof_first);
    let c2 = dist.expected_cost(u.graph(), &u.grad_first);
    // The paper prints 3.7 for Θ₁ and 2.8 for Θ₂ but swaps the failure
    // factors in its own arithmetic; the values {2.8, 3.7} are right,
    // attached per the consistent reading (see DESIGN.md).
    assert!((c1 - 2.8).abs() < 1e-12);
    assert!((c2 - 3.7).abs() < 1e-12);
}

#[test]
fn note5_cost_functions_on_g_a_and_g_b() {
    let u = qpl::workload::university();
    let g = u.graph();
    // f*(R_p) = f(R_p) + f(D_p) = 2; F¬[D_g] = f(R_p)+f(D_p) = 2.
    let r_p = g.children(g.root())[0];
    assert_eq!(g.f_star(r_p), 2.0);
    assert_eq!(g.f_not(u.d_g()), 2.0);

    let (g_b, theta) = qpl::workload::figure2();
    assert_eq!(theta.paths(&g_b).len(), 4, "Note 3's four paths");
    let rst = g_b.arc_by_label("R_st").unwrap();
    assert_eq!(g_b.f_star(rst), 5.0);
}

#[test]
fn equation4_theta_abcd() {
    let (g, theta) = qpl::workload::figure2();
    let labels: Vec<&str> = theta.arcs().iter().map(|&a| g.arc(a).label.as_str()).collect();
    assert_eq!(
        labels,
        ["R_ga", "D_a", "R_gs", "R_sb", "D_b", "R_st", "R_tc", "D_c", "R_td", "D_d"]
    );
}

#[test]
fn pao_example_upsilon_decisions() {
    let u = qpl::workload::university();
    let g = u.graph();
    let truth = IndependentModel::from_retrieval_probs(g, &[0.2, 0.6]).unwrap();
    assert_eq!(upsilon_aot(g, &truth).unwrap().arcs(), u.grad_first.arcs(), "Θ₂");
    let estimate = IndependentModel::from_retrieval_probs(g, &[0.6, 0.5]).unwrap();
    assert_eq!(upsilon_aot(g, &estimate).unwrap().arcs(), u.prof_first.arcs(), "Θ₁");
}

#[test]
fn smith_heuristic_critique() {
    let mut u = qpl::workload::university();
    let db2 = u.db2();
    let smith = SmithHeuristic::strategy(&u.compiled, &db2).unwrap();
    assert_eq!(smith.arcs(), u.prof_first.arcs(), "the heuristic claims Θ₁ is optimal");
    let minors = u.minors_distribution(0.5);
    assert!(
        minors.expected_cost(u.graph(), &u.grad_first) < minors.expected_cost(u.graph(), &smith),
        "on minors queries Θ₂ is clearly superior"
    );
}

#[test]
fn engine_and_oracle_agree_on_db1() {
    // The graph-driven engine, the SLD solver, and bottom-up evaluation
    // agree on every Figure-1 query.
    let mut table = SymbolTable::new();
    let program = parser::parse_program(qpl::workload::paper::UNIVERSITY_KB, &mut table).unwrap();
    let form = parser::parse_query_form("instructor(b)", &mut table).unwrap();
    let compiled = compile(&program.rules, &form, &table, &CompileOptions::default()).unwrap();
    let qp = QueryProcessor::left_to_right(&compiled);
    for name in ["russ", "manolis", "fred"] {
        let q = parser::parse_query(&format!("instructor({name})"), &mut table).unwrap();
        let via_graph = qp.run(&q, &program.facts).unwrap().answer.is_yes();
        let via_sld = qpl::datalog::topdown::TopDown::new(&program.rules, &program.facts)
            .provable(&q)
            .unwrap();
        let via_bottom_up = qpl::datalog::eval::holds(&program.rules, &program.facts, &q);
        assert_eq!(via_graph, via_sld);
        assert_eq!(via_graph, via_bottom_up);
    }
}

#[test]
fn theorem3_guarded_rule_blocks_for_non_fred() {
    let (mut table, cg, db) = qpl::workload::reachability();
    let fred = parser::parse_query("instructor(fred)", &mut table).unwrap();
    let russ = parser::parse_query("instructor(russ)", &mut table).unwrap();
    let guarded = cg
        .graph
        .arc_ids()
        .find(|&a| {
            matches!(cg.binding(a),
            qpl::graph::compile::ArcBinding::Reduction { guards, .. } if !guards.is_empty())
        })
        .unwrap();
    assert!(!classify_context(&cg, &fred, &db).unwrap().is_blocked(guarded));
    assert!(classify_context(&cg, &russ, &db).unwrap().is_blocked(guarded));
    // And the answers are right either way.
    let qp = QueryProcessor::left_to_right(&cg);
    assert!(qp.run(&fred, &db).unwrap().answer.is_yes(), "admitted(fred, toronto) holds");
    assert!(qp.run(&russ, &db).unwrap().answer.is_yes(), "prof(russ) holds");
}
