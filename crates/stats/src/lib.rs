//! # qpl-stats — statistical machinery for strategy learning
//!
//! The PIB and PAO algorithms of Greiner (PODS'92) rest on a small set of
//! concentration-of-measure tools, collected here:
//!
//! * [`chernoff`] — the Hoeffding/Chernoff tail bounds of the paper's
//!   Equation 1, together with their inversions (solve for the deviation
//!   `β`, the sample count `n`, or the confidence `δ`).
//! * [`sequential`] — the sequential-test schedule `δᵢ = δ·6/(π²·i²)`
//!   used by PIB so that an *unbounded* series of hypothesis tests still
//!   has total false-positive probability at most `δ` (Section 3.2).
//! * [`sample`] — the sample-size formulas of Theorem 2 (Equation 7) and
//!   Theorem 3 (Equation 8), plus the footnote-11 asymptotic.
//! * [`estimator`] — the tiny counter-based estimators the paper insists
//!   on ("one or two counters per retrieval", Section 5.1): Bernoulli
//!   success frequencies and paired cost-difference accumulators.
//!
//! Everything here is deterministic pure math; randomness lives with the
//! callers (workload generators and oracles), which pass seeded RNGs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chernoff;
pub mod estimator;
pub mod sample;
pub mod sequential;

pub use chernoff::{confidence_radius, hoeffding_tail, samples_for_radius, two_sided_tail};
pub use estimator::{BernoulliEstimator, PairedDifference, RangedMean};
pub use sequential::SequentialSchedule;
